file(REMOVE_RECURSE
  "CMakeFiles/extra_unlabelled.dir/extra_unlabelled.cpp.o"
  "CMakeFiles/extra_unlabelled.dir/extra_unlabelled.cpp.o.d"
  "extra_unlabelled"
  "extra_unlabelled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_unlabelled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
