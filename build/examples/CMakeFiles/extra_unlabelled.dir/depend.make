# Empty dependencies file for extra_unlabelled.
# This may be replaced when dependencies are built.
