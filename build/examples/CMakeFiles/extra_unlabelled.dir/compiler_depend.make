# Empty compiler generated dependencies file for extra_unlabelled.
# This may be replaced when dependencies are built.
