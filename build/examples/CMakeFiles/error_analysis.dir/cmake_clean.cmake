file(REMOVE_RECURSE
  "CMakeFiles/error_analysis.dir/error_analysis.cpp.o"
  "CMakeFiles/error_analysis.dir/error_analysis.cpp.o.d"
  "error_analysis"
  "error_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
