# Empty dependencies file for graphner_tool.
# This may be replaced when dependencies are built.
