file(REMOVE_RECURSE
  "CMakeFiles/graphner_tool.dir/graphner_tool.cpp.o"
  "CMakeFiles/graphner_tool.dir/graphner_tool.cpp.o.d"
  "graphner_tool"
  "graphner_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
