# Empty dependencies file for aml_clinical_pipeline.
# This may be replaced when dependencies are built.
