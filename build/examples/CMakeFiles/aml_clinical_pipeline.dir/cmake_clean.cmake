file(REMOVE_RECURSE
  "CMakeFiles/aml_clinical_pipeline.dir/aml_clinical_pipeline.cpp.o"
  "CMakeFiles/aml_clinical_pipeline.dir/aml_clinical_pipeline.cpp.o.d"
  "aml_clinical_pipeline"
  "aml_clinical_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aml_clinical_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
