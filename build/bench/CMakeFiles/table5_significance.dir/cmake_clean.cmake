file(REMOVE_RECURSE
  "CMakeFiles/table5_significance.dir/table5_significance.cpp.o"
  "CMakeFiles/table5_significance.dir/table5_significance.cpp.o.d"
  "table5_significance"
  "table5_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
