# Empty compiler generated dependencies file for table5_significance.
# This may be replaced when dependencies are built.
