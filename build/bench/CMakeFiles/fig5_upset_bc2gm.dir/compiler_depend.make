# Empty compiler generated dependencies file for fig5_upset_bc2gm.
# This may be replaced when dependencies are built.
