file(REMOVE_RECURSE
  "CMakeFiles/fig5_upset_bc2gm.dir/fig5_upset_bc2gm.cpp.o"
  "CMakeFiles/fig5_upset_bc2gm.dir/fig5_upset_bc2gm.cpp.o.d"
  "fig5_upset_bc2gm"
  "fig5_upset_bc2gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_upset_bc2gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
