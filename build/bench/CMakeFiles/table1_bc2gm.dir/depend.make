# Empty dependencies file for table1_bc2gm.
# This may be replaced when dependencies are built.
