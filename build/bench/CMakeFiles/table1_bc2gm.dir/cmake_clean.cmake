file(REMOVE_RECURSE
  "CMakeFiles/table1_bc2gm.dir/table1_bc2gm.cpp.o"
  "CMakeFiles/table1_bc2gm.dir/table1_bc2gm.cpp.o.d"
  "table1_bc2gm"
  "table1_bc2gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bc2gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
