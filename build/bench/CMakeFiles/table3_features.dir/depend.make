# Empty dependencies file for table3_features.
# This may be replaced when dependencies are built.
