# Empty dependencies file for ablation_pos_features.
# This may be replaced when dependencies are built.
