file(REMOVE_RECURSE
  "CMakeFiles/ablation_pos_features.dir/ablation_pos_features.cpp.o"
  "CMakeFiles/ablation_pos_features.dir/ablation_pos_features.cpp.o.d"
  "ablation_pos_features"
  "ablation_pos_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pos_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
