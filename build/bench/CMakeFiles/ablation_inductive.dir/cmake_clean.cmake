file(REMOVE_RECURSE
  "CMakeFiles/ablation_inductive.dir/ablation_inductive.cpp.o"
  "CMakeFiles/ablation_inductive.dir/ablation_inductive.cpp.o.d"
  "ablation_inductive"
  "ablation_inductive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
