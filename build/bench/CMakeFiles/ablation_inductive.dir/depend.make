# Empty dependencies file for ablation_inductive.
# This may be replaced when dependencies are built.
