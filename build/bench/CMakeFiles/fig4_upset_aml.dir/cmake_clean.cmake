file(REMOVE_RECURSE
  "CMakeFiles/fig4_upset_aml.dir/fig4_upset_aml.cpp.o"
  "CMakeFiles/fig4_upset_aml.dir/fig4_upset_aml.cpp.o.d"
  "fig4_upset_aml"
  "fig4_upset_aml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_upset_aml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
