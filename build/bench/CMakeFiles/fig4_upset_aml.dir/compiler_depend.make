# Empty compiler generated dependencies file for fig4_upset_aml.
# This may be replaced when dependencies are built.
