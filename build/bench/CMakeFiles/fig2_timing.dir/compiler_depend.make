# Empty compiler generated dependencies file for fig2_timing.
# This may be replaced when dependencies are built.
