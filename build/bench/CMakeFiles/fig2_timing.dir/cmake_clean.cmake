file(REMOVE_RECURSE
  "CMakeFiles/fig2_timing.dir/fig2_timing.cpp.o"
  "CMakeFiles/fig2_timing.dir/fig2_timing.cpp.o.d"
  "fig2_timing"
  "fig2_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
