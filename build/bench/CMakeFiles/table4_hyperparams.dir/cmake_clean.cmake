file(REMOVE_RECURSE
  "CMakeFiles/table4_hyperparams.dir/table4_hyperparams.cpp.o"
  "CMakeFiles/table4_hyperparams.dir/table4_hyperparams.cpp.o.d"
  "table4_hyperparams"
  "table4_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
