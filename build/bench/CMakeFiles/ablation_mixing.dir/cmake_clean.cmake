file(REMOVE_RECURSE
  "CMakeFiles/ablation_mixing.dir/ablation_mixing.cpp.o"
  "CMakeFiles/ablation_mixing.dir/ablation_mixing.cpp.o.d"
  "ablation_mixing"
  "ablation_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
