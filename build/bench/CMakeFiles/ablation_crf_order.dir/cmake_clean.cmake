file(REMOVE_RECURSE
  "CMakeFiles/ablation_crf_order.dir/ablation_crf_order.cpp.o"
  "CMakeFiles/ablation_crf_order.dir/ablation_crf_order.cpp.o.d"
  "ablation_crf_order"
  "ablation_crf_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crf_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
