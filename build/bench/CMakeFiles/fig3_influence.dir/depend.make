# Empty dependencies file for fig3_influence.
# This may be replaced when dependencies are built.
