file(REMOVE_RECURSE
  "CMakeFiles/fig3_influence.dir/fig3_influence.cpp.o"
  "CMakeFiles/fig3_influence.dir/fig3_influence.cpp.o.d"
  "fig3_influence"
  "fig3_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
