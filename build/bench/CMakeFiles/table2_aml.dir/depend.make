# Empty dependencies file for table2_aml.
# This may be replaced when dependencies are built.
