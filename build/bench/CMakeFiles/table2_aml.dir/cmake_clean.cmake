file(REMOVE_RECURSE
  "CMakeFiles/table2_aml.dir/table2_aml.cpp.o"
  "CMakeFiles/table2_aml.dir/table2_aml.cpp.o.d"
  "table2_aml"
  "table2_aml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_aml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
