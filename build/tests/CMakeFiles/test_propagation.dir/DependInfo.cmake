
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_propagation.cpp" "tests/CMakeFiles/test_propagation.dir/test_propagation.cpp.o" "gcc" "tests/CMakeFiles/test_propagation.dir/test_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphner_graphner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_propagation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_neural.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_embeddings.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_postag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
