file(REMOVE_RECURSE
  "CMakeFiles/test_crf.dir/test_crf.cpp.o"
  "CMakeFiles/test_crf.dir/test_crf.cpp.o.d"
  "test_crf"
  "test_crf.pdb"
  "test_crf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
