# Empty compiler generated dependencies file for test_graphner.
# This may be replaced when dependencies are built.
