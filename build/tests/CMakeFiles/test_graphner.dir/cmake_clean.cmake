file(REMOVE_RECURSE
  "CMakeFiles/test_graphner.dir/test_graphner.cpp.o"
  "CMakeFiles/test_graphner.dir/test_graphner.cpp.o.d"
  "test_graphner"
  "test_graphner.pdb"
  "test_graphner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
