# Empty compiler generated dependencies file for test_inductive.
# This may be replaced when dependencies are built.
