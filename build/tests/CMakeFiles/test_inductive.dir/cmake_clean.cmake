file(REMOVE_RECURSE
  "CMakeFiles/test_inductive.dir/test_inductive.cpp.o"
  "CMakeFiles/test_inductive.dir/test_inductive.cpp.o.d"
  "test_inductive"
  "test_inductive.pdb"
  "test_inductive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
