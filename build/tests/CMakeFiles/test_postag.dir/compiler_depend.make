# Empty compiler generated dependencies file for test_postag.
# This may be replaced when dependencies are built.
