file(REMOVE_RECURSE
  "CMakeFiles/test_postag.dir/test_postag.cpp.o"
  "CMakeFiles/test_postag.dir/test_postag.cpp.o.d"
  "test_postag"
  "test_postag.pdb"
  "test_postag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
