# Empty compiler generated dependencies file for test_embeddings.
# This may be replaced when dependencies are built.
