file(REMOVE_RECURSE
  "CMakeFiles/test_embeddings.dir/test_embeddings.cpp.o"
  "CMakeFiles/test_embeddings.dir/test_embeddings.cpp.o.d"
  "test_embeddings"
  "test_embeddings.pdb"
  "test_embeddings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
