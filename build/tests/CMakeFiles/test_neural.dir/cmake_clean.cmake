file(REMOVE_RECURSE
  "CMakeFiles/test_neural.dir/test_neural.cpp.o"
  "CMakeFiles/test_neural.dir/test_neural.cpp.o.d"
  "test_neural"
  "test_neural.pdb"
  "test_neural[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
