# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_crf[1]_include.cmake")
include("/root/repo/build/tests/test_embeddings[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_generator_properties[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_graphner[1]_include.cmake")
include("/root/repo/build/tests/test_inductive[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_lbfgs[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_model_io[1]_include.cmake")
include("/root/repo/build/tests/test_neural[1]_include.cmake")
include("/root/repo/build/tests/test_postag[1]_include.cmake")
include("/root/repo/build/tests/test_propagation[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
