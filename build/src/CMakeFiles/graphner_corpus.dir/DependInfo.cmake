
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/bc2gm_io.cpp" "src/CMakeFiles/graphner_corpus.dir/corpus/bc2gm_io.cpp.o" "gcc" "src/CMakeFiles/graphner_corpus.dir/corpus/bc2gm_io.cpp.o.d"
  "/root/repo/src/corpus/corpus.cpp" "src/CMakeFiles/graphner_corpus.dir/corpus/corpus.cpp.o" "gcc" "src/CMakeFiles/graphner_corpus.dir/corpus/corpus.cpp.o.d"
  "/root/repo/src/corpus/gene_lexicon.cpp" "src/CMakeFiles/graphner_corpus.dir/corpus/gene_lexicon.cpp.o" "gcc" "src/CMakeFiles/graphner_corpus.dir/corpus/gene_lexicon.cpp.o.d"
  "/root/repo/src/corpus/generator.cpp" "src/CMakeFiles/graphner_corpus.dir/corpus/generator.cpp.o" "gcc" "src/CMakeFiles/graphner_corpus.dir/corpus/generator.cpp.o.d"
  "/root/repo/src/corpus/noise.cpp" "src/CMakeFiles/graphner_corpus.dir/corpus/noise.cpp.o" "gcc" "src/CMakeFiles/graphner_corpus.dir/corpus/noise.cpp.o.d"
  "/root/repo/src/corpus/templates.cpp" "src/CMakeFiles/graphner_corpus.dir/corpus/templates.cpp.o" "gcc" "src/CMakeFiles/graphner_corpus.dir/corpus/templates.cpp.o.d"
  "/root/repo/src/corpus/wordlists.cpp" "src/CMakeFiles/graphner_corpus.dir/corpus/wordlists.cpp.o" "gcc" "src/CMakeFiles/graphner_corpus.dir/corpus/wordlists.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
