file(REMOVE_RECURSE
  "CMakeFiles/graphner_corpus.dir/corpus/bc2gm_io.cpp.o"
  "CMakeFiles/graphner_corpus.dir/corpus/bc2gm_io.cpp.o.d"
  "CMakeFiles/graphner_corpus.dir/corpus/corpus.cpp.o"
  "CMakeFiles/graphner_corpus.dir/corpus/corpus.cpp.o.d"
  "CMakeFiles/graphner_corpus.dir/corpus/gene_lexicon.cpp.o"
  "CMakeFiles/graphner_corpus.dir/corpus/gene_lexicon.cpp.o.d"
  "CMakeFiles/graphner_corpus.dir/corpus/generator.cpp.o"
  "CMakeFiles/graphner_corpus.dir/corpus/generator.cpp.o.d"
  "CMakeFiles/graphner_corpus.dir/corpus/noise.cpp.o"
  "CMakeFiles/graphner_corpus.dir/corpus/noise.cpp.o.d"
  "CMakeFiles/graphner_corpus.dir/corpus/templates.cpp.o"
  "CMakeFiles/graphner_corpus.dir/corpus/templates.cpp.o.d"
  "CMakeFiles/graphner_corpus.dir/corpus/wordlists.cpp.o"
  "CMakeFiles/graphner_corpus.dir/corpus/wordlists.cpp.o.d"
  "libgraphner_corpus.a"
  "libgraphner_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
