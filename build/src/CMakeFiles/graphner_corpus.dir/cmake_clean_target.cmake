file(REMOVE_RECURSE
  "libgraphner_corpus.a"
)
