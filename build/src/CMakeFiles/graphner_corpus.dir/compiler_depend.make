# Empty compiler generated dependencies file for graphner_corpus.
# This may be replaced when dependencies are built.
