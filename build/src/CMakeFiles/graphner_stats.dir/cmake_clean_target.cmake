file(REMOVE_RECURSE
  "libgraphner_stats.a"
)
