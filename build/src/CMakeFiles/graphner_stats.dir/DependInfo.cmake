
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi_square.cpp" "src/CMakeFiles/graphner_stats.dir/stats/chi_square.cpp.o" "gcc" "src/CMakeFiles/graphner_stats.dir/stats/chi_square.cpp.o.d"
  "/root/repo/src/stats/sigf.cpp" "src/CMakeFiles/graphner_stats.dir/stats/sigf.cpp.o" "gcc" "src/CMakeFiles/graphner_stats.dir/stats/sigf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphner_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
