# Empty dependencies file for graphner_stats.
# This may be replaced when dependencies are built.
