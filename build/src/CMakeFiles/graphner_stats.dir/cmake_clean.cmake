file(REMOVE_RECURSE
  "CMakeFiles/graphner_stats.dir/stats/chi_square.cpp.o"
  "CMakeFiles/graphner_stats.dir/stats/chi_square.cpp.o.d"
  "CMakeFiles/graphner_stats.dir/stats/sigf.cpp.o"
  "CMakeFiles/graphner_stats.dir/stats/sigf.cpp.o.d"
  "libgraphner_stats.a"
  "libgraphner_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
