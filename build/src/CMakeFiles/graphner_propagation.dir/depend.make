# Empty dependencies file for graphner_propagation.
# This may be replaced when dependencies are built.
