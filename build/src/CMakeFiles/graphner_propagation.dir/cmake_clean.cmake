file(REMOVE_RECURSE
  "CMakeFiles/graphner_propagation.dir/propagation/propagation.cpp.o"
  "CMakeFiles/graphner_propagation.dir/propagation/propagation.cpp.o.d"
  "libgraphner_propagation.a"
  "libgraphner_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
