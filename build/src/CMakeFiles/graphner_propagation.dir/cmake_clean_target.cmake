file(REMOVE_RECURSE
  "libgraphner_propagation.a"
)
