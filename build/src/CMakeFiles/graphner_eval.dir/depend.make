# Empty dependencies file for graphner_eval.
# This may be replaced when dependencies are built.
