file(REMOVE_RECURSE
  "CMakeFiles/graphner_eval.dir/eval/bc2gm_eval.cpp.o"
  "CMakeFiles/graphner_eval.dir/eval/bc2gm_eval.cpp.o.d"
  "CMakeFiles/graphner_eval.dir/eval/error_analysis.cpp.o"
  "CMakeFiles/graphner_eval.dir/eval/error_analysis.cpp.o.d"
  "libgraphner_eval.a"
  "libgraphner_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
