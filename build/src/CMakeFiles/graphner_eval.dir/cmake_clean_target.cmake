file(REMOVE_RECURSE
  "libgraphner_eval.a"
)
