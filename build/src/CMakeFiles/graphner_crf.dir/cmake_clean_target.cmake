file(REMOVE_RECURSE
  "libgraphner_crf.a"
)
