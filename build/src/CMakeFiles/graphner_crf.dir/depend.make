# Empty dependencies file for graphner_crf.
# This may be replaced when dependencies are built.
