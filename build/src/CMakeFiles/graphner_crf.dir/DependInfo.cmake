
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/belief_viterbi.cpp" "src/CMakeFiles/graphner_crf.dir/crf/belief_viterbi.cpp.o" "gcc" "src/CMakeFiles/graphner_crf.dir/crf/belief_viterbi.cpp.o.d"
  "/root/repo/src/crf/feature_index.cpp" "src/CMakeFiles/graphner_crf.dir/crf/feature_index.cpp.o" "gcc" "src/CMakeFiles/graphner_crf.dir/crf/feature_index.cpp.o.d"
  "/root/repo/src/crf/lbfgs.cpp" "src/CMakeFiles/graphner_crf.dir/crf/lbfgs.cpp.o" "gcc" "src/CMakeFiles/graphner_crf.dir/crf/lbfgs.cpp.o.d"
  "/root/repo/src/crf/model.cpp" "src/CMakeFiles/graphner_crf.dir/crf/model.cpp.o" "gcc" "src/CMakeFiles/graphner_crf.dir/crf/model.cpp.o.d"
  "/root/repo/src/crf/state_space.cpp" "src/CMakeFiles/graphner_crf.dir/crf/state_space.cpp.o" "gcc" "src/CMakeFiles/graphner_crf.dir/crf/state_space.cpp.o.d"
  "/root/repo/src/crf/trainer.cpp" "src/CMakeFiles/graphner_crf.dir/crf/trainer.cpp.o" "gcc" "src/CMakeFiles/graphner_crf.dir/crf/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
