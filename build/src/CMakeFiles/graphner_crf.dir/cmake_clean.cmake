file(REMOVE_RECURSE
  "CMakeFiles/graphner_crf.dir/crf/belief_viterbi.cpp.o"
  "CMakeFiles/graphner_crf.dir/crf/belief_viterbi.cpp.o.d"
  "CMakeFiles/graphner_crf.dir/crf/feature_index.cpp.o"
  "CMakeFiles/graphner_crf.dir/crf/feature_index.cpp.o.d"
  "CMakeFiles/graphner_crf.dir/crf/lbfgs.cpp.o"
  "CMakeFiles/graphner_crf.dir/crf/lbfgs.cpp.o.d"
  "CMakeFiles/graphner_crf.dir/crf/model.cpp.o"
  "CMakeFiles/graphner_crf.dir/crf/model.cpp.o.d"
  "CMakeFiles/graphner_crf.dir/crf/state_space.cpp.o"
  "CMakeFiles/graphner_crf.dir/crf/state_space.cpp.o.d"
  "CMakeFiles/graphner_crf.dir/crf/trainer.cpp.o"
  "CMakeFiles/graphner_crf.dir/crf/trainer.cpp.o.d"
  "libgraphner_crf.a"
  "libgraphner_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
