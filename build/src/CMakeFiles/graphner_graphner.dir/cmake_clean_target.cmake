file(REMOVE_RECURSE
  "libgraphner_graphner.a"
)
