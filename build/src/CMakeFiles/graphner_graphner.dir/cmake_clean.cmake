file(REMOVE_RECURSE
  "CMakeFiles/graphner_graphner.dir/graphner/experiment.cpp.o"
  "CMakeFiles/graphner_graphner.dir/graphner/experiment.cpp.o.d"
  "CMakeFiles/graphner_graphner.dir/graphner/inductive.cpp.o"
  "CMakeFiles/graphner_graphner.dir/graphner/inductive.cpp.o.d"
  "CMakeFiles/graphner_graphner.dir/graphner/model_io.cpp.o"
  "CMakeFiles/graphner_graphner.dir/graphner/model_io.cpp.o.d"
  "CMakeFiles/graphner_graphner.dir/graphner/pipeline.cpp.o"
  "CMakeFiles/graphner_graphner.dir/graphner/pipeline.cpp.o.d"
  "CMakeFiles/graphner_graphner.dir/graphner/reference.cpp.o"
  "CMakeFiles/graphner_graphner.dir/graphner/reference.cpp.o.d"
  "libgraphner_graphner.a"
  "libgraphner_graphner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_graphner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
