# Empty compiler generated dependencies file for graphner_graphner.
# This may be replaced when dependencies are built.
