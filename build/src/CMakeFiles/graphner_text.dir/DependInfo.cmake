
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/annotation.cpp" "src/CMakeFiles/graphner_text.dir/text/annotation.cpp.o" "gcc" "src/CMakeFiles/graphner_text.dir/text/annotation.cpp.o.d"
  "/root/repo/src/text/bio.cpp" "src/CMakeFiles/graphner_text.dir/text/bio.cpp.o" "gcc" "src/CMakeFiles/graphner_text.dir/text/bio.cpp.o.d"
  "/root/repo/src/text/conll.cpp" "src/CMakeFiles/graphner_text.dir/text/conll.cpp.o" "gcc" "src/CMakeFiles/graphner_text.dir/text/conll.cpp.o.d"
  "/root/repo/src/text/lemmatizer.cpp" "src/CMakeFiles/graphner_text.dir/text/lemmatizer.cpp.o" "gcc" "src/CMakeFiles/graphner_text.dir/text/lemmatizer.cpp.o.d"
  "/root/repo/src/text/sentence.cpp" "src/CMakeFiles/graphner_text.dir/text/sentence.cpp.o" "gcc" "src/CMakeFiles/graphner_text.dir/text/sentence.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/CMakeFiles/graphner_text.dir/text/tokenizer.cpp.o" "gcc" "src/CMakeFiles/graphner_text.dir/text/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocabulary.cpp" "src/CMakeFiles/graphner_text.dir/text/vocabulary.cpp.o" "gcc" "src/CMakeFiles/graphner_text.dir/text/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
