file(REMOVE_RECURSE
  "libgraphner_text.a"
)
