# Empty dependencies file for graphner_text.
# This may be replaced when dependencies are built.
