file(REMOVE_RECURSE
  "CMakeFiles/graphner_text.dir/text/annotation.cpp.o"
  "CMakeFiles/graphner_text.dir/text/annotation.cpp.o.d"
  "CMakeFiles/graphner_text.dir/text/bio.cpp.o"
  "CMakeFiles/graphner_text.dir/text/bio.cpp.o.d"
  "CMakeFiles/graphner_text.dir/text/conll.cpp.o"
  "CMakeFiles/graphner_text.dir/text/conll.cpp.o.d"
  "CMakeFiles/graphner_text.dir/text/lemmatizer.cpp.o"
  "CMakeFiles/graphner_text.dir/text/lemmatizer.cpp.o.d"
  "CMakeFiles/graphner_text.dir/text/sentence.cpp.o"
  "CMakeFiles/graphner_text.dir/text/sentence.cpp.o.d"
  "CMakeFiles/graphner_text.dir/text/tokenizer.cpp.o"
  "CMakeFiles/graphner_text.dir/text/tokenizer.cpp.o.d"
  "CMakeFiles/graphner_text.dir/text/vocabulary.cpp.o"
  "CMakeFiles/graphner_text.dir/text/vocabulary.cpp.o.d"
  "libgraphner_text.a"
  "libgraphner_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
