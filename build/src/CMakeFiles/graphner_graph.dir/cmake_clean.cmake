file(REMOVE_RECURSE
  "CMakeFiles/graphner_graph.dir/graph/graph_stats.cpp.o"
  "CMakeFiles/graphner_graph.dir/graph/graph_stats.cpp.o.d"
  "CMakeFiles/graphner_graph.dir/graph/knn_graph.cpp.o"
  "CMakeFiles/graphner_graph.dir/graph/knn_graph.cpp.o.d"
  "CMakeFiles/graphner_graph.dir/graph/sparse_vector.cpp.o"
  "CMakeFiles/graphner_graph.dir/graph/sparse_vector.cpp.o.d"
  "CMakeFiles/graphner_graph.dir/graph/trigram.cpp.o"
  "CMakeFiles/graphner_graph.dir/graph/trigram.cpp.o.d"
  "CMakeFiles/graphner_graph.dir/graph/vertex_features.cpp.o"
  "CMakeFiles/graphner_graph.dir/graph/vertex_features.cpp.o.d"
  "libgraphner_graph.a"
  "libgraphner_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
