# Empty dependencies file for graphner_graph.
# This may be replaced when dependencies are built.
