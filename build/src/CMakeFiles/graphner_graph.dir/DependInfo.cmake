
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_stats.cpp" "src/CMakeFiles/graphner_graph.dir/graph/graph_stats.cpp.o" "gcc" "src/CMakeFiles/graphner_graph.dir/graph/graph_stats.cpp.o.d"
  "/root/repo/src/graph/knn_graph.cpp" "src/CMakeFiles/graphner_graph.dir/graph/knn_graph.cpp.o" "gcc" "src/CMakeFiles/graphner_graph.dir/graph/knn_graph.cpp.o.d"
  "/root/repo/src/graph/sparse_vector.cpp" "src/CMakeFiles/graphner_graph.dir/graph/sparse_vector.cpp.o" "gcc" "src/CMakeFiles/graphner_graph.dir/graph/sparse_vector.cpp.o.d"
  "/root/repo/src/graph/trigram.cpp" "src/CMakeFiles/graphner_graph.dir/graph/trigram.cpp.o" "gcc" "src/CMakeFiles/graphner_graph.dir/graph/trigram.cpp.o.d"
  "/root/repo/src/graph/vertex_features.cpp" "src/CMakeFiles/graphner_graph.dir/graph/vertex_features.cpp.o" "gcc" "src/CMakeFiles/graphner_graph.dir/graph/vertex_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_embeddings.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_postag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
