file(REMOVE_RECURSE
  "libgraphner_graph.a"
)
