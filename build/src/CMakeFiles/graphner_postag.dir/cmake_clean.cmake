file(REMOVE_RECURSE
  "CMakeFiles/graphner_postag.dir/postag/hmm_tagger.cpp.o"
  "CMakeFiles/graphner_postag.dir/postag/hmm_tagger.cpp.o.d"
  "CMakeFiles/graphner_postag.dir/postag/pos.cpp.o"
  "CMakeFiles/graphner_postag.dir/postag/pos.cpp.o.d"
  "libgraphner_postag.a"
  "libgraphner_postag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_postag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
