# Empty dependencies file for graphner_postag.
# This may be replaced when dependencies are built.
