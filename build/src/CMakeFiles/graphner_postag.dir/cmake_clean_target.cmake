file(REMOVE_RECURSE
  "libgraphner_postag.a"
)
