
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/postag/hmm_tagger.cpp" "src/CMakeFiles/graphner_postag.dir/postag/hmm_tagger.cpp.o" "gcc" "src/CMakeFiles/graphner_postag.dir/postag/hmm_tagger.cpp.o.d"
  "/root/repo/src/postag/pos.cpp" "src/CMakeFiles/graphner_postag.dir/postag/pos.cpp.o" "gcc" "src/CMakeFiles/graphner_postag.dir/postag/pos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
