# Empty dependencies file for graphner_neural.
# This may be replaced when dependencies are built.
