file(REMOVE_RECURSE
  "CMakeFiles/graphner_neural.dir/neural/bilstm_crf.cpp.o"
  "CMakeFiles/graphner_neural.dir/neural/bilstm_crf.cpp.o.d"
  "CMakeFiles/graphner_neural.dir/neural/lstm.cpp.o"
  "CMakeFiles/graphner_neural.dir/neural/lstm.cpp.o.d"
  "libgraphner_neural.a"
  "libgraphner_neural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_neural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
