file(REMOVE_RECURSE
  "libgraphner_neural.a"
)
