file(REMOVE_RECURSE
  "libgraphner_embeddings.a"
)
