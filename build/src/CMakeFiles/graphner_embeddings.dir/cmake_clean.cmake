file(REMOVE_RECURSE
  "CMakeFiles/graphner_embeddings.dir/embeddings/brown.cpp.o"
  "CMakeFiles/graphner_embeddings.dir/embeddings/brown.cpp.o.d"
  "CMakeFiles/graphner_embeddings.dir/embeddings/word2vec.cpp.o"
  "CMakeFiles/graphner_embeddings.dir/embeddings/word2vec.cpp.o.d"
  "libgraphner_embeddings.a"
  "libgraphner_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
