# Empty compiler generated dependencies file for graphner_embeddings.
# This may be replaced when dependencies are built.
