
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/encoder.cpp" "src/CMakeFiles/graphner_features.dir/features/encoder.cpp.o" "gcc" "src/CMakeFiles/graphner_features.dir/features/encoder.cpp.o.d"
  "/root/repo/src/features/extractor.cpp" "src/CMakeFiles/graphner_features.dir/features/extractor.cpp.o" "gcc" "src/CMakeFiles/graphner_features.dir/features/extractor.cpp.o.d"
  "/root/repo/src/features/mi_selection.cpp" "src/CMakeFiles/graphner_features.dir/features/mi_selection.cpp.o" "gcc" "src/CMakeFiles/graphner_features.dir/features/mi_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_embeddings.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_postag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
