file(REMOVE_RECURSE
  "CMakeFiles/graphner_features.dir/features/encoder.cpp.o"
  "CMakeFiles/graphner_features.dir/features/encoder.cpp.o.d"
  "CMakeFiles/graphner_features.dir/features/extractor.cpp.o"
  "CMakeFiles/graphner_features.dir/features/extractor.cpp.o.d"
  "CMakeFiles/graphner_features.dir/features/mi_selection.cpp.o"
  "CMakeFiles/graphner_features.dir/features/mi_selection.cpp.o.d"
  "libgraphner_features.a"
  "libgraphner_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
