# Empty dependencies file for graphner_features.
# This may be replaced when dependencies are built.
