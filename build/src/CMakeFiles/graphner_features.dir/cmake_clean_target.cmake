file(REMOVE_RECURSE
  "libgraphner_features.a"
)
