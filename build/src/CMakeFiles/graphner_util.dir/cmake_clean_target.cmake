file(REMOVE_RECURSE
  "libgraphner_util.a"
)
