# Empty dependencies file for graphner_util.
# This may be replaced when dependencies are built.
