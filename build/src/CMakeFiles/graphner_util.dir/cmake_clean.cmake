file(REMOVE_RECURSE
  "CMakeFiles/graphner_util.dir/util/cli.cpp.o"
  "CMakeFiles/graphner_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/graphner_util.dir/util/histogram.cpp.o"
  "CMakeFiles/graphner_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/graphner_util.dir/util/logging.cpp.o"
  "CMakeFiles/graphner_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/graphner_util.dir/util/parallel.cpp.o"
  "CMakeFiles/graphner_util.dir/util/parallel.cpp.o.d"
  "CMakeFiles/graphner_util.dir/util/rng.cpp.o"
  "CMakeFiles/graphner_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/graphner_util.dir/util/strings.cpp.o"
  "CMakeFiles/graphner_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/graphner_util.dir/util/table.cpp.o"
  "CMakeFiles/graphner_util.dir/util/table.cpp.o.d"
  "libgraphner_util.a"
  "libgraphner_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphner_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
