#include "src/router/supervisor.hpp"

#include <utility>

#include "src/util/logging.hpp"

namespace graphner::router {

HealthSupervisor::HealthSupervisor(
    SupervisorConfig config,
    std::vector<std::unique_ptr<ReplicaHandle>>& replicas,
    BreakerBoard& breakers, obs::Registry& registry)
    : config_(config),
      replicas_(replicas),
      breakers_(breakers),
      probes_(registry.counter("router.health.probes")),
      probe_failures_(registry.counter("router.health.probe_failures")),
      breaker_opens_(registry.counter("router.health.breaker_opens")),
      breaker_closes_(registry.counter("router.health.breaker_closes")),
      revives_(registry.counter("router.health.revives")),
      open_breakers_(registry.gauge("router.health.open_breakers")) {
  states_.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    states_.emplace_back(config_.revive_backoff);
  if (config_.probe_interval.count() > 0)
    thread_ = std::thread([this] { run(); });
}

HealthSupervisor::~HealthSupervisor() { stop(); }

void HealthSupervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthSupervisor::run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, config_.probe_interval, [this] { return stopping_; });
      if (stopping_) return;
    }
    probe_all();
  }
}

bool HealthSupervisor::probe(ReplicaHandle& replica) {
  probes_.inc();
  // Chaos hook: a fired probe fault is a probe that never came back.
  if (util::fault_fires("replica.probe")) {
    probe_failures_.inc();
    return false;
  }
  text::Sentence sentinel;
  sentinel.tokens = {"health", "probe"};
  serve::SubmitOptions probe_options;
  probe_options.deadline = config_.probe_deadline;
  ReplicaSubmission submission =
      replica.submit(std::move(sentinel), std::move(probe_options));
  if (!submission.accepted) {
    probe_failures_.inc();
    return false;
  }
  // The service enforces the deadline itself; the longer wait bound only
  // guards against a wedged replica that never resolves the future.
  const auto bound =
      config_.probe_deadline * 2 + std::chrono::milliseconds(100);
  if (submission.future.wait_for(bound) != std::future_status::ready) {
    probe_failures_.inc();
    return false;
  }
  const serve::TagResponse response = submission.future.get();
  // OVERLOADED (and degraded OK) answers prove the replica is alive under
  // load — opening the breaker would shift that load onto its siblings.
  const bool alive = response.status == serve::Status::kOk ||
                     response.status == serve::Status::kOverloaded;
  if (!alive) probe_failures_.inc();
  return alive;
}

void HealthSupervisor::probe_all() {
  std::lock_guard<std::mutex> sweep(probe_mutex_);
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    ReplicaState& state = states_[i];
    if (breakers_.is_open(i)) {
      if (now < state.next_probe) continue;  // still backing off
      // Half-open attempt. A killed replica cannot answer a probe at all,
      // so revive it first — this is the automatic path that replaces
      // manual "#REPLICA revive".
      if (config_.auto_revive && !replicas_[i]->healthy()) {
        replicas_[i]->revive();
        revives_.inc();
        util::log_info("supervisor: revived replica ", i,
                       " for half-open probe");
      }
      if (probe(*replicas_[i])) {
        breakers_.set_open(i, false);
        breaker_closes_.inc();
        state.consecutive_failures = 0;
        state.backoff.reset();
        util::log_info("supervisor: breaker closed for replica ", i);
      } else {
        if (!state.backoff.can_retry()) state.backoff.reset();
        state.next_probe =
            std::chrono::steady_clock::now() + state.backoff.next_delay();
      }
      continue;
    }
    if (probe(*replicas_[i])) {
      state.consecutive_failures = 0;
      continue;
    }
    if (++state.consecutive_failures >= config_.failure_threshold) {
      breakers_.set_open(i, true);
      breaker_opens_.inc();
      state.backoff.reset();
      state.next_probe =
          std::chrono::steady_clock::now() + state.backoff.next_delay();
      util::log_warn("supervisor: breaker OPEN for replica ", i, " after ",
                     state.consecutive_failures, " consecutive probe failures");
    }
  }
  open_breakers_.set(static_cast<double>(breakers_.open_count()));
}

}  // namespace graphner::router
