// Replica health supervisor: sentinel probes + per-replica circuit
// breakers (DESIGN.md §13).
//
// Before this, replica health was binary and manual: a replica answered
// submits until an operator sent "#REPLICA kill", and came back only on
// "#REPLICA revive". The supervisor closes the loop automatically:
//
//   * every probe interval each replica decodes a sentinel sentence under
//     a deadline; a probe fails when the replica rejects the submit, the
//     response misses the deadline, or the status is terminal (SHUTDOWN /
//     ERROR / DEADLINE_EXCEEDED) — OVERLOADED and degraded answers are
//     load signals, not health failures;
//   * `failure_threshold` consecutive failures open the replica's circuit
//     breaker: the router routes requests around it (unless every breaker
//     is open — fail-static beats fail-closed when the probe itself is
//     what is broken);
//   * an open breaker is re-probed half-open on a util::Backoff schedule;
//     a dead (killed) replica is revived first. One successful half-open
//     probe closes the breaker and resets the backoff.
//
// The "replica.probe" fault point fails a probe before it touches the
// replica, so chaos runs can open breakers deterministically. Metrics:
// router.health.{probes,probe_failures,breaker_opens,breaker_closes,
// revives} counters and the router.health.open_breakers gauge.
//
// The supervisor is opt-in (the router starts it only with a non-zero
// probe interval); manual "#REPLICA kill|revive" keeps working either way
// — a kill just gets noticed, routed around, and eventually revived when
// the supervisor runs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/registry.hpp"
#include "src/router/replica.hpp"
#include "src/util/fault.hpp"

namespace graphner::router {

/// Per-replica open/closed flags, readable lock-free from the router's
/// request hot path (one relaxed load per considered replica).
class BreakerBoard {
 public:
  explicit BreakerBoard(std::size_t n)
      : n_(n), open_(std::make_unique<std::atomic<bool>[]>(n)) {
    for (std::size_t i = 0; i < n_; ++i)
      open_[i].store(false, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool is_open(std::size_t i) const noexcept {
    return open_[i].load(std::memory_order_relaxed);
  }
  void set_open(std::size_t i, bool open) noexcept {
    open_[i].store(open, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t open_count() const noexcept {
    std::size_t count = 0;
    for (std::size_t i = 0; i < n_; ++i)
      if (is_open(i)) ++count;
    return count;
  }

 private:
  std::size_t n_;
  std::unique_ptr<std::atomic<bool>[]> open_;
};

struct SupervisorConfig {
  std::chrono::milliseconds probe_interval{500};
  /// Deadline handed to the sentinel submit; a response slower than this
  /// counts as a failed probe.
  std::chrono::milliseconds probe_deadline{250};
  /// Consecutive probe failures that open the breaker.
  std::size_t failure_threshold = 3;
  /// Half-open re-probe schedule for an open breaker. max_retries is
  /// effectively ignored — an open breaker is re-probed forever at the
  /// capped delay.
  util::BackoffPolicy revive_backoff{std::chrono::milliseconds(100),
                                     std::chrono::milliseconds(2000), 2.0, 0.2,
                                     1 << 30};
  /// Revive a dead replica before a half-open probe (automatic healing of
  /// killed replicas).
  bool auto_revive = true;
};

class HealthSupervisor {
 public:
  /// Starts the probe thread immediately. `replicas` and `breakers` must
  /// outlive the supervisor; stop() (or destruction) joins the thread.
  HealthSupervisor(SupervisorConfig config,
                   std::vector<std::unique_ptr<ReplicaHandle>>& replicas,
                   BreakerBoard& breakers, obs::Registry& registry);
  ~HealthSupervisor();

  HealthSupervisor(const HealthSupervisor&) = delete;
  HealthSupervisor& operator=(const HealthSupervisor&) = delete;

  void stop();

  /// One probe sweep over all replicas (the loop body, callable directly
  /// by tests for deterministic single-step drills).
  void probe_all();

 private:
  struct ReplicaState {
    std::size_t consecutive_failures = 0;
    util::Backoff backoff;
    /// Next time an open breaker may half-open probe.
    std::chrono::steady_clock::time_point next_probe{};
    explicit ReplicaState(const util::BackoffPolicy& policy)
        : backoff(policy) {}
  };

  [[nodiscard]] bool probe(ReplicaHandle& replica);
  void run();

  /// Serializes probe sweeps: the probe thread and a test driving
  /// probe_all() directly may not touch states_ concurrently.
  std::mutex probe_mutex_;

  SupervisorConfig config_;
  std::vector<std::unique_ptr<ReplicaHandle>>& replicas_;
  BreakerBoard& breakers_;
  obs::Counter& probes_;
  obs::Counter& probe_failures_;
  obs::Counter& breaker_opens_;
  obs::Counter& breaker_closes_;
  obs::Counter& revives_;
  obs::Gauge& open_breakers_;
  std::vector<ReplicaState> states_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace graphner::router
