#include "src/router/lru_cache.hpp"

#include <algorithm>
#include <utility>

#include "src/graphner/model_format.hpp"

namespace graphner::router {

ShardedLruCache::ShardedLruCache(LruCacheConfig config, obs::Registry& registry)
    : capacity_(std::max<std::size_t>(1, config.capacity)),
      per_shard_capacity_(std::max<std::size_t>(
          1, capacity_ / std::max<std::size_t>(1, config.shards))),
      hits_(registry.counter("cache.hits")),
      misses_(registry.counter("cache.misses")),
      evictions_(registry.counter("cache.evictions")),
      invalidated_(registry.counter("cache.invalidated")),
      bytes_gauge_(registry.gauge("cache.bytes")),
      entries_gauge_(registry.gauge("cache.entries")) {
  const std::size_t shard_count = std::max<std::size_t>(1, config.shards);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ShardedLruCache::Shard& ShardedLruCache::shard_for(const std::string& key) {
  const std::uint64_t h = core::model_format::fnv1a(key.data(), key.size());
  return *shards_[h % shards_.size()];
}

std::size_t ShardedLruCache::entry_bytes(const Entry& entry) noexcept {
  // Accounting, not malloc truth: key bytes twice (list node + index key)
  // plus the tag payload. Close enough to bound memory and to make the
  // cache.bytes gauge move honestly with the working set.
  return 2 * entry.key.size() + entry.tags.size() * sizeof(text::Tag) +
         sizeof(Entry);
}

std::optional<std::vector<text::Tag>> ShardedLruCache::get(
    const std::string& key) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.inc();
      return it->second->tags;
    }
  }
  misses_.inc();
  return std::nullopt;
}

void ShardedLruCache::put(const std::string& key, std::vector<text::Tag> tags,
                          std::uint64_t fingerprint) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    // Refresh in place (e.g. the same sentence raced two misses).
    total_bytes_ -= entry_bytes(*it->second);
    it->second->tags = std::move(tags);
    it->second->fingerprint = fingerprint;
    total_bytes_ += entry_bytes(*it->second);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    refresh_gauges();
    return;
  }
  shard.lru.push_front(Entry{key, std::move(tags), fingerprint});
  shard.index.emplace(key, shard.lru.begin());
  total_entries_ += 1;
  total_bytes_ += entry_bytes(shard.lru.front());
  while (shard.lru.size() > per_shard_capacity_) evict_tail(shard);
  refresh_gauges();
}

void ShardedLruCache::evict_tail(Shard& shard) {
  const Entry& victim = shard.lru.back();
  total_bytes_ -= entry_bytes(victim);
  total_entries_ -= 1;
  evictions_.inc();
  shard.index.erase(victim.key);
  shard.lru.pop_back();
}

std::size_t ShardedLruCache::invalidate_fingerprint(std::uint64_t fingerprint) {
  std::size_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->fingerprint == fingerprint) {
        total_bytes_ -= entry_bytes(*it);
        total_entries_ -= 1;
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidated_.inc(dropped);
  refresh_gauges();
  return dropped;
}

void ShardedLruCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const Entry& entry : shard->lru) {
      total_bytes_ -= entry_bytes(entry);
      total_entries_ -= 1;
    }
    shard->index.clear();
    shard->lru.clear();
  }
  refresh_gauges();
}

std::size_t ShardedLruCache::size() const {
  return total_entries_.load(std::memory_order_relaxed);
}

std::size_t ShardedLruCache::bytes() const {
  return total_bytes_.load(std::memory_order_relaxed);
}

void ShardedLruCache::refresh_gauges() {
  bytes_gauge_.set(static_cast<double>(bytes()));
  entries_gauge_.set(static_cast<double>(size()));
}

}  // namespace graphner::router
