// ReplicaHandle: one health-checked serving replica behind the router.
//
// The abstraction is what the router programs against — submit, health,
// kill/revive, atomic model hot-swap, metrics — so an in-process worker
// pool (InProcessReplica, below) and a future forked-process replica are
// interchangeable behind it.
//
// InProcessReplica wraps one TaggingService over a shared_ptr'd const
// model. Lifecycle transitions (kill, revive, swap_model) replace the
// service atomically under a mutex; the outgoing service is stopped
// *outside* the lock (stop() drains every queued request, so no future is
// ever abandoned) and its terminal counters are folded into a retained
// accumulator — per-replica metrics survive any number of kill/revive
// cycles, which is what lets CI assert exact conservation after a chaos
// run. Models are shared_ptr so N replicas can point at one mmap-loaded
// instance (one page-cache copy of the weights) and a swap frees the old
// model only when its last replica lets go.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/graphner/pipeline.hpp"
#include "src/obs/registry.hpp"
#include "src/serve/service.hpp"
#include "src/serve/types.hpp"
#include "src/text/sentence.hpp"

namespace graphner::router {

/// The outcome of handing a request to a replica. When `accepted` is
/// false the replica took nothing (down or mid-swap) and the caller
/// should try a sibling; otherwise `future` resolves like any service
/// submit and `fingerprint` identifies the model generation that will
/// answer it (the cache-key component).
struct ReplicaSubmission {
  std::future<serve::TagResponse> future;
  std::uint64_t fingerprint = 0;
  bool accepted = false;
};

class ReplicaHandle {
 public:
  virtual ~ReplicaHandle() = default;

  /// `options.model` is already resolved by the router's registry — a
  /// replica serves exactly one model — and `options.key` carries the
  /// ingestion-time sentence key, so failover resubmits never re-derive
  /// it.
  [[nodiscard]] virtual ReplicaSubmission submit(
      text::Sentence sentence, serve::SubmitOptions options) = 0;

  [[nodiscard]] virtual bool healthy() const = 0;
  /// Current model generation (stable while no swap is in flight).
  [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;
  /// The serving model's label inventory, for responses the router
  /// fabricates itself (cache hits never touch a service worker).
  [[nodiscard]] virtual std::shared_ptr<const text::LabelSet> labels()
      const = 0;

  /// Stop serving: drain what is queued, then reject everything until
  /// revive(). Safe to call concurrently with submits.
  virtual void kill() = 0;
  /// Fresh worker pool over the current model.
  virtual void revive() = 0;
  /// Atomic hot-swap to `model`: new requests decode under it as soon as
  /// the swap completes; queued requests finish under the old model.
  virtual void swap_model(std::shared_ptr<const core::GraphNerModel> model) = 0;

  /// This replica's counters/histograms (bare names: "submitted", ...),
  /// including everything accumulated by services retired through
  /// kill/revive/swap — monotone across lifecycle transitions.
  [[nodiscard]] virtual obs::RegistrySnapshot metrics_snapshot() const = 0;

  /// Terminal stop (drain + join); the handle stays unhealthy forever.
  virtual void stop() = 0;
};

class InProcessReplica : public ReplicaHandle {
 public:
  InProcessReplica(std::shared_ptr<const core::GraphNerModel> model,
                   serve::ServiceConfig config);
  ~InProcessReplica() override;

  [[nodiscard]] ReplicaSubmission submit(text::Sentence sentence,
                                         serve::SubmitOptions options) override;
  [[nodiscard]] bool healthy() const override;
  [[nodiscard]] std::uint64_t fingerprint() const override;
  [[nodiscard]] std::shared_ptr<const text::LabelSet> labels() const override;
  void kill() override;
  void revive() override;
  void swap_model(std::shared_ptr<const core::GraphNerModel> model) override;
  [[nodiscard]] obs::RegistrySnapshot metrics_snapshot() const override;
  void stop() override;

 private:
  /// Detach the live service (marking the replica unhealthy), stop it
  /// outside the lock, and fold its counters into retired_.
  void retire_service();

  serve::ServiceConfig config_;
  mutable std::mutex mutex_;
  std::shared_ptr<const core::GraphNerModel> model_;
  /// shared_ptr, not unique: a concurrent submit may still hold the
  /// service while a swap retires it; the drain in stop() resolves every
  /// future before the last reference drops.
  std::shared_ptr<serve::TaggingService> service_;
  /// Lazily materialized copy of the model's label inventory, shared by
  /// every cache-hit response; invalidated on swap_model.
  mutable std::shared_ptr<const text::LabelSet> labels_;
  bool healthy_ = false;
  bool stopped_ = false;
  /// Counters of every retired service, merged by name.
  obs::RegistrySnapshot retired_;
};

/// Merge `from` into `into`: counters add by (name, labels), gauges take
/// the newer value, histograms merge bucket-wise. The fold that keeps
/// replica metrics monotone across service retirements.
void merge_snapshot(obs::RegistrySnapshot& into,
                    const obs::RegistrySnapshot& from);

}  // namespace graphner::router
