#include "src/router/hash_ring.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "src/graphner/model_format.hpp"

namespace graphner::router {
namespace {

[[nodiscard]] std::uint64_t hash_key(std::string_view key) {
  return core::model_format::fnv1a(key.data(), key.size());
}

}  // namespace

HashRing::HashRing(std::size_t replicas, std::size_t vnodes)
    : replicas_(replicas == 0 ? 1 : replicas) {
  points_.reserve(replicas_ * vnodes);
  for (std::size_t r = 0; r < replicas_; ++r) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      const std::string label =
          "replica:" + std::to_string(r) + ":" + std::to_string(v);
      points_.emplace_back(hash_key(label), r);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<std::size_t> HashRing::order(std::string_view key) const {
  std::vector<std::size_t> out;
  out.reserve(replicas_);
  std::vector<bool> seen(replicas_, false);
  const std::uint64_t h = hash_key(key);
  const auto start = std::upper_bound(
      points_.begin(), points_.end(),
      std::make_pair(h, std::numeric_limits<std::size_t>::max()));
  // Walk the ring once (wrapping); every replica appears because every
  // replica owns at least one point.
  const std::size_t n = points_.size();
  const std::size_t first = static_cast<std::size_t>(start - points_.begin());
  for (std::size_t step = 0; step < n && out.size() < replicas_; ++step) {
    const std::size_t replica = points_[(first + step) % n].second;
    if (!seen[replica]) {
      seen[replica] = true;
      out.push_back(replica);
    }
  }
  return out;
}

std::size_t HashRing::owner(std::string_view key) const {
  return order(key).front();
}

}  // namespace graphner::router
