#include "src/router/router.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>

#include "src/obs/export.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/logging.hpp"

namespace graphner::router {
namespace {

[[nodiscard]] std::future<serve::TagResponse> ready_response(
    serve::TagResponse response) {
  std::promise<serve::TagResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[19];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

/// The full cache identity: base (sentence key + options) + generation.
[[nodiscard]] std::string cache_key(const std::string& base_key,
                                    std::uint64_t fingerprint) {
  return base_key + '\x1e' + fingerprint_hex(fingerprint);
}

}  // namespace

Router::Router(std::shared_ptr<const core::GraphNerModel> model,
               RouterConfig config)
    : config_(config),
      models_(registry_),
      cache_(config.cache, registry_),
      ring_(std::max<std::size_t>(1, config.replicas), config.vnodes),
      requests_(registry_.counter("router.requests")),
      failovers_(registry_.counter("router.failovers")),
      unavailable_(registry_.counter("router.unavailable")),
      swaps_(registry_.counter("router.swaps")),
      cache_misses_(registry_.counter("cache.misses")),
      unknown_model_(registry_.counter("router.unknown_model")),
      quota_rejected_(registry_.counter("router.quota_rejected")),
      breakers_(std::max<std::size_t>(1, config.replicas)) {
  const std::size_t n = std::max<std::size_t>(1, config.replicas);
  std::shared_ptr<const core::GraphNerModel> serving = model;
  if (config.learn_enabled) {
    // Recover the durable learned state (snapshot + WAL replay) before
    // any replica starts: committed batches survive a crash, so the tier
    // resumes serving exactly the generation it last swapped.
    learn_log_ = std::make_unique<LearnLog>(
        LearnLogConfig{config.learn_wal_dir, config.learn_snapshot_every},
        model, config.learn, registry_);
    if (learn_log_->learner().vertex_count() > 0)
      serving = learn_log_->learner().snapshot_model();
    generations_.push_back({learn_log_->last_seq(), serving});
  }
  replicas_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    replicas_.push_back(
        std::make_unique<InProcessReplica>(serving, config.replica_service));
  if (config.health_probe_interval.count() > 0) {
    SupervisorConfig probe;
    probe.probe_interval = config.health_probe_interval;
    probe.probe_deadline = config.health_probe_deadline;
    probe.failure_threshold = config.health_failure_threshold;
    probe.revive_backoff = config.health_revive_backoff;
    supervisor_ = std::make_unique<HealthSupervisor>(probe, replicas_,
                                                     breakers_, registry_);
  }
  registry_.gauge("router.replicas").set(static_cast<double>(n));
  registry_.gauge("router.cache_enabled")
      .set(config.cache_enabled ? 1.0 : 0.0);
  util::log_info("router: ", n, " replica(s), cache ",
                 config.cache_enabled
                     ? "on (" + std::to_string(cache_.capacity()) + " entries)"
                     : "off",
                 ", model fingerprint ",
                 fingerprint_hex(serving->fingerprint()),
                 supervisor_ ? ", health supervisor on" : "");
}

Router::~Router() { stop(); }

std::future<serve::TagResponse> Router::submit(text::Sentence sentence,
                                               serve::SubmitOptions options) {
  // Admission control runs before the request ledger: an UNKNOWN_MODEL or
  // QUOTA_EXCEEDED rejection never touches router.requests or the cache
  // counters, so the conservation laws stay exact over admitted traffic.
  std::shared_ptr<Tenant> tenant = models_.resolve(options.model);
  if (!tenant) {
    unknown_model_.inc();
    serve::TagResponse response;
    response.status = serve::Status::kUnknownModel;
    response.error =
        "unknown model \"" + options.model + "\" (see #REPLICA model list)";
    return ready_response(std::move(response));
  }
  if (!tenant->quota.try_acquire()) {
    quota_rejected_.inc();
    tenant->metrics.quota_rejected.inc();
    serve::TagResponse response;
    response.status = serve::Status::kQuotaExceeded;
    response.error = "tenant \"" + tenant->name + "\" is over quota; back off";
    return ready_response(std::move(response));
  }

  requests_.inc();
  tenant->metrics.requests.inc();
  // The sentence key is computed once at protocol ingestion and threaded
  // through options.key; derive it only for direct API callers.
  if (options.key.empty())
    options.key = serve::sentence_key(sentence.tokens);
  auto& pool = pool_of(*tenant);
  std::vector<std::size_t> order = ring_of(*tenant).order(options.key);

  // The tenant name joins the cache identity so two tenants can never
  // observe each other's entries, even under fingerprint collision.
  std::string base_key = options.key;
  base_key += '\x1e';
  if (options.decode) base_key += options.decode->to_string();
  base_key += '\x1e';
  base_key += tenant->name;

  // Cache lookup under the generation the owner would decode with. Every
  // admitted request lands in exactly one of cache.{hits,misses} — that is
  // the conservation law CI checks — so the disabled/unroutable paths
  // count a miss explicitly instead of skipping the ledger.
  // Open circuit breakers route a replica out exactly like bad health —
  // unless every breaker is open (fail-static; see routable()).
  const bool ignore_breakers = all_breakers_open();

  bool counted = false;
  if (config_.cache_enabled) {
    for (const std::size_t idx : order) {
      if (!routable_in(*tenant, idx, ignore_breakers)) continue;
      counted = true;
      if (auto hit = cache_.get(cache_key(base_key, pool[idx]->fingerprint()))) {
        tenant->metrics.cache_hits.inc();
        serve::TagResponse response;
        response.tags = std::move(*hit);
        response.coalesced = true;  // served by a previous request's decode
        response.labels = pool[idx]->labels();
        return ready_response(std::move(response));
      }
      break;
    }
  }
  if (!counted) cache_misses_.inc();
  tenant->metrics.cache_misses.inc();

  // Submit to the owner (first routable on the ring) *now* — pipelining
  // depends on submit never blocking — and defer the wait/failover/cache
  // tail to the future's get().
  ReplicaSubmission primary;
  std::size_t used = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t idx = order[i];
    if (!routable_in(*tenant, idx, ignore_breakers)) continue;
    primary = pool[idx]->submit(sentence, options);
    if (primary.accepted) {
      used = idx;
      break;
    }
  }
  if (used == order.size()) {
    unavailable_.inc();
    serve::TagResponse response;
    response.status = serve::Status::kUnavailable;
    response.error = "no healthy replica";
    return ready_response(std::move(response));
  }

  return std::async(
      std::launch::deferred,
      [this, primary = std::move(primary), used, order = std::move(order),
       sentence = std::move(sentence), options = std::move(options),
       base_key = std::move(base_key), tenant = std::move(tenant)]() mutable {
        return resolve(std::move(primary), used, std::move(order),
                       std::move(sentence), std::move(options),
                       std::move(base_key), std::move(tenant));
      });
}

serve::TagResponse Router::resolve(ReplicaSubmission primary, std::size_t used,
                                   std::vector<std::size_t> order,
                                   text::Sentence sentence,
                                   serve::SubmitOptions options,
                                   std::string base_key,
                                   std::shared_ptr<Tenant> tenant) {
  auto& pool = pool_of(*tenant);
  serve::TagResponse response = primary.future.get();
  std::uint64_t fingerprint = primary.fingerprint;

  if (needs_failover(response.status)) {
    // The owner died under the request (kill mid-flood answers queued work
    // but rejects the rest with SHUTDOWN). Walk the ring-order siblings;
    // back off between rounds in case every sibling is mid-revive.
    util::Backoff retry(config_.failover_backoff);
    std::size_t last_failed = used;
    for (;;) {
      bool attempted = false;
      const bool ignore_breakers = all_breakers_open();
      for (const std::size_t idx : order) {
        if (idx == last_failed) continue;
        if (!routable_in(*tenant, idx, ignore_breakers)) continue;
        // The resubmit reuses options verbatim — including the
        // ingestion-time sentence key — so failover never re-normalizes.
        ReplicaSubmission retry_sub = pool[idx]->submit(sentence, options);
        if (!retry_sub.accepted) continue;
        failovers_.inc();
        attempted = true;
        response = retry_sub.future.get();
        fingerprint = retry_sub.fingerprint;
        last_failed = idx;
        break;
      }
      if (attempted && !needs_failover(response.status)) break;
      if (!retry.can_retry()) break;
      retry.sleep();
    }
    if (needs_failover(response.status)) {
      // Replica-local SHUTDOWN must not leak to the client as "server is
      // stopping" — the tier is alive, this request just lost the race.
      response.status = serve::Status::kUnavailable;
      response.tags.clear();
      response.error = "no replica could answer (down or draining); retry";
    }
  }

  if (response.status == serve::Status::kDeadlineExceeded)
    tenant->metrics.deadline_drops.inc();
  if (config_.cache_enabled && response.ok() && !response.degraded)
    cache_.put(cache_key(base_key, fingerprint), response.tags, fingerprint);
  return response;
}

obs::RegistrySnapshot Router::observability_snapshot() const {
  obs::RegistrySnapshot out;
  out.append(registry_.snapshot());  // router.* + cache.* + tenant.*
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    out.append(replicas_[i]->metrics_snapshot(),
               "replica." + std::to_string(i) + ".");
  for (const auto& tenant : models_.list()) {
    if (tenant->is_default) continue;  // its pool IS replica.<i> above
    for (std::size_t i = 0; i < tenant->replicas.size(); ++i)
      out.append(tenant->replicas[i]->metrics_snapshot(),
                 "tenant." + tenant->name + ".replica." + std::to_string(i) +
                     ".");
  }
  out.append(obs::Registry::global().snapshot());
  for (const auto& [name, stats] : util::FaultInjector::instance().all_stats()) {
    out.counters.push_back({"fault." + name + ".calls", {}, stats.calls});
    out.counters.push_back({"fault." + name + ".fires", {}, stats.fires});
  }
  return out;
}

std::string Router::metrics_json() const {
  return obs::export_json(observability_snapshot());
}

std::string Router::admin(const std::string& command) {
  std::istringstream in(command);
  std::string verb;
  in >> verb;

  if (verb == "status") {
    std::ostringstream out;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      const obs::RegistrySnapshot snapshot = replicas_[i]->metrics_snapshot();
      out << i << '\t' << (replicas_[i]->healthy() ? "healthy" : "down")
          << "\tfingerprint=" << fingerprint_hex(replicas_[i]->fingerprint())
          << "\tsubmitted=" << snapshot.counter_value("submitted")
          << "\tcompleted=" << snapshot.counter_value("completed")
          << "\tbreaker=" << (breakers_.is_open(i) ? "open" : "closed")
          << '\n';
    }
    out << "cache\t" << (config_.cache_enabled ? "on" : "off") << "\tentries="
        << cache_.size() << "\tbytes=" << cache_.bytes() << '\n';
    return out.str();
  }

  std::size_t index = 0;
  if (verb == "kill" || verb == "revive" || verb == "swap") {
    if (!(in >> index) || index >= replicas_.size())
      return "ERROR #REPLICA " + verb + " needs a replica index in [0, " +
             std::to_string(replicas_.size()) + ")\n";
  }

  if (verb == "kill") {
    replicas_[index]->kill();
    return "OK killed replica " + std::to_string(index) + "\n";
  }
  if (verb == "revive") {
    replicas_[index]->revive();
    return "OK revived replica " + std::to_string(index) + "\n";
  }
  if (verb == "swap") {
    std::string path;
    if (!(in >> path)) return "ERROR #REPLICA swap needs a model path\n";
    std::shared_ptr<const core::GraphNerModel> model;
    try {
      model = std::make_shared<core::GraphNerModel>(
          core::GraphNerModel::load_auto_file(path));
    } catch (const std::exception& e) {
      return "ERROR swap failed: " + std::string(e.what()) + "\n";
    }
    // Same mutex as the learn path: a concurrent swap-all must not observe
    // (or be observed by) a half-applied single-replica swap.
    std::lock_guard<std::mutex> lock(swap_mutex_);
    const std::uint64_t old_fingerprint = replicas_[index]->fingerprint();
    replicas_[index]->swap_model(model);
    swaps_.inc();
    // A cache generation nobody serves anymore can only produce stale
    // tags on a fingerprint collision after a swap-back; drop it. A
    // generation some *other* replica still runs stays valid.
    bool generation_live = false;
    for (const auto& replica : replicas_)
      if (replica->healthy() && replica->fingerprint() == old_fingerprint)
        generation_live = true;
    std::size_t invalidated = 0;
    if (!generation_live && old_fingerprint != model->fingerprint())
      invalidated = cache_.invalidate_fingerprint(old_fingerprint);
    return "OK swapped replica " + std::to_string(index) + " to " + path +
           " (fingerprint " + fingerprint_hex(model->fingerprint()) +
           ", invalidated " + std::to_string(invalidated) +
           " cache entries)\n";
  }

  if (verb == "model") return admin_model(in);
  if (verb == "quota") return admin_quota(in);
  if (verb == "learn") return admin_learn(in);

  return "ERROR unknown #REPLICA command \"" + verb +
         "\" (expected kill, revive, swap, status, model, quota or learn)\n";
}

std::string Router::admin_model(std::istringstream& in) {
  std::string sub;
  in >> sub;

  if (sub == "list") {
    std::ostringstream out;
    for (const auto& tenant : models_.list()) {
      auto& pool = pool_of(*tenant);
      std::size_t healthy = 0;
      for (const auto& replica : pool)
        if (replica->healthy()) ++healthy;
      const std::uint64_t fp = pool.empty() ? 0 : pool[0]->fingerprint();
      out << tenant->name << '\t'
          << (tenant->is_default ? "default" : "added")
          << "\treplicas=" << healthy << '/' << pool.size()
          << "\tfingerprint=" << fingerprint_hex(fp) << "\tquota=";
      if (tenant->quota.limited()) {
        const auto [rate, burst] = tenant->quota.shape();
        out << rate << '/' << burst;
      } else {
        out << "off";
      }
      out << "\trequests=" << tenant->metrics.requests.value() << '\n';
    }
    return out.str();
  }

  if (sub == "add" || sub == "swap") {
    std::string name, path;
    if (!(in >> name >> path))
      return "ERROR #REPLICA model " + sub + " needs <name> <model-path>\n";
    std::shared_ptr<const core::GraphNerModel> model;
    try {
      model = std::make_shared<core::GraphNerModel>(
          core::GraphNerModel::load_auto_file(path));
    } catch (const std::exception& e) {
      return "ERROR model " + sub + " failed: " + std::string(e.what()) + "\n";
    }

    if (sub == "add") {
      try {
        models_.add(name, model, config_.tenant_replicas,
                    config_.replica_service, config_.vnodes);
      } catch (const std::exception& e) {
        return "ERROR model add failed: " + std::string(e.what()) + "\n";
      }
      return "OK model " + name + " resident (fingerprint " +
             fingerprint_hex(model->fingerprint()) + ", " +
             std::to_string(std::max<std::size_t>(1, config_.tenant_replicas)) +
             " replica(s))\n";
    }

    std::shared_ptr<Tenant> tenant = models_.resolve(name);
    if (!tenant)
      return "ERROR model \"" + name +
             "\" is not resident (use model add first)\n";
    std::lock_guard<std::mutex> lock(swap_mutex_);
    const std::size_t invalidated = swap_pool(pool_of(*tenant), model);
    if (!tenant->is_default) tenant->model = model;
    return "OK swapped model " + tenant->name + " to " + path +
           " (fingerprint " + fingerprint_hex(model->fingerprint()) +
           ", invalidated " + std::to_string(invalidated) +
           " cache entries)\n";
  }

  if (sub == "drop") {
    std::string name;
    if (!(in >> name)) return "ERROR #REPLICA model drop needs <name>\n";
    std::shared_ptr<Tenant> tenant = models_.remove(name);
    if (!tenant)
      return "ERROR model \"" + name +
             "\" is not droppable (not resident, or the default model)\n";
    // New requests can no longer resolve the name; drain the pool so every
    // in-flight future settles, then drop the dead generation's cache
    // entries (tenant-scoped keys — no other tenant is touched).
    std::lock_guard<std::mutex> lock(swap_mutex_);
    std::size_t invalidated = 0;
    for (auto& replica : tenant->replicas) {
      const std::uint64_t fp = replica->fingerprint();
      replica->stop();
      invalidated += cache_.invalidate_fingerprint(fp);
    }
    return "OK dropped model " + name + " (invalidated " +
           std::to_string(invalidated) + " cache entries)\n";
  }

  return "ERROR unknown #REPLICA model command \"" + sub +
         "\" (expected add, swap, drop or list)\n";
}

std::string Router::admin_quota(std::istringstream& in) {
  std::string name;
  if (!(in >> name))
    return "ERROR #REPLICA quota needs <model> <rate> <burst> | <model> off\n";
  std::shared_ptr<Tenant> tenant = models_.resolve(name);
  if (!tenant) return "ERROR model \"" + name + "\" is not resident\n";

  std::string rate_word;
  if (!(in >> rate_word))
    return "ERROR #REPLICA quota needs <rate> <burst> (tokens/s, tokens) or "
           "off\n";
  if (rate_word == "off") {
    tenant->quota.remove();
    return "OK quota off for " + tenant->name + "\n";
  }
  double rate = 0.0;
  double burst = 0.0;
  std::istringstream rate_in(rate_word);
  if (!(rate_in >> rate) || !(in >> burst) || rate < 0.0 || burst < 0.0)
    return "ERROR #REPLICA quota: rate and burst must be non-negative "
           "numbers\n";
  tenant->quota.configure(rate, burst);
  return "OK quota for " + tenant->name + ": rate " + rate_word + "/s, burst " +
         std::to_string(static_cast<std::uint64_t>(burst)) + "\n";
}

void Router::add_model(const std::string& name,
                       std::shared_ptr<const core::GraphNerModel> model) {
  models_.add(name, std::move(model), config_.tenant_replicas,
              config_.replica_service, config_.vnodes);
}

std::string Router::admin_learn(std::istringstream& in) {
  if (!learn_log_)
    return "ERROR learning disabled (start the router with --learn)\n";
  std::string mode;
  in >> mode;

  if (mode == "status") {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    const core::OnlineLearner& learner = learn_log_->learner();
    std::ostringstream out;
    out << "learn\tvertices=" << learner.vertex_count()
        << "\tedges=" << learner.edge_count() << "\tbase_fingerprint="
        << fingerprint_hex(learner.base().fingerprint()) << '\n';
    out << "wal\t" << (learn_log_->durable() ? "on" : "off")
        << "\tseq=" << learn_log_->last_seq()
        << "\tbytes=" << learn_log_->wal_bytes()
        << "\trecords=" << learn_log_->wal_records()
        << "\tsnapshot_seq=" << learn_log_->snapshot_seq()
        << "\tsnapshot_fingerprint="
        << fingerprint_hex(learn_log_->snapshot_fingerprint())
        << "\tquarantined=" << learn_log_->quarantined_total() << '\n';
    out << "generation\tcurrent=" << generations_.back().seq << ':'
        << fingerprint_hex(generations_.back().model->fingerprint());
    if (generations_.size() >= 2) {
      const Generation& previous = generations_[generations_.size() - 2];
      out << "\tprevious=" << previous.seq << ':'
          << fingerprint_hex(previous.model->fingerprint());
    } else {
      out << "\tprevious=none";
    }
    out << "\tretained=" << generations_.size() << '\n';
    return out.str();
  }

  if (mode == "rollback") {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    if (generations_.size() < 2)
      return "ERROR rollback: no previous generation retained\n";
    const Generation bad = generations_.back();
    if (learn_log_->snapshot_seq() >= bad.seq)
      return "ERROR rollback: generation " + std::to_string(bad.seq) +
             " is already folded into the snapshot and cannot be rolled "
             "back\n";
    // Rollback = retroactive quarantine of the newest committed sequence:
    // journal it first (so a restart replays to the rolled-back state),
    // rebuild the learner without it, then swap the previous generation
    // back tier-wide through the usual cache-invalidation sweep.
    try {
      learn_log_->quarantine(bad.seq, "rollback");
    } catch (const std::exception& e) {
      return "ERROR rollback: could not journal the quarantine (" +
             std::string(e.what()) + "); nothing rolled back\n";
    }
    learn_log_->rebuild();
    generations_.pop_back();
    const Generation& restored = generations_.back();
    const std::size_t invalidated = swap_all_replicas(restored.model);
    return "OK rolled back: quarantined seq " + std::to_string(bad.seq) +
           ", restored generation " + std::to_string(restored.seq) +
           " (fingerprint " + fingerprint_hex(restored.model->fingerprint()) +
           ", invalidated " + std::to_string(invalidated) +
           " cache entries)\n";
  }

  std::vector<text::Sentence> batch;
  if (mode == "text") {
    text::Sentence sentence;
    std::string token;
    while (in >> token) sentence.tokens.push_back(std::move(token));
    if (sentence.size() == 0) return "ERROR learn text needs tokens\n";
    batch.push_back(std::move(sentence));
  } else if (mode == "file") {
    std::string path;
    if (!(in >> path)) return "ERROR learn file needs a path\n";
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file) return "ERROR learn file: cannot open " + path + "\n";
    const auto size = static_cast<std::uint64_t>(file.tellg());
    if (size > config_.learn_max_file_bytes)
      return "ERROR learn file: " + path + " is " + std::to_string(size) +
             " bytes, over the " +
             std::to_string(config_.learn_max_file_bytes) +
             "-byte ingestion cap\n";
    file.seekg(0);
    std::string line;
    while (std::getline(file, line)) {
      text::Sentence sentence;
      std::istringstream tokens(line);
      std::string token;
      while (tokens >> token) sentence.tokens.push_back(std::move(token));
      if (sentence.size() > 0) batch.push_back(std::move(sentence));
    }
    if (batch.empty()) return "ERROR learn file: no sentences in " + path + "\n";
  } else {
    return "ERROR unknown learn mode \"" + mode +
           "\" (expected text, file, status or rollback)\n";
  }

  // Learn, gate, journal, then hot-swap the fork into the whole tier —
  // atomically with respect to other learns (submits keep flowing — each
  // replica swap is itself atomic and the cache is generation-keyed).
  // Order matters: the batch is only *committed* (WAL record appended)
  // after the canary gate passed, so a crash anywhere before the append
  // leaves no trace of the batch, and a crash after it replays the batch.
  std::lock_guard<std::mutex> lock(swap_mutex_);
  core::LearnStats stats;
  std::shared_ptr<const core::GraphNerModel> fork;
  try {
    stats = learn_log_->learner().learn(batch);
    fork = learn_log_->learner().snapshot_model();
  } catch (const std::exception& e) {
    learn_log_->rebuild();  // the learner may be half-mutated
    return "ERROR learn failed: " + std::string(e.what()) + "\n";
  }

  if (!config_.canary.empty()) {
    const double disagreement =
        canary_disagreement(*generations_.back().model, *fork);
    registry_.counter("learn.canary.checks").inc();
    registry_.gauge("learn.canary.disagreement").set(disagreement);
    if (disagreement > config_.canary_max_disagreement) {
      registry_.counter("learn.canary.quarantined").inc();
      const std::uint64_t seq = learn_log_->last_seq() + 1;
      std::string note;
      try {
        learn_log_->quarantine(seq, "canary disagreement " +
                                        std::to_string(disagreement));
      } catch (const std::exception& e) {
        // The batch was never committed, so replay is correct either way;
        // only the quarantine bookkeeping is lost.
        note = " (quarantine not journaled: " + std::string(e.what()) + ")";
      }
      learn_log_->rebuild();
      std::ostringstream out;
      out << "ERROR learn rejected by canary gate: disagreement "
          << disagreement << " > " << config_.canary_max_disagreement
          << "; batch quarantined as seq " << seq << note
          << ", no replica swapped\n";
      return out.str();
    }
  }

  std::uint64_t seq = 0;
  try {
    seq = learn_log_->commit(batch);
  } catch (const std::exception& e) {
    // The record is not durable — the learner must not keep state a
    // restart would lose. Rebuild back to the journaled prefix; nothing
    // swaps.
    learn_log_->rebuild();
    return "ERROR learn commit failed (" + std::string(e.what()) +
           "); learned state rolled back, no replica swapped\n";
  }

  const std::size_t invalidated = swap_all_replicas(fork);
  generations_.push_back({seq, fork});
  const std::size_t keep = std::max<std::size_t>(2, config_.learn_generations);
  while (generations_.size() > keep) generations_.pop_front();

  std::ostringstream out;
  out << "OK learned " << batch.size() << " sentence(s): +"
      << stats.appended_vertices << " vertices ("
      << learn_log_->learner().vertex_count() << " total), "
      << stats.patched_vertices << " patched, " << stats.perturbed_vertices
      << " perturbed, " << stats.relaxations << " relaxations, residual "
      << stats.final_residual << (stats.converged ? "" : " (not converged)")
      << ", seq " << seq << ", fingerprint "
      << fingerprint_hex(fork->fingerprint()) << ", invalidated "
      << invalidated << " cache entries\n";
  return out.str();
}

double Router::canary_disagreement(const core::GraphNerModel& current,
                                   const core::GraphNerModel& fork) {
  crf::LinearChainCrf::Scratch scratch;
  features::EncodeScratch encode;
  std::size_t differing = 0;
  for (const text::Sentence& sentence : config_.canary) {
    // The blended decode is the tier the learned table feeds (plain
    // Viterbi never consults it), so it is the decode the gate must watch.
    const std::vector<text::Tag> before =
        current.decode_one_blended(sentence, scratch, encode);
    const std::vector<text::Tag> after =
        fork.decode_one_blended(sentence, scratch, encode);
    if (before != after) ++differing;
  }
  return static_cast<double>(differing) /
         static_cast<double>(config_.canary.size());
}

std::size_t Router::swap_pool(
    std::vector<std::unique_ptr<ReplicaHandle>>& pool,
    const std::shared_ptr<const core::GraphNerModel>& model) {
  std::vector<std::uint64_t> old_fingerprints;
  old_fingerprints.reserve(pool.size());
  for (const auto& replica : pool)
    old_fingerprints.push_back(replica->fingerprint());
  for (auto& replica : pool) {
    replica->swap_model(model);
    swaps_.inc();
  }
  // Every generation that was serving before the sweep and is not the new
  // one is now orphaned (same rule as single-replica swap, applied after
  // all replicas moved).
  std::sort(old_fingerprints.begin(), old_fingerprints.end());
  old_fingerprints.erase(
      std::unique(old_fingerprints.begin(), old_fingerprints.end()),
      old_fingerprints.end());
  std::size_t invalidated = 0;
  for (const std::uint64_t old : old_fingerprints)
    if (old != model->fingerprint())
      invalidated += cache_.invalidate_fingerprint(old);
  return invalidated;
}

std::size_t Router::swap_all_replicas(
    const std::shared_ptr<const core::GraphNerModel>& model) {
  return swap_pool(replicas_, model);
}

void Router::stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  // The supervisor probes replicas; it must be gone before they drain.
  if (supervisor_) supervisor_->stop();
  for (auto& replica : replicas_) replica->stop();
  for (const auto& tenant : models_.list())
    for (auto& replica : tenant->replicas) replica->stop();
}

}  // namespace graphner::router
