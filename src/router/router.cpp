#include "src/router/router.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>

#include "src/obs/export.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/logging.hpp"

namespace graphner::router {
namespace {

[[nodiscard]] std::future<serve::TagResponse> ready_response(
    serve::TagResponse response) {
  std::promise<serve::TagResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[19];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

/// The full cache identity: base (sentence key + options) + generation.
[[nodiscard]] std::string cache_key(const std::string& base_key,
                                    std::uint64_t fingerprint) {
  return base_key + '\x1e' + fingerprint_hex(fingerprint);
}

}  // namespace

Router::Router(std::shared_ptr<const core::GraphNerModel> model,
               RouterConfig config)
    : config_(config),
      cache_(config.cache, registry_),
      ring_(std::max<std::size_t>(1, config.replicas), config.vnodes),
      requests_(registry_.counter("router.requests")),
      failovers_(registry_.counter("router.failovers")),
      unavailable_(registry_.counter("router.unavailable")),
      swaps_(registry_.counter("router.swaps")),
      cache_misses_(registry_.counter("cache.misses")) {
  const std::size_t n = std::max<std::size_t>(1, config.replicas);
  replicas_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    replicas_.push_back(
        std::make_unique<InProcessReplica>(model, config.replica_service));
  if (config.learn_enabled)
    learner_ = std::make_unique<core::OnlineLearner>(model, config.learn);
  registry_.gauge("router.replicas").set(static_cast<double>(n));
  registry_.gauge("router.cache_enabled")
      .set(config.cache_enabled ? 1.0 : 0.0);
  util::log_info("router: ", n, " replica(s), cache ",
                 config.cache_enabled
                     ? "on (" + std::to_string(cache_.capacity()) + " entries)"
                     : "off",
                 ", model fingerprint ", fingerprint_hex(model->fingerprint()));
}

Router::~Router() { stop(); }

std::future<serve::TagResponse> Router::submit(
    text::Sentence sentence, std::chrono::milliseconds deadline,
    std::optional<crf::DecodeOptions> decode) {
  requests_.inc();
  const std::string skey = serve::sentence_key(sentence.tokens);
  std::vector<std::size_t> order = ring_.order(skey);

  std::string base_key = skey;
  base_key += '\x1e';
  if (decode) base_key += decode->to_string();

  // Cache lookup under the generation the owner would decode with. Every
  // request lands in exactly one of cache.{hits,misses} — that is the
  // conservation law CI checks — so the disabled/unroutable paths count a
  // miss explicitly instead of skipping the ledger.
  bool counted = false;
  if (config_.cache_enabled) {
    for (const std::size_t idx : order) {
      if (!replicas_[idx]->healthy()) continue;
      counted = true;
      if (auto hit = cache_.get(cache_key(base_key, replicas_[idx]->fingerprint()))) {
        serve::TagResponse response;
        response.tags = std::move(*hit);
        response.coalesced = true;  // served by a previous request's decode
        return ready_response(std::move(response));
      }
      break;
    }
  }
  if (!counted) cache_misses_.inc();

  // Submit to the owner (first healthy on the ring) *now* — pipelining
  // depends on submit never blocking — and defer the wait/failover/cache
  // tail to the future's get().
  ReplicaSubmission primary;
  std::size_t used = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t idx = order[i];
    if (!replicas_[idx]->healthy()) continue;
    primary = replicas_[idx]->submit(sentence, deadline, decode);
    if (primary.accepted) {
      used = idx;
      break;
    }
  }
  if (used == order.size()) {
    unavailable_.inc();
    serve::TagResponse response;
    response.status = serve::Status::kUnavailable;
    response.error = "no healthy replica";
    return ready_response(std::move(response));
  }

  return std::async(
      std::launch::deferred,
      [this, primary = std::move(primary), used, order = std::move(order),
       sentence = std::move(sentence), deadline, decode = std::move(decode),
       base_key = std::move(base_key)]() mutable {
        return resolve(std::move(primary), used, std::move(order),
                       std::move(sentence), deadline, std::move(decode),
                       std::move(base_key));
      });
}

serve::TagResponse Router::resolve(ReplicaSubmission primary, std::size_t used,
                                   std::vector<std::size_t> order,
                                   text::Sentence sentence,
                                   std::chrono::milliseconds deadline,
                                   std::optional<crf::DecodeOptions> decode,
                                   std::string base_key) {
  serve::TagResponse response = primary.future.get();
  std::uint64_t fingerprint = primary.fingerprint;

  if (needs_failover(response.status)) {
    // The owner died under the request (kill mid-flood answers queued work
    // but rejects the rest with SHUTDOWN). Walk the ring-order siblings;
    // back off between rounds in case every sibling is mid-revive.
    util::Backoff retry(config_.failover_backoff);
    std::size_t last_failed = used;
    for (;;) {
      bool attempted = false;
      for (const std::size_t idx : order) {
        if (idx == last_failed) continue;
        if (!replicas_[idx]->healthy()) continue;
        ReplicaSubmission retry_sub =
            replicas_[idx]->submit(sentence, deadline, decode);
        if (!retry_sub.accepted) continue;
        failovers_.inc();
        attempted = true;
        response = retry_sub.future.get();
        fingerprint = retry_sub.fingerprint;
        last_failed = idx;
        break;
      }
      if (attempted && !needs_failover(response.status)) break;
      if (!retry.can_retry()) break;
      retry.sleep();
    }
    if (needs_failover(response.status)) {
      // Replica-local SHUTDOWN must not leak to the client as "server is
      // stopping" — the tier is alive, this request just lost the race.
      response.status = serve::Status::kUnavailable;
      response.tags.clear();
      response.error = "no replica could answer (down or draining); retry";
    }
  }

  if (config_.cache_enabled && response.ok() && !response.degraded)
    cache_.put(cache_key(base_key, fingerprint), response.tags, fingerprint);
  return response;
}

obs::RegistrySnapshot Router::observability_snapshot() const {
  obs::RegistrySnapshot out;
  out.append(registry_.snapshot());  // router.* + cache.*
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    out.append(replicas_[i]->metrics_snapshot(),
               "replica." + std::to_string(i) + ".");
  out.append(obs::Registry::global().snapshot());
  for (const auto& [name, stats] : util::FaultInjector::instance().all_stats()) {
    out.counters.push_back({"fault." + name + ".calls", {}, stats.calls});
    out.counters.push_back({"fault." + name + ".fires", {}, stats.fires});
  }
  return out;
}

std::string Router::metrics_json() const {
  return obs::export_json(observability_snapshot());
}

std::string Router::admin(const std::string& command) {
  std::istringstream in(command);
  std::string verb;
  in >> verb;

  if (verb == "status") {
    std::ostringstream out;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      const obs::RegistrySnapshot snapshot = replicas_[i]->metrics_snapshot();
      out << i << '\t' << (replicas_[i]->healthy() ? "healthy" : "down")
          << "\tfingerprint=" << fingerprint_hex(replicas_[i]->fingerprint())
          << "\tsubmitted=" << snapshot.counter_value("submitted")
          << "\tcompleted=" << snapshot.counter_value("completed") << '\n';
    }
    out << "cache\t" << (config_.cache_enabled ? "on" : "off") << "\tentries="
        << cache_.size() << "\tbytes=" << cache_.bytes() << '\n';
    return out.str();
  }

  std::size_t index = 0;
  if (verb == "kill" || verb == "revive" || verb == "swap") {
    if (!(in >> index) || index >= replicas_.size())
      return "ERROR #REPLICA " + verb + " needs a replica index in [0, " +
             std::to_string(replicas_.size()) + ")\n";
  }

  if (verb == "kill") {
    replicas_[index]->kill();
    return "OK killed replica " + std::to_string(index) + "\n";
  }
  if (verb == "revive") {
    replicas_[index]->revive();
    return "OK revived replica " + std::to_string(index) + "\n";
  }
  if (verb == "swap") {
    std::string path;
    if (!(in >> path)) return "ERROR #REPLICA swap needs a model path\n";
    std::shared_ptr<const core::GraphNerModel> model;
    try {
      model = std::make_shared<core::GraphNerModel>(
          core::GraphNerModel::load_auto_file(path));
    } catch (const std::exception& e) {
      return "ERROR swap failed: " + std::string(e.what()) + "\n";
    }
    // Same mutex as the learn path: a concurrent swap-all must not observe
    // (or be observed by) a half-applied single-replica swap.
    std::lock_guard<std::mutex> lock(swap_mutex_);
    const std::uint64_t old_fingerprint = replicas_[index]->fingerprint();
    replicas_[index]->swap_model(model);
    swaps_.inc();
    // A cache generation nobody serves anymore can only produce stale
    // tags on a fingerprint collision after a swap-back; drop it. A
    // generation some *other* replica still runs stays valid.
    bool generation_live = false;
    for (const auto& replica : replicas_)
      if (replica->healthy() && replica->fingerprint() == old_fingerprint)
        generation_live = true;
    std::size_t invalidated = 0;
    if (!generation_live && old_fingerprint != model->fingerprint())
      invalidated = cache_.invalidate_fingerprint(old_fingerprint);
    return "OK swapped replica " + std::to_string(index) + " to " + path +
           " (fingerprint " + fingerprint_hex(model->fingerprint()) +
           ", invalidated " + std::to_string(invalidated) +
           " cache entries)\n";
  }

  if (verb == "learn") {
    if (!learner_)
      return "ERROR learning disabled (start the router with --learn)\n";
    std::string mode;
    in >> mode;
    if (mode == "status") {
      std::lock_guard<std::mutex> lock(swap_mutex_);
      std::ostringstream out;
      out << "learn\tvertices=" << learner_->vertex_count()
          << "\tedges=" << learner_->edge_count() << "\tbase_fingerprint="
          << fingerprint_hex(learner_->base().fingerprint()) << '\n';
      return out.str();
    }
    std::vector<text::Sentence> batch;
    if (mode == "text") {
      text::Sentence sentence;
      std::string token;
      while (in >> token) sentence.tokens.push_back(std::move(token));
      if (sentence.size() == 0) return "ERROR learn text needs tokens\n";
      batch.push_back(std::move(sentence));
    } else if (mode == "file") {
      std::string path;
      if (!(in >> path)) return "ERROR learn file needs a path\n";
      std::ifstream file(path);
      if (!file) return "ERROR learn file: cannot open " + path + "\n";
      std::string line;
      while (std::getline(file, line)) {
        text::Sentence sentence;
        std::istringstream tokens(line);
        std::string token;
        while (tokens >> token) sentence.tokens.push_back(std::move(token));
        if (sentence.size() > 0) batch.push_back(std::move(sentence));
      }
      if (batch.empty()) return "ERROR learn file: no sentences in " + path + "\n";
    } else {
      return "ERROR unknown learn mode \"" + mode +
             "\" (expected text, file or status)\n";
    }

    // Learn, fork, and hot-swap the fork into the whole tier atomically
    // with respect to other learns (submits keep flowing — each replica
    // swap is itself atomic and the cache is generation-keyed).
    std::lock_guard<std::mutex> lock(swap_mutex_);
    core::LearnStats stats;
    std::shared_ptr<const core::GraphNerModel> fork;
    try {
      stats = learner_->learn(batch);
      fork = learner_->snapshot_model();
    } catch (const std::exception& e) {
      return "ERROR learn failed: " + std::string(e.what()) + "\n";
    }
    const std::size_t invalidated = swap_all_replicas(fork);
    std::ostringstream out;
    out << "OK learned " << batch.size() << " sentence(s): +"
        << stats.appended_vertices << " vertices ("
        << learner_->vertex_count() << " total), " << stats.patched_vertices
        << " patched, " << stats.perturbed_vertices << " perturbed, "
        << stats.relaxations << " relaxations, residual "
        << stats.final_residual << (stats.converged ? "" : " (not converged)")
        << ", fingerprint " << fingerprint_hex(fork->fingerprint())
        << ", invalidated " << invalidated << " cache entries\n";
    return out.str();
  }

  return "ERROR unknown #REPLICA command \"" + verb +
         "\" (expected kill, revive, swap, status or learn)\n";
}

std::size_t Router::swap_all_replicas(
    const std::shared_ptr<const core::GraphNerModel>& model) {
  std::vector<std::uint64_t> old_fingerprints;
  old_fingerprints.reserve(replicas_.size());
  for (const auto& replica : replicas_)
    old_fingerprints.push_back(replica->fingerprint());
  for (auto& replica : replicas_) {
    replica->swap_model(model);
    swaps_.inc();
  }
  // Every generation that was serving before the sweep and is not the new
  // one is now orphaned (same rule as single-replica swap, applied after
  // all replicas moved).
  std::sort(old_fingerprints.begin(), old_fingerprints.end());
  old_fingerprints.erase(
      std::unique(old_fingerprints.begin(), old_fingerprints.end()),
      old_fingerprints.end());
  std::size_t invalidated = 0;
  for (const std::uint64_t old : old_fingerprints)
    if (old != model->fingerprint())
      invalidated += cache_.invalidate_fingerprint(old);
  return invalidated;
}

void Router::stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  for (auto& replica : replicas_) replica->stop();
}

}  // namespace graphner::router
