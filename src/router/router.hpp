// Router: the sharded multi-replica serving tier (DESIGN.md §11).
//
// A Router is a TagService over N ReplicaHandles, so SocketServer fronts
// it exactly like a single TaggingService. Per request:
//
//   1. consistent-hash the normalized sentence key onto the replica ring
//      (repeats pin to a warm replica and its coalescing cache);
//   2. consult the cross-request decode cache (sentence key + decode
//      options + model fingerprint) — a hit answers in O(1) with no
//      replica touched;
//   3. on a miss, submit to the owner replica (skipping unhealthy ones)
//      and return a lazily-evaluated future that, when waited on,
//      fails over to ring-order siblings with util::Backoff if the
//      replica died mid-request, and inserts OK responses into the cache.
//
// Multi-tenancy (DESIGN.md §14): a ModelRegistry maps wire model names
// onto resident models. The default tenant aliases the router's own
// replica set — bare requests are byte-identical to the pre-tenancy tier —
// while "#REPLICA model add|swap|drop|list <name> [<path>]" manages
// additional resident models, each with its own replica pool and ring.
// The cache identity gains the tenant dimension (sentence key + decode
// options + model name + fingerprint), so tenants can never observe each
// other's entries even under fingerprint collision. Per-tenant
// token-bucket quotas ("#REPLICA quota <name> <rate> <burst>") bounce
// over-quota requests with the structured QUOTA_EXCEEDED status before
// they reach a replica; unknown selectors answer UNKNOWN_MODEL. Neither
// counts into router.requests — the conservation laws below are over
// admitted requests only.
//
// Administration rides the wire as "#REPLICA kill|revive|swap|status"
// (TagService::admin): kill/revive drive the chaos drill, swap hot-swaps
// one replica's model from a file (text or mmap format, auto-sniffed) and
// invalidates the cache generation no replica serves anymore. With
// learn_enabled, "#LEARN text|file|status|rollback" (wire sugar for
// "#REPLICA learn ...") drives the online-learning path: the batch is
// absorbed by an OnlineLearner (incremental k-NN append + localized
// re-propagation, DESIGN.md §12), gated by a canary decode, journaled to
// the learn WAL (LearnLog — crash replay reaches byte-identical learned
// state, DESIGN.md §13), and only then hot-swapped into every replica
// through the same fingerprint/cache-invalidation machinery. rollback
// retroactively quarantines the newest committed batch and restores the
// previous generation tier-wide.
//
// With health_probe_interval > 0 a HealthSupervisor probes every replica
// with sentinel decodes; consecutive failures open a per-replica circuit
// breaker that routes traffic around the replica until a half-open probe
// (backed off, auto-reviving dead replicas) closes it again.
//
// Metrics: router.* and cache.* from the router's own registry, each
// replica's counters under "replica.<i>." (monotone across kill/revive),
// plus the process-global registry and fault counters — one scrape shows
// the whole tier. Conservation laws CI asserts after a drain:
//
//   router.requests == cache.hits + cache.misses
//   sum_i replica.<i>.submitted + sum_n,i tenant.<n>.replica.<i>.submitted ==
//       cache.misses - router.unavailable + router.failovers
//   tenant.<n>.requests == tenant.<n>.cache_hits + tenant.<n>.cache_misses
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "src/graphner/learner.hpp"
#include "src/graphner/pipeline.hpp"
#include "src/obs/registry.hpp"
#include "src/router/hash_ring.hpp"
#include "src/router/learn_log.hpp"
#include "src/router/lru_cache.hpp"
#include "src/router/model_registry.hpp"
#include "src/router/replica.hpp"
#include "src/router/supervisor.hpp"
#include "src/serve/tag_service.hpp"
#include "src/util/fault.hpp"

namespace graphner::router {

struct RouterConfig {
  std::size_t replicas = 2;
  /// Worker pool / batching / deadline configuration of every replica.
  serve::ServiceConfig replica_service;
  bool cache_enabled = true;
  LruCacheConfig cache;
  /// Virtual nodes per replica on the consistent-hash ring.
  std::size_t vnodes = 64;
  /// Replicas per *added* tenant model ("#REPLICA model add"); the
  /// default model keeps `replicas`. Tenant replica pools share the
  /// replica_service configuration.
  std::size_t tenant_replicas = 1;
  /// Backoff between failover attempts once the whole ring has been
  /// walked without an answer (a replica may be mid-revive).
  util::BackoffPolicy failover_backoff{std::chrono::milliseconds(10),
                                       std::chrono::milliseconds(200),
                                       2.0,
                                       0.2,
                                       3};
  /// Enable the online "#LEARN" path: the router keeps an OnlineLearner
  /// over the initial model and hot-swaps learned forks into every
  /// replica after each absorbed batch.
  bool learn_enabled = false;
  core::OnlineLearnerConfig learn;
  /// Durable learning (DESIGN.md §13): directory for the learn WAL +
  /// snapshots. Empty = in-memory only (learned state dies with the
  /// process); set, committed batches are journaled before any swap and
  /// replayed on startup to byte-identical learned state.
  std::string learn_wal_dir;
  /// Committed batches between snapshot compactions of the learn WAL.
  std::size_t learn_snapshot_every = 32;
  /// Held-out canary sentences every learned fork must decode before it
  /// swaps in; empty disables the gate.
  std::vector<text::Sentence> canary;
  /// Max fraction of canary sentences whose blended tags may differ
  /// between the serving generation and the fork. A batch that drifts
  /// past this is quarantined (journaled, skipped on replay) and never
  /// reaches a replica. Negative = quarantine every gated batch
  /// (deterministic chaos drills).
  double canary_max_disagreement = 0.25;
  /// "#LEARN file" ingestion cap — larger files are rejected unread.
  std::uint64_t learn_max_file_bytes = 8ULL << 20;
  /// Learned generations retained for "#LEARN rollback" (min 2 once a
  /// batch commits: current + previous).
  std::size_t learn_generations = 4;
  /// Health supervisor probe interval; 0 (default) disables the
  /// supervisor entirely — replica health stays manual (#REPLICA
  /// kill/revive) exactly as before.
  std::chrono::milliseconds health_probe_interval{0};
  /// Deadline for each sentinel probe decode.
  std::chrono::milliseconds health_probe_deadline{250};
  /// Consecutive probe failures that open a replica's circuit breaker.
  std::size_t health_failure_threshold = 3;
  /// Half-open re-probe schedule for open breakers.
  util::BackoffPolicy health_revive_backoff{std::chrono::milliseconds(100),
                                            std::chrono::milliseconds(2000),
                                            2.0,
                                            0.2,
                                            1 << 30};
};

class Router : public serve::TagService {
 public:
  /// All replicas start on `model`. The model is shared, not copied —
  /// with an mmap-loaded model the replicas share one page-cache copy of
  /// the weights.
  Router(std::shared_ptr<const core::GraphNerModel> model, RouterConfig config);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] std::future<serve::TagResponse> submit(
      text::Sentence sentence, serve::SubmitOptions options) override;
  using serve::TagService::submit;  ///< positional (deadline, decode) sugar

  [[nodiscard]] obs::RegistrySnapshot observability_snapshot() const override;
  [[nodiscard]] std::string metrics_json() const override;

  /// The admin verb table documented in protocol.hpp: replica lifecycle
  /// (kill/revive/swap/status), tenant models (model add|swap|drop|list,
  /// quota), and the "#LEARN"-routed learn subtree when learn_enabled.
  [[nodiscard]] std::string admin(const std::string& command) override;

  /// In-process mirror of "#REPLICA model add": register an additional
  /// resident model under `name`. Throws std::invalid_argument on an
  /// invalid or already-resident name.
  void add_model(const std::string& name,
                 std::shared_ptr<const core::GraphNerModel> model);

  /// The tenant registry (default tenant + every added model).
  [[nodiscard]] const ModelRegistry& models() const noexcept { return models_; }

  /// The online learner, nullptr unless config.learn_enabled.
  [[nodiscard]] const core::OnlineLearner* learner() const noexcept {
    return learn_log_ ? &learn_log_->learner() : nullptr;
  }
  /// The durable learn journal, nullptr unless config.learn_enabled.
  [[nodiscard]] const LearnLog* learn_log() const noexcept {
    return learn_log_.get();
  }
  /// Per-replica circuit breakers (opened by the health supervisor;
  /// exposed so tests can drive breaker states deterministically).
  [[nodiscard]] BreakerBoard& breakers() noexcept { return breakers_; }
  /// The health supervisor, nullptr unless health_probe_interval > 0.
  [[nodiscard]] HealthSupervisor* supervisor() noexcept {
    return supervisor_.get();
  }

  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replicas_.size();
  }
  [[nodiscard]] ReplicaHandle& replica(std::size_t i) { return *replicas_[i]; }
  [[nodiscard]] ShardedLruCache& cache() noexcept { return cache_; }

  /// Drain and join every replica. Idempotent; also run by the destructor.
  void stop();

 private:
  /// The synchronous tail of a request: wait on the primary submission,
  /// fail over to siblings *within the tenant's pool* if the replica died,
  /// cache OK responses under the tenant-scoped base key.
  [[nodiscard]] serve::TagResponse resolve(ReplicaSubmission primary,
                                           std::size_t used,
                                           std::vector<std::size_t> order,
                                           text::Sentence sentence,
                                           serve::SubmitOptions options,
                                           std::string base_key,
                                           std::shared_ptr<Tenant> tenant);

  /// The replica pool a tenant routes over: the router's own replicas_
  /// for the default tenant (see ModelRegistry), the tenant's private
  /// pool otherwise.
  [[nodiscard]] std::vector<std::unique_ptr<ReplicaHandle>>& pool_of(
      Tenant& tenant) noexcept {
    return tenant.is_default ? replicas_ : tenant.replicas;
  }
  [[nodiscard]] HashRing& ring_of(Tenant& tenant) noexcept {
    return tenant.is_default ? ring_ : *tenant.ring;
  }

  [[nodiscard]] static bool needs_failover(serve::Status status) noexcept {
    // A killed/draining replica answers SHUTDOWN; UNAVAILABLE means a
    // mid-swap reject. Both are replica-local conditions a sibling can
    // absorb. OVERLOADED/DEADLINE_EXCEEDED are load signals that must
    // reach the client's own backoff instead of multiplying load here.
    return status == serve::Status::kShutdown ||
           status == serve::Status::kUnavailable;
  }

  RouterConfig config_;
  obs::Registry registry_;
  /// Tenant registry; declared after registry_ (its instruments live
  /// there) and before cache_/replicas_ so teardown order is safe.
  ModelRegistry models_;
  ShardedLruCache cache_;
  std::vector<std::unique_ptr<ReplicaHandle>> replicas_;
  HashRing ring_;
  obs::Counter& requests_;
  obs::Counter& failovers_;
  obs::Counter& unavailable_;
  obs::Counter& swaps_;
  obs::Counter& cache_misses_;  ///< same instrument the cache counts into
  obs::Counter& unknown_model_;  ///< UNKNOWN_MODEL rejections (pre-admission)
  obs::Counter& quota_rejected_;  ///< QUOTA_EXCEEDED rejections (pre-admission)
  /// True when `idx` may take traffic: healthy and its breaker is not
  /// open — unless EVERY breaker is open, in which case breakers are
  /// ignored (fail-static: when the probe path itself is what broke,
  /// routing around everything would turn a monitoring bug into an
  /// outage).
  [[nodiscard]] bool routable(std::size_t idx, bool ignore_breakers) const {
    return replicas_[idx]->healthy() &&
           (ignore_breakers || !breakers_.is_open(idx));
  }
  /// Tenant-aware routability: circuit breakers are a property of the
  /// default pool (the supervisor only probes replicas_); added tenants'
  /// replicas route on health alone.
  [[nodiscard]] bool routable_in(const Tenant& tenant, std::size_t idx,
                                 bool ignore_breakers) const {
    if (tenant.is_default) return routable(idx, ignore_breakers);
    return tenant.replicas[idx]->healthy();
  }
  [[nodiscard]] bool all_breakers_open() const {
    return breakers_.open_count() >= replicas_.size();
  }
  /// Fraction of canary sentences whose blended decode differs between
  /// `current` and `fork` (the swap gate; call with canary non-empty).
  [[nodiscard]] double canary_disagreement(
      const core::GraphNerModel& current, const core::GraphNerModel& fork);
  /// The "#REPLICA learn ..." admin subtree (swap_mutex_ held by caller's
  /// command dispatch where needed — see implementation).
  [[nodiscard]] std::string admin_learn(std::istringstream& in);
  /// The "#REPLICA model add|swap|drop|list" tenant-management subtree.
  [[nodiscard]] std::string admin_model(std::istringstream& in);
  /// The "#REPLICA quota <model> <rate> <burst> | <model> off" subtree.
  [[nodiscard]] std::string admin_quota(std::istringstream& in);
  /// Swap `model` into every replica of `pool` and drop cache generations
  /// the pool no longer serves; returns entries invalidated. Caller holds
  /// swap_mutex_.
  std::size_t swap_pool(std::vector<std::unique_ptr<ReplicaHandle>>& pool,
                        const std::shared_ptr<const core::GraphNerModel>& model);
  /// swap_pool over the default pool (the learn/rollback swap path).
  std::size_t swap_all_replicas(
      const std::shared_ptr<const core::GraphNerModel>& model);
  std::unique_ptr<LearnLog> learn_log_;
  /// Bounded history of learned generations (sequence that produced each
  /// + the swapped model); back() is what the tier currently serves.
  struct Generation {
    std::uint64_t seq = 0;
    std::shared_ptr<const core::GraphNerModel> model;
  };
  std::deque<Generation> generations_;
  BreakerBoard breakers_;
  std::unique_ptr<HealthSupervisor> supervisor_;
  /// Serializes every model-swap admin path — learn batches + fork swaps
  /// AND single-replica "#REPLICA swap" — so interleaved swaps (each admin
  /// command runs on its own connection thread) cannot invalidate a
  /// generation mid-sweep or strand an orphaned cache generation.
  std::mutex swap_mutex_;
  bool stopped_ = false;
  std::mutex stop_mutex_;
};

}  // namespace graphner::router
