// Router: the sharded multi-replica serving tier (DESIGN.md §11).
//
// A Router is a TagService over N ReplicaHandles, so SocketServer fronts
// it exactly like a single TaggingService. Per request:
//
//   1. consistent-hash the normalized sentence key onto the replica ring
//      (repeats pin to a warm replica and its coalescing cache);
//   2. consult the cross-request decode cache (sentence key + decode
//      options + model fingerprint) — a hit answers in O(1) with no
//      replica touched;
//   3. on a miss, submit to the owner replica (skipping unhealthy ones)
//      and return a lazily-evaluated future that, when waited on,
//      fails over to ring-order siblings with util::Backoff if the
//      replica died mid-request, and inserts OK responses into the cache.
//
// Administration rides the wire as "#REPLICA kill|revive|swap|status"
// (TagService::admin): kill/revive drive the chaos drill, swap hot-swaps
// one replica's model from a file (text or mmap format, auto-sniffed) and
// invalidates the cache generation no replica serves anymore. With
// learn_enabled, "#LEARN text|file|status" (wire sugar for "#REPLICA
// learn ...") drives the online-learning path: the batch is absorbed by
// an OnlineLearner (incremental k-NN append + localized re-propagation,
// DESIGN.md §12) and the resulting learned fork is hot-swapped into every
// replica through the same fingerprint/cache-invalidation machinery.
//
// Metrics: router.* and cache.* from the router's own registry, each
// replica's counters under "replica.<i>." (monotone across kill/revive),
// plus the process-global registry and fault counters — one scrape shows
// the whole tier. Conservation laws CI asserts after a drain:
//
//   router.requests == cache.hits + cache.misses
//   sum_i replica.<i>.submitted ==
//       cache.misses - router.unavailable + router.failovers
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/graphner/learner.hpp"
#include "src/graphner/pipeline.hpp"
#include "src/obs/registry.hpp"
#include "src/router/hash_ring.hpp"
#include "src/router/lru_cache.hpp"
#include "src/router/replica.hpp"
#include "src/serve/tag_service.hpp"
#include "src/util/fault.hpp"

namespace graphner::router {

struct RouterConfig {
  std::size_t replicas = 2;
  /// Worker pool / batching / deadline configuration of every replica.
  serve::ServiceConfig replica_service;
  bool cache_enabled = true;
  LruCacheConfig cache;
  /// Virtual nodes per replica on the consistent-hash ring.
  std::size_t vnodes = 64;
  /// Backoff between failover attempts once the whole ring has been
  /// walked without an answer (a replica may be mid-revive).
  util::BackoffPolicy failover_backoff{std::chrono::milliseconds(10),
                                       std::chrono::milliseconds(200),
                                       2.0,
                                       0.2,
                                       3};
  /// Enable the online "#LEARN" path: the router keeps an OnlineLearner
  /// over the initial model and hot-swaps learned forks into every
  /// replica after each absorbed batch.
  bool learn_enabled = false;
  core::OnlineLearnerConfig learn;
};

class Router : public serve::TagService {
 public:
  /// All replicas start on `model`. The model is shared, not copied —
  /// with an mmap-loaded model the replicas share one page-cache copy of
  /// the weights.
  Router(std::shared_ptr<const core::GraphNerModel> model, RouterConfig config);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] std::future<serve::TagResponse> submit(
      text::Sentence sentence, std::chrono::milliseconds deadline = {},
      std::optional<crf::DecodeOptions> decode = std::nullopt) override;

  [[nodiscard]] obs::RegistrySnapshot observability_snapshot() const override;
  [[nodiscard]] std::string metrics_json() const override;

  /// "#REPLICA kill <i> | revive <i> | swap <i> <model-path> | status",
  /// plus the "#LEARN"-routed "learn text <tokens...> | file <path> |
  /// status" when learn_enabled.
  [[nodiscard]] std::string admin(const std::string& command) override;

  /// The online learner, nullptr unless config.learn_enabled.
  [[nodiscard]] const core::OnlineLearner* learner() const noexcept {
    return learner_.get();
  }

  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replicas_.size();
  }
  [[nodiscard]] ReplicaHandle& replica(std::size_t i) { return *replicas_[i]; }
  [[nodiscard]] ShardedLruCache& cache() noexcept { return cache_; }

  /// Drain and join every replica. Idempotent; also run by the destructor.
  void stop();

 private:
  /// The synchronous tail of a request: wait on the primary submission,
  /// fail over to siblings if the replica died, cache OK responses.
  [[nodiscard]] serve::TagResponse resolve(ReplicaSubmission primary,
                                           std::size_t used,
                                           std::vector<std::size_t> order,
                                           text::Sentence sentence,
                                           std::chrono::milliseconds deadline,
                                           std::optional<crf::DecodeOptions> decode,
                                           std::string base_key);

  [[nodiscard]] static bool needs_failover(serve::Status status) noexcept {
    // A killed/draining replica answers SHUTDOWN; UNAVAILABLE means a
    // mid-swap reject. Both are replica-local conditions a sibling can
    // absorb. OVERLOADED/DEADLINE_EXCEEDED are load signals that must
    // reach the client's own backoff instead of multiplying load here.
    return status == serve::Status::kShutdown ||
           status == serve::Status::kUnavailable;
  }

  RouterConfig config_;
  obs::Registry registry_;
  ShardedLruCache cache_;
  std::vector<std::unique_ptr<ReplicaHandle>> replicas_;
  HashRing ring_;
  obs::Counter& requests_;
  obs::Counter& failovers_;
  obs::Counter& unavailable_;
  obs::Counter& swaps_;
  obs::Counter& cache_misses_;  ///< same instrument the cache counts into
  /// Swap `model` into every replica and drop cache generations no
  /// replica serves anymore (shared by admin swap-all paths like learn).
  std::size_t swap_all_replicas(
      const std::shared_ptr<const core::GraphNerModel>& model);
  std::unique_ptr<core::OnlineLearner> learner_;
  /// Serializes every model-swap admin path — learn batches + fork swaps
  /// AND single-replica "#REPLICA swap" — so interleaved swaps (each admin
  /// command runs on its own connection thread) cannot invalidate a
  /// generation mid-sweep or strand an orphaned cache generation.
  std::mutex swap_mutex_;
  bool stopped_ = false;
  std::mutex stop_mutex_;
};

}  // namespace graphner::router
