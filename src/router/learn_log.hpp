// LearnLog: durable, quarantine-aware journal of the online-learning path
// (DESIGN.md §13).
//
// The router's #LEARN path mutates an OnlineLearner in memory and swaps
// the learned fork into every replica — state a crash would silently
// discard. LearnLog makes the path crash-safe with the classic WAL +
// snapshot pair:
//
//   * commit(batch) appends one CRC-framed, fsync'd record per accepted
//     batch to <dir>/learn.wal (util::Wal) *after* the learner absorbed
//     it and the canary gate passed, *before* any replica swaps — so a
//     crash mid-learn leaves no record (the batch never happened), and a
//     crash after the append replays it;
//   * every snapshot_every commits, the full learner state (trigram
//     registry, PPMI counts, k-NN index, distributions, anchors) is
//     written to <dir>/learn.snapshot via util::atomic_save (fault point
//     "learn.snapshot.truncate") and the WAL is reset — bounded log,
//     and recovery cost proportional to the tail;
//   * on construction the newest snapshot is loaded and the WAL tail is
//     replayed on top of it (quarantined sequences skipped), reaching
//     byte-identical learned state: OnlineLearner::learn is deterministic
//     given bit-identical starting state, which the snapshot round-trip
//     guarantees (tests/test_learn.cpp pins this).
//
// Quarantine is the "never serve this batch" primitive behind both the
// canary gate and "#LEARN rollback": a quarantine record names a sequence
// replay must skip, and the live learner is brought to the matching state
// by rebuild() — reconstruct from snapshot + retained journal minus the
// quarantined sequences. Rollback is just a retroactive quarantine of the
// newest committed sequence.
//
// With an empty dir the log runs in-memory only (no durability, no
// compaction): the journal mirror still backs quarantine/rebuild, so the
// canary gate and rollback work without a disk.
//
// Not thread-safe — the router serializes all calls under its swap mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graphner/learner.hpp"
#include "src/graphner/pipeline.hpp"
#include "src/obs/registry.hpp"
#include "src/util/wal.hpp"

namespace graphner::router {

struct LearnLogConfig {
  /// Directory for learn.wal + learn.snapshot; empty = in-memory only.
  std::string dir;
  /// Committed batches between snapshot compactions (durable mode only).
  std::size_t snapshot_every = 32;
};

/// What construction-time recovery found (logged and surfaced by
/// "#LEARN status" so operators can audit a restart).
struct LearnRecovery {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;
  std::size_t replayed_batches = 0;
  std::size_t skipped_quarantined = 0;
  util::WalTailState wal_tail = util::WalTailState::kClean;
  std::uint64_t wal_torn_bytes = 0;
};

class LearnLog {
 public:
  /// Recovers immediately: loads the newest snapshot (if any), replays the
  /// WAL tail on top, truncating any torn frame. Throws on unreadable
  /// state (corrupt snapshot, snapshot over a different base model).
  LearnLog(LearnLogConfig config,
           std::shared_ptr<const core::GraphNerModel> base,
           core::OnlineLearnerConfig learn_config, obs::Registry& registry);

  [[nodiscard]] core::OnlineLearner& learner() noexcept { return *learner_; }
  [[nodiscard]] const core::OnlineLearner& learner() const noexcept {
    return *learner_;
  }
  [[nodiscard]] const LearnRecovery& recovery() const noexcept {
    return recovery_;
  }

  /// Durably journal `batch` as the next committed sequence and return it.
  /// Call after learner().learn(batch) succeeded and the canary gate
  /// passed, before swapping the fork in. May compact (snapshot + WAL
  /// reset); compaction failure is non-fatal (the commit is already
  /// durable in the WAL). Throws on WAL append failure — the caller must
  /// rebuild() to bring the learner back to the durable state.
  std::uint64_t commit(const std::vector<text::Sentence>& batch);

  /// Durably record that `seq` must never be served: replay skips it and
  /// rebuild() excludes it. For a canary-rejected batch `seq` is the
  /// sequence the batch would have taken (the counter advances past it);
  /// for rollback it is the newest committed sequence. Throws on WAL
  /// append failure.
  void quarantine(std::uint64_t seq, const std::string& reason);

  /// Reconstruct the learner from the newest snapshot + retained journal,
  /// skipping quarantined sequences — the recovery path run live, used
  /// after a canary rejection (the learner already absorbed the poisoned
  /// batch) and after rollback.
  void rebuild();

  [[nodiscard]] bool durable() const noexcept { return wal_ != nullptr; }
  [[nodiscard]] std::uint64_t last_seq() const noexcept { return last_seq_; }
  [[nodiscard]] std::uint64_t snapshot_seq() const noexcept {
    return snapshot_seq_;
  }
  /// Learned-fork fingerprint recorded when the newest snapshot was
  /// written (0 = no snapshot yet).
  [[nodiscard]] std::uint64_t snapshot_fingerprint() const noexcept {
    return snapshot_fingerprint_;
  }
  [[nodiscard]] std::uint64_t quarantined_total() const noexcept {
    return quarantined_total_;
  }
  [[nodiscard]] std::uint64_t wal_bytes() const noexcept {
    return wal_ ? wal_->bytes() : 0;
  }
  [[nodiscard]] std::uint64_t wal_records() const noexcept {
    return wal_ ? wal_->records() : mirror_.size();
  }

 private:
  struct Record {
    std::uint64_t seq = 0;
    bool quarantine = false;
    /// Batch records: one line per sentence (tokens space-joined).
    /// Quarantine records: the reason.
    std::string body;
  };

  [[nodiscard]] std::string snapshot_path() const {
    return config_.dir + "/learn.snapshot";
  }
  [[nodiscard]] std::string wal_path() const {
    return config_.dir + "/learn.wal";
  }
  [[nodiscard]] static std::string encode(const Record& record);
  [[nodiscard]] static Record decode(const std::string& payload);
  [[nodiscard]] static std::vector<text::Sentence> parse_batch(
      const std::string& body);
  /// Fresh-or-snapshot learner with no journal applied.
  [[nodiscard]] std::unique_ptr<core::OnlineLearner> base_learner();
  void apply_journal(std::size_t* replayed, std::size_t* skipped);
  void compact();

  LearnLogConfig config_;
  std::shared_ptr<const core::GraphNerModel> base_;
  core::OnlineLearnerConfig learn_config_;
  obs::Registry& registry_;
  std::unique_ptr<util::Wal> wal_;
  std::unique_ptr<core::OnlineLearner> learner_;
  /// Journal records since the newest snapshot (in-memory mirror of the
  /// WAL tail; the whole journal when not durable).
  std::vector<Record> mirror_;
  std::uint64_t last_seq_ = 0;
  std::uint64_t snapshot_seq_ = 0;
  std::uint64_t snapshot_fingerprint_ = 0;
  std::uint64_t quarantined_total_ = 0;  ///< cumulative, survives compaction
  std::size_t committed_since_snapshot_ = 0;
  bool have_snapshot_ = false;
  LearnRecovery recovery_;
};

}  // namespace graphner::router
