#include "src/router/learn_log.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "src/util/fault.hpp"
#include "src/util/logging.hpp"

namespace graphner::router {
namespace {

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw std::runtime_error("learn log: cannot create directory " + dir + ": " +
                           std::strerror(errno));
}

}  // namespace

LearnLog::LearnLog(LearnLogConfig config,
                   std::shared_ptr<const core::GraphNerModel> base,
                   core::OnlineLearnerConfig learn_config,
                   obs::Registry& registry)
    : config_(std::move(config)),
      base_(std::move(base)),
      learn_config_(learn_config),
      registry_(registry) {
  if (config_.dir.empty()) {
    learner_ = base_learner();
    return;
  }
  ensure_dir(config_.dir);

  // Newest snapshot first (a missing file is simply "no snapshot yet").
  {
    std::ifstream snapshot(snapshot_path(), std::ios::binary);
    if (snapshot) {
      std::string word;
      std::string version;
      if (!(snapshot >> word >> version) || word != "graphner-learn-snapshot" ||
          version != "v1")
        throw std::runtime_error("learn snapshot: bad header in " +
                                 snapshot_path());
      if (!(snapshot >> word >> snapshot_seq_) || word != "seq")
        throw std::runtime_error("learn snapshot: malformed seq line");
      if (!(snapshot >> word >> quarantined_total_) || word != "quarantined")
        throw std::runtime_error("learn snapshot: malformed quarantined line");
      if (!(snapshot >> word >> std::hex >> snapshot_fingerprint_ >>
            std::dec) ||
          word != "fingerprint")
        throw std::runtime_error("learn snapshot: malformed fingerprint line");
      have_snapshot_ = true;
      recovery_.snapshot_loaded = true;
      recovery_.snapshot_seq = snapshot_seq_;
      last_seq_ = snapshot_seq_;
    }
  }
  learner_ = base_learner();

  // Replay the WAL tail on top. The scan classifies any torn tail; the
  // Wal handle opened right after truncates it so appends restart on a
  // frame boundary.
  const util::WalReplay replay = util::wal_replay(wal_path());
  recovery_.wal_tail = replay.tail;
  recovery_.wal_torn_bytes = replay.file_bytes - replay.committed_bytes;
  for (const std::string& payload : replay.records) {
    Record record = decode(payload);
    // A record at or below the snapshot sequence is already folded in
    // (crash between snapshot write and WAL reset leaves this window).
    if (record.seq <= snapshot_seq_) continue;
    if (record.quarantine) ++quarantined_total_;
    if (record.seq > last_seq_) last_seq_ = record.seq;
    if (!record.quarantine) ++committed_since_snapshot_;
    mirror_.push_back(std::move(record));
  }
  wal_ = std::make_unique<util::Wal>(wal_path());

  apply_journal(&recovery_.replayed_batches, &recovery_.skipped_quarantined);
  registry_.counter("learn.wal.replayed").inc(recovery_.replayed_batches);
  registry_.gauge("learn.wal.bytes").set(static_cast<double>(wal_->bytes()));
  if (recovery_.snapshot_loaded || !mirror_.empty() ||
      recovery_.wal_tail != util::WalTailState::kClean)
    util::log_info("learn log: recovered seq ", last_seq_, " (snapshot seq ",
                   snapshot_seq_, ", ", recovery_.replayed_batches,
                   " batch(es) replayed, ", recovery_.skipped_quarantined,
                   " quarantined, tail ",
                   util::wal_tail_state_name(recovery_.wal_tail), ", ",
                   recovery_.wal_torn_bytes, " torn byte(s) dropped)");
}

std::unique_ptr<core::OnlineLearner> LearnLog::base_learner() {
  if (have_snapshot_) {
    std::ifstream snapshot(snapshot_path(), std::ios::binary);
    if (!snapshot)
      throw std::runtime_error("learn snapshot: cannot reopen " +
                               snapshot_path());
    // Skip the four header lines; the learner serialization follows.
    std::string line;
    for (int i = 0; i < 4; ++i)
      if (!std::getline(snapshot, line))
        throw std::runtime_error("learn snapshot: truncated header");
    return std::make_unique<core::OnlineLearner>(
        core::OnlineLearner::load(snapshot, base_));
  }
  return std::make_unique<core::OnlineLearner>(base_, learn_config_);
}

void LearnLog::apply_journal(std::size_t* replayed, std::size_t* skipped) {
  std::unordered_set<std::uint64_t> quarantined;
  for (const Record& record : mirror_)
    if (record.quarantine) quarantined.insert(record.seq);
  for (const Record& record : mirror_) {
    if (record.quarantine) continue;
    if (quarantined.count(record.seq) != 0) {
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    (void)learner_->learn(parse_batch(record.body));
    if (replayed != nullptr) ++*replayed;
  }
}

std::uint64_t LearnLog::commit(const std::vector<text::Sentence>& batch) {
  Record record;
  record.seq = last_seq_ + 1;
  std::ostringstream body;
  for (const text::Sentence& sentence : batch) {
    for (std::size_t i = 0; i < sentence.tokens.size(); ++i)
      body << (i > 0 ? " " : "") << sentence.tokens[i];
    body << '\n';
  }
  record.body = body.str();
  if (wal_) {
    const std::string payload = encode(record);
    wal_->append(payload);  // throws on injected/real failure; nothing moved
    registry_.counter("learn.wal.appends").inc();
    registry_.gauge("learn.wal.bytes").set(static_cast<double>(wal_->bytes()));
  }
  const std::uint64_t seq = record.seq;
  mirror_.push_back(std::move(record));
  last_seq_ = seq;
  ++committed_since_snapshot_;
  if (wal_ && config_.snapshot_every > 0 &&
      committed_since_snapshot_ >= config_.snapshot_every) {
    try {
      compact();
    } catch (const std::exception& e) {
      // The commit itself is durable in the WAL; a failed compaction only
      // means recovery replays a longer tail. Next commit retries.
      util::log_warn("learn log: snapshot compaction failed (", e.what(),
                     "); keeping WAL tail");
    }
  }
  return seq;
}

void LearnLog::quarantine(std::uint64_t seq, const std::string& reason) {
  Record record;
  record.seq = seq;
  record.quarantine = true;
  record.body = reason;
  if (wal_) {
    wal_->append(encode(record));
    registry_.counter("learn.wal.appends").inc();
    registry_.gauge("learn.wal.bytes").set(static_cast<double>(wal_->bytes()));
  }
  mirror_.push_back(std::move(record));
  if (seq > last_seq_) last_seq_ = seq;  // a rejected batch consumed its seq
  ++quarantined_total_;
}

void LearnLog::rebuild() {
  learner_ = base_learner();
  apply_journal(nullptr, nullptr);
}

void LearnLog::compact() {
  const std::uint64_t fork_fingerprint =
      learner_->snapshot_model()->fingerprint();
  util::atomic_save(
      snapshot_path(),
      [&](std::ostream& out) {
        out << "graphner-learn-snapshot v1\n";
        out << "seq " << last_seq_ << '\n';
        out << "quarantined " << quarantined_total_ << '\n';
        out << "fingerprint " << std::hex << fork_fingerprint << std::dec
            << '\n';
        learner_->save(out);
      },
      "learn.snapshot.truncate");
  snapshot_seq_ = last_seq_;
  snapshot_fingerprint_ = fork_fingerprint;
  have_snapshot_ = true;
  wal_->reset();
  mirror_.clear();
  committed_since_snapshot_ = 0;
  registry_.counter("learn.snapshot.writes").inc();
  registry_.gauge("learn.wal.bytes").set(0.0);
  util::log_info("learn log: snapshot at seq ", last_seq_, ", WAL reset");
}

std::string LearnLog::encode(const Record& record) {
  std::ostringstream out;
  if (record.quarantine)
    out << "quarantine " << record.seq << '\t' << record.body;
  else
    out << "batch " << record.seq << '\n' << record.body;
  return out.str();
}

LearnLog::Record LearnLog::decode(const std::string& payload) {
  Record record;
  std::istringstream in(payload);
  std::string kind;
  if (!(in >> kind >> record.seq) || (kind != "batch" && kind != "quarantine"))
    throw std::runtime_error("learn log: unrecognized record kind");
  record.quarantine = kind == "quarantine";
  const std::size_t sep = payload.find(record.quarantine ? '\t' : '\n');
  if (sep != std::string::npos) record.body = payload.substr(sep + 1);
  return record;
}

std::vector<text::Sentence> LearnLog::parse_batch(const std::string& body) {
  std::vector<text::Sentence> batch;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    text::Sentence sentence;
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) sentence.tokens.push_back(std::move(token));
    if (sentence.size() > 0) batch.push_back(std::move(sentence));
  }
  return batch;
}

}  // namespace graphner::router
