// Consistent-hash ring over replica indices (DESIGN.md §11).
//
// Each replica owns `vnodes` pseudo-random points on a 64-bit ring; a key
// routes to the replica owning the first point clockwise of the key's
// hash. Virtual nodes smooth the load split (with one point per replica a
// 2-replica ring can be arbitrarily lopsided), and consistency is the
// property the router actually wants: repeats of the same normalized
// sentence pin to the same replica (warm coalescing cache, shared decode),
// and killing one replica only remaps the keys that replica owned.
//
// order() returns the *failover order*: the owner first, then each
// distinct replica in ring order after it. The router walks this list when
// a replica is down or answers SHUTDOWN mid-kill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace graphner::router {

class HashRing {
 public:
  explicit HashRing(std::size_t replicas, std::size_t vnodes = 64);

  [[nodiscard]] std::size_t replica_count() const noexcept { return replicas_; }

  /// All `replica_count()` indices, owner first, in ring order from the
  /// key's hash — the order failover walks.
  [[nodiscard]] std::vector<std::size_t> order(std::string_view key) const;

  /// Just the owner (order(key).front()).
  [[nodiscard]] std::size_t owner(std::string_view key) const;

 private:
  std::size_t replicas_;
  /// (point hash, replica) sorted by hash.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

}  // namespace graphner::router
