#include "src/router/model_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/serve/protocol.hpp"

namespace graphner::router {

namespace {
constexpr const char* kDefaultName = "default";
}  // namespace

TenantMetrics::TenantMetrics(obs::Registry& registry, const std::string& tenant)
    : requests(registry.counter("tenant." + tenant + ".requests")),
      cache_hits(registry.counter("tenant." + tenant + ".cache_hits")),
      cache_misses(registry.counter("tenant." + tenant + ".cache_misses")),
      deadline_drops(registry.counter("tenant." + tenant + ".deadline_drops")),
      quota_rejected(registry.counter("tenant." + tenant + ".quota_rejected")) {}

ModelRegistry::ModelRegistry(obs::Registry& registry) : registry_(registry) {
  tenants_.emplace(
      kDefaultName,
      std::make_shared<Tenant>(kDefaultName, /*tenant_is_default=*/true,
                               registry_));
}

std::shared_ptr<Tenant> ModelRegistry::resolve(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name.empty() ? kDefaultName : name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::shared_ptr<Tenant> ModelRegistry::add(
    const std::string& name, std::shared_ptr<const core::GraphNerModel> model,
    std::size_t replicas, const serve::ServiceConfig& service,
    std::size_t vnodes) {
  if (!serve::valid_model_name(name))
    throw std::invalid_argument("model name \"" + name +
                                "\" is not addressable ([A-Za-z0-9_.-] only)");
  auto tenant =
      std::make_shared<Tenant>(name, /*tenant_is_default=*/false, registry_);
  tenant->model = model;
  const std::size_t n = std::max<std::size_t>(1, replicas);
  tenant->replicas.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    tenant->replicas.push_back(
        std::make_unique<InProcessReplica>(model, service));
  tenant->ring = std::make_unique<HashRing>(n, vnodes);

  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = tenants_.emplace(name, tenant);
  if (!inserted) {
    // Already resident: tear the speculative pool back down outside the
    // caller's request path is unnecessary — it never served a request.
    for (auto& replica : tenant->replicas) replica->stop();
    throw std::invalid_argument("model \"" + name +
                                "\" is already resident (use model swap)");
  }
  return it->second;
}

std::shared_ptr<Tenant> ModelRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end() || it->second->is_default) return nullptr;
  std::shared_ptr<Tenant> tenant = it->second;
  tenants_.erase(it);
  return tenant;
}

std::vector<std::shared_ptr<Tenant>> ModelRegistry::list() const {
  std::vector<std::shared_ptr<Tenant>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) out.push_back(tenant);
  }
  // std::map iterates name-sorted already; hoist the default to the front
  // so "model list" always leads with the alias every bare request uses.
  std::stable_partition(out.begin(), out.end(),
                        [](const auto& t) { return t->is_default; });
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

}  // namespace graphner::router
