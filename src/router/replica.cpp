#include "src/router/replica.hpp"

#include <utility>

#include "src/util/logging.hpp"

namespace graphner::router {

void merge_snapshot(obs::RegistrySnapshot& into,
                    const obs::RegistrySnapshot& from) {
  for (const auto& counter : from.counters) {
    bool merged = false;
    for (auto& existing : into.counters) {
      if (existing.name == counter.name && existing.labels == counter.labels) {
        existing.value += counter.value;
        merged = true;
        break;
      }
    }
    if (!merged) into.counters.push_back(counter);
  }
  for (const auto& gauge : from.gauges) {
    bool replaced = false;
    for (auto& existing : into.gauges) {
      if (existing.name == gauge.name && existing.labels == gauge.labels) {
        existing.value = gauge.value;  // newer observation wins
        replaced = true;
        break;
      }
    }
    if (!replaced) into.gauges.push_back(gauge);
  }
  for (const auto& histogram : from.histograms) {
    bool merged = false;
    for (auto& existing : into.histograms) {
      if (existing.name == histogram.name &&
          existing.labels == histogram.labels) {
        existing.data.merge(histogram.data);
        merged = true;
        break;
      }
    }
    if (!merged) into.histograms.push_back(histogram);
  }
}

InProcessReplica::InProcessReplica(
    std::shared_ptr<const core::GraphNerModel> model,
    serve::ServiceConfig config)
    : config_(config), model_(std::move(model)) {
  service_ = std::make_shared<serve::TaggingService>(*model_, config_);
  healthy_ = true;
}

InProcessReplica::~InProcessReplica() { stop(); }

ReplicaSubmission InProcessReplica::submit(text::Sentence sentence,
                                           serve::SubmitOptions options) {
  std::shared_ptr<serve::TaggingService> service;
  std::uint64_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!healthy_ || !service_) return {};
    service = service_;
    fingerprint = model_->fingerprint();
  }
  // The router already resolved the tenant onto this replica; the inner
  // service must not second-guess the name against its own default.
  options.model.clear();
  // Submitted outside the lock: submit() never blocks, but a concurrent
  // kill() may stop the service first — then the future resolves with
  // SHUTDOWN and the router fails over to a sibling.
  ReplicaSubmission out;
  out.future = service->submit(std::move(sentence), std::move(options));
  out.fingerprint = fingerprint;
  out.accepted = true;
  return out;
}

bool InProcessReplica::healthy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return healthy_;
}

std::uint64_t InProcessReplica::fingerprint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_ ? model_->fingerprint() : 0;
}

std::shared_ptr<const text::LabelSet> InProcessReplica::labels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!labels_ && model_)
    labels_ = std::make_shared<const text::LabelSet>(model_->labels());
  return labels_;
}

void InProcessReplica::retire_service() {
  std::shared_ptr<serve::TaggingService> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    old = std::move(service_);
    service_ = nullptr;
    healthy_ = false;
  }
  if (!old) return;
  old->stop();  // graceful: drains queued work, every future resolves
  const obs::RegistrySnapshot terminal = old->metrics().raw;
  std::lock_guard<std::mutex> lock(mutex_);
  merge_snapshot(retired_, terminal);
}

void InProcessReplica::kill() { retire_service(); }

void InProcessReplica::revive() {
  std::shared_ptr<const core::GraphNerModel> model;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || healthy_) return;
    model = model_;
  }
  auto service = std::make_shared<serve::TaggingService>(*model, config_);
  std::lock_guard<std::mutex> lock(mutex_);
  service_ = std::move(service);
  healthy_ = true;
}

void InProcessReplica::swap_model(
    std::shared_ptr<const core::GraphNerModel> model) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
  }
  retire_service();  // queued requests finish under the old model
  auto service = std::make_shared<serve::TaggingService>(*model, config_);
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = std::move(model);
  service_ = std::move(service);
  labels_ = nullptr;  // re-materialized from the new model on demand
  healthy_ = true;
}

obs::RegistrySnapshot InProcessReplica::metrics_snapshot() const {
  std::shared_ptr<serve::TaggingService> service;
  obs::RegistrySnapshot out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = retired_;
    service = service_;
  }
  if (service) merge_snapshot(out, service->metrics().raw);
  return out;
}

void InProcessReplica::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  retire_service();
}

}  // namespace graphner::router
