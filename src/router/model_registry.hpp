// ModelRegistry: named resident models — the tenant dimension (§14).
//
// The registry maps wire model names onto serving state: each tenant owns
// the resident model generation, its own replica set + consistent-hash
// ring, a token-bucket quota, and per-tenant counters. The *default*
// tenant is special — it aliases the router's original replica set (the
// one "#REPLICA kill/revive/swap <i>", the health supervisor and the
// online-learning path operate on), so every pre-tenancy behaviour is
// byte-identical for clients that never name a model. Added tenants
// ("#REPLICA model add <name> <path>") get their own InProcessReplica
// pool, sized RouterConfig::tenant_replicas.
//
// Concurrency: the map is mutated only by rare admin verbs; the hot
// submit path takes the registry mutex once to copy a shared_ptr<Tenant>.
// A tenant handed out stays alive (and its counters valid) for as long as
// any in-flight request holds it, even across a concurrent "model drop" —
// the dropped tenant's replicas reject new work after stop(), so late
// holders resolve to UNAVAILABLE rather than touching freed state.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/graphner/pipeline.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/token_bucket.hpp"
#include "src/router/hash_ring.hpp"
#include "src/router/replica.hpp"
#include "src/serve/service.hpp"

namespace graphner::router {

/// Per-tenant instruments, resolved once at registration. The names are
/// "tenant.<name>.requests" etc., so one "#METRICS TSV" scrape shows every
/// tenant side by side and CI can awk conservation per tenant:
///   tenant.<n>.requests == tenant.<n>.cache_hits + tenant.<n>.cache_misses
struct TenantMetrics {
  obs::Counter& requests;       ///< admitted (past quota + model checks)
  obs::Counter& cache_hits;     ///< answered from the cross-request cache
  obs::Counter& cache_misses;   ///< everything admitted that was not a hit
  obs::Counter& deadline_drops; ///< resolved DEADLINE_EXCEEDED
  obs::Counter& quota_rejected; ///< bounced by the token bucket

  TenantMetrics(obs::Registry& registry, const std::string& tenant);
};

/// One resident model and everything that serves it.
struct Tenant {
  std::string name;
  /// True for the registry's default tenant, whose replicas/ring live on
  /// the Router itself (see file comment); `replicas`/`ring` stay empty.
  bool is_default = false;
  std::shared_ptr<const core::GraphNerModel> model;  ///< null for default
  std::vector<std::unique_ptr<ReplicaHandle>> replicas;
  std::unique_ptr<HashRing> ring;
  obs::TokenBucket quota;
  TenantMetrics metrics;

  Tenant(std::string tenant_name, bool tenant_is_default,
         obs::Registry& registry)
      : name(std::move(tenant_name)),
        is_default(tenant_is_default),
        metrics(registry, name) {}
};

class ModelRegistry {
 public:
  /// Registers the default tenant immediately. `registry` must outlive
  /// the ModelRegistry (it owns every tenant's instruments).
  explicit ModelRegistry(obs::Registry& registry);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Resolve a wire selector: "" and "default" both land on the default
  /// tenant (the bare-request alias); anything else must be resident.
  /// nullptr = unknown model.
  [[nodiscard]] std::shared_ptr<Tenant> resolve(const std::string& name) const;

  [[nodiscard]] std::shared_ptr<Tenant> default_tenant() const {
    return resolve({});
  }

  /// Register `model` under `name` with its own replica pool (`replicas`
  /// InProcessReplicas over `service`) and ring. Throws
  /// std::invalid_argument on an invalid or already-resident name.
  std::shared_ptr<Tenant> add(const std::string& name,
                              std::shared_ptr<const core::GraphNerModel> model,
                              std::size_t replicas,
                              const serve::ServiceConfig& service,
                              std::size_t vnodes);

  /// Unregister `name` and return its tenant for teardown (the caller
  /// stops the replicas and sweeps the cache outside the registry lock).
  /// nullptr when absent; the default tenant cannot be removed.
  std::shared_ptr<Tenant> remove(const std::string& name);

  /// Every resident tenant, sorted by name (default first).
  [[nodiscard]] std::vector<std::shared_ptr<Tenant>> list() const;

  [[nodiscard]] std::size_t size() const;

 private:
  obs::Registry& registry_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace graphner::router
