// Bounded sharded-LRU cross-request decode cache (DESIGN.md §11).
//
// Keys are the router's full cache identity — normalized sentence key +
// decode-options string + model fingerprint — and values are the decoded
// tag sequences. The map is sharded by key hash: each shard is an
// independent mutex + LRU list + index, so concurrent lookups from many
// connection handlers contend only when they hash to the same shard
// (the same discipline as the obs counter shards). Capacity is global
// (split evenly across shards) and eviction is strict per-shard LRU.
//
// Entries remember the model fingerprint they were decoded under so a
// hot-swap can invalidate exactly the stale generation
// (invalidate_fingerprint) without touching entries other replicas still
// serve. All observable state — cache.{hits,misses,evictions,bytes,
// entries} — lives in the obs registry the constructor is handed, which
// is how the numbers reach "#METRICS".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/registry.hpp"
#include "src/text/tag.hpp"

namespace graphner::router {

struct LruCacheConfig {
  std::size_t capacity = 4096;  ///< total entries across all shards
  std::size_t shards = 8;       ///< independent mutex domains
};

class ShardedLruCache {
 public:
  /// Instruments are resolved once from `registry` ("cache.hits", ...);
  /// the registry must outlive the cache.
  ShardedLruCache(LruCacheConfig config, obs::Registry& registry);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Hit: moves the entry to the front of its shard's LRU and returns the
  /// tags. Every call counts into cache.hits or cache.misses.
  [[nodiscard]] std::optional<std::vector<text::Tag>> get(
      const std::string& key);

  /// Insert (or refresh) `key`. `fingerprint` is the model generation the
  /// tags were decoded under — invalidate_fingerprint's handle.
  void put(const std::string& key, std::vector<text::Tag> tags,
           std::uint64_t fingerprint);

  /// Drop every entry decoded under `fingerprint` (model hot-swap with no
  /// remaining replica on that generation). Returns how many were dropped.
  std::size_t invalidate_fingerprint(std::uint64_t fingerprint);

  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::vector<text::Tag> tags;
    std::uint64_t fingerprint = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key);
  [[nodiscard]] static std::size_t entry_bytes(const Entry& entry) noexcept;
  /// Drop the shard's LRU tail. Caller holds the shard mutex.
  void evict_tail(Shard& shard);
  void refresh_gauges();

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> total_entries_{0};
  std::atomic<std::size_t> total_bytes_{0};
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& invalidated_;
  obs::Gauge& bytes_gauge_;
  obs::Gauge& entries_gauge_;
};

}  // namespace graphner::router
