#include "src/eval/error_analysis.hpp"

#include <map>

#include "src/util/strings.hpp"

namespace graphner::eval {
namespace {

[[nodiscard]] std::string error_key(const ErrorDetail& e) {
  return e.sentence_id + '|' + std::to_string(e.span.first) + '|' +
         std::to_string(e.span.last);
}

}  // namespace

ErrorCategorizer::ErrorCategorizer(const std::vector<std::string>& gene_tokens,
                                   const std::vector<text::Annotation>& truth) {
  for (const auto& tok : gene_tokens) gene_tokens_.insert(util::to_lower(tok));
  for (const auto& ann : truth)
    truth_keys_.insert(ann.sentence_id + '|' + std::to_string(ann.span.first) + '|' +
                       std::to_string(ann.span.last));
}

CategorizedError ErrorCategorizer::categorize(const ErrorDetail& error) const {
  CategorizedError out;
  out.detail = error;
  for (const auto& tok : util::split_whitespace(error.mention)) {
    if (gene_tokens_.contains(util::to_lower(tok))) {
      out.category = ErrorCategory::kGeneRelated;
      break;
    }
  }
  out.corpus_error = truth_keys_.contains(error_key(error));
  return out;
}

std::vector<CategorizedError> ErrorCategorizer::categorize_all(
    const std::vector<ErrorDetail>& errors) const {
  std::vector<CategorizedError> out;
  out.reserve(errors.size());
  for (const auto& e : errors) out.push_back(categorize(e));
  return out;
}

UpsetTable build_upset_table(const std::vector<CategorizedError>& fps_a,
                             const std::vector<CategorizedError>& fps_b) {
  std::map<std::string, std::pair<bool, bool>> membership;  // key -> (in A, in B)
  std::map<std::string, ErrorCategory> category;
  for (const auto& e : fps_a) {
    const std::string key = error_key(e.detail);
    membership[key].first = true;
    category[key] = e.category;
  }
  for (const auto& e : fps_b) {
    const std::string key = error_key(e.detail);
    membership[key].second = true;
    category[key] = e.category;
  }
  UpsetTable table;
  for (const auto& [key, in] : membership) {
    UpsetCell& cell = category[key] == ErrorCategory::kGeneRelated
                          ? table.gene_related
                          : table.spurious;
    if (in.first && in.second) ++cell.both;
    else if (in.first) ++cell.only_a;
    else ++cell.only_b;
  }
  return table;
}

}  // namespace graphner::eval
