#include "src/eval/typed_eval.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/text/bio.hpp"

namespace graphner::eval {

TypedEvalResult evaluate_typed(
    const std::vector<std::vector<text::Tag>>& predicted,
    const std::vector<std::vector<text::Tag>>& gold,
    const text::LabelSet& labels) {
  if (predicted.size() != gold.size())
    throw std::invalid_argument(
        "evaluate_typed: predicted/gold sentence counts differ");

  TypedEvalResult result;
  result.per_type.resize(std::max<std::size_t>(labels.num_types(), 1));

  for (std::size_t s = 0; s < predicted.size(); ++s) {
    auto pred_spans = text::decode_typed_bio(predicted[s], labels);
    auto gold_spans = text::decode_typed_bio(gold[s], labels);
    std::sort(pred_spans.begin(), pred_spans.end());
    std::sort(gold_spans.begin(), gold_spans.end());

    // Exact typed match: both sides sorted, each gold span credited once.
    std::size_t g = 0;
    for (const auto& p : pred_spans) {
      while (g < gold_spans.size() && gold_spans[g] < p) {
        result.per_type[gold_spans[g].type].false_negatives++;
        ++g;
      }
      if (g < gold_spans.size() && gold_spans[g] == p) {
        result.per_type[p.type].true_positives++;
        ++g;
      } else {
        result.per_type[p.type].false_positives++;
      }
    }
    for (; g < gold_spans.size(); ++g)
      result.per_type[gold_spans[g].type].false_negatives++;
  }

  for (const auto& m : result.per_type) result.overall += m;
  return result;
}

}  // namespace graphner::eval
