// Qualitative error analysis (paper §III-E, Figures 4 and 5).
//
// False positives / negatives are categorized as *gene-related* (the
// mention shares tokens with the gene nomenclature: actual genes, gene
// families, protein domains) or *spurious* (thematically unrelated, e.g.
// "Ann Arbor"). FPs that exactly match the pristine pre-noise truth are
// additionally flagged as *corpus errors* — correct detections counted as
// errors only because the gold standard missed them.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "src/eval/bc2gm_eval.hpp"
#include "src/text/annotation.hpp"

namespace graphner::eval {

enum class ErrorCategory { kGeneRelated, kSpurious };

struct CategorizedError {
  ErrorDetail detail;
  ErrorCategory category = ErrorCategory::kSpurious;
  bool corpus_error = false;  ///< detection matches the noise-free truth
};

class ErrorCategorizer {
 public:
  /// `gene_tokens`: lowercased tokens occurring in gene names (from the
  /// corpus lexicon); `truth`: pristine annotations, may be empty.
  ErrorCategorizer(const std::vector<std::string>& gene_tokens,
                   const std::vector<text::Annotation>& truth);

  [[nodiscard]] CategorizedError categorize(const ErrorDetail& error) const;

  [[nodiscard]] std::vector<CategorizedError> categorize_all(
      const std::vector<ErrorDetail>& errors) const;

 private:
  std::unordered_set<std::string> gene_tokens_;
  std::unordered_set<std::string> truth_keys_;  ///< "sid|first|last"
};

/// UpSet-style intersection tabulation of two systems' false positives.
struct UpsetCell {
  std::size_t only_a = 0;
  std::size_t only_b = 0;
  std::size_t both = 0;
};

struct UpsetTable {
  UpsetCell gene_related;
  UpsetCell spurious;

  [[nodiscard]] std::size_t total_a() const noexcept {
    return gene_related.only_a + gene_related.both + spurious.only_a + spurious.both;
  }
  [[nodiscard]] std::size_t total_b() const noexcept {
    return gene_related.only_b + gene_related.both + spurious.only_b + spurious.both;
  }
};

/// Intersect FP sets of system A and system B, split by category.
[[nodiscard]] UpsetTable build_upset_table(
    const std::vector<CategorizedError>& fps_a,
    const std::vector<CategorizedError>& fps_b);

}  // namespace graphner::eval
