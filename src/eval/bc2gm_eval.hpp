// The BioCreative II gene-mention evaluation protocol.
//
// Exact-match evaluation with alternative annotations (paper §III):
// a detection is a true positive iff its whitespace-free character span
// matches a primary gold mention or an acceptable alternative of one;
// each primary mention can be credited at most once. Then
//   FN = #primary - TP,   FP = #detections - TP.
// Alternatives are linked to the primary they overlap (the real ALTGENE
// file encodes the same relationship implicitly through offsets).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/eval/metrics.hpp"
#include "src/text/annotation.hpp"

namespace graphner::eval {

struct ErrorDetail {
  std::string sentence_id;
  text::CharSpan span;
  std::string mention;
};

struct EvalResult {
  Metrics metrics;
  std::vector<ErrorDetail> false_positive_details;
  std::vector<ErrorDetail> false_negative_details;
};

/// Evaluate `detections` against `gold` (primary) and `alternatives`.
[[nodiscard]] EvalResult evaluate_bc2gm(
    const std::vector<text::Annotation>& detections,
    const std::vector<text::Annotation>& gold,
    const std::vector<text::Annotation>& alternatives);

/// Per-sentence detection sets keyed by sentence id (used by sigf).
using DetectionMap = std::unordered_map<std::string, std::vector<text::Annotation>>;

[[nodiscard]] DetectionMap group_by_sentence(const std::vector<text::Annotation>& anns);

}  // namespace graphner::eval
