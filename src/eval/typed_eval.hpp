// Multi-entity (typed-span) evaluation.
//
// The JNLPBA protocol scores exact typed-span matches: a predicted mention
// is a true positive iff a gold mention with the same token boundaries AND
// the same entity type exists in the same sentence. Per-type counters give
// the usual per-entity P/R/F breakdown plus the micro-averaged overall row
// (the shared task's headline number).
#pragma once

#include <vector>

#include "src/eval/metrics.hpp"
#include "src/text/label_set.hpp"
#include "src/text/tag.hpp"

namespace graphner::eval {

struct TypedEvalResult {
  Metrics overall;                 ///< micro-average over all types
  std::vector<Metrics> per_type;   ///< indexed by entity-type id
};

/// Evaluate predicted tag sequences against gold tag sequences (parallel
/// vectors, one entry per sentence) by decoding both through `labels` and
/// matching typed spans exactly. Throws std::invalid_argument on a
/// sentence-count mismatch; a length mismatch within a sentence scores
/// whatever spans each side decodes to (no crash).
[[nodiscard]] TypedEvalResult evaluate_typed(
    const std::vector<std::vector<text::Tag>>& predicted,
    const std::vector<std::vector<text::Tag>>& gold,
    const text::LabelSet& labels);

}  // namespace graphner::eval
