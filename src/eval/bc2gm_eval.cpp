#include "src/eval/bc2gm_eval.hpp"

#include <algorithm>
#include <map>

namespace graphner::eval {
namespace {

[[nodiscard]] bool spans_overlap(const text::CharSpan& a, const text::CharSpan& b) noexcept {
  return a.first <= b.last && b.first <= a.last;
}

}  // namespace

DetectionMap group_by_sentence(const std::vector<text::Annotation>& anns) {
  DetectionMap map;
  for (const auto& ann : anns) map[ann.sentence_id].push_back(ann);
  return map;
}

EvalResult evaluate_bc2gm(const std::vector<text::Annotation>& detections,
                          const std::vector<text::Annotation>& gold,
                          const std::vector<text::Annotation>& alternatives) {
  EvalResult result;

  // Per sentence: primary spans and, per acceptable span (primary or
  // alternative), the index of the primary it credits.
  struct SentenceGold {
    std::vector<text::CharSpan> primaries;
    std::map<text::CharSpan, std::size_t> acceptable;  ///< span -> primary idx
    std::vector<bool> consumed;
  };
  std::unordered_map<std::string, SentenceGold> by_sentence;

  for (const auto& ann : gold) {
    auto& sg = by_sentence[ann.sentence_id];
    sg.acceptable.emplace(ann.span, sg.primaries.size());
    sg.primaries.push_back(ann.span);
  }
  for (auto& [id, sg] : by_sentence) {
    (void)id;
    sg.consumed.assign(sg.primaries.size(), false);
  }
  for (const auto& alt : alternatives) {
    const auto it = by_sentence.find(alt.sentence_id);
    if (it == by_sentence.end()) continue;
    auto& sg = it->second;
    // Link the alternative to the primary mention it overlaps; ambiguous
    // alternatives credit the first overlapping primary.
    for (std::size_t p = 0; p < sg.primaries.size(); ++p) {
      if (spans_overlap(alt.span, sg.primaries[p])) {
        sg.acceptable.emplace(alt.span, p);
        break;
      }
    }
  }

  std::size_t tp = 0;
  for (const auto& det : detections) {
    bool matched = false;
    if (const auto it = by_sentence.find(det.sentence_id); it != by_sentence.end()) {
      auto& sg = it->second;
      const auto jt = sg.acceptable.find(det.span);
      if (jt != sg.acceptable.end() && !sg.consumed[jt->second]) {
        sg.consumed[jt->second] = true;
        matched = true;
      }
    }
    if (matched) {
      ++tp;
    } else {
      result.false_positive_details.push_back({det.sentence_id, det.span, det.mention});
    }
  }

  result.metrics.true_positives = tp;
  result.metrics.false_positives = detections.size() - tp;
  result.metrics.false_negatives = gold.size() - tp;

  for (const auto& ann : gold) {
    const auto& sg = by_sentence[ann.sentence_id];
    // Report unconsumed primaries as FN details.
    for (std::size_t p = 0; p < sg.primaries.size(); ++p) {
      if (sg.primaries[p] == ann.span && !sg.consumed[p]) {
        result.false_negative_details.push_back({ann.sentence_id, ann.span, ann.mention});
        break;
      }
    }
  }
  return result;
}

}  // namespace graphner::eval
