// Precision / recall / F-score counters.
#pragma once

#include <cstddef>

#include "src/util/math.hpp"

namespace graphner::eval {

struct Metrics {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  [[nodiscard]] double precision() const noexcept {
    const std::size_t d = true_positives + false_positives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(d);
  }
  [[nodiscard]] double recall() const noexcept {
    const std::size_t d = true_positives + false_negatives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(d);
  }
  [[nodiscard]] double f_score() const noexcept {
    return util::f_score(precision(), recall());
  }

  Metrics& operator+=(const Metrics& other) noexcept {
    true_positives += other.true_positives;
    false_positives += other.false_positives;
    false_negatives += other.false_negatives;
    return *this;
  }
};

}  // namespace graphner::eval
