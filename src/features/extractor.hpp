// NER feature extraction.
//
// The BANNER profile covers the classic supervised feature templates:
// token identity, lowercase, lemma, context window, token bigrams, word
// shapes, prefixes/suffixes, character n-grams, orthographic predicates
// (caps, digits, punctuation, Roman numerals, Greek letters) and a length
// bucket. The ChemDNER profile adds Brown-cluster path prefixes and
// word2vec k-means cluster ids, turning the same CRF into the
// semi-supervised-features baseline of the paper.
#pragma once

#include <string>
#include <vector>

#include "src/embeddings/brown.hpp"
#include "src/embeddings/word2vec.hpp"
#include "src/postag/hmm_tagger.hpp"
#include "src/text/sentence.hpp"

namespace graphner::features {

class Gazetteer;

struct FeatureConfig {
  bool token_identity = true;
  bool lemmas = true;
  bool context = true;
  std::size_t context_window = 2;
  bool token_bigrams = true;
  bool shapes = true;
  bool affixes = true;
  std::size_t max_affix_length = 4;
  bool char_ngrams = true;
  bool orthographic = true;
  bool length_bucket = true;
  // ChemDNER extensions (non-owning pointers; nullptr disables the feature).
  const embeddings::BrownClustering* brown = nullptr;
  const embeddings::EmbeddingClusters* embedding_clusters = nullptr;
  /// Optional HMM POS tagger (BANNER feeds POS features to its CRF). POS
  /// features are produced by the whole-sentence extract() path, which
  /// tags each sentence once; extract_at() alone does not include them.
  const postag::HmmPosTagger* pos_tagger = nullptr;
  /// Optional terminology bank (Lerner et al.-style). Gazetteer matches
  /// are phrase-level, so like POS they come from the whole-sentence
  /// extract() path only; extract_at() alone does not include them.
  const Gazetteer* gazetteer = nullptr;
};

/// Per-position string features ("W=tumor", "SUF2=or", ...).
using TokenFeatures = std::vector<std::string>;

class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const FeatureConfig& config() const noexcept { return config_; }

  /// Extract features for every position of a sentence.
  [[nodiscard]] std::vector<TokenFeatures> extract(const text::Sentence& sentence) const;

  /// In-place variant for hot tagging paths (the serving workers): `out` is
  /// resized to the sentence and refilled, keeping the outer and inner
  /// vector capacity alive across calls. Thread-safe: extraction only reads
  /// the config and the (immutable) embedding resources.
  void extract_into(const text::Sentence& sentence,
                    std::vector<TokenFeatures>& out) const;

  /// Features of a single position (exposed for the graph builder, which
  /// represents a 3-gram occurrence by its center token's features).
  [[nodiscard]] TokenFeatures extract_at(const text::Sentence& sentence,
                                         std::size_t position) const;

 private:
  void extract_at_into(const text::Sentence& sentence, std::size_t position,
                       TokenFeatures& out) const;

  FeatureConfig config_;
};

/// True for token strings that look like Roman numerals (II, IV, ...).
[[nodiscard]] bool is_roman_numeral(const std::string& token) noexcept;

/// True for spelled Greek letters (alpha, beta, ...).
[[nodiscard]] bool is_greek_letter(const std::string& token) noexcept;

}  // namespace graphner::features
