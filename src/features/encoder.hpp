// Bridges string features to the CRF's dense ids.
#pragma once

#include <vector>

#include "src/crf/dataset.hpp"
#include "src/crf/feature_index.hpp"
#include "src/crf/state_space.hpp"
#include "src/features/extractor.hpp"
#include "src/text/sentence.hpp"

namespace graphner::features {

/// Encode a sentence for training: interns unseen feature names and encodes
/// the gold tags through `space`.
[[nodiscard]] crf::EncodedSentence encode_for_training(
    const text::Sentence& sentence, const FeatureExtractor& extractor,
    crf::FeatureIndex& index, const crf::StateSpace& space);

/// Encode a sentence for inference: unknown feature names are dropped.
[[nodiscard]] crf::EncodedSentence encode_for_inference(
    const text::Sentence& sentence, const FeatureExtractor& extractor,
    const crf::FeatureIndex& index);

/// Reusable buffers for the in-place inference encoder. One per serving
/// worker: both the string-feature staging area and the encoded id rows
/// keep their capacity across sentences, so steady-state encoding does no
/// per-sentence vector reallocation.
struct EncodeScratch {
  std::vector<TokenFeatures> features;
  crf::EncodedSentence encoded;
};

/// In-place variant of encode_for_inference for hot tagging paths; returns
/// a reference to `scratch.encoded`, valid until the next call.
const crf::EncodedSentence& encode_for_inference(
    const text::Sentence& sentence, const FeatureExtractor& extractor,
    const crf::FeatureIndex& index, EncodeScratch& scratch);

/// Batch helpers.
[[nodiscard]] crf::Batch encode_batch_for_training(
    const std::vector<text::Sentence>& sentences, const FeatureExtractor& extractor,
    crf::FeatureIndex& index, const crf::StateSpace& space);

[[nodiscard]] crf::Batch encode_batch_for_inference(
    const std::vector<text::Sentence>& sentences, const FeatureExtractor& extractor,
    const crf::FeatureIndex& index);

}  // namespace graphner::features
