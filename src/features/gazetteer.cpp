#include "src/features/gazetteer.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/text/bio.hpp"
#include "src/util/strings.hpp"

namespace graphner::features {

Gazetteer::Bank& Gazetteer::bank_for(std::string_view name) {
  const auto it = bank_index_.find(std::string(name));
  if (it != bank_index_.end()) return banks_[it->second];
  bank_index_.emplace(std::string(name), banks_.size());
  banks_.emplace_back();
  banks_.back().name = std::string(name);
  return banks_.back();
}

void Gazetteer::add_term(std::string_view bank,
                         const std::vector<std::string>& tokens) {
  if (tokens.empty()) return;
  Bank& b = bank_for(bank);
  std::string phrase;
  for (const auto& tok : tokens) {
    if (!phrase.empty()) phrase += ' ';
    phrase += util::to_lower(tok);
  }
  b.first_tokens.insert(util::to_lower(tokens.front()));
  b.max_tokens = std::max(b.max_tokens, tokens.size());
  if (b.phrases.insert(std::move(phrase)).second) ++num_terms_;
}

Gazetteer Gazetteer::from_labelled(const std::vector<text::Sentence>& sentences,
                                   const text::LabelSet& labels) {
  Gazetteer gaz;
  std::vector<std::string> mention;
  for (const auto& sentence : sentences) {
    if (!sentence.has_tags()) continue;
    for (const auto& span : text::decode_typed_bio(sentence.tags, labels)) {
      mention.assign(sentence.tokens.begin() + static_cast<long>(span.first),
                     sentence.tokens.begin() + static_cast<long>(span.last) + 1);
      const std::string_view bank = labels.is_single()
                                        ? std::string_view{"GENE"}
                                        : labels.entity_types()[span.type];
      gaz.add_term(bank, mention);
    }
  }
  return gaz;
}

std::vector<std::string> Gazetteer::bank_names() const {
  std::vector<std::string> names;
  names.reserve(banks_.size());
  for (const auto& b : banks_) names.push_back(b.name);
  std::sort(names.begin(), names.end());
  return names;
}

void Gazetteer::annotate(const text::Sentence& sentence,
                         std::vector<TokenFeatures>& features) const {
  const std::size_t n = sentence.size();
  if (n == 0 || features.size() < n) return;
  std::vector<std::string> lowered;
  lowered.reserve(n);
  for (const auto& tok : sentence.tokens) lowered.push_back(util::to_lower(tok));

  for (const auto& bank : banks_) {
    for (std::size_t i = 0; i < n;) {
      if (bank.first_tokens.find(lowered[i]) == bank.first_tokens.end()) {
        ++i;
        continue;
      }
      // Longest match first: grow the candidate phrase to the cap, then
      // shrink until a terminology hit (or give up on this position).
      std::size_t matched = 0;
      const std::size_t limit = std::min(bank.max_tokens, n - i);
      std::string phrase = lowered[i];
      std::vector<std::size_t> lengths{phrase.size()};
      for (std::size_t len = 2; len <= limit; ++len) {
        phrase += ' ';
        phrase += lowered[i + len - 1];
        lengths.push_back(phrase.size());
      }
      for (std::size_t len = limit; len >= 1; --len) {
        phrase.resize(lengths[len - 1]);
        if (bank.phrases.find(phrase) != bank.phrases.end()) {
          matched = len;
          break;
        }
      }
      if (matched == 0) {
        ++i;
        continue;
      }
      features[i].push_back("GAZB=" + bank.name);
      for (std::size_t j = 1; j < matched; ++j)
        features[i + j].push_back("GAZI=" + bank.name);
      i += matched;
    }
  }
}

void Gazetteer::save(std::ostream& out) const {
  std::vector<const Bank*> ordered;
  ordered.reserve(banks_.size());
  for (const auto& b : banks_) ordered.push_back(&b);
  std::sort(ordered.begin(), ordered.end(),
            [](const Bank* a, const Bank* b) { return a->name < b->name; });

  out << "banks " << ordered.size() << '\n';
  for (const Bank* bank : ordered) {
    std::vector<std::string> phrases(bank->phrases.begin(), bank->phrases.end());
    std::sort(phrases.begin(), phrases.end());
    out << "bank " << bank->name << ' ' << phrases.size() << '\n';
    for (const auto& phrase : phrases) {
      const auto tokens = util::split_whitespace(phrase);
      out << tokens.size();
      for (const auto& tok : tokens) out << ' ' << tok;
      out << '\n';
    }
  }
}

Gazetteer Gazetteer::load(std::istream& in) {
  std::string token;
  if (!(in >> token) || token != "banks")
    throw std::runtime_error("gazetteer: expected 'banks', got '" + token + "'");
  std::size_t bank_count = 0;
  if (!(in >> bank_count)) throw std::runtime_error("gazetteer: missing bank count");

  Gazetteer gaz;
  std::vector<std::string> term;
  for (std::size_t b = 0; b < bank_count; ++b) {
    if (!(in >> token) || token != "bank")
      throw std::runtime_error("gazetteer: expected 'bank', got '" + token + "'");
    std::string name;
    std::size_t term_count = 0;
    if (!(in >> name >> term_count))
      throw std::runtime_error("gazetteer: truncated bank header");
    for (std::size_t t = 0; t < term_count; ++t) {
      std::size_t token_count = 0;
      if (!(in >> token_count) || token_count == 0)
        throw std::runtime_error("gazetteer: truncated term table in bank " +
                                 name);
      term.clear();
      for (std::size_t k = 0; k < token_count; ++k) {
        std::string tok;
        if (!(in >> tok))
          throw std::runtime_error("gazetteer: truncated term in bank " + name);
        term.push_back(std::move(tok));
      }
      gaz.add_term(name, term);
    }
  }
  return gaz;
}

}  // namespace graphner::features
