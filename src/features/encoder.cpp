#include "src/features/encoder.hpp"

#include <algorithm>
#include <cassert>

namespace graphner::features {
namespace {

void sort_unique(std::vector<crf::FeatureIndex::Id>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

crf::EncodedSentence encode_for_training(const text::Sentence& sentence,
                                         const FeatureExtractor& extractor,
                                         crf::FeatureIndex& index,
                                         const crf::StateSpace& space) {
  assert(sentence.has_tags());
  crf::EncodedSentence out;
  out.features.reserve(sentence.size());
  for (const auto& features : extractor.extract(sentence)) {
    std::vector<crf::FeatureIndex::Id> ids;
    ids.reserve(features.size());
    for (const auto& name : features) ids.push_back(index.intern(name));
    sort_unique(ids);
    out.features.push_back(std::move(ids));
  }
  out.states = space.encode(sentence.tags);
  return out;
}

crf::EncodedSentence encode_for_inference(const text::Sentence& sentence,
                                          const FeatureExtractor& extractor,
                                          const crf::FeatureIndex& index) {
  crf::EncodedSentence out;
  out.features.reserve(sentence.size());
  for (const auto& features : extractor.extract(sentence)) {
    std::vector<crf::FeatureIndex::Id> ids;
    ids.reserve(features.size());
    for (const auto& name : features)
      if (const auto id = index.find(name)) ids.push_back(*id);
    sort_unique(ids);
    out.features.push_back(std::move(ids));
  }
  return out;
}

crf::Batch encode_batch_for_training(const std::vector<text::Sentence>& sentences,
                                     const FeatureExtractor& extractor,
                                     crf::FeatureIndex& index,
                                     const crf::StateSpace& space) {
  crf::Batch batch;
  batch.reserve(sentences.size());
  for (const auto& s : sentences)
    if (s.size() > 0) batch.push_back(encode_for_training(s, extractor, index, space));
  return batch;
}

crf::Batch encode_batch_for_inference(const std::vector<text::Sentence>& sentences,
                                      const FeatureExtractor& extractor,
                                      const crf::FeatureIndex& index) {
  crf::Batch batch;
  batch.reserve(sentences.size());
  for (const auto& s : sentences)
    if (s.size() > 0) batch.push_back(encode_for_inference(s, extractor, index));
  return batch;
}

}  // namespace graphner::features
