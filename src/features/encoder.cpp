#include "src/features/encoder.hpp"

#include <algorithm>
#include <cassert>

namespace graphner::features {
namespace {

void sort_unique(std::vector<crf::FeatureIndex::Id>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

crf::EncodedSentence encode_for_training(const text::Sentence& sentence,
                                         const FeatureExtractor& extractor,
                                         crf::FeatureIndex& index,
                                         const crf::StateSpace& space) {
  assert(sentence.has_tags());
  crf::EncodedSentence out;
  out.features.reserve(sentence.size());
  for (const auto& features : extractor.extract(sentence)) {
    std::vector<crf::FeatureIndex::Id> ids;
    ids.reserve(features.size());
    for (const auto& name : features) ids.push_back(index.intern(name));
    sort_unique(ids);
    out.features.push_back(std::move(ids));
  }
  out.states = space.encode(sentence.tags);
  return out;
}

crf::EncodedSentence encode_for_inference(const text::Sentence& sentence,
                                          const FeatureExtractor& extractor,
                                          const crf::FeatureIndex& index) {
  crf::EncodedSentence out;
  out.features.reserve(sentence.size());
  for (const auto& features : extractor.extract(sentence)) {
    std::vector<crf::FeatureIndex::Id> ids;
    ids.reserve(features.size());
    for (const auto& name : features)
      if (const auto id = index.find(name)) ids.push_back(*id);
    sort_unique(ids);
    out.features.push_back(std::move(ids));
  }
  return out;
}

const crf::EncodedSentence& encode_for_inference(const text::Sentence& sentence,
                                                 const FeatureExtractor& extractor,
                                                 const crf::FeatureIndex& index,
                                                 EncodeScratch& scratch) {
  extractor.extract_into(sentence, scratch.features);
  auto& rows = scratch.encoded.features;
  if (rows.size() > sentence.size()) rows.resize(sentence.size());
  rows.reserve(sentence.size());
  while (rows.size() < sentence.size()) rows.emplace_back();
  for (std::size_t i = 0; i < sentence.size(); ++i) {
    rows[i].clear();
    rows[i].reserve(scratch.features[i].size());
    for (const auto& name : scratch.features[i])
      if (const auto id = index.find(name)) rows[i].push_back(*id);
    sort_unique(rows[i]);
  }
  scratch.encoded.states.clear();
  return scratch.encoded;
}

crf::Batch encode_batch_for_training(const std::vector<text::Sentence>& sentences,
                                     const FeatureExtractor& extractor,
                                     crf::FeatureIndex& index,
                                     const crf::StateSpace& space) {
  crf::Batch batch;
  batch.reserve(sentences.size());
  for (const auto& s : sentences)
    if (s.size() > 0) batch.push_back(encode_for_training(s, extractor, index, space));
  return batch;
}

crf::Batch encode_batch_for_inference(const std::vector<text::Sentence>& sentences,
                                      const FeatureExtractor& extractor,
                                      const crf::FeatureIndex& index) {
  crf::Batch batch;
  batch.reserve(sentences.size());
  for (const auto& s : sentences)
    if (s.size() > 0) batch.push_back(encode_for_inference(s, extractor, index));
  return batch;
}

}  // namespace graphner::features
