// Mutual-information feature selection (Table III's "MI > threshold" rows).
//
// For every feature name appearing in a labelled corpus, computes the
// mutual information between the binary feature indicator and the token's
// tag, I(F; T) = sum_{f,t} p(f,t) log(p(f,t) / (p(f) p(t))), and keeps
// features above a threshold. The selected set restricts the vertex
// representation used in graph construction.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "src/features/extractor.hpp"
#include "src/text/sentence.hpp"

namespace graphner::features {

struct MiScore {
  std::string feature;
  double mi = 0.0;
};

/// MI of every feature with the tag distribution, descending.
[[nodiscard]] std::vector<MiScore> feature_mutual_information(
    const std::vector<text::Sentence>& labelled, const FeatureExtractor& extractor);

/// Features with MI strictly greater than `threshold`.
[[nodiscard]] std::unordered_set<std::string> select_by_mi(
    const std::vector<MiScore>& scores, double threshold);

}  // namespace graphner::features
