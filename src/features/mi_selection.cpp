#include "src/features/mi_selection.hpp"

#include "src/text/label_set.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace graphner::features {

std::vector<MiScore> feature_mutual_information(
    const std::vector<text::Sentence>& labelled, const FeatureExtractor& extractor) {
  // Joint counts: feature -> per-tag occurrence counts; plus tag marginals.
  std::unordered_map<std::string, std::array<std::uint64_t, text::kMaxLabels>> joint;
  std::array<std::uint64_t, text::kMaxLabels> tag_counts{};
  std::uint64_t total = 0;

  for (const auto& sentence : labelled) {
    if (!sentence.has_tags()) continue;
    const auto features = extractor.extract(sentence);
    for (std::size_t i = 0; i < sentence.size(); ++i) {
      const std::size_t t = text::tag_index(sentence.tags[i]);
      ++tag_counts[t];
      ++total;
      for (const auto& name : features[i]) ++joint[name][t];
    }
  }
  std::vector<MiScore> scores;
  if (total == 0) return scores;
  scores.reserve(joint.size());

  const auto n = static_cast<double>(total);
  for (const auto& [name, counts] : joint) {
    std::uint64_t feature_total = 0;
    for (const auto c : counts) feature_total += c;
    const double pf = static_cast<double>(feature_total) / n;
    double mi = 0.0;
    for (std::size_t t = 0; t < text::kMaxLabels; ++t) {
      const double pt = static_cast<double>(tag_counts[t]) / n;
      if (pt <= 0.0) continue;
      // Present-feature cell.
      if (counts[t] > 0) {
        const double pft = static_cast<double>(counts[t]) / n;
        mi += pft * std::log(pft / (pf * pt));
      }
      // Absent-feature cell.
      const double p_not_ft = (static_cast<double>(tag_counts[t]) - counts[t]) / n;
      const double p_not_f = 1.0 - pf;
      if (p_not_ft > 0.0 && p_not_f > 0.0)
        mi += p_not_ft * std::log(p_not_ft / (p_not_f * pt));
    }
    scores.push_back({name, mi});
  }
  std::sort(scores.begin(), scores.end(), [](const MiScore& a, const MiScore& b) {
    return a.mi != b.mi ? a.mi > b.mi : a.feature < b.feature;
  });
  return scores;
}

std::unordered_set<std::string> select_by_mi(const std::vector<MiScore>& scores,
                                             double threshold) {
  std::unordered_set<std::string> selected;
  for (const auto& s : scores)
    if (s.mi > threshold) selected.insert(s.feature);
  return selected;
}

}  // namespace graphner::features
