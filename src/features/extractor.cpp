#include "src/features/extractor.hpp"

#include <array>
#include <cassert>

#include "src/features/gazetteer.hpp"

#include "src/text/lemmatizer.hpp"
#include "src/util/strings.hpp"

namespace graphner::features {
namespace {

using util::to_lower;

[[nodiscard]] std::string token_at(const text::Sentence& sentence, long long pos) {
  if (pos < 0) return "<s>";
  if (pos >= static_cast<long long>(sentence.size())) return "</s>";
  return sentence.tokens[static_cast<std::size_t>(pos)];
}

[[nodiscard]] const char* length_bucket(std::size_t n) noexcept {
  if (n == 1) return "1";
  if (n == 2) return "2";
  if (n <= 4) return "3-4";
  if (n <= 6) return "5-6";
  return "7+";
}

}  // namespace

bool is_roman_numeral(const std::string& token) noexcept {
  if (token.empty()) return false;
  for (char c : token) {
    switch (c) {
      case 'I': case 'V': case 'X': case 'L': case 'C': case 'D': case 'M':
        break;
      default:
        return false;
    }
  }
  return token.size() <= 4;  // gene contexts rarely exceed short numerals
}

bool is_greek_letter(const std::string& token) noexcept {
  static constexpr std::array<std::string_view, 12> kGreek = {
      "alpha", "beta",  "gamma", "delta", "epsilon", "zeta",
      "eta",   "theta", "kappa", "lambda", "sigma",  "omega"};
  const std::string lowered = to_lower(token);
  for (const auto& g : kGreek)
    if (lowered == g) return true;
  return false;
}

TokenFeatures FeatureExtractor::extract_at(const text::Sentence& sentence,
                                           std::size_t position) const {
  TokenFeatures out;
  extract_at_into(sentence, position, out);
  return out;
}

void FeatureExtractor::extract_at_into(const text::Sentence& sentence,
                                       std::size_t position,
                                       TokenFeatures& out) const {
  assert(position < sentence.size());
  out.clear();
  out.reserve(32);
  const std::string& token = sentence.tokens[position];
  const std::string lowered = to_lower(token);

  if (config_.token_identity) {
    out.push_back("W=" + token);
    out.push_back("WL=" + lowered);
  }
  if (config_.lemmas) out.push_back("LEMMA=" + text::lemmatize(token));

  if (config_.context) {
    const auto w = static_cast<long long>(config_.context_window);
    for (long long d = -w; d <= w; ++d) {
      if (d == 0) continue;
      out.push_back("C[" + std::to_string(d) + "]=" +
                    to_lower(token_at(sentence, static_cast<long long>(position) + d)));
    }
  }
  if (config_.token_bigrams) {
    out.push_back("BG[-1]=" +
                  to_lower(token_at(sentence, static_cast<long long>(position) - 1)) +
                  "_" + lowered);
    out.push_back("BG[+1]=" + lowered + "_" +
                  to_lower(token_at(sentence, static_cast<long long>(position) + 1)));
  }
  if (config_.shapes) {
    out.push_back("SHAPE=" + util::word_shape(token));
    out.push_back("CSHAPE=" + util::compressed_shape(token));
  }
  if (config_.affixes) {
    for (std::size_t n = 1; n <= config_.max_affix_length && n < lowered.size(); ++n) {
      out.push_back("PRE" + std::to_string(n) + "=" + lowered.substr(0, n));
      out.push_back("SUF" + std::to_string(n) + "=" + lowered.substr(lowered.size() - n));
    }
  }
  if (config_.char_ngrams) {
    const std::string padded = "^" + lowered + "$";
    for (std::size_t n = 2; n <= 3; ++n) {
      if (padded.size() < n) break;
      for (std::size_t i = 0; i + n <= padded.size(); ++i)
        out.push_back("CN" + std::to_string(n) + "=" + padded.substr(i, n));
    }
  }
  if (config_.orthographic) {
    if (util::is_all_caps(token)) out.emplace_back("ALLCAPS");
    if (util::is_init_caps(token)) out.emplace_back("INITCAP");
    if (util::is_all_digits(token)) out.emplace_back("ALLDIGITS");
    if (util::has_digit(token) && util::has_letter(token)) out.emplace_back("ALPHANUM");
    if (util::has_digit(token)) out.emplace_back("HASDIGIT");
    if (token.find('-') != std::string::npos) out.emplace_back("HASDASH");
    if (token.find('/') != std::string::npos) out.emplace_back("HASSLASH");
    if (!util::has_letter(token) && !util::has_digit(token)) out.emplace_back("ISPUNCT");
    if (token.size() == 1) out.emplace_back("SINGLECHAR");
    if (is_roman_numeral(token)) out.emplace_back("ROMAN");
    if (is_greek_letter(token)) out.emplace_back("GREEK");
  }
  if (config_.length_bucket)
    out.push_back(std::string("LEN=") + length_bucket(token.size()));

  if (config_.brown != nullptr) {
    for (const std::size_t n : {4U, 6U, 10U}) {
      const std::string prefix = config_.brown->path_prefix(lowered, n);
      if (!prefix.empty())
        out.push_back("BR" + std::to_string(n) + "=" + prefix);
    }
    // Context Brown paths link unseen symbols to seen ones via neighbours.
    for (const long long d : {-1LL, 1LL}) {
      const std::string ctx =
          to_lower(token_at(sentence, static_cast<long long>(position) + d));
      const std::string prefix = config_.brown->path_prefix(ctx, 6);
      if (!prefix.empty())
        out.push_back("BRC[" + std::to_string(d) + "]=" + prefix);
    }
  }
  if (config_.embedding_clusters != nullptr) {
    const int c = config_.embedding_clusters->cluster(lowered);
    if (c >= 0) out.push_back("EMB=" + std::to_string(c));
    for (const long long d : {-1LL, 1LL}) {
      const std::string ctx =
          to_lower(token_at(sentence, static_cast<long long>(position) + d));
      const int cc = config_.embedding_clusters->cluster(ctx);
      if (cc >= 0)
        out.push_back("EMBC[" + std::to_string(d) + "]=" + std::to_string(cc));
    }
  }
}

std::vector<TokenFeatures> FeatureExtractor::extract(
    const text::Sentence& sentence) const {
  std::vector<TokenFeatures> out;
  extract_into(sentence, out);
  return out;
}

void FeatureExtractor::extract_into(const text::Sentence& sentence,
                                    std::vector<TokenFeatures>& out) const {
  // Shrink-then-fill keeps the inner vectors' string capacity alive across
  // calls, which is what the serving workers reuse per batch.
  if (out.size() > sentence.size()) out.resize(sentence.size());
  out.reserve(sentence.size());
  while (out.size() < sentence.size()) out.emplace_back();
  for (std::size_t i = 0; i < sentence.size(); ++i)
    extract_at_into(sentence, i, out[i]);

  if (config_.gazetteer != nullptr) config_.gazetteer->annotate(sentence, out);

  if (config_.pos_tagger != nullptr && sentence.size() > 0) {
    const auto pos = config_.pos_tagger->tag(sentence.tokens);
    for (std::size_t i = 0; i < sentence.size(); ++i) {
      out[i].push_back("POS=" + pos[i]);
      out[i].push_back("POS[-1]=" + (i > 0 ? pos[i - 1] : std::string("<s>")));
      out[i].push_back("POS[+1]=" +
                       (i + 1 < pos.size() ? pos[i + 1] : std::string("</s>")));
    }
  }
}

}  // namespace graphner::features
