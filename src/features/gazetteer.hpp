// Terminology / gazetteer feature bank.
//
// Following Lerner et al.'s terminology-augmented clinical NER, a
// Gazetteer holds named term lists ("banks") of multi-token phrases —
// typically one bank per entity type, harvested from the labelled training
// mentions or loaded from an external terminology. At extraction time every
// longest match contributes positional membership features
// ("GAZB=<bank>" on the first token, "GAZI=<bank>" inside), giving the CRF
// a typed lexicon signal that, on a multi-entity corpus, is what separates
// look-alike surface forms whose type only a terminology knows.
//
// Matching is case-insensitive and longest-match-first per bank; banks
// match independently, so a phrase shared by two terminologies fires both.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/features/extractor.hpp"
#include "src/text/label_set.hpp"
#include "src/text/sentence.hpp"

namespace graphner::features {

class Gazetteer {
 public:
  /// Add one term (a non-empty token sequence) to `bank`, creating the
  /// bank on first use. Tokens are normalized to ASCII lowercase.
  void add_term(std::string_view bank, const std::vector<std::string>& tokens);

  /// Harvest a terminology from labelled sentences: every gold mention is
  /// added to the bank named after its entity type (the single-type set
  /// uses one "GENE" bank).
  [[nodiscard]] static Gazetteer from_labelled(
      const std::vector<text::Sentence>& sentences,
      const text::LabelSet& labels);

  [[nodiscard]] std::size_t num_banks() const noexcept { return banks_.size(); }
  [[nodiscard]] std::size_t num_terms() const noexcept { return num_terms_; }
  [[nodiscard]] bool empty() const noexcept { return num_terms_ == 0; }
  /// Bank names in canonical (sorted) order.
  [[nodiscard]] std::vector<std::string> bank_names() const;

  /// Append membership features to `features` (one TokenFeatures per
  /// position, already sized to the sentence): "GAZB=<bank>" on the first
  /// token of each longest match, "GAZI=<bank>" on the rest.
  void annotate(const text::Sentence& sentence,
                std::vector<TokenFeatures>& features) const;

  /// Canonical serialization (banks and terms sorted): equal gazetteers
  /// produce byte-identical output, like every other model table.
  void save(std::ostream& out) const;
  static Gazetteer load(std::istream& in);

 private:
  struct Bank {
    std::string name;
    std::unordered_set<std::string> phrases;  ///< space-joined lowercase
    std::unordered_set<std::string> first_tokens;
    std::size_t max_tokens = 1;
  };

  Bank& bank_for(std::string_view name);

  std::vector<Bank> banks_;
  std::unordered_map<std::string, std::size_t> bank_index_;
  std::size_t num_terms_ = 0;
};

}  // namespace graphner::features
