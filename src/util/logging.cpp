#include "src/util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace graphner::util {
namespace {

LogLevel parse_level(const char* text) noexcept {
  const std::string_view v = text == nullptr ? "" : text;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_slot() noexcept {
  static std::atomic<LogLevel> level{parse_level(std::getenv("GRAPHNER_LOG"))};
  return level;
}

std::mutex& sink_mutex() noexcept {
  static std::mutex m;
  return m;
}

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

void stderr_sink(LogLevel level, std::string_view message) {
  std::cerr << "[graphner " << level_tag(level) << "] " << message << '\n';
}

LogSink& sink_slot() noexcept {
  static LogSink sink = stderr_sink;
  return sink;
}

}  // namespace

LogLevel log_level() noexcept { return level_slot().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  level_slot().store(level, std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = sink ? std::move(sink) : LogSink(stderr_sink);
}

void log(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot()(level, message);
}

}  // namespace graphner::util
