// Wall-clock timing used by the Fig. 2 harness and the logging layer.
#pragma once

#include <chrono>

namespace graphner::util {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals (e.g. summing the
/// graph-propagation share of a full pipeline run).
class IntervalTimer {
 public:
  void start() noexcept { watch_.restart(); running_ = true; }
  void stop() noexcept {
    if (running_) total_ += watch_.seconds();
    running_ = false;
  }
  [[nodiscard]] double seconds() const noexcept {
    return running_ ? total_ + watch_.seconds() : total_;
  }
  void reset() noexcept { total_ = 0.0; running_ = false; }

 private:
  Stopwatch watch_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace graphner::util
