#include "src/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace graphner::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

void TablePrinter::print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    out << '\n';
  };

  if (!title.empty()) out << title << '\n';
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void TablePrinter::print_tsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << '\t';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace graphner::util
