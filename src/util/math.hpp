// Numerical helpers shared across CRF, propagation and neural modules.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace graphner::util {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// log(exp(a) + exp(b)) computed stably.
[[nodiscard]] inline double log_add(double a, double b) noexcept {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

/// Stable log(sum_i exp(xs[i])); returns -inf for an empty span.
[[nodiscard]] inline double log_sum_exp(std::span<const double> xs) noexcept {
  double hi = kNegInf;
  for (double x : xs) hi = std::max(hi, x);
  if (hi == kNegInf) return kNegInf;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - hi);
  return hi + std::log(sum);
}

/// In-place softmax over `xs`.
inline void softmax_inplace(std::span<double> xs) noexcept {
  const double lse = log_sum_exp(xs);
  for (double& x : xs) x = std::exp(x - lse);
}

/// Normalize a non-negative vector to sum to 1; uniform fallback if all-zero.
inline void normalize_inplace(std::span<double> xs) noexcept {
  double total = 0.0;
  for (double x : xs) total += x;
  if (total <= 0.0) {
    const double u = xs.empty() ? 0.0 : 1.0 / static_cast<double>(xs.size());
    for (double& x : xs) x = u;
    return;
  }
  for (double& x : xs) x /= total;
}

/// Squared L2 distance between two equal-length spans.
[[nodiscard]] inline double squared_l2(std::span<const double> a,
                                       std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Dot product.
[[nodiscard]] inline double dot(std::span<const double> a,
                                std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// Euclidean norm.
[[nodiscard]] inline double norm(std::span<const double> a) noexcept {
  return std::sqrt(dot(a, a));
}

/// Kahan-compensated running sum; used where many small doubles accumulate.
class KahanSum {
 public:
  void add(double x) noexcept {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Harmonic mean of precision and recall; 0 when both are 0.
[[nodiscard]] inline double f_score(double precision, double recall) noexcept {
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

/// Clamp helper used by optimizers.
[[nodiscard]] inline double clamp(double x, double lo, double hi) noexcept {
  return std::min(hi, std::max(lo, x));
}

}  // namespace graphner::util
