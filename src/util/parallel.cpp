#include "src/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace graphner::util {
namespace {

int default_thread_count() noexcept {
  if (const char* env = std::getenv("GRAPHNER_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int>& thread_count_slot() noexcept {
  static std::atomic<int> count{default_thread_count()};
  return count;
}

}  // namespace

int num_threads() noexcept { return thread_count_slot().load(std::memory_order_relaxed); }

void set_num_threads(int n) noexcept {
  thread_count_slot().store(std::max(1, n), std::memory_order_relaxed);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  const auto workers = static_cast<std::size_t>(num_threads());
  if (workers <= 1 || n < 2 * workers) {
    fn(begin, end);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(lo + chunk, end);
    if (lo >= hi) break;
    threads.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace graphner::util
