// Implementation detail of parallel_reduce (template, must live in a header).
#pragma once

#include <thread>
#include <vector>

namespace graphner::util {

template <typename Acc, typename Fn, typename Merge>
Acc parallel_reduce(std::size_t begin, std::size_t end, Acc init, Fn&& fn,
                    Merge&& merge) {
  const std::size_t n = end > begin ? end - begin : 0;
  const auto workers = static_cast<std::size_t>(num_threads());
  if (n == 0) return init;
  if (workers <= 1 || n < 2 * workers) {
    Acc acc = std::move(init);
    for (std::size_t i = begin; i < end; ++i) fn(acc, i);
    return acc;
  }
  std::vector<Acc> partials(workers, init);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    if (lo >= hi) break;
    threads.emplace_back([&, w, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(partials[w], i);
    });
  }
  for (auto& t : threads) t.join();
  Acc acc = std::move(init);
  for (auto& p : partials) merge(acc, p);
  return acc;
}

}  // namespace graphner::util
