#include "src/util/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/util/fault.hpp"

namespace graphner::util {
namespace {

constexpr std::uint32_t kFrameMagic = 0x474E574CU;  // "GNWL"
constexpr std::size_t kHeaderBytes = 12;            // magic + length + crc

[[nodiscard]] const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(char* out, std::uint32_t value) {
  out[0] = static_cast<char>(value & 0xFF);
  out[1] = static_cast<char>((value >> 8) & 0xFF);
  out[2] = static_cast<char>((value >> 16) & 0xFF);
  out[3] = static_cast<char>((value >> 24) & 0xFF);
}

[[nodiscard]] std::uint32_t get_u32(const char* in) {
  const auto* b = reinterpret_cast<const unsigned char*>(in);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal: write to " + path + " failed: " +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0)
    throw std::runtime_error("wal: fsync " + path + " failed: " +
                             std::strerror(errno));
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xFFU] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFU;
}

const char* wal_tail_state_name(WalTailState state) noexcept {
  switch (state) {
    case WalTailState::kClean: return "clean";
    case WalTailState::kShortHeader: return "short-header";
    case WalTailState::kTruncatedPayload: return "truncated-payload";
    case WalTailState::kBadCrc: return "bad-crc";
    case WalTailState::kBadMagic: return "bad-magic";
  }
  return "?";
}

WalReplay wal_replay(const std::string& path) {
  WalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (::access(path.c_str(), F_OK) != 0) return replay;  // no log yet
    throw std::runtime_error("wal: cannot read " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("wal: read of " + path + " failed");
  replay.file_bytes = data.size();

  std::size_t offset = 0;
  const auto fail = [&](WalTailState state, std::string why) {
    replay.tail = state;
    replay.error = "record " + std::to_string(replay.records.size()) +
                   " at byte " + std::to_string(offset) + ": " + std::move(why);
  };
  while (offset < data.size()) {
    const std::size_t remaining = data.size() - offset;
    if (remaining < kHeaderBytes) {
      fail(WalTailState::kShortHeader,
           "torn frame header (" + std::to_string(remaining) + " of " +
               std::to_string(kHeaderBytes) + " bytes)");
      break;
    }
    const std::uint32_t magic = get_u32(data.data() + offset);
    if (magic != kFrameMagic) {
      fail(WalTailState::kBadMagic, "trailing garbage (bad frame magic)");
      break;
    }
    const std::uint32_t length = get_u32(data.data() + offset + 4);
    const std::uint32_t crc = get_u32(data.data() + offset + 8);
    if (remaining - kHeaderBytes < length) {
      fail(WalTailState::kTruncatedPayload,
           "payload truncated (" + std::to_string(remaining - kHeaderBytes) +
               " of " + std::to_string(length) + " bytes)");
      break;
    }
    const char* payload = data.data() + offset + kHeaderBytes;
    if (crc32(payload, length) != crc) {
      fail(WalTailState::kBadCrc, "payload CRC mismatch");
      break;
    }
    replay.records.emplace_back(payload, length);
    offset += kHeaderBytes + length;
    replay.committed_bytes = offset;
  }
  return replay;
}

Wal::Wal(std::string path) : path_(std::move(path)) {
  const WalReplay replay = wal_replay(path_);
  recovered_tail_ = replay.tail;
  recovered_torn_bytes_ = replay.file_bytes - replay.committed_bytes;
  bytes_ = replay.committed_bytes;
  records_ = replay.records.size();

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0)
    throw std::runtime_error("wal: cannot open " + path_ + " for append: " +
                             std::strerror(errno));
  // Drop any torn tail now so the append offset is a frame boundary.
  if (recovered_torn_bytes_ > 0) {
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0)
      throw std::runtime_error("wal: truncating torn tail of " + path_ +
                               " failed: " + std::strerror(errno));
    fsync_or_throw(fd_, path_);
  }
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

void Wal::append(std::string_view payload) {
  if (fault_fires("learn.wal.append"))
    throw FaultInjectedError("learn.wal.append for " + path_);

  if (dirty_tail_) {
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0)
      throw std::runtime_error("wal: truncating failed tail of " + path_ +
                               ": " + std::strerror(errno));
    dirty_tail_ = false;
  }

  std::string frame(kHeaderBytes + payload.size(), '\0');
  put_u32(frame.data(), kFrameMagic);
  put_u32(frame.data() + 4, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame.data() + 8, crc32(payload.data(), payload.size()));
  std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());

  if (::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET) < 0)
    throw std::runtime_error("wal: seek in " + path_ + " failed: " +
                             std::strerror(errno));

  // Chaos hook: a crash mid-append leaves a torn frame on disk. The torn
  // prefix is flushed so the state a restart recovers from is exactly what
  // the "crash" left behind; committed counters do not move.
  if (fault_fires("learn.wal.torn")) {
    const std::size_t torn = frame.size() > 1 ? frame.size() / 2 : 1;
    write_all(fd_, frame.data(), torn, path_);
    fsync_or_throw(fd_, path_);
    dirty_tail_ = true;
    throw FaultInjectedError("learn.wal.torn while appending to " + path_);
  }

  write_all(fd_, frame.data(), frame.size(), path_);
  fsync_or_throw(fd_, path_);
  bytes_ += frame.size();
  ++records_;
}

void Wal::reset() {
  if (::ftruncate(fd_, 0) != 0)
    throw std::runtime_error("wal: reset of " + path_ + " failed: " +
                             std::strerror(errno));
  fsync_or_throw(fd_, path_);
  bytes_ = 0;
  records_ = 0;
  dirty_tail_ = false;
}

}  // namespace graphner::util
