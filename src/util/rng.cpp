#include "src/util/rng.hpp"

#include <cassert>
#include <cmath>

namespace graphner::util {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded draw with rejection for exactness.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

std::size_t Rng::zipf(std::size_t n, double skew) noexcept {
  assert(n > 0);
  // Inverse-CDF approximation: draw u, map through x^(1/(1-skew)) shape.
  // Exact Zipf sampling is unnecessary here; we only need a long-tailed
  // rank-frequency profile for synthetic text.
  const double u = uniform();
  const double x = std::pow(static_cast<double>(n), 1.0 - u);
  auto idx = static_cast<std::size_t>(x) - 1;
  if (skew > 1.0) {
    // Sharpen the head slightly for higher skew values.
    idx = static_cast<std::size_t>(static_cast<double>(idx) / skew);
  }
  return idx < n ? idx : n - 1;
}

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace graphner::util
