// Tiny command-line flag parser for benches and examples.
//
//   util::Cli cli("table1_bc2gm", "Reproduce Table I");
//   auto scale = cli.flag<double>("scale", 1.0, "corpus scale factor");
//   auto seed  = cli.flag<std::uint64_t>("seed", 42, "rng seed");
//   cli.parse(argc, argv);          // exits on --help / bad flag
//   run(*scale, *seed);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace graphner::util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Register --name <value>; returns a stable pointer filled in by parse().
  template <typename T>
  [[nodiscard]] std::shared_ptr<T> flag(std::string name, T default_value,
                                        std::string help);

  /// Register boolean --name (no value; presence sets true).
  [[nodiscard]] std::shared_ptr<bool> toggle(std::string name, std::string help);

  /// Parse argv. Prints usage and exits(0) on --help; exits(2) on bad input.
  void parse(int argc, char** argv);

  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string help;
    std::string default_repr;
    bool is_toggle = false;
    // Applies the raw text to the bound storage; returns false on parse error.
    std::function<bool(const std::string&)> apply;
  };

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

}  // namespace graphner::util

#include "src/util/cli_impl.hpp"
