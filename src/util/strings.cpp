#include "src/util/strings.hpp"

#include <cctype>

namespace graphner::util {
namespace {

[[nodiscard]] bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
[[nodiscard]] bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}
[[nodiscard]] bool is_alpha(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0;
}
[[nodiscard]] bool is_upper(char c) noexcept {
  return std::isupper(static_cast<unsigned char>(c)) != 0;
}
[[nodiscard]] bool is_lower(char c) noexcept {
  return std::islower(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool is_all_digits(std::string_view text) noexcept {
  if (text.empty()) return false;
  for (char c : text)
    if (!is_digit(c)) return false;
  return true;
}

bool is_all_caps(std::string_view text) noexcept {
  bool saw_letter = false;
  for (char c : text) {
    if (is_alpha(c)) {
      if (!is_upper(c)) return false;
      saw_letter = true;
    }
  }
  return saw_letter;
}

bool is_init_caps(std::string_view text) noexcept {
  if (text.empty() || !is_upper(text[0])) return false;
  for (std::size_t i = 1; i < text.size(); ++i)
    if (!is_lower(text[i])) return false;
  return true;
}

bool has_digit(std::string_view text) noexcept {
  for (char c : text)
    if (is_digit(c)) return true;
  return false;
}

bool has_letter(std::string_view text) noexcept {
  for (char c : text)
    if (is_alpha(c)) return true;
  return false;
}

bool has_punct(std::string_view text) noexcept {
  for (char c : text)
    if (!is_alpha(c) && !is_digit(c) && !is_space(c)) return true;
  return false;
}

std::string word_shape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (is_upper(c)) out += 'A';
    else if (is_lower(c)) out += 'a';
    else if (is_digit(c)) out += '0';
    else out += '_';
  }
  return out;
}

std::string compressed_shape(std::string_view text) {
  const std::string shape = word_shape(text);
  std::string out;
  for (char c : shape)
    if (out.empty() || out.back() != c) out += c;
  return out;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace graphner::util
