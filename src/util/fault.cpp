#include "src/util/fault.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace graphner::util {
namespace {

/// FNV-1a over the point name: stable across runs and platforms, so the
/// (seed, point, n) -> decision mapping is too.
[[nodiscard]] std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic uniform [0, 1) draw for call #n at a point.
[[nodiscard]] double decision_draw(std::uint64_t seed, std::uint64_t point_hash,
                                   std::uint64_t n) noexcept {
  std::uint64_t state = seed ^ point_hash ^ (n * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec, std::uint64_t seed) {
  std::unordered_map<std::string, std::unique_ptr<Point>> points;
  for (const auto& entry : split(spec, ',')) {
    const std::string_view item = trim(entry);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw std::invalid_argument("fault spec entry '" + std::string(item) +
                                  "': expected point=prob[:stall_ms][:max_fires]");
    auto point = std::make_unique<Point>();
    const std::string name{trim(item.substr(0, eq))};
    const auto fields = split(std::string(item.substr(eq + 1)), ':');
    if (fields.empty() || fields.size() > 3)
      throw std::invalid_argument("fault spec entry '" + std::string(item) +
                                  "': expected 1-3 ':'-separated values");
    try {
      point->probability = std::stod(fields[0]);
      if (fields.size() > 1)
        point->stall = std::chrono::milliseconds(std::stol(fields[1]));
      if (fields.size() > 2) point->max_fires = std::stoull(fields[2]);
    } catch (const std::exception&) {
      throw std::invalid_argument("fault spec entry '" + std::string(item) +
                                  "': non-numeric value");
    }
    if (point->probability < 0.0 || point->probability > 1.0)
      throw std::invalid_argument("fault point '" + name +
                                  "': probability must be in [0, 1]");
    points[name] = std::move(point);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  points_ = std::move(points);
  seed_ = seed;
  enabled_.store(!points_.empty(), std::memory_order_relaxed);
}

void FaultInjector::configure_from_env() {
  const char* spec = std::getenv("GRAPHNER_FAULTS");
  if (spec == nullptr || *spec == '\0') return;
  const char* seed_text = std::getenv("GRAPHNER_FAULT_SEED");
  std::uint64_t seed = 1;
  if (seed_text != nullptr && *seed_text != '\0') seed = std::strtoull(seed_text, nullptr, 10);
  configure(spec, seed);
}

void FaultInjector::disable() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_fire(std::string_view point) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(std::string(point));
  if (it == points_.end()) return false;
  Point& p = *it->second;
  const std::uint64_t n = p.calls.fetch_add(1, std::memory_order_relaxed);
  if (p.fires.load(std::memory_order_relaxed) >= p.max_fires) return false;
  const bool fire = decision_draw(seed_, hash_name(point), n) < p.probability;
  if (fire) p.fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

bool FaultInjector::maybe_stall(std::string_view point) {
  std::chrono::milliseconds stall{0};
  {
    // should_fire locks too; fetch the stall first so the sleep itself
    // happens outside the registry lock.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(std::string(point));
    if (it == points_.end()) return false;
    stall = it->second->stall;
  }
  if (!should_fire(point)) return false;
  if (stall.count() > 0) std::this_thread::sleep_for(stall);
  return true;
}

std::chrono::milliseconds FaultInjector::stall_of(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(std::string(point));
  return it == points_.end() ? std::chrono::milliseconds{0} : it->second->stall;
}

FaultInjector::PointStats FaultInjector::stats(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(std::string(point));
  if (it == points_.end()) return {};
  return {it->second->calls.load(std::memory_order_relaxed),
          it->second->fires.load(std::memory_order_relaxed)};
}

std::vector<std::pair<std::string, FaultInjector::PointStats>>
FaultInjector::all_stats() const {
  std::vector<std::pair<std::string, PointStats>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(points_.size());
    for (const auto& [name, point] : points_)
      out.emplace_back(name,
                       PointStats{point->calls.load(std::memory_order_relaxed),
                                  point->fires.load(std::memory_order_relaxed)});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string FaultInjector::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, point] : points_)
    out << name << ' ' << point->fires.load(std::memory_order_relaxed) << '/'
        << point->calls.load(std::memory_order_relaxed) << '\n';
  return out.str();
}

// --- Backoff ---------------------------------------------------------------

Backoff::Backoff(BackoffPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_state_(seed) {}

std::chrono::milliseconds Backoff::next_delay() {
  if (!can_retry()) throw std::logic_error("Backoff: retries exhausted");
  double delay = static_cast<double>(policy_.initial.count());
  for (int i = 0; i < attempts_; ++i) delay *= policy_.multiplier;
  delay = std::min(delay, static_cast<double>(policy_.max.count()));
  const double draw =
      static_cast<double>(splitmix64(rng_state_) >> 11) * 0x1.0p-53;
  delay *= 1.0 + policy_.jitter * (2.0 * draw - 1.0);
  ++attempts_;
  return std::chrono::milliseconds(
      std::max<long long>(0, static_cast<long long>(delay)));
}

void Backoff::sleep() { std::this_thread::sleep_for(next_delay()); }

// --- Crash-safe writes -----------------------------------------------------

namespace {

void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return;  // fsync is best-effort on exotic filesystems
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_save(const std::string& path,
                 const std::function<void(std::ostream&)>& writer) {
  atomic_save(path, writer, "checkpoint.truncate");
}

void atomic_save(const std::string& path,
                 const std::function<void(std::ostream&)>& writer,
                 std::string_view truncate_fault_point) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("atomic_save: cannot open " + tmp +
                               " for writing");
    writer(out);
    out.flush();
    if (!out) throw std::runtime_error("atomic_save: write failed for " + tmp);
  }

  // Chaos hook: a crash mid-write leaves a torn tmp and never reaches the
  // rename — the destination keeps its previous complete content.
  if (fault_fires(truncate_fault_point)) {
    if (::truncate(tmp.c_str(), 0) != 0) { /* tmp already torn enough */ }
    throw FaultInjectedError(std::string(truncate_fault_point) +
                             " while writing " + path);
  }

  fsync_path(tmp, O_WRONLY);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("atomic_save: rename " + tmp + " -> " + path +
                             ": " + std::strerror(errno));
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  fsync_path(dir, O_RDONLY);
}

}  // namespace graphner::util
