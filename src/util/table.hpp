// Console table rendering for the paper-style benchmark output.
//
// The bench binaries print rows in the same layout as the paper's tables;
// TablePrinter handles column alignment and optional TSV export so results
// can be diffed across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace graphner::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row (must have the same arity as the header).
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  [[nodiscard]] static std::string fmt(double value, int precision = 2);

  /// Render as an aligned ASCII table.
  void print(std::ostream& out, const std::string& title = "") const;

  /// Render as tab-separated values (one header line + rows).
  void print_tsv(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace graphner::util
