// Minimal leveled logging through a replaceable sink.
//
// Library code logs through these helpers instead of writing to std::cerr
// directly so harnesses can silence progress chatter (GRAPHNER_LOG=warn)
// or redirect it: set_log_sink() swaps the backend (default: stderr with
// a "[graphner LEVEL]" prefix), which is how tests capture span
// open/close lines and how embedders forward logs to their own systems.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace graphner::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current threshold (default kInfo; override via GRAPHNER_LOG env var:
/// debug|info|warn|error|off).
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Receives every message that passes the threshold. Invoked under the
/// logging mutex, so a sink need not be thread-safe but must not log
/// reentrantly.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replace the sink; pass nullptr (or {}) to restore the stderr default.
void set_log_sink(LogSink sink);

/// Emit `message` at `level` if it passes the threshold. Thread-safe.
void log(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace graphner::util
