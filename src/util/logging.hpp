// Minimal leveled logging to stderr.
//
// Library code logs through these helpers instead of writing to std::cerr
// directly so harnesses can silence progress chatter (GRAPHNER_LOG=warn).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace graphner::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current threshold (default kInfo; override via GRAPHNER_LOG env var:
/// debug|info|warn|error|off).
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emit `message` at `level` if it passes the threshold. Thread-safe.
void log(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace graphner::util
