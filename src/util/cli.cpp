#include "src/util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace graphner::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::shared_ptr<bool> Cli::toggle(std::string name, std::string help) {
  auto storage = std::make_shared<bool>(false);
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.default_repr = "false";
  opt.is_toggle = true;
  opt.apply = [storage](const std::string&) {
    *storage = true;
    return true;
  };
  options_.push_back(std::move(opt));
  return storage;
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& opt : options_) {
    out << "  --" << opt.name;
    if (!opt.is_toggle) out << " <value>";
    out << "\n      " << opt.help << " (default: " << opt.default_repr << ")\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

void Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      std::cerr << program_ << ": unexpected argument '" << arg << "'\n" << usage();
      std::exit(2);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    Option* match = nullptr;
    for (auto& opt : options_)
      if (opt.name == name) { match = &opt; break; }
    if (match == nullptr) {
      std::cerr << program_ << ": unknown flag --" << name << "\n" << usage();
      std::exit(2);
    }
    if (!match->is_toggle && !has_inline_value) {
      if (i + 1 >= argc) {
        std::cerr << program_ << ": flag --" << name << " expects a value\n";
        std::exit(2);
      }
      value = argv[++i];
    }
    if (!match->apply(value)) {
      std::cerr << program_ << ": bad value '" << value << "' for --" << name << "\n";
      std::exit(2);
    }
  }
}

}  // namespace graphner::util
