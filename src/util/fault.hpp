// Fault-tolerance utilities: deterministic fault injection, capped
// exponential backoff with jitter, and crash-safe (atomic) file writes.
//
// FaultInjector is the chaos-testing backbone: production code is
// sprinkled with *named fault points* (socket.read, worker.stall,
// checkpoint.truncate, ...) that are compiled in always and cost one
// relaxed atomic load when no faults are configured. Enabling a point —
// programmatically or via the GRAPHNER_FAULTS environment variable —
// makes the nth call at that point fire deterministically from a seed, so
// a chaos run is reproducible bit-for-bit regardless of thread
// interleaving: the decision for call #n depends only on (seed, point, n),
// never on which thread happened to get there first.
//
// Backoff implements the retry discipline every client of an overloaded
// or faulty service needs: exponentially growing delays, capped, with
// multiplicative jitter so a thundering herd of retriers decorrelates.
//
// atomic_save is the torn-write guard: write to <path>.tmp, flush, fsync,
// rename over the destination, fsync the directory. A crash at any point
// leaves either the old complete file or the new complete file — never a
// prefix. The checkpoint.truncate fault point simulates exactly the torn
// write the pattern prevents, for tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace graphner::util {

/// Thrown by code paths that fail because an injected fault fired (so
/// tests and callers can tell injected failures from organic ones).
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error("injected fault: " + what) {}
};

/// Process-wide registry of named fault points. Thread-safe; deterministic
/// given (seed, point name, per-point call index).
class FaultInjector {
 public:
  struct PointStats {
    std::uint64_t calls = 0;  ///< times the point was evaluated
    std::uint64_t fires = 0;  ///< times it fired
  };

  [[nodiscard]] static FaultInjector& instance();

  /// Configure from a spec string:
  ///   point=probability[:stall_ms][:max_fires] (',' separated)
  /// e.g. "socket.read=0.05,worker.stall=0.1:20,train.crash.crf=1:0:1".
  /// probability in [0,1]; stall_ms sleeps when the point fires (for stall
  /// points); max_fires caps total fires (default unlimited). Replaces any
  /// previous configuration. Throws std::invalid_argument on a bad spec.
  void configure(const std::string& spec, std::uint64_t seed = 1);

  /// Read GRAPHNER_FAULTS / GRAPHNER_FAULT_SEED; no-op when unset. Called
  /// once at static-init time via instance(), so binaries pick chaos
  /// configuration up without code changes.
  void configure_from_env();

  /// Drop every configured point; enabled() becomes false. Tests use this
  /// to isolate themselves from each other.
  void disable();

  /// Fast gate for the hot path: one relaxed atomic load.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Should the named point fire now? Advances the point's call counter.
  /// Always false for unconfigured points.
  [[nodiscard]] bool should_fire(std::string_view point);

  /// If the point fires, sleep its configured stall and return true.
  bool maybe_stall(std::string_view point);

  /// The stall configured for a point (0 when none).
  [[nodiscard]] std::chrono::milliseconds stall_of(std::string_view point) const;

  [[nodiscard]] PointStats stats(std::string_view point) const;
  /// Every configured point with its stats, sorted by name. Metric scrapes
  /// pull these into "fault.<point>.fires"/".calls" counters at export
  /// time (util can't push into the metric registry — obs sits above it).
  [[nodiscard]] std::vector<std::pair<std::string, PointStats>> all_stats() const;
  /// "point fires/calls" per configured point, one per line (chaos-run
  /// post-mortems; empty when nothing is configured).
  [[nodiscard]] std::string summary() const;

 private:
  struct Point {
    double probability = 0.0;
    std::chrono::milliseconds stall{0};
    std::uint64_t max_fires = ~0ULL;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> fires{0};
  };

  FaultInjector() { configure_from_env(); }

  mutable std::mutex mutex_;  ///< guards points_ shape (reads + reconfigure)
  std::unordered_map<std::string, std::unique_ptr<Point>> points_;
  std::uint64_t seed_ = 1;
  std::atomic<bool> enabled_{false};
};

/// One-liner for fail points: true iff injection is on and `point` fires.
[[nodiscard]] inline bool fault_fires(std::string_view point) {
  FaultInjector& injector = FaultInjector::instance();
  return injector.enabled() && injector.should_fire(point);
}

/// One-liner for stall points: sleeps when the point fires.
inline void fault_stall_point(std::string_view point) {
  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled()) injector.maybe_stall(point);
}

// --- Backoff ---------------------------------------------------------------

struct BackoffPolicy {
  std::chrono::milliseconds initial{50};
  std::chrono::milliseconds max{2000};
  double multiplier = 2.0;
  /// Each delay is scaled by a uniform factor in [1 - jitter, 1 + jitter].
  double jitter = 0.2;
  int max_retries = 5;
};

/// Capped exponential backoff with deterministic jitter. Not thread-safe;
/// one instance per retry loop.
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}, std::uint64_t seed = 0x5eedULL);

  /// True while another retry is allowed (attempts() < max_retries).
  [[nodiscard]] bool can_retry() const noexcept {
    return attempts_ < policy_.max_retries;
  }
  [[nodiscard]] int attempts() const noexcept { return attempts_; }

  /// The next delay (advances the attempt counter). Callers must check
  /// can_retry() first; calling when exhausted throws std::logic_error.
  [[nodiscard]] std::chrono::milliseconds next_delay();

  /// next_delay() + sleep.
  void sleep();

  void reset() noexcept { attempts_ = 0; }

 private:
  BackoffPolicy policy_;
  std::uint64_t rng_state_;
  int attempts_ = 0;
};

// --- Crash-safe writes -----------------------------------------------------

/// Atomically (re)write `path`: the writer streams into `<path>.tmp`, the
/// data is fsync'd, and the tmp is renamed over `path` (with a directory
/// fsync so the rename is durable). On any failure the destination is
/// untouched. The "checkpoint.truncate" fault point simulates a crash that
/// tore the write: the tmp file is truncated and FaultInjectedError is
/// thrown — the destination must still hold its previous complete content.
void atomic_save(const std::string& path,
                 const std::function<void(std::ostream&)>& writer);

/// Same, but the torn-write chaos hook listens on a caller-chosen fault
/// point (e.g. "learn.snapshot.truncate") so different save sites can be
/// crashed independently in one chaos run.
void atomic_save(const std::string& path,
                 const std::function<void(std::ostream&)>& writer,
                 std::string_view truncate_fault_point);

}  // namespace graphner::util
