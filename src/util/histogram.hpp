// Fixed-bin histogram + ASCII rendering, used for the Fig. 3 influence plots
// and the serving-runtime latency metrics (src/serve/metrics.hpp).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace graphner::util {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are clamped to edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  /// Fold another histogram with the identical [lo, hi) x bins layout into
  /// this one. Throws std::invalid_argument on a layout mismatch. This is
  /// how per-worker serving histograms are combined at report time: each
  /// worker owns its histogram exclusively, so merging copies needs no
  /// locking inside the histogram itself.
  void merge(const Histogram& other);

  /// q-quantile (q clamped to [0, 1]) with linear interpolation inside the
  /// containing bin; returns lo() when the histogram is empty. Values that
  /// were clamped into the edge bins report as edge-bin positions, so keep
  /// the range wide enough for the tail you care about.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double max_seen() const noexcept { return max_seen_; }

  /// Horizontal bar chart, `width` characters for the largest bin.
  void print(std::ostream& out, const std::string& title, std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace graphner::util
