// Small string helpers used across text processing and feature extraction.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace graphner::util {

/// Split on a single delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Split on runs of whitespace; drops empty fields.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view text);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view text);

/// ASCII uppercase copy.
[[nodiscard]] std::string to_upper(std::string_view text);

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// True if every character is an ASCII digit (and text non-empty).
[[nodiscard]] bool is_all_digits(std::string_view text) noexcept;

/// True if every alphabetic character is uppercase and at least one exists.
[[nodiscard]] bool is_all_caps(std::string_view text) noexcept;

/// True if first char uppercase, rest lowercase letters.
[[nodiscard]] bool is_init_caps(std::string_view text) noexcept;

[[nodiscard]] bool has_digit(std::string_view text) noexcept;
[[nodiscard]] bool has_letter(std::string_view text) noexcept;
[[nodiscard]] bool has_punct(std::string_view text) noexcept;

/// Word shape: letters -> A/a, digits -> 0, other -> _ ("Abc-12" -> "Aaa_00").
[[nodiscard]] std::string word_shape(std::string_view text);

/// Compressed shape with repeated classes collapsed ("Abc-12" -> "Aa_0").
[[nodiscard]] std::string compressed_shape(std::string_view text);

/// Replace every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string text, std::string_view from,
                                      std::string_view to);

}  // namespace graphner::util
