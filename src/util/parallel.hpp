// Shared-memory parallel loop helpers.
//
// Hot kernels (k-NN graph construction, CRF gradient accumulation, graph
// propagation sweeps) are expressed through parallel_for so they scale with
// cores when OpenMP is available and degrade to a serial loop otherwise.
// Thread count is controlled at runtime via set_num_threads / the
// GRAPHNER_THREADS environment variable so benchmarks stay reproducible.
#pragma once

#include <cstddef>
#include <functional>

namespace graphner::util {

/// Number of worker threads parallel_for will use (>= 1).
[[nodiscard]] int num_threads() noexcept;

/// Override the worker count (clamped to >= 1). Thread-safe.
void set_num_threads(int n) noexcept;

/// Invoke fn(i) for i in [begin, end), split across workers.
/// fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Invoke fn(chunk_begin, chunk_end) over contiguous chunks; lower overhead
/// than per-index dispatch for cheap loop bodies.
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& fn);

/// parallel map-reduce: each worker accumulates into its own Acc with
/// fn(acc, i); partials are merged with merge(lhs, rhs) on the caller thread.
template <typename Acc, typename Fn, typename Merge>
[[nodiscard]] Acc parallel_reduce(std::size_t begin, std::size_t end, Acc init,
                                  Fn&& fn, Merge&& merge);

}  // namespace graphner::util

#include "src/util/parallel_impl.hpp"
