// Deterministic pseudo-random number generation.
//
// All stochastic components in the library (corpus synthesis, negative
// sampling, randomization tests, ...) draw from Rng so that every experiment
// is reproducible from a single 64-bit seed. The generator is xoshiro256**,
// seeded through splitmix64 as recommended by its authors.
#pragma once

#include <cstdint>
#include <vector>

namespace graphner::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit RNG (xoshiro256**). Cheap to copy; a copy continues
/// the same stream, use `split()` to derive an independent stream.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent generator (for per-thread / per-component streams).
  [[nodiscard]] Rng split() noexcept { return Rng{(*this)()}; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool flip(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean / stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Zipf-like draw over [0, n): heavily favours small indices; used to give
  /// synthetic vocabularies a natural frequency profile.
  [[nodiscard]] std::size_t zipf(std::size_t n, double skew = 1.07) noexcept;

  /// Index draw proportional to `weights` (non-negative, not all zero).
  [[nodiscard]] std::size_t weighted(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Uniformly pick an element of a non-empty container.
  template <typename Container>
  [[nodiscard]] const auto& pick(const Container& items) noexcept {
    return items[below(items.size())];
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace graphner::util
