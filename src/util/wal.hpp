// Write-ahead log: CRC-framed, fsync-disciplined append-only journal.
//
// The durability primitive behind the serving tier's online learning
// (DESIGN.md §13): every committed #LEARN batch is framed as
//
//   [u32 magic][u32 payload length][u32 CRC-32 of payload][payload]
//
// and appended with a data fsync *before* the caller acts on it, so a
// crash at any instant loses at most the record being written — never a
// committed one. Recovery (wal_replay) scans the frame chain and stops at
// the first record that fails validation, classifying the tail precisely:
//
//   kShortHeader       fewer bytes remain than one frame header
//   kTruncatedPayload  the header promises more payload than the file has
//   kBadCrc            payload present but its CRC-32 disagrees
//   kBadMagic          the bytes at the record boundary are not a frame
//                      at all (trailing garbage / misaligned write)
//
// Everything before the bad tail is the committed prefix and is returned
// intact; opening the log for append (Wal) truncates the torn tail so new
// records never land after garbage. Two seeded fault points make the
// crash windows testable: "learn.wal.append" fails an append cleanly
// before any byte reaches the file, and "learn.wal.torn" writes a torn
// prefix of the frame (flushed, so it is what a restart would see) and
// then fails — simulating a power cut mid-append.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace graphner::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes.
/// `seed` chains calls: crc32(b, crc32(a)) == crc32(a+b).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

/// Why a WAL scan stopped (kClean = end of file, everything valid).
enum class WalTailState : std::uint8_t {
  kClean = 0,
  kShortHeader,       ///< 1..11 bytes left — a frame header was torn
  kTruncatedPayload,  ///< header complete, payload shorter than promised
  kBadCrc,            ///< payload complete but corrupt
  kBadMagic,          ///< trailing garbage: not a frame boundary at all
};

[[nodiscard]] const char* wal_tail_state_name(WalTailState state) noexcept;

struct WalReplay {
  /// Committed payloads, in append order.
  std::vector<std::string> records;
  WalTailState tail = WalTailState::kClean;
  /// Byte length of the valid prefix (== file size when tail is kClean).
  std::uint64_t committed_bytes = 0;
  std::uint64_t file_bytes = 0;
  /// Human-readable description of the tail corruption ("" when clean).
  std::string error;
};

/// Scan `path` and return every committed record plus the tail state.
/// A missing file is an empty, clean log. Throws std::runtime_error only
/// on I/O errors (unreadable file), never on corruption — corruption is
/// data, reported through the tail state.
[[nodiscard]] WalReplay wal_replay(const std::string& path);

/// Append handle over one WAL file. Opening scans the existing content
/// and truncates any torn tail back to the committed prefix, so the
/// append offset is always a valid frame boundary. Not thread-safe —
/// callers serialize appends (the router holds its swap mutex).
class Wal {
 public:
  explicit Wal(std::string path);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Frame `payload`, append it and fsync. On return the record is
  /// durable. Throws FaultInjectedError from the "learn.wal.append"
  /// (clean failure, no bytes written) and "learn.wal.torn" (torn frame
  /// flushed to disk, committed state unchanged) fault points, and
  /// std::runtime_error on real I/O failure. After any failure the next
  /// append rewrites from the committed offset — a torn tail never
  /// becomes a permanent hole.
  void append(std::string_view payload);

  /// Truncate to empty (snapshot compaction) and fsync.
  void reset();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  /// What the opening scan found at the tail (kClean when the file ended
  /// on a frame boundary; anything else was truncated away).
  [[nodiscard]] WalTailState recovered_tail() const noexcept {
    return recovered_tail_;
  }
  /// Bytes discarded by the opening truncation (0 when clean).
  [[nodiscard]] std::uint64_t recovered_torn_bytes() const noexcept {
    return recovered_torn_bytes_;
  }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;    ///< committed (fsync'd, validated) length
  std::uint64_t records_ = 0;  ///< committed record count
  WalTailState recovered_tail_ = WalTailState::kClean;
  std::uint64_t recovered_torn_bytes_ = 0;
  /// A failed append may have left bytes past bytes_; the next append
  /// truncates before writing.
  bool dirty_tail_ = false;
};

}  // namespace graphner::util
