// Template implementation of Cli::flag.
#pragma once

#include <sstream>

namespace graphner::util {
namespace cli_detail {

template <typename T>
bool parse_value(const std::string& text, T& out) {
  std::istringstream in(text);
  in >> out;
  return static_cast<bool>(in) && in.eof();
}

inline bool parse_value(const std::string& text, std::string& out) {
  out = text;
  return true;
}

inline bool parse_value(const std::string& text, bool& out) {
  if (text == "true" || text == "1") { out = true; return true; }
  if (text == "false" || text == "0") { out = false; return true; }
  return false;
}

template <typename T>
std::string repr(const T& value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace cli_detail

template <typename T>
std::shared_ptr<T> Cli::flag(std::string name, T default_value, std::string help) {
  auto storage = std::make_shared<T>(std::move(default_value));
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.default_repr = cli_detail::repr(*storage);
  opt.apply = [storage](const std::string& text) {
    return cli_detail::parse_value(text, *storage);
  };
  options_.push_back(std::move(opt));
  return storage;
}

}  // namespace graphner::util
