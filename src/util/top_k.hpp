// Bounded best-K tracker used by the k-NN graph builder.
//
// Keeps the K largest-scoring items seen so far with a min-heap; push is
// O(log K) and extraction yields items sorted by descending score.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace graphner::util {

template <typename Item>
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  /// Offer (score, item); kept only if among the K best so far.
  void push(double score, Item item) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.emplace_back(score, std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), min_first);
      return;
    }
    if (score <= heap_.front().first) return;
    std::pop_heap(heap_.begin(), heap_.end(), min_first);
    heap_.back() = {score, std::move(item)};
    std::push_heap(heap_.begin(), heap_.end(), min_first);
  }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool full() const noexcept { return heap_.size() == k_; }

  /// Smallest retained score (only meaningful when non-empty).
  [[nodiscard]] double floor_score() const noexcept {
    return heap_.empty() ? -1e300 : heap_.front().first;
  }

  /// Consume contents, sorted by descending score (ties by item order).
  [[nodiscard]] std::vector<std::pair<double, Item>> take_sorted() {
    // sort_heap orders ascending w.r.t. the comparator; with min_first
    // ("greater score sorts earlier") that is descending by score already.
    std::sort_heap(heap_.begin(), heap_.end(), min_first);
    std::vector<std::pair<double, Item>> out = std::move(heap_);
    heap_.clear();
    return out;
  }

 private:
  static bool min_first(const std::pair<double, Item>& a,
                        const std::pair<double, Item>& b) noexcept {
    return a.first > b.first;  // std heap functions build a min-heap with this
  }

  std::size_t k_;
  std::vector<std::pair<double, Item>> heap_;
};

}  // namespace graphner::util
