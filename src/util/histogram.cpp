#include "src/util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace graphner::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::add(double value) noexcept {
  const double span = hi_ - lo_;
  auto bin = static_cast<long long>((value - lo_) / span * static_cast<double>(counts_.size()));
  bin = std::clamp<long long>(bin, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
  sum_ += value;
  max_seen_ = std::max(max_seen_, value);
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size())
    throw std::invalid_argument("Histogram::merge: bin layout mismatch");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (next >= target) {
      const double fraction =
          counts_[b] == 0 ? 0.0
                          : std::clamp((target - cumulative) /
                                           static_cast<double>(counts_[b]),
                                       0.0, 1.0);
      return bin_lo(b) + fraction * (bin_hi(b) - bin_lo(b));
    }
    cumulative = next;
  }
  return hi_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const noexcept { return bin_lo(bin + 1); }

double Histogram::mean() const noexcept {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

void Histogram::print(std::ostream& out, const std::string& title,
                      std::size_t width) const {
  out << title << "  (n=" << total_ << ", mean=" << std::fixed
      << std::setprecision(3) << mean() << ")\n";
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        counts_[b] == 0 ? 0 : std::max<std::size_t>(1, counts_[b] * width / peak);
    out << '[' << std::setw(9) << std::setprecision(3) << bin_lo(b) << ", "
        << std::setw(9) << bin_hi(b) << ") " << std::setw(8) << counts_[b] << ' '
        << std::string(bar, '#') << '\n';
  }
}

}  // namespace graphner::util
