#include "src/util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>

namespace graphner::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::add(double value) noexcept {
  const double span = hi_ - lo_;
  auto bin = static_cast<long long>((value - lo_) / span * static_cast<double>(counts_.size()));
  bin = std::clamp<long long>(bin, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
  sum_ += value;
  max_seen_ = std::max(max_seen_, value);
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const noexcept { return bin_lo(bin + 1); }

double Histogram::mean() const noexcept {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

void Histogram::print(std::ostream& out, const std::string& title,
                      std::size_t width) const {
  out << title << "  (n=" << total_ << ", mean=" << std::fixed
      << std::setprecision(3) << mean() << ")\n";
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        counts_[b] == 0 ? 0 : std::max<std::size_t>(1, counts_[b] * width / peak);
    out << '[' << std::setw(9) << std::setprecision(3) << bin_lo(b) << ", "
        << std::setw(9) << bin_hi(b) << ") " << std::setw(8) << counts_[b] << ' '
        << std::string(bar, '#') << '\n';
  }
}

}  // namespace graphner::util
