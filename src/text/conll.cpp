#include "src/text/conll.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "src/util/strings.hpp"

namespace graphner::text {

void write_conll(std::ostream& out, const std::vector<Sentence>& sentences) {
  for (const auto& sentence : sentences) {
    out << "# id: " << sentence.id << '\n';
    for (std::size_t i = 0; i < sentence.size(); ++i) {
      const Tag tag = sentence.has_tags() ? sentence.tags[i] : Tag::kO;
      out << sentence.tokens[i] << '\t' << tag_name(tag) << '\n';
    }
    out << '\n';
  }
}

std::vector<Sentence> read_conll(std::istream& in) {
  std::vector<Sentence> sentences;
  Sentence current;
  std::size_t anonymous = 0;
  std::string line;

  auto flush = [&] {
    if (current.tokens.empty()) {
      current = Sentence{};
      return;
    }
    if (current.id.empty()) current.id = "conll-" + std::to_string(anonymous++);
    sentences.push_back(std::move(current));
    current = Sentence{};
  };

  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) {
      flush();
      continue;
    }
    if (util::starts_with(trimmed, "#")) {
      const auto marker = trimmed.find("id:");
      if (marker != std::string_view::npos)
        current.id = std::string(util::trim(trimmed.substr(marker + 3)));
      continue;
    }
    const auto tab = trimmed.find('\t');
    if (tab == std::string_view::npos) {
      current.tokens.emplace_back(trimmed);
      current.tags.push_back(Tag::kO);
    } else {
      current.tokens.emplace_back(util::trim(trimmed.substr(0, tab)));
      current.tags.push_back(parse_tag(util::trim(trimmed.substr(tab + 1))));
    }
  }
  flush();
  return sentences;
}

}  // namespace graphner::text
