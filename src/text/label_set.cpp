#include "src/text/label_set.hpp"

#include <cctype>
#include <stdexcept>
#include <unordered_set>

namespace graphner::text {
namespace {

[[nodiscard]] bool valid_type_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name)
    if (std::isspace(static_cast<unsigned char>(c)) || c == '\t' || c == '\n')
      return false;
  return true;
}

}  // namespace

LabelSet::LabelSet(std::vector<std::string> entity_types)
    : types_(std::move(entity_types)) {
  if (types_.size() == 1 && (types_[0].empty() || types_[0] == "GENE"))
    types_.clear();  // canonical spelling of the legacy set
  if (2 * types_.size() + 1 > kMaxLabels)
    throw std::invalid_argument(
        "label set too large: " + std::to_string(types_.size()) +
        " entity types needs " + std::to_string(2 * types_.size() + 1) +
        " labels, capacity is " + std::to_string(kMaxLabels));
  std::unordered_set<std::string> seen;
  for (const std::string& type : types_) {
    if (!valid_type_name(type))
      throw std::invalid_argument("bad entity type name \"" + type + '"');
    if (!seen.insert(type).second)
      throw std::invalid_argument("duplicate entity type \"" + type + '"');
  }
  names_.reserve(2 * types_.size() + 1);
  if (types_.empty()) {
    names_ = {"B", "I", "O"};
  } else {
    for (const std::string& type : types_) {
      names_.push_back("B-" + type);
      names_.push_back("I-" + type);
    }
    names_.push_back("O");
  }
}

const LabelSet& LabelSet::single() {
  static const LabelSet instance;
  return instance;
}

std::optional<Tag> LabelSet::parse(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<Tag>(i);
  return std::nullopt;
}

LabelSet label_set_from_names(const std::vector<std::string>& names) {
  if (names.empty() || names.size() % 2 == 0)
    throw std::invalid_argument(
        "label set is not BIO-closed: " + std::to_string(names.size()) +
        " label(s), expected an odd count (B/I pairs plus O)");
  if (names.back() != "O")
    throw std::invalid_argument(
        "label set is not BIO-closed: last label must be \"O\", got \"" +
        names.back() + '"');
  {
    std::unordered_set<std::string> seen;
    for (const std::string& name : names)
      if (!seen.insert(name).second)
        throw std::invalid_argument("duplicate label \"" + name + '"');
  }
  if (names.size() == 3 && names[0] == "B" && names[1] == "I") return LabelSet{};
  std::vector<std::string> types;
  types.reserve(names.size() / 2);
  for (std::size_t t = 0; 2 * t + 1 < names.size(); ++t) {
    const std::string& b = names[2 * t];
    const std::string& i = names[2 * t + 1];
    if (b.rfind("B-", 0) != 0 || i.rfind("I-", 0) != 0 ||
        b.substr(2) != i.substr(2) || b.size() <= 2)
      throw std::invalid_argument(
          "label set is not BIO-closed: expected matching \"B-x\"/\"I-x\" "
          "pair, got \"" + b + "\"/\"" + i + '"');
    types.push_back(b.substr(2));
  }
  return LabelSet{std::move(types)};
}

}  // namespace graphner::text
