#include "src/text/annotation.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "src/text/bio.hpp"
#include "src/util/strings.hpp"

namespace graphner::text {

std::string format_annotation(const Annotation& ann) {
  std::ostringstream out;
  out << ann.sentence_id << '|' << ann.span.first << ' ' << ann.span.last << '|'
      << ann.mention;
  return out.str();
}

std::optional<Annotation> parse_annotation(std::string_view line) {
  const auto first_bar = line.find('|');
  if (first_bar == std::string_view::npos) return std::nullopt;
  const auto second_bar = line.find('|', first_bar + 1);
  if (second_bar == std::string_view::npos) return std::nullopt;

  Annotation ann;
  ann.sentence_id = std::string(line.substr(0, first_bar));
  const std::string_view span_text =
      line.substr(first_bar + 1, second_bar - first_bar - 1);
  ann.mention = std::string(line.substr(second_bar + 1));

  std::istringstream span_in{std::string(span_text)};
  long long first = -1;
  long long last = -1;
  span_in >> first >> last;
  if (!span_in || first < 0 || last < first) return std::nullopt;
  ann.span = CharSpan{static_cast<std::size_t>(first), static_cast<std::size_t>(last)};
  return ann;
}

std::vector<Annotation> parse_annotations(std::istream& in) {
  std::vector<Annotation> out;
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (auto ann = parse_annotation(trimmed)) out.push_back(std::move(*ann));
  }
  return out;
}

void write_annotations(std::ostream& out, const std::vector<Annotation>& anns) {
  for (const auto& ann : anns) out << format_annotation(ann) << '\n';
}

AnnotationIndex index_annotations(const std::vector<Annotation>& anns) {
  AnnotationIndex index;
  for (const auto& ann : anns) index[ann.sentence_id].push_back(ann.span);
  return index;
}

std::vector<Annotation> annotations_from_tags(const Sentence& sentence) {
  std::vector<Annotation> out;
  if (!sentence.has_tags()) return out;
  for (const auto& span : decode_bio(sentence.tags)) {
    Annotation ann;
    ann.sentence_id = sentence.id;
    ann.span = sentence.to_char_span(span);
    ann.mention = sentence.span_text(span);
    out.push_back(std::move(ann));
  }
  return out;
}

}  // namespace graphner::text
