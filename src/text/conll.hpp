// CoNLL-style column format for tagged sentences.
//
// The de-facto interchange format for sequence labelling: one token per
// line as "token<TAB>tag", blank line between sentences, optional
// "# id: <sentence-id>" comment before each sentence. Lets GraphNER's
// predictions flow into standard NER tooling (conlleval etc.) and lets
// external BIO-tagged data flow in.
#pragma once

#include <iosfwd>
#include <vector>

#include "src/text/sentence.hpp"

namespace graphner::text {

/// Write sentences (tags optional; missing tags are written as O).
void write_conll(std::ostream& out, const std::vector<Sentence>& sentences);

/// Read sentences; unknown tag strings map to O. Sentences without an id
/// comment get sequential ids "conll-<n>".
[[nodiscard]] std::vector<Sentence> read_conll(std::istream& in);

}  // namespace graphner::text
