// Rule-based English lemmatizer.
//
// A light-weight stand-in for the Dragon-toolkit lemmatizer BANNER uses:
// lowercases and strips common inflectional suffixes with simple guards.
// Used for the "Lexical-features" vertex representation (lemmas in a
// window of 5) and BANNER's lemma features.
#pragma once

#include <string>
#include <string_view>

namespace graphner::text {

/// Lemmatize one token (ASCII; non-alphabetic tokens pass through lowercased).
[[nodiscard]] std::string lemmatize(std::string_view token);

}  // namespace graphner::text
