// Conversion between mention spans and BIO tag sequences.
//
// The untyped functions are the legacy single-type (gene) path over
// {B, I, O}. The typed variants generalize to any LabelSet: spans carry
// an entity-type index and the codec round-trips through the canonical
// B_t/I_t/O label layout (see label_set.hpp).
#pragma once

#include <vector>

#include "src/text/label_set.hpp"
#include "src/text/sentence.hpp"
#include "src/text/tag.hpp"

namespace graphner::text {

/// An inclusive token range tagged with its entity-type index (into the
/// owning LabelSet's entity_types()).
struct TypedTokenSpan {
  std::size_t first = 0;
  std::size_t last = 0;
  std::size_t type = 0;

  [[nodiscard]] std::size_t length() const noexcept { return last - first + 1; }
  friend bool operator==(const TypedTokenSpan&, const TypedTokenSpan&) = default;
  friend auto operator<=>(const TypedTokenSpan&, const TypedTokenSpan&) = default;
};

/// Encode non-overlapping spans into a BIO sequence of length `length`.
/// Spans must be sorted and in range; overlapping spans keep the first.
[[nodiscard]] std::vector<Tag> encode_bio(const std::vector<TokenSpan>& spans,
                                          std::size_t length);

/// Decode a BIO sequence into mention spans. A stray I (following O) starts
/// a new mention, matching the tolerant behaviour of the BC2GM evaluator.
[[nodiscard]] std::vector<TokenSpan> decode_bio(const std::vector<Tag>& tags);

/// Repair illegal I-after-O transitions in place (I -> B).
void repair_bio(std::vector<Tag>& tags) noexcept;

/// Count tokens tagged B or I.
[[nodiscard]] std::size_t positive_token_count(const std::vector<Tag>& tags) noexcept;

// --- typed (multi-entity) variants ----------------------------------------

/// Encode non-overlapping typed spans into a BIO sequence over `labels`.
/// Same overlap rules as encode_bio (first span wins).
[[nodiscard]] std::vector<Tag> encode_typed_bio(
    const std::vector<TypedTokenSpan>& spans, std::size_t length,
    const LabelSet& labels);

/// Decode a typed BIO sequence into typed spans. A stray I_t (after O or
/// after a different type) starts a new mention of type t; a type change
/// between adjacent B/I labels closes the open mention.
[[nodiscard]] std::vector<TypedTokenSpan> decode_typed_bio(
    const std::vector<Tag>& tags, const LabelSet& labels);

/// Repair illegal transitions in place under `labels` (I_t not preceded
/// by B_t/I_t becomes B_t) — the N-class generalization of repair_bio.
void repair_bio(std::vector<Tag>& tags, const LabelSet& labels) noexcept;

/// Count tokens carrying any non-O label of `labels`.
[[nodiscard]] std::size_t positive_token_count(const std::vector<Tag>& tags,
                                               const LabelSet& labels) noexcept;

}  // namespace graphner::text
