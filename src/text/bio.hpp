// Conversion between mention spans and BIO tag sequences.
#pragma once

#include <vector>

#include "src/text/sentence.hpp"
#include "src/text/tag.hpp"

namespace graphner::text {

/// Encode non-overlapping spans into a BIO sequence of length `length`.
/// Spans must be sorted and in range; overlapping spans keep the first.
[[nodiscard]] std::vector<Tag> encode_bio(const std::vector<TokenSpan>& spans,
                                          std::size_t length);

/// Decode a BIO sequence into mention spans. A stray I (following O) starts
/// a new mention, matching the tolerant behaviour of the BC2GM evaluator.
[[nodiscard]] std::vector<TokenSpan> decode_bio(const std::vector<Tag>& tags);

/// Repair illegal I-after-O transitions in place (I -> B).
void repair_bio(std::vector<Tag>& tags) noexcept;

/// Count tokens tagged B or I.
[[nodiscard]] std::size_t positive_token_count(const std::vector<Tag>& tags) noexcept;

}  // namespace graphner::text
