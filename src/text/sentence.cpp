#include "src/text/sentence.hpp"

#include <cassert>

namespace graphner::text {

std::string Sentence::text() const {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

std::size_t Sentence::char_offset(std::size_t token) const {
  assert(token <= tokens.size());
  std::size_t offset = 0;
  for (std::size_t i = 0; i < token; ++i) offset += tokens[i].size();
  return offset;
}

CharSpan Sentence::to_char_span(const TokenSpan& span) const {
  assert(span.first <= span.last && span.last < tokens.size());
  const std::size_t start = char_offset(span.first);
  std::size_t end = start;
  for (std::size_t i = span.first; i <= span.last; ++i) end += tokens[i].size();
  return CharSpan{start, end - 1};
}

std::string Sentence::span_text(const TokenSpan& span) const {
  assert(span.first <= span.last && span.last < tokens.size());
  std::string out;
  for (std::size_t i = span.first; i <= span.last; ++i) {
    if (i > span.first) out += ' ';
    out += tokens[i];
  }
  return out;
}

std::size_t Document::token_count() const noexcept {
  std::size_t total = 0;
  for (const auto& s : sentences) total += s.size();
  return total;
}

}  // namespace graphner::text
