// Biomedical tokenizer and sentence splitter.
//
// Contiguous alphanumeric runs stay single tokens (gene symbols like
// "SH2B3", matching the paper's tokenized example) while each symbol
// character becomes its own token, so "WT-1(a)" tokenizes as
// [WT, -, 1, (, a, )]. This matters for the BC2GM evaluation protocol,
// whose character offsets ignore whitespace but count every non-space
// character.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace graphner::text {

/// Tokenize one sentence of raw text.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view text);

/// Split running text (e.g. a full-text article section) into sentences.
/// Heuristic: sentence ends at . ! ? followed by whitespace + capital/digit,
/// with guards for common abbreviations and single-letter initials.
[[nodiscard]] std::vector<std::string> split_sentences(std::string_view text);

}  // namespace graphner::text
