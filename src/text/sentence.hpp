// Sentence / document model shared by every stage of the pipeline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/text/tag.hpp"

namespace graphner::text {

/// Inclusive token index range [first, last] of a mention within a sentence.
struct TokenSpan {
  std::size_t first = 0;
  std::size_t last = 0;

  [[nodiscard]] std::size_t length() const noexcept { return last - first + 1; }
  friend bool operator==(const TokenSpan&, const TokenSpan&) = default;
  friend auto operator<=>(const TokenSpan&, const TokenSpan&) = default;
};

/// BC2GM-style character span: offsets into the sentence text with all
/// whitespace removed; `last` is inclusive (matches the shared-task format).
struct CharSpan {
  std::size_t first = 0;
  std::size_t last = 0;

  friend bool operator==(const CharSpan&, const CharSpan&) = default;
  friend auto operator<=>(const CharSpan&, const CharSpan&) = default;
};

/// A tokenized sentence with optional gold BIO tags.
struct Sentence {
  std::string id;                   ///< stable sentence identifier
  std::vector<std::string> tokens;  ///< surface forms
  std::vector<Tag> tags;            ///< gold/predicted tags (may be empty)

  [[nodiscard]] std::size_t size() const noexcept { return tokens.size(); }
  [[nodiscard]] bool has_tags() const noexcept { return tags.size() == tokens.size(); }

  /// Space-joined surface text.
  [[nodiscard]] std::string text() const;

  /// Space-free character offset of the first char of token `i` (BC2GM
  /// convention: whitespace does not count).
  [[nodiscard]] std::size_t char_offset(std::size_t token) const;

  /// Convert a token span to a BC2GM char span.
  [[nodiscard]] CharSpan to_char_span(const TokenSpan& span) const;

  /// Surface text of a token span (space-joined).
  [[nodiscard]] std::string span_text(const TokenSpan& span) const;
};

/// A document is an ordered list of sentences (one for abstracts-style data,
/// many for AML-style full-text articles).
struct Document {
  std::string id;
  std::vector<Sentence> sentences;

  [[nodiscard]] std::size_t sentence_count() const noexcept { return sentences.size(); }
  [[nodiscard]] std::size_t token_count() const noexcept;
};

}  // namespace graphner::text
