// Runtime BIO label sets: the tag inventory a model decodes over.
//
// The paper's task is single-type (gene) mention detection — exactly
// {B, I, O} — but the pipeline is corpus-agnostic: a JNLPBA-style corpus
// tags five entity types with multi-class BIO. A LabelSet carries the
// entity-type inventory and fixes the *canonical label layout*:
//
//   B_t = 2t,  I_t = 2t + 1   for entity type t in [0, T)
//   O   = 2T                  (always the last label id)
//
// With one entity type this reproduces the legacy enum values B=0, I=1,
// O=2 bit-for-bit, so every serialized model, wire tag name and decode of
// the single-type world is unchanged. "O is last" is what lets
// positive-mass checks generalize as sum(non-O) vs O without a lookup.
//
// text::Tag stays the open label-id type (its fixed uint8_t underlying
// type legally holds values beyond the three named enumerators); only
// code paths that hard-code the 3-label layout consult kNumTags, and
// those take a LabelSet now.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/text/tag.hpp"

namespace graphner::text {

/// Capacity ceiling for the inline distribution type below (5 entity
/// types = 11 labels fits; the constructor rejects larger inventories).
inline constexpr std::size_t kMaxLabels = 12;

/// A fixed-capacity, runtime-sized vector of per-label mass. Drop-in for
/// the former std::array<double, kNumTags>: default-constructed size is 3
/// (the legacy B/I/O shape), indexing/iteration/fill are unchanged, and
/// no heap allocation ever happens, so per-vertex distributions stay
/// cache-friendly in the propagation sweeps.
class LabelDist {
 public:
  constexpr LabelDist() noexcept : size_(3) { values_.fill(0.0); }
  constexpr explicit LabelDist(std::size_t n) noexcept
      : size_(std::min(n, kMaxLabels)) {
    values_.fill(0.0);
  }
  constexpr LabelDist(std::initializer_list<double> init) noexcept : size_(0) {
    values_.fill(0.0);
    for (const double v : init)
      if (size_ < kMaxLabels) values_[size_++] = v;
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  /// Resize (newly exposed entries are zero; shrinking zeroes the tail so
  /// a later re-grow starts clean).
  constexpr void resize(std::size_t n) noexcept {
    n = std::min(n, kMaxLabels);
    for (std::size_t i = n; i < size_; ++i) values_[i] = 0.0;
    for (std::size_t i = size_; i < n; ++i) values_[i] = 0.0;
    size_ = n;
  }
  constexpr void fill(double v) noexcept {
    for (std::size_t i = 0; i < size_; ++i) values_[i] = v;
  }

  [[nodiscard]] constexpr double& operator[](std::size_t i) noexcept {
    return values_[i];
  }
  [[nodiscard]] constexpr double operator[](std::size_t i) const noexcept {
    return values_[i];
  }
  [[nodiscard]] constexpr double* data() noexcept { return values_.data(); }
  [[nodiscard]] constexpr const double* data() const noexcept {
    return values_.data();
  }
  [[nodiscard]] constexpr double* begin() noexcept { return values_.data(); }
  [[nodiscard]] constexpr double* end() noexcept { return values_.data() + size_; }
  [[nodiscard]] constexpr const double* begin() const noexcept {
    return values_.data();
  }
  [[nodiscard]] constexpr const double* end() const noexcept {
    return values_.data() + size_;
  }

  [[nodiscard]] friend constexpr bool operator==(const LabelDist& a,
                                                 const LabelDist& b) noexcept {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i)
      if (a.values_[i] != b.values_[i]) return false;
    return true;
  }

 private:
  std::array<double, kMaxLabels> values_;
  std::size_t size_;
};

/// A runtime-sized square label matrix (flat row-major, n x n). Replaces
/// the former std::array<double, kNumTags * kNumTags>: flat indexing
/// [a * n + b] still works via operator[], default shape is 3x3.
class LabelMatrix {
 public:
  LabelMatrix() : n_(3), values_(9, 0.0) {}
  explicit LabelMatrix(std::size_t n) : n_(n), values_(n * n, 0.0) {}

  /// Labels per side (the row/column count, not the element count).
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  void fill(double v) noexcept {
    std::fill(values_.begin(), values_.end(), v);
  }

  [[nodiscard]] double& operator[](std::size_t flat) noexcept {
    return values_[flat];
  }
  [[nodiscard]] double operator[](std::size_t flat) const noexcept {
    return values_[flat];
  }
  [[nodiscard]] double& at(std::size_t a, std::size_t b) noexcept {
    return values_[a * n_ + b];
  }
  [[nodiscard]] double at(std::size_t a, std::size_t b) const noexcept {
    return values_[a * n_ + b];
  }
  [[nodiscard]] double* data() noexcept { return values_.data(); }
  [[nodiscard]] const double* data() const noexcept { return values_.data(); }
  [[nodiscard]] double* begin() noexcept { return values_.data(); }
  [[nodiscard]] double* end() noexcept { return values_.data() + values_.size(); }
  [[nodiscard]] const double* begin() const noexcept { return values_.data(); }
  [[nodiscard]] const double* end() const noexcept {
    return values_.data() + values_.size();
  }

  [[nodiscard]] friend bool operator==(const LabelMatrix& a,
                                       const LabelMatrix& b) noexcept {
    return a.n_ == b.n_ && a.values_ == b.values_;
  }

 private:
  std::size_t n_;
  std::vector<double> values_;
};

class LabelSet {
 public:
  /// The legacy single-type set {B, I, O} (entity type name "GENE" is
  /// cosmetic; the wire names stay exactly "B"/"I"/"O").
  LabelSet() : LabelSet(std::vector<std::string>{}) {}

  /// Multi-class BIO over `entity_types` (canonical layout above). An
  /// empty vector yields the legacy single-type set. Throws
  /// std::invalid_argument on duplicates, empty names, names containing
  /// whitespace/'\t'/'\n', or more than kMaxLabels labels.
  explicit LabelSet(std::vector<std::string> entity_types);

  /// The process-wide legacy instance, for defaulted reference parameters.
  [[nodiscard]] static const LabelSet& single();

  [[nodiscard]] std::size_t num_types() const noexcept { return types_.size(); }
  [[nodiscard]] std::size_t num_labels() const noexcept {
    return names_.size();
  }
  /// True for the legacy {B, I, O} shape (wire names "B"/"I"/"O").
  [[nodiscard]] bool is_single() const noexcept { return types_.empty(); }

  [[nodiscard]] Tag begin_tag(std::size_t type) const noexcept {
    return static_cast<Tag>(2 * type);
  }
  [[nodiscard]] Tag inside_tag(std::size_t type) const noexcept {
    return static_cast<Tag>(2 * type + 1);
  }
  [[nodiscard]] Tag outside_tag() const noexcept {
    return static_cast<Tag>(num_labels() - 1);
  }
  [[nodiscard]] std::size_t outside_index() const noexcept {
    return num_labels() - 1;
  }

  [[nodiscard]] bool is_begin(Tag tag) const noexcept {
    const auto i = tag_index(tag);
    return i + 1 < num_labels() && i % 2 == 0;
  }
  [[nodiscard]] bool is_inside(Tag tag) const noexcept {
    const auto i = tag_index(tag);
    return i + 1 < num_labels() && i % 2 == 1;
  }
  [[nodiscard]] bool is_outside(Tag tag) const noexcept {
    return tag_index(tag) == outside_index();
  }
  /// Entity type of a B/I label (undefined for O).
  [[nodiscard]] std::size_t type_of(Tag tag) const noexcept {
    return tag_index(tag) / 2;
  }

  /// Wire name of a label ("B"/"I"/"O" single-type, "B-protein"/... else).
  [[nodiscard]] std::string_view name(Tag tag) const noexcept {
    const std::size_t i = tag_index(tag);
    return i < names_.size() ? std::string_view{names_[i]} : "?";
  }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  [[nodiscard]] const std::vector<std::string>& entity_types() const noexcept {
    return types_;
  }

  /// Parse a wire label name; nullopt for anything not in the set.
  [[nodiscard]] std::optional<Tag> parse(std::string_view name) const;
  /// Parse like the legacy parse_tag: unknown names map to O.
  [[nodiscard]] Tag parse_or_outside(std::string_view name) const {
    return parse(name).value_or(outside_tag());
  }

  /// Multi-class BIO constraint: I_t may only follow B_t or I_t.
  [[nodiscard]] bool is_illegal_transition(Tag prev, Tag next) const noexcept {
    if (!is_inside(next)) return false;
    return !(prev == begin_tag(type_of(next)) || prev == next);
  }
  /// A sentence may not start inside a mention.
  [[nodiscard]] bool is_legal_start(Tag tag) const noexcept {
    return !is_inside(tag);
  }

  [[nodiscard]] friend bool operator==(const LabelSet& a, const LabelSet& b) {
    return a.types_ == b.types_;
  }

 private:
  std::vector<std::string> types_;  ///< empty = legacy single-type
  std::vector<std::string> names_;  ///< one per label id, canonical order
};

/// Validate that `names` spells a canonically laid-out BIO label set
/// (B-x/I-x pairs in order, O last; "B"/"I"/"O" for the single-type set)
/// and build the LabelSet. Throws std::invalid_argument with a
/// loader-friendly message ("duplicate label ...", "label set is not
/// BIO-closed ...") otherwise — this is the entry point model
/// deserialization uses, so corrupted label tables fail loudly.
[[nodiscard]] LabelSet label_set_from_names(const std::vector<std::string>& names);

}  // namespace graphner::text
