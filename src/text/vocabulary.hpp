// String interning with frequency counts.
//
// Shared by the CRF feature index, the embedding trainers and the graph
// builder; ids are dense and stable in insertion order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace graphner::text {

class Vocabulary {
 public:
  using Id = std::uint32_t;
  static constexpr Id kUnknown = ~Id{0};

  /// Intern `term`, bumping its count; returns its id.
  Id add(std::string_view term, std::uint64_t count = 1);

  /// Lookup without interning.
  [[nodiscard]] std::optional<Id> find(std::string_view term) const;

  /// Id -> surface form.
  [[nodiscard]] const std::string& term(Id id) const { return terms_.at(id); }

  [[nodiscard]] std::uint64_t count(Id id) const { return counts_.at(id); }
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }

  /// Ids of all terms with count >= min_count, ordered by descending count.
  [[nodiscard]] std::vector<Id> frequent_terms(std::uint64_t min_count) const;

 private:
  std::unordered_map<std::string, Id> index_;
  std::vector<std::string> terms_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace graphner::text
