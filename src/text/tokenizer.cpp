#include "src/text/tokenizer.hpp"

#include <array>
#include <cctype>

namespace graphner::text {
namespace {

// Letters and digits share one class: gene symbols like "SH2B3" stay a
// single token (matching the paper's tokenized example), while punctuation
// still splits ("WT-1" -> [WT, -, 1]).
enum class CharClass { kAlnum, kSymbol, kSpace };

[[nodiscard]] CharClass classify(char c) noexcept {
  const auto u = static_cast<unsigned char>(c);
  if (std::isspace(u)) return CharClass::kSpace;
  if (std::isalnum(u)) return CharClass::kAlnum;
  return CharClass::kSymbol;
}

[[nodiscard]] bool is_abbreviation(std::string_view token) noexcept {
  static constexpr std::array<std::string_view, 10> kAbbrev = {
      "e.g", "i.e", "et al", "Fig", "fig", "Dr", "vs", "approx", "No", "cf"};
  for (const auto& a : kAbbrev)
    if (token == a) return true;
  return false;
}

}  // namespace

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    const CharClass cls = classify(text[i]);
    if (cls == CharClass::kSpace) {
      ++i;
      continue;
    }
    if (cls == CharClass::kSymbol) {
      tokens.emplace_back(1, text[i]);
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < text.size() && classify(text[j]) == cls) ++j;
    tokens.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

std::vector<std::string> split_sentences(std::string_view text) {
  std::vector<std::string> sentences;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '.' && c != '!' && c != '?') continue;
    // Look ahead: end of text, or whitespace followed by capital/digit.
    const bool at_end = i + 1 >= text.size();
    bool boundary = at_end;
    if (!at_end && std::isspace(static_cast<unsigned char>(text[i + 1]))) {
      std::size_t j = i + 1;
      while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j]))) ++j;
      boundary = j >= text.size() ||
                 std::isupper(static_cast<unsigned char>(text[j])) ||
                 std::isdigit(static_cast<unsigned char>(text[j]));
    }
    if (!boundary || c != '.') {
      if (!boundary) continue;
    } else {
      // Guard: don't split after known abbreviations or single initials.
      std::size_t w = i;
      while (w > start && !std::isspace(static_cast<unsigned char>(text[w - 1]))) --w;
      const std::string_view last_word = text.substr(w, i - w);
      if (is_abbreviation(last_word) ||
          (last_word.size() == 1 &&
           std::isupper(static_cast<unsigned char>(last_word[0]))))
        continue;
    }
    const std::string_view chunk = text.substr(start, i - start + 1);
    if (!chunk.empty()) {
      // Trim leading whitespace.
      std::size_t b = 0;
      while (b < chunk.size() && std::isspace(static_cast<unsigned char>(chunk[b]))) ++b;
      if (b < chunk.size()) sentences.emplace_back(chunk.substr(b));
    }
    start = i + 1;
  }
  if (start < text.size()) {
    std::size_t b = start;
    while (b < text.size() && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
    if (b < text.size()) sentences.emplace_back(text.substr(b));
  }
  return sentences;
}

}  // namespace graphner::text
