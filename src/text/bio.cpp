#include "src/text/bio.hpp"

#include <algorithm>
#include <cassert>

namespace graphner::text {

std::vector<Tag> encode_bio(const std::vector<TokenSpan>& spans, std::size_t length) {
  std::vector<Tag> tags(length, Tag::kO);
  for (const auto& span : spans) {
    assert(span.first <= span.last);
    if (span.last >= length) continue;
    // Skip spans that would overwrite an existing mention.
    bool occupied = false;
    for (std::size_t i = span.first; i <= span.last; ++i)
      if (tags[i] != Tag::kO) occupied = true;
    if (occupied) continue;
    tags[span.first] = Tag::kB;
    for (std::size_t i = span.first + 1; i <= span.last; ++i) tags[i] = Tag::kI;
  }
  return tags;
}

std::vector<TokenSpan> decode_bio(const std::vector<Tag>& tags) {
  std::vector<TokenSpan> spans;
  std::size_t start = 0;
  bool open = false;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    switch (tags[i]) {
      case Tag::kB:
        if (open) spans.push_back({start, i - 1});
        start = i;
        open = true;
        break;
      case Tag::kI:
        if (!open) {  // stray I: treat as a mention start
          start = i;
          open = true;
        }
        break;
      case Tag::kO:
        if (open) spans.push_back({start, i - 1});
        open = false;
        break;
    }
  }
  if (open) spans.push_back({start, tags.size() - 1});
  return spans;
}

void repair_bio(std::vector<Tag>& tags) noexcept {
  Tag prev = Tag::kO;
  for (auto& tag : tags) {
    if (tag == Tag::kI && prev == Tag::kO) tag = Tag::kB;
    prev = tag;
  }
}

std::size_t positive_token_count(const std::vector<Tag>& tags) noexcept {
  return static_cast<std::size_t>(
      std::count_if(tags.begin(), tags.end(),
                    [](Tag t) { return t != Tag::kO; }));
}

}  // namespace graphner::text
