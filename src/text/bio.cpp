#include "src/text/bio.hpp"

#include <algorithm>
#include <cassert>

namespace graphner::text {

std::vector<Tag> encode_bio(const std::vector<TokenSpan>& spans, std::size_t length) {
  std::vector<Tag> tags(length, Tag::kO);
  for (const auto& span : spans) {
    assert(span.first <= span.last);
    if (span.last >= length) continue;
    // Skip spans that would overwrite an existing mention.
    bool occupied = false;
    for (std::size_t i = span.first; i <= span.last; ++i)
      if (tags[i] != Tag::kO) occupied = true;
    if (occupied) continue;
    tags[span.first] = Tag::kB;
    for (std::size_t i = span.first + 1; i <= span.last; ++i) tags[i] = Tag::kI;
  }
  return tags;
}

std::vector<TokenSpan> decode_bio(const std::vector<Tag>& tags) {
  std::vector<TokenSpan> spans;
  std::size_t start = 0;
  bool open = false;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    switch (tags[i]) {
      case Tag::kB:
        if (open) spans.push_back({start, i - 1});
        start = i;
        open = true;
        break;
      case Tag::kI:
        if (!open) {  // stray I: treat as a mention start
          start = i;
          open = true;
        }
        break;
      case Tag::kO:
        if (open) spans.push_back({start, i - 1});
        open = false;
        break;
    }
  }
  if (open) spans.push_back({start, tags.size() - 1});
  return spans;
}

void repair_bio(std::vector<Tag>& tags) noexcept {
  Tag prev = Tag::kO;
  for (auto& tag : tags) {
    if (tag == Tag::kI && prev == Tag::kO) tag = Tag::kB;
    prev = tag;
  }
}

std::size_t positive_token_count(const std::vector<Tag>& tags) noexcept {
  return static_cast<std::size_t>(
      std::count_if(tags.begin(), tags.end(),
                    [](Tag t) { return t != Tag::kO; }));
}

std::vector<Tag> encode_typed_bio(const std::vector<TypedTokenSpan>& spans,
                                  std::size_t length, const LabelSet& labels) {
  std::vector<Tag> tags(length, labels.outside_tag());
  for (const auto& span : spans) {
    assert(span.first <= span.last);
    assert(span.type < labels.num_types());
    if (span.last >= length) continue;
    bool occupied = false;
    for (std::size_t i = span.first; i <= span.last; ++i)
      if (!labels.is_outside(tags[i])) occupied = true;
    if (occupied) continue;
    tags[span.first] = labels.begin_tag(span.type);
    for (std::size_t i = span.first + 1; i <= span.last; ++i)
      tags[i] = labels.inside_tag(span.type);
  }
  return tags;
}

std::vector<TypedTokenSpan> decode_typed_bio(const std::vector<Tag>& tags,
                                             const LabelSet& labels) {
  std::vector<TypedTokenSpan> spans;
  std::size_t start = 0;
  std::size_t type = 0;
  bool open = false;
  const auto close = [&](std::size_t end) {
    if (open) spans.push_back({start, end, type});
    open = false;
  };
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const Tag tag = tags[i];
    if (labels.is_outside(tag)) {
      close(i - 1);
    } else if (labels.is_begin(tag)) {
      close(i - 1);
      start = i;
      type = labels.type_of(tag);
      open = true;
    } else {  // inside
      const std::size_t t = labels.type_of(tag);
      if (!open || t != type) {  // stray or type-switching I: new mention
        close(i - 1);
        start = i;
        type = t;
        open = true;
      }
    }
  }
  close(tags.empty() ? 0 : tags.size() - 1);
  return spans;
}

void repair_bio(std::vector<Tag>& tags, const LabelSet& labels) noexcept {
  Tag prev = labels.outside_tag();
  for (auto& tag : tags) {
    if (labels.is_illegal_transition(prev, tag))
      tag = labels.begin_tag(labels.type_of(tag));
    prev = tag;
  }
}

std::size_t positive_token_count(const std::vector<Tag>& tags,
                                 const LabelSet& labels) noexcept {
  return static_cast<std::size_t>(
      std::count_if(tags.begin(), tags.end(),
                    [&](Tag t) { return !labels.is_outside(t); }));
}

}  // namespace graphner::text
