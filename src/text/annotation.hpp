// BC2GM shared-task annotation format.
//
// An annotation line is  `<sentence-id>|<first> <last>|<mention text>`
// where <first>/<last> are inclusive character offsets into the sentence
// text **with all whitespace removed**. Primary (GENE.eval) and alternative
// (ALTGENE.eval) annotations share the format.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/text/sentence.hpp"

namespace graphner::text {

/// One annotation: a char span in a named sentence plus the mention surface.
struct Annotation {
  std::string sentence_id;
  CharSpan span;
  std::string mention;

  friend bool operator==(const Annotation&, const Annotation&) = default;
};

/// Serialize to the shared-task line format.
[[nodiscard]] std::string format_annotation(const Annotation& ann);

/// Parse one line; std::nullopt on malformed input.
[[nodiscard]] std::optional<Annotation> parse_annotation(std::string_view line);

/// Parse a whole annotation stream (skips blank / malformed lines).
[[nodiscard]] std::vector<Annotation> parse_annotations(std::istream& in);

/// Write annotations, one per line.
void write_annotations(std::ostream& out, const std::vector<Annotation>& anns);

/// Annotations grouped by sentence id for O(1) evaluation lookups.
using AnnotationIndex = std::unordered_map<std::string, std::vector<CharSpan>>;

[[nodiscard]] AnnotationIndex index_annotations(const std::vector<Annotation>& anns);

/// Extract annotations for every tagged mention in a sentence.
[[nodiscard]] std::vector<Annotation> annotations_from_tags(const Sentence& sentence);

}  // namespace graphner::text
