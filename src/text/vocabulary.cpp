#include "src/text/vocabulary.hpp"

#include <algorithm>

namespace graphner::text {

Vocabulary::Id Vocabulary::add(std::string_view term, std::uint64_t count) {
  total_ += count;
  if (auto it = index_.find(std::string(term)); it != index_.end()) {
    counts_[it->second] += count;
    return it->second;
  }
  const Id id = static_cast<Id>(terms_.size());
  terms_.emplace_back(term);
  counts_.push_back(count);
  index_.emplace(terms_.back(), id);
  return id;
}

std::optional<Vocabulary::Id> Vocabulary::find(std::string_view term) const {
  const auto it = index_.find(std::string(term));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<Vocabulary::Id> Vocabulary::frequent_terms(std::uint64_t min_count) const {
  std::vector<Id> ids;
  for (Id id = 0; id < terms_.size(); ++id)
    if (counts_[id] >= min_count) ids.push_back(id);
  std::sort(ids.begin(), ids.end(),
            [this](Id a, Id b) { return counts_[a] > counts_[b]; });
  return ids;
}

}  // namespace graphner::text
