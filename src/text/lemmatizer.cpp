#include "src/text/lemmatizer.hpp"

#include "src/util/strings.hpp"

namespace graphner::text {
namespace {

using util::ends_with;

[[nodiscard]] bool is_vowel(char c) noexcept {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

/// Strip plural / verbal suffixes from an already-lowercased word.
[[nodiscard]] std::string strip_suffix(std::string word) {
  const std::size_t n = word.size();
  // -ies -> -y  (studies -> study), guard length.
  if (n > 4 && ends_with(word, "ies")) {
    word.erase(n - 3);
    word += 'y';
    return word;
  }
  // -sses -> -ss (classes -> class)
  if (n > 5 && ends_with(word, "sses")) {
    word.erase(n - 2);
    return word;
  }
  // -xes/-ches/-shes -> strip "es"
  if (n > 4 && (ends_with(word, "xes") || ends_with(word, "ches") ||
                ends_with(word, "shes") || ends_with(word, "zes"))) {
    word.erase(word.size() - 2);
    return word;
  }
  // -s (but not -ss, -us, -is) -> strip
  if (n > 3 && word.back() == 's' && !ends_with(word, "ss") &&
      !ends_with(word, "us") && !ends_with(word, "is")) {
    word.pop_back();
    return word;
  }
  // -ing with a vowel remaining (binding -> bind), restore 'e' heuristically
  if (n > 5 && ends_with(word, "ing")) {
    std::string stem = word.substr(0, n - 3);
    bool has_vowel = false;
    for (char c : stem)
      if (is_vowel(c)) has_vowel = true;
    if (has_vowel) {
      // doubled final consonant (running -> run); 's' and 'l' stay doubled
      // in the base form (express, crossing, controlling...).
      if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2] &&
          !is_vowel(stem.back()) && stem.back() != 's' && stem.back() != 'l')
        stem.pop_back();
      return stem;
    }
  }
  // -ed (expressed -> express, mutated -> mutate)
  if (n > 4 && ends_with(word, "ed")) {
    std::string stem = word.substr(0, n - 2);
    bool has_vowel = false;
    for (char c : stem)
      if (is_vowel(c)) has_vowel = true;
    if (has_vowel) {
      if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2] &&
          !is_vowel(stem.back()) && stem.back() != 's' && stem.back() != 'l') {
        stem.pop_back();          // stopped -> stop
      } else if (!is_vowel(stem.back()) && stem.size() >= 2 &&
                 is_vowel(stem[stem.size() - 2])) {
        stem += 'e';              // mutated -> mutate
      }
      return stem;
    }
  }
  return word;
}

}  // namespace

std::string lemmatize(std::string_view token) {
  std::string lowered = util::to_lower(token);
  if (!util::has_letter(lowered) || lowered.size() <= 2) return lowered;
  return strip_suffix(std::move(lowered));
}

}  // namespace graphner::text
