// BIO tag scheme for single-type (gene) mention detection.
//
// The paper's task tags each token Begin / Inside / Outside of a gene
// mention; with one entity type the tag set is exactly {B, I, O}.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace graphner::text {

enum class Tag : std::uint8_t { kB = 0, kI = 1, kO = 2 };

inline constexpr std::size_t kNumTags = 3;

[[nodiscard]] constexpr std::string_view tag_name(Tag tag) noexcept {
  switch (tag) {
    case Tag::kB: return "B";
    case Tag::kI: return "I";
    case Tag::kO: return "O";
  }
  return "?";
}

/// Parse "B"/"I"/"O"; anything else maps to O.
[[nodiscard]] constexpr Tag parse_tag(std::string_view text) noexcept {
  if (text == "B") return Tag::kB;
  if (text == "I") return Tag::kI;
  return Tag::kO;
}

[[nodiscard]] constexpr std::size_t tag_index(Tag tag) noexcept {
  return static_cast<std::size_t>(tag);
}

[[nodiscard]] constexpr Tag tag_from_index(std::size_t idx) noexcept {
  return static_cast<Tag>(idx);
}

inline constexpr std::array<Tag, kNumTags> kAllTags = {Tag::kB, Tag::kI, Tag::kO};

/// True for the BIO constraint violation "I not preceded by B or I".
[[nodiscard]] constexpr bool is_illegal_transition(Tag prev, Tag next) noexcept {
  return next == Tag::kI && prev == Tag::kO;
}

}  // namespace graphner::text
