// Online learning: absorb new unlabelled text into a served model.
//
// The serving-tier analogue of the transductive TEST procedure, run
// incrementally (DESIGN.md §12). The learner owns the corpus-level state a
// batch pipeline throws away after every run — the trigram vertex registry,
// the PPMI cooccurrence counts, the k-NN posting index (graph::KnnIndex)
// and the propagated label distributions — so absorbing a batch of
// sentences costs work proportional to the batch's neighbourhood, not to
// the corpus:
//
//   1. new trigram types become vertices; their PPMI vectors are built
//      from the *accumulated* cooccurrence counts and appended to the
//      index (exact forward edges + reverse patches);
//   2. every vertex is anchored: hand-labelled trigrams by the model's
//      X_ref, the rest by their running averaged CRF posterior — the
//      incremental analogue of Algorithm 1 line 6, moved into the
//      objective so the fixed point (a) is unique and (b) carries the
//      corpus-level CRF signal;
//   3. propagate_incremental relaxes outward from the appended vertices,
//      the reverse-patched vertices, and any vertex whose posterior
//      anchor drifted — localized re-propagation instead of a full sweep;
//   4. snapshot_model() forks the base model with the propagated
//      distributions as a learned lookup table (O(1) in model size); the
//      router hot-swaps the fork and the new fingerprint invalidates the
//      decode cache.
//
// Documented approximation: a vertex's PPMI vector is frozen at the counts
// seen when it first appeared (later occurrences update global feature
// counts and the vertex's posterior anchor, not its vector). That is the
// standard incremental-index trade; the bench gates its accuracy cost.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/knn_index.hpp"
#include "src/graph/vertex_features.hpp"
#include "src/graphner/pipeline.hpp"
#include "src/propagation/propagation.hpp"
#include "src/text/sentence.hpp"

namespace graphner::core {

struct OnlineLearnerConfig {
  /// Propagation weights; <= 0 inherits the base model's configured value.
  double mu = -1.0;
  double nu = -1.0;
  /// Residual tolerance for localized re-propagation.
  double tolerance = 1e-6;
  /// Sup-norm drift of a running posterior anchor that re-seeds its vertex.
  double anchor_tolerance = 1e-6;
  std::size_t max_relaxations = 0;  ///< 0 = propagate_incremental default
};

/// Per-learn-call outcome (also mirrored into the learn.* metrics).
struct LearnStats {
  std::size_t sentences = 0;
  std::size_t appended_vertices = 0;   ///< new trigram types this batch
  std::size_t patched_vertices = 0;    ///< old vertices with new edges
  std::size_t perturbed_vertices = 0;  ///< anchors drifted past tolerance
  std::size_t relaxations = 0;
  std::size_t active_vertices = 0;
  double final_residual = 0.0;
  bool converged = false;
};

class OnlineLearner {
 public:
  explicit OnlineLearner(std::shared_ptr<const GraphNerModel> base,
                         OnlineLearnerConfig config = {});

  /// Absorb a batch of (untagged) sentences: append vertices, re-propagate
  /// locally, refresh the learned table. Not thread-safe — serialize calls
  /// (the router holds a learn mutex).
  LearnStats learn(const std::vector<text::Sentence>& batch);

  /// Fork of the base model carrying the current learned table; safe to
  /// hot-swap into serving replicas. Distinct fingerprint per distinct
  /// learned content.
  [[nodiscard]] std::shared_ptr<const GraphNerModel> snapshot_model() const;

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return trigrams_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return index_.graph().edge_count();
  }
  [[nodiscard]] const std::vector<propagation::LabelDistribution>&
  distributions() const noexcept {
    return x_;
  }
  /// Per-vertex anchors (X_ref or running posterior average) and the
  /// all-true labelled mask — the exact inputs the learner propagates
  /// under, exposed so benches/tests can verify the fixed point.
  [[nodiscard]] const std::vector<propagation::LabelDistribution>& anchors()
      const noexcept {
    return x_reference_;
  }
  [[nodiscard]] const std::vector<bool>& labelled_mask() const noexcept {
    return is_labelled_;
  }
  [[nodiscard]] const graph::KnnIndex& index() const noexcept { return index_; }
  [[nodiscard]] const GraphNerModel& base() const noexcept { return *base_; }

  /// Full-state text serialization (DESIGN.md §13): trigram registry, PPMI
  /// cooccurrence counts, per-vertex propagation state and the embedded
  /// k-NN index (vectors, edges and the transpose lists verbatim — their
  /// within-list order drives relaxation order, hence floating-point
  /// summation order, and must survive a restart bit-for-bit). Doubles are
  /// written at precision 17 and floats at 10, which round-trips exactly,
  /// so a load()ed learner that absorbs the same batches as the original
  /// reaches bit-identical state — the property WAL replay relies on.
  void save(std::ostream& out) const;
  /// Restore a save()d learner over `base`. The snapshot's resolved config
  /// is restored too (it participated in the propagation the snapshot
  /// captured). Rejects, with distinct messages, a snapshot taken over a
  /// different base model (fingerprint mismatch) and each malformed
  /// section.
  [[nodiscard]] static OnlineLearner load(
      std::istream& in, std::shared_ptr<const GraphNerModel> base);

 private:
  void rebuild_learned_table();

  std::shared_ptr<const GraphNerModel> base_;
  OnlineLearnerConfig config_;
  graph::VertexFeatureConfig feature_config_;

  // Trigram type registry (vertex ids are dense, append-only).
  std::unordered_map<std::string, graph::VertexId> vertex_of_;
  std::vector<std::array<std::string, 3>> trigrams_;

  // Accumulated PPMI cooccurrence statistics (mirrors build_vertex_vectors'
  // pass 1, kept alive across batches).
  std::unordered_map<std::string, std::uint32_t> feature_ids_;
  std::vector<std::uint64_t> feature_counts_;
  std::uint64_t total_feature_instances_ = 0;

  graph::KnnIndex index_;

  // Per-vertex propagation state. is_labelled is implicitly all-true (see
  // header comment); hand_labelled_ marks vertices anchored by X_ref.
  std::vector<propagation::LabelDistribution> posterior_sum_;
  std::vector<double> occurrences_;
  std::vector<propagation::LabelDistribution> x_;
  std::vector<propagation::LabelDistribution> x_reference_;
  std::vector<bool> is_labelled_;
  std::vector<bool> hand_labelled_;

  std::shared_ptr<const ReferenceDistributions> learned_;
};

}  // namespace graphner::core
