// Zero-copy mmap model format (DESIGN.md §11, layout in model_format.hpp).
//
// save_mmap_file writes the same metadata the text format carries (via
// save_head / ReferenceDistributions::save) into a "meta" section and the
// weight table as raw doubles into an aligned "weights" section.
// load_mmap_file maps the file read-only and hands the CRF a *view* into
// the mapping (LinearChainCrf::set_weights_view), so N replicas mapping
// the same file share one page-cache copy of the weights and cold-start
// skips parsing the dominant weight text.
//
// Input hardening mirrors the text loader's trailing-garbage checks:
// every rejection below has a distinct message, and nothing in the file is
// trusted before the header, the section table, and the payload
// fingerprint have all been validated (tests/test_model_io.cpp corrupts
// each in turn).
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graphner/model_format.hpp"
#include "src/graphner/pipeline.hpp"
#include "src/util/fault.hpp"
#include "src/util/logging.hpp"

namespace graphner::core {
namespace {

namespace fmt = model_format;

void expect_meta_token(std::istream& in, const std::string& expected) {
  std::string token;
  in >> token;
  if (token != expected)
    throw std::runtime_error("mmap model meta: expected '" + expected +
                             "', got '" + token + "'");
}

void write_padding(std::ostream& out, std::uint64_t from, std::uint64_t to) {
  static constexpr char kZeros[fmt::kAlign] = {};
  while (from < to) {
    const std::uint64_t chunk = std::min<std::uint64_t>(to - from, fmt::kAlign);
    out.write(kZeros, static_cast<std::streamsize>(chunk));
    from += chunk;
  }
}

struct MappedFile {
  void* base = nullptr;
  std::size_t size = 0;
};

/// mmap `path` read-only. The returned shared_ptr owns the mapping (the
/// deleter munmaps), which is what GraphNerModel::mapping_ holds.
std::shared_ptr<MappedFile> map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw std::runtime_error("cannot open mmap model " + path + ": " +
                             std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot stat mmap model " + path + ": " +
                             std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(fmt::Header)) {
    ::close(fd);
    throw std::runtime_error("mmap model file: truncated header (" +
                             std::to_string(size) + " bytes, need " +
                             std::to_string(sizeof(fmt::Header)) + ")");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping survives the close; the fd is only needed to create it.
  ::close(fd);
  if (base == MAP_FAILED)
    throw std::runtime_error("mmap failed for model " + path + ": " +
                             std::strerror(errno));
  auto* mapped = new MappedFile{base, size};
  return std::shared_ptr<MappedFile>(mapped, [](MappedFile* m) {
    ::munmap(m->base, m->size);
    delete m;
  });
}

}  // namespace

void GraphNerModel::compute_fingerprint() {
  // Identity of the decode-relevant parameters: the raw weight bytes plus
  // the table shape. %.17g round-trips doubles exactly, so a text-saved /
  // text-loaded model fingerprints identically to the mmap'd original.
  const auto w = crf_->weights();
  std::uint64_t hash = fmt::fnv1a(w.data(), w.size() * sizeof(double));
  const std::uint64_t shape[2] = {static_cast<std::uint64_t>(w.size()),
                                  static_cast<std::uint64_t>(index_->size())};
  fingerprint_ = fmt::fnv1a(shape, sizeof(shape), hash);
  // Online-learned forks decode differently under identical weights, so
  // their identity must differ too — otherwise the decode cache would keep
  // serving the base model's tags after a #LEARN swap.
  if (learned_) {
    const std::uint64_t learned_hash = learned_->content_hash();
    fingerprint_ = fmt::fnv1a(&learned_hash, sizeof(learned_hash), fingerprint_);
  }
}

bool GraphNerModel::weights_mapped() const noexcept {
  return crf_ != nullptr && crf_->weights_borrowed();
}

void GraphNerModel::save_mmap_file(const std::string& path) const {
  // "meta" carries the exact text the text format would write, minus the
  // weight numerals: magic line, save_head sections, reference table, end
  // sentinel. Loading re-uses the same parsers, so the two formats cannot
  // drift.
  std::ostringstream meta_out;
  meta_out.precision(17);
  meta_out << "graphner-model " << kTextFormatVersion << '\n';
  save_head(meta_out);
  meta_out << "reference\n";
  reference_->save(meta_out);
  meta_out << "end\n";
  const std::string meta = meta_out.str();

  // Dedicated "labels" section: the label inventory stands alone so a
  // reader (or operator with xxd) can learn a model's tag set without
  // parsing the whole meta text. The loader validates it independently
  // and cross-checks it against the meta config.
  std::ostringstream labels_out;
  labels_out << config_.labels.num_labels() << '\n';
  for (const auto& name : config_.labels.names()) labels_out << name << '\n';
  const std::string labels = labels_out.str();

  const auto weights = crf_->weights();
  const std::uint64_t weights_bytes = weights.size() * sizeof(double);

  const std::uint64_t table_end =
      sizeof(fmt::Header) + 3 * sizeof(fmt::SectionEntry);
  const std::uint64_t meta_off = fmt::align_up(table_end, fmt::kAlign);
  const std::uint64_t labels_off =
      fmt::align_up(meta_off + meta.size(), fmt::kAlign);
  const std::uint64_t weights_off =
      fmt::align_up(labels_off + labels.size(), fmt::kAlign);

  fmt::Header header{};
  std::memcpy(header.magic, fmt::kMagic, sizeof(header.magic));
  header.version = fmt::kVersion;
  header.endian_tag = fmt::kEndianTag;
  header.section_count = 3;
  header.payload_fingerprint = fmt::fnv1a(
      weights.data(), weights_bytes,
      fmt::fnv1a(labels.data(), labels.size(),
                 fmt::fnv1a(meta.data(), meta.size())));
  header.file_size = weights_off + weights_bytes;

  fmt::SectionEntry sections[3] = {};
  std::memcpy(sections[0].name, fmt::kSectionMeta.data(),
              fmt::kSectionMeta.size());
  sections[0].offset = meta_off;
  sections[0].size = meta.size();
  sections[0].align = fmt::kAlign;
  std::memcpy(sections[1].name, fmt::kSectionLabels.data(),
              fmt::kSectionLabels.size());
  sections[1].offset = labels_off;
  sections[1].size = labels.size();
  sections[1].align = fmt::kAlign;
  std::memcpy(sections[2].name, fmt::kSectionWeights.data(),
              fmt::kSectionWeights.size());
  sections[2].offset = weights_off;
  sections[2].size = weights_bytes;
  sections[2].align = fmt::kAlign;

  util::atomic_save(path, [&](std::ostream& out) {
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(sections), sizeof(sections));
    write_padding(out, table_end, meta_off);
    out.write(meta.data(), static_cast<std::streamsize>(meta.size()));
    write_padding(out, meta_off + meta.size(), labels_off);
    out.write(labels.data(), static_cast<std::streamsize>(labels.size()));
    write_padding(out, labels_off + labels.size(), weights_off);
    out.write(reinterpret_cast<const char*>(weights.data()),
              static_cast<std::streamsize>(weights_bytes));
  });
}

GraphNerModel GraphNerModel::load_mmap_file(const std::string& path) {
  auto mapped = map_file(path);
  const auto* bytes = static_cast<const unsigned char*>(mapped->base);
  const std::size_t file_size = mapped->size;

  fmt::Header header{};
  std::memcpy(&header, bytes, sizeof(header));
  if (std::memcmp(header.magic, fmt::kMagic, sizeof(header.magic)) != 0)
    throw std::runtime_error("mmap model file: bad magic (not a " +
                             std::string(fmt::kMagic, sizeof(fmt::kMagic)) +
                             " file)");
  if (header.endian_tag != fmt::kEndianTag)
    throw std::runtime_error(
        "mmap model file: byte-order mismatch (written on a machine of the "
        "opposite endianness)");
  if (header.version != fmt::kVersion)
    throw std::runtime_error("mmap model file: unsupported version " +
                             std::to_string(header.version) +
                             " (this build reads version " +
                             std::to_string(fmt::kVersion) + ")");
  if (file_size < header.file_size)
    throw std::runtime_error(
        "mmap model file: truncated (" + std::to_string(file_size) +
        " bytes on disk, header promises " + std::to_string(header.file_size) +
        ")");
  if (file_size > header.file_size)
    throw std::runtime_error(
        "mmap model file: trailing garbage after the last section (" +
        std::to_string(file_size - header.file_size) + " extra bytes)");

  const std::uint64_t table_end =
      sizeof(fmt::Header) +
      static_cast<std::uint64_t>(header.section_count) *
          sizeof(fmt::SectionEntry);
  if (header.section_count == 0 || table_end > file_size)
    throw std::runtime_error("mmap model file: section table out of bounds (" +
                             std::to_string(header.section_count) +
                             " sections)");

  std::vector<fmt::SectionEntry> sections(header.section_count);
  std::memcpy(sections.data(), bytes + sizeof(fmt::Header),
              sections.size() * sizeof(fmt::SectionEntry));

  const fmt::SectionEntry* meta_section = nullptr;
  const fmt::SectionEntry* labels_section = nullptr;
  const fmt::SectionEntry* weights_section = nullptr;
  std::uint64_t fingerprint = fmt::kFnvOffsetBasis;
  for (const auto& section : sections) {
    const std::string name(section.name_view());
    if (section.align == 0 || section.offset % section.align != 0)
      throw std::runtime_error("mmap model file: misaligned section '" + name +
                               "' (offset " + std::to_string(section.offset) +
                               ", align " + std::to_string(section.align) +
                               ")");
    if (section.offset < table_end || section.offset > file_size ||
        section.size > file_size - section.offset)
      throw std::runtime_error("mmap model file: section '" + name +
                               "' out of bounds");
    fingerprint = fmt::fnv1a(bytes + section.offset, section.size, fingerprint);
    if (name == fmt::kSectionMeta) meta_section = &section;
    if (name == fmt::kSectionLabels) labels_section = &section;
    if (name == fmt::kSectionWeights) weights_section = &section;
  }
  if (meta_section == nullptr || labels_section == nullptr ||
      weights_section == nullptr)
    throw std::runtime_error(
        "mmap model file: missing required section (need 'meta', 'labels' "
        "and 'weights')");
  if (fingerprint != header.payload_fingerprint)
    throw std::runtime_error(
        "mmap model file: payload fingerprint mismatch (file corrupted)");
  if (weights_section->size % sizeof(double) != 0)
    throw std::runtime_error(
        "mmap model file: weights section size is not a multiple of 8");

  // The payloads are now fingerprint-trusted. Validate the labels section
  // first: it is what the decode structures will be shaped by, so it gets
  // its own structural checks before the meta text is even parsed.
  std::istringstream labels_in(std::string(
      reinterpret_cast<const char*>(bytes + labels_section->offset),
      labels_section->size));
  std::size_t label_count = 0;
  if (!(labels_in >> label_count))
    throw std::runtime_error("mmap model file: labels section missing count");
  std::vector<std::string> label_names;
  label_names.reserve(label_count);
  for (std::size_t i = 0; i < label_count; ++i) {
    std::string name;
    if (!(labels_in >> name))
      throw std::runtime_error(
          "mmap model file: labels section truncated (promises " +
          std::to_string(label_count) + " labels, holds " + std::to_string(i) +
          ")");
    label_names.push_back(std::move(name));
  }
  text::LabelSet file_labels;
  try {
    file_labels = text::label_set_from_names(label_names);
  } catch (const std::invalid_argument& e) {
    // Preserve the distinct "duplicate label ..." / "label set is not
    // BIO-closed ..." messages in the loader's error type.
    throw std::runtime_error("mmap model file: " + std::string(e.what()));
  }

  // Parse meta with the text-format parsers.
  std::istringstream meta_in(std::string(
      reinterpret_cast<const char*>(bytes + meta_section->offset),
      meta_section->size));
  expect_meta_token(meta_in, "graphner-model");
  int text_version = 0;
  meta_in >> text_version;
  if (text_version != kTextFormatVersion)
    throw std::runtime_error("mmap model meta: unsupported text version " +
                             std::to_string(text_version));

  GraphNerModel model;
  load_head(meta_in, model);
  if (!(model.config_.labels == file_labels))
    throw std::runtime_error(
        "mmap model file: labels section disagrees with model metadata");
  expect_meta_token(meta_in, "reference");
  model.reference_ = std::make_shared<ReferenceDistributions>(
      ReferenceDistributions::load(meta_in));
  if (!meta_in) throw std::runtime_error("mmap model meta: truncated");
  expect_meta_token(meta_in, "end");

  const std::size_t weight_count = weights_section->size / sizeof(double);
  if (weight_count != model.crf_->num_parameters())
    throw std::runtime_error(
        "mmap model file: weight count mismatch (" +
        std::to_string(weight_count) + " in file, model needs " +
        std::to_string(model.crf_->num_parameters()) + ")");

  // Zero-copy: the CRF reads weights straight out of the mapping. The
  // section offset is 64-byte aligned within a page-aligned mapping, so
  // the pointer is valid for double access.
  const auto* weight_base =
      reinterpret_cast<const double*>(bytes + weights_section->offset);
  model.crf_->set_weights_view({weight_base, weight_count});
  model.mapping_ = std::move(mapped);
  model.map_base_ = bytes;
  model.map_size_ = file_size;
  model.compute_fingerprint();

  util::log_info("graphner: mmap-loaded ", profile_name(model.config_.profile),
                 " model, ", model.index_->size(), " features, ",
                 weight_count, " mapped weights");
  return model;
}

GraphNerModel GraphNerModel::load_mmap_file(const std::string& path,
                                            const crf::DecodeOptions& options) {
  GraphNerModel model = load_mmap_file(path);
  model.set_decode_options(options);
  return model;
}

GraphNerModel GraphNerModel::load_auto_file(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw std::runtime_error("cannot read model " + path);
  char magic[sizeof(fmt::kMagic)] = {};
  probe.read(magic, sizeof(magic));
  probe.close();
  if (std::memcmp(magic, fmt::kMagic, sizeof(magic)) == 0)
    return load_mmap_file(path);
  return load_file(path);
}

}  // namespace graphner::core
