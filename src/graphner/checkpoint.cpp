#include "src/graphner/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ios>
#include <sstream>

#include "src/obs/registry.hpp"
#include "src/util/fault.hpp"
#include "src/util/logging.hpp"

namespace graphner::core {
namespace {

constexpr const char* kManifestMagic = "graphner-checkpoint";
constexpr int kManifestVersion = 1;

[[nodiscard]] std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

// --- fingerprint -----------------------------------------------------------

struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ULL;

  void mix(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state ^= bytes[i];
      state *= 0x100000001b3ULL;
    }
  }
  void mix(const std::string& text) {
    mix(text.data(), text.size());
    mix_byte(0x1f);  // separator: "ab","c" and "a","bc" must differ
  }
  template <typename T>
  void mix_scalar(T value) {
    mix(&value, sizeof value);
  }
  void mix_byte(unsigned char b) { mix(&b, 1); }
};

void mix_sentences(Fnv1a& hash, const std::vector<text::Sentence>& sentences) {
  hash.mix_scalar(sentences.size());
  for (const auto& sentence : sentences) {
    for (const auto& token : sentence.tokens) hash.mix(token);
    for (const auto tag : sentence.tags)
      hash.mix_byte(static_cast<unsigned char>(tag));
    hash.mix_byte(0x1e);  // sentence boundary
  }
}

}  // namespace

std::uint64_t training_fingerprint(const GraphNerConfig& config,
                                   const std::vector<text::Sentence>& labelled,
                                   const std::vector<text::Sentence>& unlabelled) {
  Fnv1a hash;
  // Only knobs that change the trained parameters participate; alpha and
  // the graph/propagation settings are test-time and may vary freely
  // across a resume.
  hash.mix_scalar(static_cast<int>(config.profile));
  hash.mix_scalar(config.crf_order);
  hash.mix_scalar(config.brown_clusters);
  hash.mix_scalar(config.embedding_kmeans_clusters);
  hash.mix_scalar(config.embedding_seed);
  hash.mix_scalar(config.embedding_threads);
  hash.mix_scalar(config.train.l2_sigma);
  hash.mix_scalar(config.train.lbfgs.history);
  hash.mix_scalar(config.train.lbfgs.max_iterations);
  hash.mix_scalar(config.train.lbfgs.gradient_tolerance);
  mix_sentences(hash, labelled);
  mix_sentences(hash, unlabelled);
  return hash.state;
}

TrainCheckpoint TrainCheckpoint::open(const std::string& dir,
                                      std::uint64_t fingerprint) {
  TrainCheckpoint checkpoint;
  checkpoint.dir_ = dir;
  checkpoint.fingerprint_ = fingerprint;
  std::filesystem::create_directories(dir);

  std::ifstream in(manifest_path(dir));
  if (!in) return checkpoint;  // fresh directory

  std::string magic;
  int version = 0;
  std::string key;
  std::uint64_t stored = 0;
  if (!(in >> magic >> version) || magic != kManifestMagic ||
      version != kManifestVersion || !(in >> key >> std::hex >> stored) ||
      key != "fingerprint") {
    util::log_warn("checkpoint: malformed manifest in ", dir,
                   " — ignoring prior state");
    return checkpoint;
  }
  if (stored != fingerprint) {
    util::log_warn("checkpoint: fingerprint mismatch in ", dir,
                   " (different corpus or config) — ignoring prior state");
    return checkpoint;
  }
  while (in >> key) {
    if (key != "done") {
      util::log_warn("checkpoint: unexpected manifest entry '", key,
                     "' — ignoring prior state");
      checkpoint.done_.clear();
      return checkpoint;
    }
    std::string phase;
    if (!(in >> phase)) break;
    checkpoint.done_.push_back(std::move(phase));
  }
  if (!checkpoint.done_.empty())
    util::log_info("checkpoint: resuming from ", dir, " (",
                   checkpoint.done_.size(), " phase(s) already complete, last: ",
                   checkpoint.done_.back(), ")");
  return checkpoint;
}

bool TrainCheckpoint::completed(const std::string& phase) const {
  return std::find(done_.begin(), done_.end(), phase) != done_.end();
}

std::string TrainCheckpoint::artifact_path(const std::string& phase) const {
  return dir_ + "/" + phase + ".ckpt";
}

bool TrainCheckpoint::restore(const std::string& phase,
                              const std::function<void(std::istream&)>& reader) {
  if (!enabled() || !completed(phase)) return false;
  std::ifstream in(artifact_path(phase));
  if (!in) {
    // The manifest promises a complete artifact (it is written second);
    // an unreadable one means outside interference — recompute the phase.
    util::log_warn("checkpoint: listed artifact ", artifact_path(phase),
                   " unreadable — recomputing phase ", phase);
    done_.erase(std::remove(done_.begin(), done_.end(), phase), done_.end());
    return false;
  }
  reader(in);
  obs::Registry::global().counter("checkpoint.restores").inc();
  util::log_info("checkpoint: restored phase ", phase, " from ",
                 artifact_path(phase));
  return true;
}

void TrainCheckpoint::commit(const std::string& phase,
                             const std::function<void(std::ostream&)>& writer) {
  if (!enabled()) return;
  util::atomic_save(artifact_path(phase), writer);
  if (!completed(phase)) done_.push_back(phase);
  write_manifest();
  obs::Registry::global().counter("checkpoint.commits").inc();
  util::log_info("checkpoint: committed phase ", phase);
  // Chaos seam: simulate the process dying right after this phase became
  // durable — the next run must resume from here.
  if (util::fault_fires("train.crash." + phase))
    throw util::FaultInjectedError("train.crash." + phase);
}

void TrainCheckpoint::write_manifest() const {
  util::atomic_save(manifest_path(dir_), [this](std::ostream& out) {
    out << kManifestMagic << ' ' << kManifestVersion << '\n';
    out << "fingerprint " << std::hex << fingerprint_ << std::dec << '\n';
    for (const auto& phase : done_) out << "done " << phase << '\n';
  });
}

}  // namespace graphner::core
