#include "src/graphner/inductive.hpp"

#include <cassert>

#include "src/util/logging.hpp"

namespace graphner::core {
namespace {

/// Fraction of positions whose tag differs between two labelings.
double label_change(const std::vector<std::vector<text::Tag>>& a,
                    const std::vector<std::vector<text::Tag>>& b) {
  assert(a.size() == b.size());
  std::size_t changed = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    assert(a[i].size() == b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      changed += a[i][j] != b[i][j];
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(changed) / static_cast<double>(total);
}

}  // namespace

InductiveResult run_inductive(const std::vector<text::Sentence>& labelled,
                              const std::vector<text::Sentence>& test,
                              const InductiveConfig& config) {
  InductiveResult result;

  // Round 0: the plain transductive pass.
  {
    const auto model = GraphNerModel::train(labelled, test, config.base);
    const auto round = model.test(labelled, test);
    result.baseline_tags = round.baseline_tags;
    result.transductive_tags = round.graphner_tags;
    result.tags = round.graphner_tags;
    result.rounds_run = 1;
  }
  if (!config.self_train) return result;

  for (std::size_t round = 1; round < config.max_rounds; ++round) {
    // Expand the labelled set with the pseudo-labelled test sentences.
    std::vector<text::Sentence> expanded = labelled;
    expanded.reserve(labelled.size() + test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      text::Sentence pseudo = test[i];
      pseudo.tags = result.tags[i];
      if (pseudo.has_tags()) expanded.push_back(std::move(pseudo));
    }

    const auto model = GraphNerModel::train(expanded, test, config.base);
    const auto decoded = model.test(expanded, test);

    const double change = label_change(decoded.graphner_tags, result.tags);
    result.change_per_round.push_back(change);
    result.tags = decoded.graphner_tags;
    result.rounds_run = round + 1;
    util::log_info("inductive round ", round, ": ",
                   100.0 * change, "% of test tokens changed");
    if (change < config.convergence_threshold) break;
  }
  return result;
}

}  // namespace graphner::core
