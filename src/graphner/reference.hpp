// Reference label distributions X_ref (Algorithm 1, line 3).
//
// Scans the labelled data and, for every 3-gram type occurring there,
// averages the one-hot tag distribution of the centre token across its
// occurrences. These distributions anchor labelled vertices during graph
// propagation.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/propagation/propagation.hpp"
#include "src/text/label_set.hpp"
#include "src/text/sentence.hpp"

namespace graphner::core {

class ReferenceDistributions {
 public:
  /// Build from labelled sentences (tags required). Distributions carry one
  /// column per label of `labels` (3 for the legacy single-type set).
  static ReferenceDistributions build(
      const std::vector<text::Sentence>& labelled,
      const text::LabelSet& labels = text::LabelSet::single());

  /// X_ref for a trigram key; nullptr when the trigram is not in V_l.
  [[nodiscard]] const propagation::LabelDistribution* find(
      const std::array<std::string, 3>& trigram) const;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

  /// Insert or overwrite an entry. Serving-time online learning stores
  /// propagated distributions for previously unseen trigrams this way.
  void set(const std::array<std::string, 3>& trigram,
           const propagation::LabelDistribution& dist) {
    table_[key_of(trigram)] = dist;
  }

  /// Order-independent FNV-1a digest of the table's content. Mixed into the
  /// model fingerprint so learned-table forks are distinguishable from their
  /// base (and from each other) by the decode cache.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Fraction of entries whose non-O mass exceeds the O mass ("positively
  /// labelled vertices", §III-D; O is always the last label).
  [[nodiscard]] double positive_fraction() const;

  /// Text serialization. Trigram keys are written tab-separated so the
  /// internal separator never reaches the file format.
  void save(std::ostream& out) const;
  static ReferenceDistributions load(std::istream& in);

 private:
  static std::string key_of(const std::array<std::string, 3>& trigram);

  std::unordered_map<std::string, propagation::LabelDistribution> table_;
};

}  // namespace graphner::core
