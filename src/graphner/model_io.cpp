// GraphNerModel persistence (text format, versioned header).
//
// A saved model carries everything Algorithm 1 needs at test time: the
// configuration, the ChemDNER embedding resources (Brown clusters +
// word2vec k-means assignments), the frozen feature index, the CRF
// weights, and the reference distributions. Loading reconstructs the
// feature extractor over the restored resources, so a loaded model decodes
// identically to the one that was saved (tests/test_model_io.cpp).
#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/graphner/pipeline.hpp"
#include "src/util/fault.hpp"
#include "src/util/logging.hpp"

namespace graphner::core {
namespace {

constexpr const char* kMagic = "graphner-model";
// v2 appended an "end" sentinel so truncation after the last section and
// trailing garbage are both detectable; v3 adds the "labels" block (the
// model's BIO label inventory, validated through label_set_from_names at
// load). The constant lives on GraphNerModel so the mmap format's meta
// section shares it.
constexpr int kVersion = GraphNerModel::kTextFormatVersion;

void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  in >> token;
  if (token != expected)
    throw std::runtime_error("model file: expected '" + expected + "', got '" +
                             token + "'");
}

}  // namespace

void GraphNerModel::save(std::ostream& out) const {
  out.precision(17);
  out << kMagic << ' ' << kVersion << '\n';
  save_head(out);

  const auto weights = crf_->weights();
  out << "weights " << weights.size() << '\n';
  for (std::size_t i = 0; i < weights.size(); ++i)
    out << weights[i] << ((i + 1) % 8 == 0 ? '\n' : ' ');
  out << '\n';

  out << "reference\n";
  reference_->save(out);
  out << "end\n";
}

// Everything between the magic line and the weights. Shared with the mmap
// format's "meta" section, which stores these same text sections but keeps
// the weight doubles raw (model_mmap.cpp).
void GraphNerModel::save_head(std::ostream& out) const {
  out << "config " << static_cast<int>(config_.profile) << ' ' << config_.crf_order
      << ' ' << config_.alpha << '\n';
  // The model's BIO label inventory, one wire name per line in canonical
  // layout order (B_t, I_t pairs, O last). The loader revalidates through
  // label_set_from_names, so a corrupted table cannot silently build a
  // wrong-shaped state space.
  out << "labels " << config_.labels.num_labels() << '\n';
  for (const auto& name : config_.labels.names()) out << name << '\n';
  out << "propagation " << config_.propagation.mu << ' ' << config_.propagation.nu
      << ' ' << config_.propagation.iterations << '\n';
  out << "knn " << config_.knn.k << ' ' << config_.knn.max_posting_length << ' '
      << config_.knn.min_similarity << '\n';
  out << "vertex " << static_cast<int>(config_.vertex_features.representation) << ' '
      << config_.vertex_features.max_document_frequency << ' '
      << config_.vertex_features.selected_features.size() << '\n';
  for (const auto& name : config_.vertex_features.selected_features)
    out << name << '\n';

  out << "brown " << (brown_ ? 1 : 0) << '\n';
  if (brown_) brown_->save(out);

  out << "embclusters " << (embedding_clusters_ ? 1 : 0) << '\n';
  if (embedding_clusters_) {
    out << embedding_clusters_->k << ' ' << embedding_clusters_->assignment.size()
        << '\n';
    // Sorted, like every other table: the serialization is a function of
    // the model, not of unordered_map iteration order, so two equal models
    // (e.g. an interrupted-and-resumed training run vs an uninterrupted
    // one) produce byte-identical files.
    std::vector<std::pair<std::string, int>> entries(
        embedding_clusters_->assignment.begin(),
        embedding_clusters_->assignment.end());
    std::sort(entries.begin(), entries.end());
    for (const auto& [word, cluster] : entries)
      out << word << ' ' << cluster << '\n';
  }

  out << "gazetteer " << (gazetteer_ ? 1 : 0) << '\n';
  if (gazetteer_) gazetteer_->save(out);

  out << "features " << index_->size() << '\n';
  for (crf::FeatureIndex::Id id = 0; id < index_->size(); ++id)
    out << index_->name(id) << '\n';
}

GraphNerModel GraphNerModel::load(std::istream& in) {
  expect_token(in, kMagic);
  int version = 0;
  if (!(in >> version))
    throw std::runtime_error("model file: missing version number");
  if (version != kVersion)
    throw std::runtime_error("model file: unsupported version " +
                             std::to_string(version) + " (this build reads version " +
                             std::to_string(kVersion) + ")");

  GraphNerModel model;
  load_head(in, model);

  expect_token(in, "weights");
  std::size_t weight_count = 0;
  in >> weight_count;
  if (weight_count != model.crf_->num_parameters())
    throw std::runtime_error("model file: weight count mismatch");
  std::vector<double> weights(weight_count);
  for (auto& w : weights) in >> w;
  model.crf_->set_weights(weights);

  expect_token(in, "reference");
  model.reference_ = std::make_shared<ReferenceDistributions>(
      ReferenceDistributions::load(in));

  if (!in) throw std::runtime_error("model file: truncated");
  expect_token(in, "end");
  // Anything after the sentinel means the file is not what save() wrote —
  // most likely a corrupted download or two models concatenated.
  char c = 0;
  while (in.get(c)) {
    if (!std::isspace(static_cast<unsigned char>(c)))
      throw std::runtime_error(
          "model file: trailing garbage after the end marker");
  }
  model.compute_fingerprint();
  util::log_info("graphner: loaded ", profile_name(model.config_.profile),
                 " model, ", model.index_->size(), " features, ",
                 model.reference_->size(), " reference trigrams");
  return model;
}

// Parses what save_head wrote and rebuilds everything that hangs off it:
// the embedding resources, the feature extractor over them, the frozen
// feature index, and a zero-weight CRF sized to match (the caller supplies
// the weights — parsed text here, an mmap'd view in model_mmap.cpp).
void GraphNerModel::load_head(std::istream& in, GraphNerModel& model) {
  expect_token(in, "config");
  int profile = 0;
  in >> profile >> model.config_.crf_order >> model.config_.alpha;
  model.config_.profile = static_cast<CrfProfile>(profile);
  expect_token(in, "labels");
  std::size_t label_count = 0;
  if (!(in >> label_count))
    throw std::runtime_error("model file: missing label count");
  std::vector<std::string> label_names;
  label_names.reserve(label_count);
  for (std::size_t i = 0; i < label_count; ++i) {
    std::string name;
    if (!(in >> name))
      throw std::runtime_error("model file: labels table truncated (promises " +
                               std::to_string(label_count) + " labels, holds " +
                               std::to_string(i) + ")");
    label_names.push_back(std::move(name));
  }
  try {
    model.config_.labels = text::label_set_from_names(label_names);
  } catch (const std::invalid_argument& e) {
    // label_set_from_names throws invalid_argument with the distinct
    // "duplicate label ..." / "label set is not BIO-closed ..." messages;
    // re-throw in the loader's error type, message preserved.
    throw std::runtime_error("model file: " + std::string(e.what()));
  }
  expect_token(in, "propagation");
  in >> model.config_.propagation.mu >> model.config_.propagation.nu >>
      model.config_.propagation.iterations;
  expect_token(in, "knn");
  in >> model.config_.knn.k >> model.config_.knn.max_posting_length >>
      model.config_.knn.min_similarity;
  expect_token(in, "vertex");
  int representation = 0;
  std::size_t selected_count = 0;
  in >> representation >> model.config_.vertex_features.max_document_frequency >>
      selected_count;
  model.config_.vertex_features.representation =
      static_cast<graph::VertexRepresentation>(representation);
  for (std::size_t i = 0; i < selected_count; ++i) {
    std::string name;
    in >> name;
    model.config_.vertex_features.selected_features.insert(std::move(name));
  }

  expect_token(in, "brown");
  int has_brown = 0;
  in >> has_brown;
  if (has_brown != 0)
    model.brown_ = std::make_shared<embeddings::BrownClustering>(
        embeddings::BrownClustering::load(in));

  expect_token(in, "embclusters");
  int has_clusters = 0;
  in >> has_clusters;
  if (has_clusters != 0) {
    model.embedding_clusters_ = std::make_shared<embeddings::EmbeddingClusters>();
    std::size_t entries = 0;
    in >> model.embedding_clusters_->k >> entries;
    for (std::size_t i = 0; i < entries; ++i) {
      std::string word;
      int cluster = 0;
      in >> word >> cluster;
      model.embedding_clusters_->assignment[std::move(word)] = cluster;
    }
  }

  expect_token(in, "gazetteer");
  int has_gazetteer = 0;
  in >> has_gazetteer;
  if (has_gazetteer != 0)
    model.gazetteer_ = std::make_shared<features::Gazetteer>(
        features::Gazetteer::load(in));
  model.config_.gazetteer_features = has_gazetteer != 0;

  // Extractor over the restored resources.
  features::FeatureConfig feature_config;
  if (model.config_.profile == CrfProfile::kBannerChemDner) {
    feature_config.brown = model.brown_.get();
    feature_config.embedding_clusters = model.embedding_clusters_.get();
  }
  feature_config.gazetteer = model.gazetteer_.get();
  model.extractor_ = std::make_shared<features::FeatureExtractor>(feature_config);

  expect_token(in, "features");
  std::size_t feature_count = 0;
  in >> feature_count;
  model.index_ = std::make_shared<crf::FeatureIndex>();
  for (std::size_t i = 0; i < feature_count; ++i) {
    std::string name;
    in >> name;
    model.index_->intern(name);  // ids are insertion-ordered, so they match
  }
  model.index_->freeze();

  const crf::StateSpace space =
      model.config_.crf_order == 2
          ? crf::StateSpace::order2(model.config_.labels)
          : crf::StateSpace::order1(model.config_.labels);
  model.crf_ = std::make_shared<crf::LinearChainCrf>(space, model.index_->size());
}

GraphNerModel GraphNerModel::load(std::istream& in,
                                  const crf::DecodeOptions& options) {
  GraphNerModel model = load(in);
  // Quantized tables are calibrated here, before any worker sees the model,
  // so the first decode pays nothing and workers never mutate it.
  model.set_decode_options(options);
  return model;
}

void GraphNerModel::save_file(const std::string& path) const {
  util::atomic_save(path, [this](std::ostream& out) { save(out); });
}

GraphNerModel GraphNerModel::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read model " + path);
  return load(in);
}

GraphNerModel GraphNerModel::load_file(const std::string& path,
                                       const crf::DecodeOptions& options) {
  GraphNerModel model = load_file(path);
  model.set_decode_options(options);
  return model;
}

}  // namespace graphner::core
