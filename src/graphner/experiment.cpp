#include "src/graphner/experiment.hpp"

#include <cassert>

namespace graphner::core {

std::vector<text::Annotation> tags_to_annotations(
    const std::vector<text::Sentence>& sentences,
    const std::vector<std::vector<text::Tag>>& tags) {
  assert(sentences.size() == tags.size());
  std::vector<text::Annotation> out;
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    text::Sentence tagged = sentences[i];
    tagged.tags = tags[i];
    if (!tagged.has_tags()) continue;
    for (auto& ann : text::annotations_from_tags(tagged)) out.push_back(std::move(ann));
  }
  return out;
}

ExperimentOutput run_experiment(const corpus::LabelledCorpus& corpus,
                                const GraphNerConfig& config) {
  // Unlabelled text for embedding training: the test side's surface forms
  // (labels never touched), mirroring the transductive setting.
  std::vector<text::Sentence> unlabelled;
  unlabelled.reserve(corpus.test.size());
  for (const auto& s : corpus.test) {
    text::Sentence stripped;
    stripped.id = s.id;
    stripped.tokens = s.tokens;
    unlabelled.push_back(std::move(stripped));
  }

  const GraphNerModel model = GraphNerModel::train(corpus.train, unlabelled, config);
  GraphNerModel::TestResult test = model.test(corpus.train, corpus.test);

  ExperimentOutput out;
  out.baseline_detections = tags_to_annotations(corpus.test, test.baseline_tags);
  out.graphner_detections = tags_to_annotations(corpus.test, test.graphner_tags);
  out.baseline = eval::evaluate_bc2gm(out.baseline_detections, corpus.test_gold,
                                      corpus.test_alternatives);
  out.graphner = eval::evaluate_bc2gm(out.graphner_detections, corpus.test_gold,
                                      corpus.test_alternatives);
  out.timings = test.timings;
  out.stats = std::move(test.stats);
  return out;
}

}  // namespace graphner::core
