// End-to-end experiment runner shared by the benches and examples:
// corpus -> train -> transductive test -> BC2GM evaluation.
#pragma once

#include <vector>

#include "src/corpus/corpus.hpp"
#include "src/eval/bc2gm_eval.hpp"
#include "src/graphner/pipeline.hpp"

namespace graphner::core {

/// Convert decoded tag sequences back to shared-task annotations.
[[nodiscard]] std::vector<text::Annotation> tags_to_annotations(
    const std::vector<text::Sentence>& sentences,
    const std::vector<std::vector<text::Tag>>& tags);

struct ExperimentOutput {
  eval::EvalResult baseline;  ///< pure CRF (BANNER or BANNER-ChemDNER)
  eval::EvalResult graphner;  ///< GraphNER on top of the same CRF
  std::vector<text::Annotation> baseline_detections;
  std::vector<text::Annotation> graphner_detections;
  PipelineTimings timings;
  GraphNerStats stats;
};

/// Train on corpus.train, run Algorithm 1 over the transductive split, and
/// evaluate both the baseline CRF and GraphNER with the BC2GM protocol.
/// The ChemDNER profile's embeddings are trained on the corpus text
/// (train + test surface forms — unlabelled use only).
[[nodiscard]] ExperimentOutput run_experiment(const corpus::LabelledCorpus& corpus,
                                              const GraphNerConfig& config);

}  // namespace graphner::core
