// The GraphNER pipeline (Algorithm 1).
//
//   TRAIN: train the base CRF on the labelled data and record the
//   reference label distributions of every labelled 3-gram.
//
//   TEST (transductive): extract CRF posteriors and transition
//   probabilities over labelled + unlabelled data, average posteriors per
//   3-gram vertex, propagate on the similarity graph, mix the propagated
//   distributions back into the CRF posteriors with coefficient alpha, and
//   Viterbi-decode the mixed beliefs.
//
// The trained model also answers pure-CRF queries so the baseline rows of
// every table come from the identical model instance.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/crf/belief_viterbi.hpp"
#include "src/crf/feature_index.hpp"
#include "src/crf/model.hpp"
#include "src/embeddings/brown.hpp"
#include "src/embeddings/word2vec.hpp"
#include "src/features/encoder.hpp"
#include "src/features/extractor.hpp"
#include "src/features/gazetteer.hpp"
#include "src/graph/graph_stats.hpp"
#include "src/graph/trigram.hpp"
#include "src/graphner/config.hpp"
#include "src/graphner/reference.hpp"
#include "src/obs/span.hpp"
#include "src/text/sentence.hpp"

namespace graphner::core {

/// Wall-clock breakdown (Fig. 2 reports train+test cost of CRF vs GraphNER).
struct PipelineTimings {
  double crf_train_seconds = 0.0;
  double reference_seconds = 0.0;
  double crf_inference_seconds = 0.0;   ///< posteriors + baseline Viterbi
  double graph_construction_seconds = 0.0;
  double propagation_seconds = 0.0;
  double combine_decode_seconds = 0.0;

  [[nodiscard]] double baseline_total() const noexcept {
    return crf_train_seconds + crf_inference_seconds;
  }
  [[nodiscard]] double graphner_total() const noexcept {
    return baseline_total() + reference_seconds + graph_construction_seconds +
           propagation_seconds + combine_decode_seconds;
  }
};

/// Wall-clock breakdown of the TRAIN procedure (embedding phases matter:
/// at paper scale Brown + word2vec dominate, which is what the windowed /
/// Hogwild training kernels attack — see DESIGN.md §6).
///
/// Deprecated as a measurement mechanism: the phases are now timed by
/// obs trace spans ("train.brown", "train.word2vec", ...) and this struct
/// is a thin adapter materialized from them (training_timings_from_spans)
/// so existing benches keep their typed view. New consumers should read
/// the spans / the obs registry instead.
struct TrainingTimings {
  double brown_seconds = 0.0;
  double word2vec_seconds = 0.0;
  double kmeans_seconds = 0.0;
  double encode_seconds = 0.0;     ///< feature extraction + batch encoding
  double crf_train_seconds = 0.0;  ///< L-BFGS optimization only
  double reference_seconds = 0.0;

  [[nodiscard]] double total() const noexcept {
    return brown_seconds + word2vec_seconds + kmeans_seconds + encode_seconds +
           crf_train_seconds + reference_seconds;
  }
};

/// Materialize the legacy TrainingTimings view from the spans a
/// SpanCapture mirrored while GraphNerModel::train ran: each field is the
/// summed duration of the phase's "train.<phase>" spans (0.0 for phases
/// that did not run — skipped profiles, checkpoint-restored work).
[[nodiscard]] TrainingTimings training_timings_from_spans(
    const obs::SpanCapture& capture);

struct GraphNerStats {
  std::size_t vertices = 0;
  std::size_t edges = 0;
  double labelled_vertex_fraction = 0.0;
  double positive_vertex_fraction = 0.0;
  std::vector<double> propagation_loss;  ///< per iteration
};

class GraphNerModel {
 public:
  /// TRAIN procedure. `unlabelled_text` feeds the ChemDNER profile's Brown /
  /// word2vec training (ignored for the plain BANNER profile); pass the
  /// union of all raw text available (the paper trains embeddings on large
  /// unlabelled corpora).
  static GraphNerModel train(const std::vector<text::Sentence>& labelled,
                             const std::vector<text::Sentence>& unlabelled_text,
                             const GraphNerConfig& config);

  GraphNerModel(GraphNerModel&&) noexcept = default;
  GraphNerModel& operator=(GraphNerModel&&) noexcept = default;

  /// Default decode options (pruning + quantization, DESIGN.md §10) for
  /// every decode / posterior entry point below, including the pipeline's
  /// corpus-wide posterior passes. Forwards to the CRF (building quantized
  /// tables eagerly) and publishes the decode.config.* gauges. Configure
  /// before sharing the model across threads — not safe against concurrent
  /// decodes, like set_weights.
  void set_decode_options(const crf::DecodeOptions& options);
  [[nodiscard]] const crf::DecodeOptions& decode_options() const noexcept;

  /// Pure-CRF decode (the paper's baseline rows).
  [[nodiscard]] std::vector<std::vector<text::Tag>> decode_crf(
      const std::vector<text::Sentence>& sentences) const;

  /// Single-sentence pure-CRF decode for the serving runtime: const and
  /// safe to call concurrently from many threads over one shared model
  /// (feature extraction, index lookup and Viterbi only read immutable
  /// state). `scratch` and `encode` are per-caller warm buffers — a worker
  /// that reuses them decodes with zero per-sentence lattice allocation.
  [[nodiscard]] std::vector<text::Tag> decode_one(
      const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
      features::EncodeScratch& encode) const;
  /// Same, decoding under explicit options instead of the model default
  /// (per-request wire overrides in the serving runtime).
  [[nodiscard]] std::vector<text::Tag> decode_one(
      const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
      features::EncodeScratch& encode, const crf::DecodeOptions& options) const;

  /// Single-sentence GraphNER posterior-blend decode: CRF posteriors are
  /// mixed (coefficient alpha, as in Algorithm 1 line 8) with the model's
  /// reference distributions at every position whose 3-gram occurs in the
  /// labelled data, and the mix is decoded with belief Viterbi over the
  /// CRF's per-edge transition ratios. This is the inductive, graph-free
  /// approximation of the transductive TEST procedure — the corpus-level
  /// signal without a corpus in hand — and the quality tier the serving
  /// runtime degrades *from* under overload (plain decode_one is the
  /// fallback). Same thread-safety contract as decode_one.
  [[nodiscard]] std::vector<text::Tag> decode_one_blended(
      const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
      features::EncodeScratch& encode) const;
  [[nodiscard]] std::vector<text::Tag> decode_one_blended(
      const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
      features::EncodeScratch& encode, const crf::DecodeOptions& options) const;

  struct TestResult {
    std::vector<std::vector<text::Tag>> baseline_tags;  ///< pure CRF
    std::vector<std::vector<text::Tag>> graphner_tags;  ///< Algorithm 1
    PipelineTimings timings;
    GraphNerStats stats;
  };

  /// Everything in the TEST procedure that does not depend on the
  /// propagation hyper-parameters (alpha, mu, nu, #iterations): CRF
  /// posteriors + transition estimates + baseline decode, the 3-gram
  /// vertex set, the PPMI k-NN graph, the averaged initial distributions
  /// and the aligned reference distributions. Hyper-parameter sweeps
  /// (Table IV cross-validation) prepare once and finish many times.
  struct TestContext {
    graph::TrigramVertices vertices;
    graph::KnnGraph knn;
    std::vector<crf::SentencePosteriors> posteriors;  ///< train then test
    crf::TagTransitionMatrix transitions{};
    std::vector<propagation::LabelDistribution> x_initial;
    std::vector<propagation::LabelDistribution> x_reference;
    std::vector<bool> is_labelled;
    std::vector<std::vector<text::Tag>> baseline_tags;
    std::size_t labelled_sentence_count = 0;
    std::vector<std::size_t> test_lengths;
    PipelineTimings timings;
    std::size_t positive_vertices = 0;
  };

  /// `extra_unlabelled` (optional) joins the graph construction and the
  /// posterior averaging but is never decoded — the paper's future-work
  /// extension of feeding abundant unlabelled data into the graph.
  [[nodiscard]] TestContext prepare(
      const std::vector<text::Sentence>& labelled,
      const std::vector<text::Sentence>& test,
      const std::vector<text::Sentence>& extra_unlabelled = {}) const;

  /// Lines 7-9 of Algorithm 1 under explicit hyper-parameters.
  [[nodiscard]] TestResult finish(const TestContext& context,
                                  const propagation::PropagationConfig& propagation,
                                  double alpha) const;

  /// TEST procedure over the transductive split with the model's own
  /// configuration. `labelled` must be the training sentences (their
  /// posteriors join the vertex averages, and the graph is built over both
  /// sides, exactly as in the paper).
  [[nodiscard]] TestResult test(const std::vector<text::Sentence>& labelled,
                                const std::vector<text::Sentence>& test) const;

  /// Single-sentence CRF posteriors for external consumers (the online
  /// learner averages these per appended trigram vertex). Same thread-safety
  /// contract as decode_one.
  [[nodiscard]] crf::SentencePosteriors posteriors_one(
      const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
      features::EncodeScratch& encode) const;

  /// Shallow fork carrying an online-learned distribution table: shares
  /// every trained member (CRF weights, feature index, extractor, reference
  /// table, any mmap mapping) with this model by reference count, swaps in
  /// `learned`, and recomputes the fingerprint so the serving tier's decode
  /// cache distinguishes the fork from its base. O(1) in model size — this
  /// is what makes #LEARN's hot-swap cheap.
  [[nodiscard]] GraphNerModel fork_with_learned(
      std::shared_ptr<const ReferenceDistributions> learned) const;
  /// The online-learned table; nullptr on models that never learned.
  [[nodiscard]] const ReferenceDistributions* learned() const noexcept {
    return learned_.get();
  }

  [[nodiscard]] const GraphNerConfig& config() const noexcept { return config_; }
  /// The BIO label inventory this model decodes over (wire tag names, state
  /// space width, distribution sizes all derive from it).
  [[nodiscard]] const text::LabelSet& labels() const noexcept {
    return config_.labels;
  }
  [[nodiscard]] const ReferenceDistributions& reference() const noexcept {
    return *reference_;
  }
  /// The trained feature extractor (the online learner builds incremental
  /// PPMI vertex vectors with it; read-only and thread-safe like decode).
  [[nodiscard]] const features::FeatureExtractor& extractor() const noexcept {
    return *extractor_;
  }
  /// The terminology bank (nullptr unless gazetteer_features was set).
  [[nodiscard]] const features::Gazetteer* gazetteer() const noexcept {
    return gazetteer_.get();
  }
  [[nodiscard]] double train_seconds() const noexcept { return train_seconds_; }
  /// Per-phase TRAIN wall-clock (zeroed on a load()ed model).
  [[nodiscard]] const TrainingTimings& training_timings() const noexcept {
    return training_timings_;
  }
  [[nodiscard]] std::size_t feature_count() const noexcept { return index_->size(); }

  /// Text model format version. v3 adds the "labels" block (the model's
  /// BIO label inventory) right after the config line; the same version
  /// number gates the mmap format's meta section.
  static constexpr int kTextFormatVersion = 3;

  /// Persist a trained model (text format) / restore it. A loaded model
  /// tags and runs Algorithm 1 exactly like the one that was saved. The
  /// serialization is canonical: equal models produce byte-identical
  /// output (every unordered table is written sorted).
  void save(std::ostream& out) const;
  static GraphNerModel load(std::istream& in);
  /// load() then set_decode_options(): quantized tables are built once at
  /// load time, before the model is shared with any worker.
  static GraphNerModel load(std::istream& in, const crf::DecodeOptions& options);

  /// save() to `path` crash-safely (tmp + fsync + rename): a crash
  /// mid-save leaves the previous complete file, never a torn one.
  void save_file(const std::string& path) const;
  static GraphNerModel load_file(const std::string& path);
  static GraphNerModel load_file(const std::string& path,
                                 const crf::DecodeOptions& options);

  // --- zero-copy mmap model format (DESIGN.md §11) ---

  /// Write the binary mmap format: a fixed header, a section table, and
  /// 64-byte-aligned fingerprinted sections ("meta" = the text metadata,
  /// "weights" = the raw weight doubles). Written crash-safely like
  /// save_file. A model saved this way round-trips byte-identically
  /// through the text format (save() output is unchanged).
  void save_mmap_file(const std::string& path) const;
  /// Map `path` read-only and build a model whose CRF weight table is a
  /// *view into the mapping* — no heap copy, so N replicas (threads or
  /// processes) mapping the same file share one page-cache copy of the
  /// weights, and cold-start skips parsing the dominant weight text.
  /// The mapping lives as long as the model. Throws std::runtime_error
  /// with distinct messages for truncation, bad magic, version or byte-
  /// order mismatch, misaligned or out-of-bounds sections, fingerprint
  /// mismatch and trailing garbage.
  static GraphNerModel load_mmap_file(const std::string& path);
  static GraphNerModel load_mmap_file(const std::string& path,
                                      const crf::DecodeOptions& options);
  /// Sniff the on-disk magic and dispatch to load_mmap_file or load_file.
  static GraphNerModel load_auto_file(const std::string& path);

  /// Identity of the decode-relevant parameters (FNV-1a over the weight
  /// table, parameter count and feature count): equal models agree across
  /// the text and mmap formats, different weights disagree. Cache keys in
  /// the serving tier carry this so a hot-swap can never serve stale tags.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }
  /// True when the CRF weight table is a borrowed view into an mmap'd
  /// model file (load_mmap_file) rather than heap storage.
  [[nodiscard]] bool weights_mapped() const noexcept;
  /// The mapped file region backing this model; {nullptr, 0} when the
  /// model was not mmap-loaded. Test/diagnostic introspection.
  [[nodiscard]] std::pair<const void*, std::size_t> mapped_region() const noexcept {
    return {map_base_, map_size_};
  }

 private:
  GraphNerModel() = default;

  /// The text sections shared by both formats: everything between the
  /// magic line and the weights (config .. feature names). load_head
  /// leaves the stream positioned at the "weights" token (text format) or
  /// the "reference" token (mmap meta section).
  void save_head(std::ostream& out) const;
  static void load_head(std::istream& in, GraphNerModel& model);
  /// Recompute fingerprint_ from the CRF weights + shape (call after the
  /// weights are final).
  void compute_fingerprint();

  GraphNerConfig config_{};
  // shared_ptrs keep the model movable while FeatureExtractor holds stable
  // pointers to the embedding resources — and let fork_with_learned share
  // every heavy immutable member (weights, index, extractor, reference)
  // with its base instead of copying them per learn batch.
  std::shared_ptr<embeddings::BrownClustering> brown_;
  std::shared_ptr<embeddings::EmbeddingClusters> embedding_clusters_;
  std::shared_ptr<features::Gazetteer> gazetteer_;
  std::shared_ptr<features::FeatureExtractor> extractor_;
  std::shared_ptr<crf::FeatureIndex> index_;
  std::shared_ptr<crf::LinearChainCrf> crf_;
  std::shared_ptr<ReferenceDistributions> reference_;
  /// Online-learned distributions (propagated, not hand-labelled), consulted
  /// by decode_one_blended when reference_ misses. In-memory serving state:
  /// save()/save_mmap_file persist the base model only, so the text format
  /// is unchanged. Never mutated after the fork is built — swaps replace
  /// the whole model.
  std::shared_ptr<const ReferenceDistributions> learned_;
  double train_seconds_ = 0.0;
  double reference_seconds_ = 0.0;
  TrainingTimings training_timings_{};
  std::uint64_t fingerprint_ = 0;
  // mmap-loaded models keep their file mapping alive here (the deleter
  // munmaps); the CRF weight span points into [map_base_, map_base_ + map_size_).
  std::shared_ptr<void> mapping_;
  const void* map_base_ = nullptr;
  std::size_t map_size_ = 0;
};

}  // namespace graphner::core
