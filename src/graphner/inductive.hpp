// Inductive GraphNER (the Subramanya et al. 2010 training regime).
//
// The paper runs GraphNER transductively — one train pass, one test pass.
// It describes (and deliberately departs from) the inductive alternative:
// treat the output of the final Viterbi decode as correct labels for the
// unlabelled data, retrain the CRF on the expanded labelled set, and
// iterate train/test "until convergence or the 10th iteration". This
// module implements that loop as an extension so the two regimes can be
// compared (bench/ablation_inductive).
#pragma once

#include <vector>

#include "src/graphner/pipeline.hpp"

namespace graphner::core {

struct InductiveConfig {
  GraphNerConfig base{};
  std::size_t max_rounds = 10;
  /// Stop when fewer than this fraction of test tokens change label
  /// between consecutive rounds.
  double convergence_threshold = 0.001;
  /// Weight of pseudo-labelled sentences relative to gold ones is fixed at
  /// 1 (as in the original recipe); set false to keep the first round's
  /// transductive behaviour only (degenerates to GraphNerModel::test).
  bool self_train = true;
};

struct InductiveResult {
  /// Final GraphNER labels for the test sentences.
  std::vector<std::vector<text::Tag>> tags;
  /// Round-0 (purely transductive, the paper's setting) GraphNER labels.
  std::vector<std::vector<text::Tag>> transductive_tags;
  /// First-round pure-CRF labels (the supervised baseline).
  std::vector<std::vector<text::Tag>> baseline_tags;
  std::size_t rounds_run = 0;
  /// Fraction of test tokens whose label changed, per round (round 1
  /// compares against the initial transductive decode).
  std::vector<double> change_per_round;
};

/// Run the iterative train/test loop. Each round trains a fresh CRF on the
/// gold training data plus the test data pseudo-labelled by the previous
/// round's decode, then runs Algorithm 1's test procedure.
[[nodiscard]] InductiveResult run_inductive(
    const std::vector<text::Sentence>& labelled,
    const std::vector<text::Sentence>& test, const InductiveConfig& config);

}  // namespace graphner::core
