#include "src/graphner/reference.hpp"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "src/graph/trigram.hpp"

namespace graphner::core {

std::string ReferenceDistributions::key_of(const std::array<std::string, 3>& trigram) {
  return trigram[0] + '\x1f' + trigram[1] + '\x1f' + trigram[2];
}

ReferenceDistributions ReferenceDistributions::build(
    const std::vector<text::Sentence>& labelled, const text::LabelSet& labels) {
  ReferenceDistributions out;
  const std::size_t L = labels.num_labels();
  std::unordered_map<std::string, std::size_t> occurrences;
  for (const auto& sentence : labelled) {
    assert(sentence.has_tags());
    for (std::size_t i = 0; i < sentence.size(); ++i) {
      const std::string key = key_of(graph::trigram_at(sentence, i));
      auto& dist =
          out.table_.try_emplace(key, propagation::LabelDistribution(L))
              .first->second;
      dist[text::tag_index(sentence.tags[i])] += 1.0;
      ++occurrences[key];
    }
  }
  for (auto& [key, dist] : out.table_) {
    const auto n = static_cast<double>(occurrences[key]);
    for (auto& p : dist) p /= n;
  }
  return out;
}

const propagation::LabelDistribution* ReferenceDistributions::find(
    const std::array<std::string, 3>& trigram) const {
  const auto it = table_.find(key_of(trigram));
  return it == table_.end() ? nullptr : &it->second;
}

void ReferenceDistributions::save(std::ostream& out) const {
  out.precision(17);
  out << table_.size() << '\n';
  // Sorted keys: the serialization is a function of the table's content,
  // not of unordered_map iteration order — byte-identical files for equal
  // tables (checkpoint resume verifies final models with cmp).
  std::vector<const std::string*> keys;
  keys.reserve(table_.size());
  for (const auto& [key, dist] : table_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key : keys) {
    const auto& dist = table_.at(*key);
    // The key joins the three tokens with \x1f; rewrite as tab-separated.
    std::string printable = *key;
    for (char& c : printable)
      if (c == '\x1f') c = '\t';
    out << printable << '\t';
    for (std::size_t y = 0; y < dist.size(); ++y)
      out << (y == 0 ? "" : " ") << dist[y];
    out << '\n';
  }
}

ReferenceDistributions ReferenceDistributions::load(std::istream& in) {
  ReferenceDistributions result;
  std::size_t entries = 0;
  in >> entries;
  in.ignore();  // trailing newline
  std::string line;
  for (std::size_t i = 0; i < entries && std::getline(in, line); ++i) {
    // layout: tok1 \t tok2 \t tok3 \t "b i o"
    std::array<std::string, 4> fields;
    std::size_t start = 0;
    for (std::size_t f = 0; f < 3; ++f) {
      const auto tab = line.find('\t', start);
      if (tab == std::string::npos) break;
      fields[f] = line.substr(start, tab - start);
      start = tab + 1;
    }
    fields[3] = line.substr(start);
    // Read however many columns the line carries (3 for legacy single-type
    // files, 2T+1 for multi-entity label sets).
    propagation::LabelDistribution dist(text::kMaxLabels);
    std::istringstream nums(fields[3]);
    std::size_t count = 0;
    double v = 0.0;
    while (count < text::kMaxLabels && (nums >> v)) dist[count++] = v;
    dist.resize(count);
    result.table_[fields[0] + '\x1f' + fields[1] + '\x1f' + fields[2]] = dist;
  }
  return result;
}

std::uint64_t ReferenceDistributions::content_hash() const {
  // Hash each entry independently and combine commutatively (sum), so the
  // digest does not depend on unordered_map iteration order and needs no
  // key sort on the hot learn path.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  const auto fnv1a = [](std::uint64_t h, const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= kPrime;
    }
    return h;
  };
  std::uint64_t combined = fnv1a(kOffset, nullptr, 0);
  for (const auto& [key, dist] : table_) {
    std::uint64_t h = kOffset;
    h = fnv1a(h, key.data(), key.size());
    h = fnv1a(h, dist.data(), dist.size() * sizeof(double));
    combined += h;
  }
  combined ^= static_cast<std::uint64_t>(table_.size());
  return combined;
}

double ReferenceDistributions::positive_fraction() const {
  if (table_.empty()) return 0.0;
  std::size_t positive = 0;
  for (const auto& [key, dist] : table_) {
    // O is the last label in the canonical layout; everything before it is
    // some flavour of B/I mass.
    double pos = 0.0;
    for (std::size_t y = 0; y + 1 < dist.size(); ++y) pos += dist[y];
    if (pos > dist[dist.size() - 1]) ++positive;
  }
  return static_cast<double>(positive) / static_cast<double>(table_.size());
}

}  // namespace graphner::core
