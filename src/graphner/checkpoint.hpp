// Crash-safe training checkpoints (DESIGN.md §8).
//
// GraphNerModel::train is a sequence of expensive phases (brown →
// word2vec → encode → crf). With a checkpoint directory configured, each
// completed phase commits an artifact file plus a MANIFEST, both written
// with util::atomic_save, in that order: a crash between the two leaves
// an unlisted artifact that resume silently overwrites, so the manifest
// only ever names complete artifacts. A re-run with the same inputs
// restores every committed phase and recomputes from the first missing
// one; because every serialization in the pipeline is canonical (sorted
// tables, precision-17 doubles), the resumed run's final model is
// byte-identical to an uninterrupted run's.
//
// The MANIFEST carries a fingerprint of the training inputs (config knobs
// that change the trajectory + the corpus itself). A stale directory —
// different corpus, different hyper-parameters — fingerprint-mismatches
// and is ignored wholesale rather than half-resumed into a franken-model.
//
// Each commit ends with the "train.crash.<phase>" fault point, which
// throws FaultInjectedError right after the phase becomes durable — the
// seam the kill-and-resume chaos test drives.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/graphner/config.hpp"
#include "src/text/sentence.hpp"

namespace graphner::core {

class TrainCheckpoint {
 public:
  /// Disabled: restore() always misses, commit() is a no-op.
  TrainCheckpoint() = default;

  /// Open (and create if needed) a checkpoint directory. Reads the
  /// MANIFEST when present; on a fingerprint mismatch or a malformed
  /// manifest the directory's prior state is ignored (logged) and the
  /// next commit starts a fresh manifest.
  static TrainCheckpoint open(const std::string& dir, std::uint64_t fingerprint);

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] bool completed(const std::string& phase) const;
  [[nodiscard]] std::string artifact_path(const std::string& phase) const;

  /// Restore a committed phase: hands the artifact stream to `reader` and
  /// returns true. Returns false — without calling `reader` — when the
  /// phase is not committed (or the artifact is unreadable, which demotes
  /// the phase to not-done so the caller recomputes it).
  [[nodiscard]] bool restore(const std::string& phase,
                             const std::function<void(std::istream&)>& reader);

  /// Commit a phase: atomically write its artifact via `writer`, then the
  /// updated MANIFEST. No-op when disabled. Fires "train.crash.<phase>"
  /// after the phase is durable.
  void commit(const std::string& phase,
              const std::function<void(std::ostream&)>& writer);

 private:
  void write_manifest() const;

  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  std::vector<std::string> done_;  ///< commit order
};

/// Fingerprint of everything that determines the training trajectory: the
/// trajectory-relevant GraphNerConfig knobs and the full corpus (tokens +
/// tags). FNV-1a over a canonical byte stream — cheap next to any
/// training phase.
[[nodiscard]] std::uint64_t training_fingerprint(
    const GraphNerConfig& config, const std::vector<text::Sentence>& labelled,
    const std::vector<text::Sentence>& unlabelled);

}  // namespace graphner::core
