// On-disk layout of the zero-copy mmap model format (DESIGN.md §11).
//
// The file is a fixed 64-byte header, a section table, then the section
// payloads, each aligned to kAlign so an mmap'd pointer into any section
// can be used directly as typed data (the "weights" section is read in
// place as doubles — no parse, no heap copy). Everything is little-endian
// and the header carries an endian tag so a big-endian reader fails with a
// clear message instead of decoding garbage.
//
//   +--------------------+  offset 0
//   | Header (64 B)      |  magic, version, endian tag, section count,
//   |                    |  payload fingerprint, total file size
//   +--------------------+  offset 64
//   | SectionEntry[n]    |  name, offset, size, alignment (48 B each)
//   +--------------------+
//   | ...pad to 64...    |
//   +--------------------+  aligned
//   | "meta"   payload   |  text metadata: the same sections save() writes,
//   |                    |  minus the weight table (model_io.cpp save_head)
//   +--------------------+  aligned
//   | "labels" payload   |  label count + one wire label name per line,
//   |                    |  validated via text::label_set_from_names
//   +--------------------+  aligned
//   | "weights" payload  |  raw double[count] — mapped, never copied
//   +--------------------+
//
// The header's payload_fingerprint (FNV-1a over every payload in table
// order) makes truncation *and* bit-rot detectable before any byte is
// trusted; file_size makes trailing garbage detectable, mirroring the text
// format's "end" sentinel checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace graphner::core::model_format {

/// First 8 bytes of the file. Distinct from the text format's
/// "graphner-model" first bytes so load_auto_file can sniff the format.
inline constexpr char kMagic[8] = {'G', 'N', 'E', 'R', 'M', 'M', 'A', 'P'};
/// v2 adds the mandatory "labels" section (the model's BIO label
/// inventory, validated through text::label_set_from_names before any
/// decode structure is built over it).
inline constexpr std::uint32_t kVersion = 2;
/// Written as the literal 0x01020304 by the saving machine; reads back
/// permuted on a machine of the other byte order.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
/// Every section payload starts at a multiple of this (cache line; also a
/// multiple of alignof(double), which is what the weights section needs).
inline constexpr std::uint64_t kAlign = 64;

inline constexpr std::string_view kSectionMeta = "meta";
inline constexpr std::string_view kSectionLabels = "labels";
inline constexpr std::string_view kSectionWeights = "weights";

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint32_t section_count;
  std::uint32_t reserved;
  std::uint64_t payload_fingerprint;  ///< FNV-1a over payloads, table order
  std::uint64_t file_size;            ///< total bytes, incl. header + pad
  char pad[24];
};
static_assert(sizeof(Header) == 64, "header must stay 64 bytes");

struct SectionEntry {
  char name[16];  ///< NUL-padded
  std::uint64_t offset;
  std::uint64_t size;
  std::uint64_t align;  ///< alignment this section was written with
  std::uint64_t reserved;

  [[nodiscard]] std::string_view name_view() const {
    const std::size_t len = ::strnlen(name, sizeof(name));
    return {name, len};
  }
};
static_assert(sizeof(SectionEntry) == 48, "section entry must stay 48 bytes");

/// 64-bit FNV-1a; incremental (seed the next call with the previous
/// result) so the header fingerprint chains over all payloads.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t size,
                                         std::uint64_t seed = kFnvOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

[[nodiscard]] inline std::uint64_t align_up(std::uint64_t offset,
                                            std::uint64_t align) {
  return (offset + align - 1) / align * align;
}

}  // namespace graphner::core::model_format
