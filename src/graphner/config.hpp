// GraphNER configuration (Algorithm 1 + Table IV hyper-parameters).
#pragma once

#include <cstdint>
#include <string>

#include "src/crf/trainer.hpp"
#include "src/graph/knn_graph.hpp"
#include "src/graph/vertex_features.hpp"
#include "src/propagation/propagation.hpp"
#include "src/text/label_set.hpp"

namespace graphner::core {

/// Which CRF-based base system GraphNER extends (paper §II-B).
enum class CrfProfile {
  kBanner,          ///< supervised BANNER feature set
  kBannerChemDner,  ///< BANNER + Brown clusters + word2vec features
};

[[nodiscard]] inline const char* profile_name(CrfProfile profile) {
  return profile == CrfProfile::kBanner ? "BANNER" : "BANNER-ChemDNER";
}

struct GraphNerConfig {
  CrfProfile profile = CrfProfile::kBanner;
  int crf_order = 2;  ///< 1 or 2; the paper reports with order 2

  /// The BIO label inventory the model trains and decodes over. Default is
  /// the paper's single-type {B, I, O} gene set; a multi-entity set (e.g.
  /// the JNLPBA-style 5-type profile) widens every distribution, the CRF
  /// state space and the wire tag names.
  text::LabelSet labels{};

  /// Harvest a per-entity-type terminology bank from the labelled training
  /// mentions and feed gazetteer membership features to the CRF (Lerner et
  /// al.-style terminology augmentation). The bank is serialized with the
  /// model so a loaded model extracts identical features.
  bool gazetteer_features = false;

  crf::TrainOptions train{};

  /// Mixing coefficient: combined = alpha * CRF posterior + (1 - alpha) *
  /// propagated graph distribution (Fig. 1). The paper's cross-validation
  /// chose 0.02 on its corpora; the synthetic corpora here have a
  /// different edge-weight scale and CV selects 0.5 (see the Table IV
  /// bench and bench_common.hpp for the per-corpus tuples).
  double alpha = 0.5;

  graph::VertexFeatureConfig vertex_features{};
  graph::KnnConfig knn{};
  propagation::PropagationConfig propagation{1e-4, 1e-6, 1};

  /// Embedding hyper-parameters for the ChemDNER profile.
  std::size_t brown_clusters = 48;
  std::size_t embedding_kmeans_clusters = 40;
  std::uint64_t embedding_seed = 7;
  /// word2vec SGD workers. 1 (default) keeps the deterministic serial
  /// trajectory; > 1 enables Hogwild sharded SGD, which is faster but not
  /// bitwise reproducible (see DESIGN.md §6). Brown clustering and k-means
  /// are thread-count independent and follow the global util::num_threads.
  std::size_t embedding_threads = 1;

  /// Crash-safe training checkpoints (DESIGN.md §8). Non-empty: train()
  /// writes an atomic per-phase artifact (brown → word2vec → encode → crf)
  /// plus a MANIFEST into this directory after each phase completes, and a
  /// re-run with the same inputs resumes from the last complete phase.
  /// Empty (default): no checkpoint I/O at all.
  std::string checkpoint_dir;
};

}  // namespace graphner::core
