#include "src/graphner/pipeline.hpp"

#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/crf/trainer.hpp"
#include "src/features/encoder.hpp"
#include "src/graph/vertex_features.hpp"
#include "src/graphner/checkpoint.hpp"
#include "src/obs/registry.hpp"
#include "src/util/logging.hpp"
#include "src/util/math.hpp"
#include "src/util/parallel.hpp"

namespace graphner::core {

using propagation::LabelDistribution;
using text::kNumTags;

namespace {

[[nodiscard]] crf::StateSpace make_space(int order, const text::LabelSet& labels) {
  return order == 2 ? crf::StateSpace::order2(labels)
                    : crf::StateSpace::order1(labels);
}

[[nodiscard]] features::FeatureConfig make_feature_config(
    CrfProfile profile, const embeddings::BrownClustering* brown,
    const embeddings::EmbeddingClusters* clusters,
    const features::Gazetteer* gazetteer) {
  features::FeatureConfig config;
  if (profile == CrfProfile::kBannerChemDner) {
    config.brown = brown;
    config.embedding_clusters = clusters;
  }
  config.gazetteer = gazetteer;
  return config;
}

// Position-specific transition scores: the pairwise/marginal ratio of the
// CRF at each edge (the exact tree reparameterization at order 1). A single
// corpus-level matrix misprices rare transitions (it rewards B -> I between
// two adjacent single-token mentions), hence per-edge. The ratio is
// clamped: where the CRF is near-certain the raw ratio explodes to
// ~1/marginal, and mixed beliefs could ride that bonus along a path the
// CRF itself rules out. Within the clamp the node beliefs stay in charge,
// which is the point of Algorithm 1 line 8.
[[nodiscard]] std::vector<crf::TagTransitionMatrix> clamped_edge_ratios(
    const crf::SentencePosteriors& posterior, std::size_t length) {
  constexpr double kMaxRatio = 5.0;
  const std::size_t L =
      length > 0 ? posterior.tag_marginals[0].size() : std::size_t{kNumTags};
  std::vector<crf::TagTransitionMatrix> edge_ratios(
      length, crf::TagTransitionMatrix(L));
  edge_ratios[0].fill(1.0);
  for (std::size_t i = 1; i < length; ++i) {
    for (std::size_t a = 0; a < L; ++a) {
      for (std::size_t b = 0; b < L; ++b) {
        const double denom =
            posterior.tag_marginals[i - 1][a] * posterior.tag_marginals[i][b];
        const double ratio =
            denom > 1e-12 ? posterior.pairwise_marginals[i].at(a, b) / denom
                          : 0.0;
        edge_ratios[i].at(a, b) = util::clamp(ratio, 1.0 / kMaxRatio, kMaxRatio);
      }
    }
  }
  return edge_ratios;
}

}  // namespace

TrainingTimings training_timings_from_spans(const obs::SpanCapture& capture) {
  TrainingTimings timings;
  timings.brown_seconds = capture.total_seconds("train.brown");
  timings.word2vec_seconds = capture.total_seconds("train.word2vec");
  timings.kmeans_seconds = capture.total_seconds("train.kmeans");
  timings.encode_seconds = capture.total_seconds("train.encode");
  timings.crf_train_seconds = capture.total_seconds("train.crf");
  timings.reference_seconds = capture.total_seconds("train.reference");
  return timings;
}

GraphNerModel GraphNerModel::train(const std::vector<text::Sentence>& labelled,
                                   const std::vector<text::Sentence>& unlabelled_text,
                                   const GraphNerConfig& config) {
  GraphNerModel model;
  model.config_ = config;

  // Every phase below times itself with a trace span; the capture mirrors
  // the spans closed on this thread so the legacy TrainingTimings view can
  // be materialized from the trace at the end (phases that were restored
  // from a checkpoint open no span and report 0).
  obs::SpanCapture trace;
  obs::ScopedSpan train_span("train");

  // Crash-safe phase checkpoints (no-op when checkpoint_dir is empty):
  // every completed phase is restored instead of recomputed, and every
  // serialization involved is canonical, so a resumed run's final model is
  // byte-identical to an uninterrupted one's.
  TrainCheckpoint checkpoint;
  if (!config.checkpoint_dir.empty())
    checkpoint = TrainCheckpoint::open(
        config.checkpoint_dir,
        training_fingerprint(config, labelled, unlabelled_text));

  // Semi-supervised feature resources (ChemDNER profile only).
  if (config.profile == CrfProfile::kBannerChemDner) {
    std::vector<text::Sentence> embedding_text = labelled;
    embedding_text.insert(embedding_text.end(), unlabelled_text.begin(),
                          unlabelled_text.end());

    if (!checkpoint.restore("brown", [&](std::istream& in) {
          model.brown_ = std::make_shared<embeddings::BrownClustering>(
              embeddings::BrownClustering::load(in));
        })) {
      embeddings::BrownConfig brown_config;
      brown_config.num_clusters = config.brown_clusters;
      obs::ScopedSpan span("train.brown");
      span.attr("sentences", static_cast<std::uint64_t>(embedding_text.size()));
      model.brown_ = std::make_shared<embeddings::BrownClustering>(
          embeddings::BrownClustering::train(embedding_text, brown_config));
      span.close();
      checkpoint.commit("brown",
                        [&](std::ostream& out) { model.brown_->save(out); });
    }

    // One phase for word2vec + k-means: the durable product is the cluster
    // table; the SGD trajectory itself is never needed again.
    if (!checkpoint.restore("word2vec", [&](std::istream& in) {
          model.embedding_clusters_ =
              std::make_shared<embeddings::EmbeddingClusters>(
                  embeddings::EmbeddingClusters::load(in));
        })) {
      embeddings::Word2VecConfig w2v_config;
      w2v_config.seed = config.embedding_seed;
      w2v_config.threads = config.embedding_threads;
      obs::ScopedSpan w2v_span("train.word2vec");
      const auto w2v = embeddings::Word2Vec::train(embedding_text, w2v_config);
      w2v_span.close();
      obs::ScopedSpan kmeans_span("train.kmeans");
      model.embedding_clusters_ = std::make_shared<embeddings::EmbeddingClusters>(
          embeddings::cluster_embeddings(w2v, config.embedding_kmeans_clusters,
                                         config.embedding_seed + 1));
      kmeans_span.close();
      checkpoint.commit("word2vec", [&](std::ostream& out) {
        model.embedding_clusters_->save(out);
      });
    }
  }
  // Terminology bank harvested from the labelled mentions (cheap enough to
  // rebuild on every run — no checkpoint phase).
  if (config.gazetteer_features)
    model.gazetteer_ = std::make_shared<features::Gazetteer>(
        features::Gazetteer::from_labelled(labelled, config.labels));
  model.extractor_ = std::make_shared<features::FeatureExtractor>(make_feature_config(
      config.profile, model.brown_.get(), model.embedding_clusters_.get(),
      model.gazetteer_.get()));

  // CRF_train(D_l)  — Algorithm 1, line 2. The umbrella span covers
  // encode + optimization (and the checkpoint restore/commit around them);
  // its children "train.encode" / "train.crf" carry the phase splits.
  obs::ScopedSpan crf_total_span("train.crf_total");
  const crf::StateSpace space = make_space(config.crf_order, config.labels);
  model.index_ = std::make_shared<crf::FeatureIndex>();
  // The encode artifact is the frozen feature-name table in id order.
  // Interning the names restores identical ids; together with the crf
  // artifact it reproduces the trained CRF without touching the corpus.
  const bool have_encode = checkpoint.restore("encode", [&](std::istream& in) {
    std::size_t count = 0;
    in >> count;
    std::string name;
    for (std::size_t i = 0; i < count; ++i) {
      if (!(in >> name))
        throw std::runtime_error("checkpoint: truncated encode artifact");
      model.index_->intern(name);
    }
  });

  bool restored_crf = false;
  if (have_encode && checkpoint.completed("crf")) {
    restored_crf = checkpoint.restore("crf", [&](std::istream& in) {
      model.index_->freeze();
      model.crf_ =
          std::make_shared<crf::LinearChainCrf>(space, model.index_->size());
      std::size_t count = 0;
      in >> count;
      if (count != model.crf_->num_parameters())
        throw std::runtime_error("checkpoint: crf artifact weight count " +
                                 std::to_string(count) + " != " +
                                 std::to_string(model.crf_->num_parameters()));
      std::vector<double> weights(count);
      for (auto& w : weights)
        if (!(in >> w))
          throw std::runtime_error("checkpoint: truncated crf artifact");
      model.crf_->set_weights(weights);
    });
  }
  if (!restored_crf) {
    // Re-encoding against a restored (still unfrozen) index is a pure
    // lookup: the fingerprint pins the corpus, so no new names appear.
    obs::ScopedSpan encode_span("train.encode");
    const crf::Batch batch = features::encode_batch_for_training(
        labelled, *model.extractor_, *model.index_, space);
    model.index_->freeze();
    encode_span.attr("features", static_cast<std::uint64_t>(model.index_->size()));
    encode_span.close();
    if (!have_encode)
      checkpoint.commit("encode", [&](std::ostream& out) {
        out << model.index_->size() << '\n';
        for (crf::FeatureIndex::Id id = 0; id < model.index_->size(); ++id)
          out << model.index_->name(id) << '\n';
      });
    model.crf_ =
        std::make_shared<crf::LinearChainCrf>(space, model.index_->size());
    {
      obs::ScopedSpan crf_span("train.crf");
      train_crf(*model.crf_, batch, config.train);
    }
    checkpoint.commit("crf", [&](std::ostream& out) {
      const auto weights = model.crf_->weights();
      out.precision(17);
      out << weights.size() << '\n';
      for (std::size_t i = 0; i < weights.size(); ++i)
        out << weights[i] << ((i + 1) % 8 == 0 ? '\n' : ' ');
      out << '\n';
    });
  }
  model.train_seconds_ = crf_total_span.close();

  // Set_ReferenceDistributions(D_l)  — Algorithm 1, line 3.
  {
    obs::ScopedSpan ref_span("train.reference");
    model.reference_ = std::make_shared<ReferenceDistributions>(
        ReferenceDistributions::build(labelled, config.labels));
    model.reference_seconds_ = ref_span.close();
  }
  model.training_timings_ = training_timings_from_spans(trace);

  train_span.attr("features", static_cast<std::uint64_t>(model.index_->size()));
  train_span.attr("reference_trigrams",
                  static_cast<std::uint64_t>(model.reference_->size()));
  train_span.close();
  obs::Registry::global().counter("train.runs").inc();
  obs::Registry::global().gauge("train.features").set(
      static_cast<double>(model.index_->size()));

  model.compute_fingerprint();
  util::log_info("graphner: trained ", profile_name(config.profile), " order-",
                 config.crf_order, " CRF, ", model.index_->size(), " features, ",
                 model.reference_->size(), " reference trigrams");
  return model;
}

void GraphNerModel::set_decode_options(const crf::DecodeOptions& options) {
  crf_->set_decode_options(options);
  // Mirror the active configuration into gauges so a #METRICS scrape (or
  // the tool's --metrics-json dump) always shows what decodes are running
  // under. beam 0 means unlimited, matching the wire/CLI convention.
  auto& reg = obs::Registry::global();
  reg.gauge("decode.config.beam").set(static_cast<double>(options.beam));
  reg.gauge("decode.config.posterior_threshold").set(options.posterior_threshold);
  reg.gauge("decode.config.quantized")
      .set(static_cast<double>(options.quantization));
}

const crf::DecodeOptions& GraphNerModel::decode_options() const noexcept {
  return crf_->decode_options();
}

std::vector<std::vector<text::Tag>> GraphNerModel::decode_crf(
    const std::vector<text::Sentence>& sentences) const {
  std::vector<std::vector<text::Tag>> out(sentences.size());
  util::parallel_for_chunked(0, sentences.size(), [&](std::size_t lo, std::size_t hi) {
    crf::LinearChainCrf::Scratch scratch;  // reused across the worker's chunk
    features::EncodeScratch encode;
    for (std::size_t i = lo; i < hi; ++i)
      out[i] = decode_one(sentences[i], scratch, encode);
  });
  return out;
}

std::vector<text::Tag> GraphNerModel::decode_one(
    const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
    features::EncodeScratch& encode) const {
  return decode_one(sentence, scratch, encode, crf_->decode_options());
}

std::vector<text::Tag> GraphNerModel::decode_one(
    const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
    features::EncodeScratch& encode, const crf::DecodeOptions& options) const {
  if (sentence.size() == 0) return {};
  const crf::EncodedSentence& encoded =
      features::encode_for_inference(sentence, *extractor_, *index_, encode);
  return crf_->viterbi(encoded, scratch, options);
}

std::vector<text::Tag> GraphNerModel::decode_one_blended(
    const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
    features::EncodeScratch& encode) const {
  return decode_one_blended(sentence, scratch, encode, crf_->decode_options());
}

std::vector<text::Tag> GraphNerModel::decode_one_blended(
    const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
    features::EncodeScratch& encode, const crf::DecodeOptions& options) const {
  const std::size_t length = sentence.size();
  if (length == 0) return {};
  const crf::EncodedSentence& encoded =
      features::encode_for_inference(sentence, *extractor_, *index_, encode);
  const crf::SentencePosteriors posterior =
      crf_->posteriors(encoded, scratch, options);

  // Algorithm 1 line 8 with X_ref in place of the propagated distributions:
  // positions whose 3-gram was seen labelled get the corpus-level anchor,
  // the rest keep the pure CRF posterior.
  const std::size_t L = config_.labels.num_labels();
  std::vector<text::LabelDist> beliefs(length, text::LabelDist(L));
  for (std::size_t i = 0; i < length; ++i) {
    const auto trigram = graph::trigram_at(sentence, i);
    // Hand-labelled reference first; the online-learned (propagated) table
    // only fills trigrams the labelled data never anchored.
    const auto* ref = reference_->find(trigram);
    if (!ref && learned_) ref = learned_->find(trigram);
    const bool usable = ref != nullptr && ref->size() == L;
    for (std::size_t y = 0; y < L; ++y) {
      beliefs[i][y] = usable ? config_.alpha * posterior.tag_marginals[i][y] +
                                   (1.0 - config_.alpha) * (*ref)[y]
                             : posterior.tag_marginals[i][y];
    }
    util::normalize_inplace(beliefs[i]);
  }
  return crf::belief_viterbi(beliefs, clamped_edge_ratios(posterior, length),
                             config_.labels);
}

crf::SentencePosteriors GraphNerModel::posteriors_one(
    const text::Sentence& sentence, crf::LinearChainCrf::Scratch& scratch,
    features::EncodeScratch& encode) const {
  const crf::EncodedSentence& encoded =
      features::encode_for_inference(sentence, *extractor_, *index_, encode);
  return crf_->posteriors(encoded, scratch);
}

GraphNerModel GraphNerModel::fork_with_learned(
    std::shared_ptr<const ReferenceDistributions> learned) const {
  GraphNerModel fork;
  fork.config_ = config_;
  fork.brown_ = brown_;
  fork.embedding_clusters_ = embedding_clusters_;
  fork.gazetteer_ = gazetteer_;
  fork.extractor_ = extractor_;
  fork.index_ = index_;
  fork.crf_ = crf_;
  fork.reference_ = reference_;
  fork.learned_ = std::move(learned);
  fork.train_seconds_ = train_seconds_;
  fork.reference_seconds_ = reference_seconds_;
  fork.training_timings_ = training_timings_;
  // Keep any mmap mapping alive for as long as the fork serves from it.
  fork.mapping_ = mapping_;
  fork.map_base_ = map_base_;
  fork.map_size_ = map_size_;
  fork.compute_fingerprint();
  return fork;
}

GraphNerModel::TestContext GraphNerModel::prepare(
    const std::vector<text::Sentence>& labelled,
    const std::vector<text::Sentence>& test,
    const std::vector<text::Sentence>& extra_unlabelled) const {
  TestContext context;
  context.labelled_sentence_count = labelled.size();
  context.test_lengths.reserve(test.size());
  for (const auto& s : test) context.test_lengths.push_back(s.size());
  context.timings.crf_train_seconds = train_seconds_;
  context.timings.reference_seconds = reference_seconds_;

  // Sentence view: labelled, then test, then extra unlabelled — vertex
  // extraction below follows the same order. Only the `test` block is
  // decoded; everything contributes vertices and averaged posteriors.
  std::vector<text::Sentence> unlabelled_side = test;
  unlabelled_side.insert(unlabelled_side.end(), extra_unlabelled.begin(),
                         extra_unlabelled.end());
  std::vector<const text::Sentence*> all;
  all.reserve(labelled.size() + unlabelled_side.size());
  for (const auto& s : labelled) all.push_back(&s);
  for (const auto& s : unlabelled_side) all.push_back(&s);

  // ---- Line 5: CRF posteriors and transition probabilities over D_l u D_u.
  obs::ScopedSpan inference_span("test.crf_inference");
  inference_span.attr("sentences", static_cast<std::uint64_t>(all.size()));
  context.posteriors.resize(all.size());
  context.baseline_tags.assign(test.size(), {});

  const std::size_t L = config_.labels.num_labels();
  struct InferenceAcc {
    crf::TagTransitionMatrix counts{};
    crf::LinearChainCrf::Scratch scratch;    // per-worker reusable lattice
    features::EncodeScratch encode;          // per-worker encode buffers
  };
  InferenceAcc init;
  init.counts = crf::TagTransitionMatrix(L);
  const InferenceAcc acc = util::parallel_reduce(
      std::size_t{0}, all.size(), std::move(init),
      [&](InferenceAcc& local, std::size_t i) {
        if (all[i]->size() == 0) return;
        const crf::EncodedSentence& encoded = features::encode_for_inference(
            *all[i], *extractor_, *index_, local.encode);
        context.posteriors[i] = crf_->posteriors(encoded, local.scratch);
        // The pairwise tag marginals are the per-edge transition
        // expectations, so summing them gives the expected bigram counts
        // without a second forward-backward pass.
        for (std::size_t p = 1; p < context.posteriors[i].pairwise_marginals.size(); ++p)
          for (std::size_t j = 0; j < local.counts.size(); ++j)
            local.counts[j] += context.posteriors[i].pairwise_marginals[p][j];
        if (i >= labelled.size() && i < labelled.size() + test.size())
          context.baseline_tags[i - labelled.size()] =
              crf_->viterbi(encoded, local.scratch);
      },
      [](InferenceAcc& lhs, const InferenceAcc& rhs) {
        for (std::size_t j = 0; j < lhs.counts.size(); ++j)
          lhs.counts[j] += rhs.counts[j];
      });
  context.transitions = crf::transition_ratio_matrix(acc.counts);
  context.timings.crf_inference_seconds = inference_span.close();

  // ---- Graph construction (vertices over D_l u D_u + PPMI k-NN graph).
  obs::ScopedSpan graph_span("test.graph_construction");
  context.vertices = graph::build_trigram_vertices(labelled, unlabelled_side);
  graph::VertexVectors vectors = graph::build_vertex_vectors(
      context.vertices, all, *extractor_, config_.vertex_features);
  // Moved in: the one-shot build would otherwise hold a second full copy
  // of the PPMI vectors inside the scoring index.
  context.knn = graph::build_knn_graph(std::move(vectors.vectors), config_.knn);
  context.timings.graph_construction_seconds = graph_span.close();

  // ---- Line 6: X <- Average(P_s, V).
  const std::size_t num_vertices = context.vertices.vertex_count();
  context.x_initial.assign(num_vertices, LabelDistribution(L));
  std::vector<double> occurrence_count(num_vertices, 0.0);
  for (std::size_t s = 0; s < all.size(); ++s) {
    for (std::size_t i = 0; i < all[s]->size(); ++i) {
      const graph::VertexId v = context.vertices.positions[s][i];
      for (std::size_t y = 0; y < L; ++y)
        context.x_initial[v][y] += context.posteriors[s].tag_marginals[i][y];
      occurrence_count[v] += 1.0;
    }
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    if (occurrence_count[v] > 0.0)
      for (auto& p : context.x_initial[v]) p /= occurrence_count[v];
    else
      context.x_initial[v] = propagation::uniform_distribution(L);
  }

  // Reference distributions aligned with the vertex set (V_l membership).
  context.x_reference.assign(num_vertices, LabelDistribution(L));
  context.is_labelled.assign(num_vertices, false);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    const auto* ref = reference_->find(context.vertices.trigrams[v]);
    if (ref && ref->size() == L) {
      context.x_reference[v] = *ref;
      context.is_labelled[v] = true;
      // O is the last label; everything before it is positive mass.
      double positive = 0.0;
      for (std::size_t y = 0; y + 1 < L; ++y) positive += (*ref)[y];
      if (positive > (*ref)[L - 1]) ++context.positive_vertices;
    }
  }
  return context;
}

GraphNerModel::TestResult GraphNerModel::finish(
    const TestContext& context, const propagation::PropagationConfig& prop_config,
    double alpha) const {
  TestResult result;
  result.baseline_tags = context.baseline_tags;
  result.timings = context.timings;

  // ---- Line 7: X <- Propagate(X, X_ref, mu, nu, #iterations).
  obs::ScopedSpan prop_span("test.propagation");
  const propagation::PropagationResult propagated =
      propagation::propagate(context.knn, context.x_initial, context.x_reference,
                             context.is_labelled, prop_config);
  result.timings.propagation_seconds = prop_span.close();

  // ---- Lines 8-9: combine and decode.
  obs::ScopedSpan combine_span("test.combine_decode");
  const std::size_t num_test = context.test_lengths.size();
  result.graphner_tags.assign(num_test, {});
  util::parallel_for(0, num_test, [&](std::size_t t) {
    const std::size_t length = context.test_lengths[t];
    if (length == 0) return;
    const std::size_t s = context.labelled_sentence_count + t;
    const crf::SentencePosteriors& posterior = context.posteriors[s];
    const std::size_t L = config_.labels.num_labels();
    std::vector<text::LabelDist> beliefs(length, text::LabelDist(L));
    for (std::size_t i = 0; i < length; ++i) {
      const graph::VertexId v = context.vertices.positions[s][i];
      for (std::size_t y = 0; y < L; ++y) {
        beliefs[i][y] = alpha * posterior.tag_marginals[i][y] +
                        (1.0 - alpha) * propagated.distributions[v][y];
      }
      util::normalize_inplace(beliefs[i]);
    }
    result.graphner_tags[t] = crf::belief_viterbi(
        beliefs, clamped_edge_ratios(posterior, length), config_.labels);
  });
  result.timings.combine_decode_seconds = combine_span.close();

  // Stats for §III-D style reporting.
  const std::size_t num_vertices = context.vertices.vertex_count();
  result.stats.vertices = num_vertices;
  result.stats.edges = context.knn.edge_count();
  std::size_t labelled_count = 0;
  for (const bool b : context.is_labelled) labelled_count += b ? 1 : 0;
  result.stats.labelled_vertex_fraction =
      num_vertices == 0 ? 0.0
                        : static_cast<double>(labelled_count) /
                              static_cast<double>(num_vertices);
  result.stats.positive_vertex_fraction =
      num_vertices == 0 ? 0.0
                        : static_cast<double>(context.positive_vertices) /
                              static_cast<double>(num_vertices);
  result.stats.propagation_loss = propagated.loss_per_iteration;
  return result;
}

GraphNerModel::TestResult GraphNerModel::test(
    const std::vector<text::Sentence>& labelled,
    const std::vector<text::Sentence>& test) const {
  const TestContext context = prepare(labelled, test);
  return finish(context, config_.propagation, config_.alpha);
}

}  // namespace graphner::core
