#include "src/graphner/learner.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/graph/trigram.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/span.hpp"
#include "src/util/logging.hpp"

namespace graphner::core {

using propagation::LabelDistribution;

namespace {

[[nodiscard]] std::string key_of(const std::array<std::string, 3>& trigram) {
  return trigram[0] + '\x1f' + trigram[1] + '\x1f' + trigram[2];
}

}  // namespace

OnlineLearner::OnlineLearner(std::shared_ptr<const GraphNerModel> base,
                             OnlineLearnerConfig config)
    : base_(std::move(base)),
      config_(config),
      feature_config_(base_->config().vertex_features),
      index_(base_->config().knn) {
  if (config_.mu <= 0.0) config_.mu = base_->config().propagation.mu;
  if (config_.nu <= 0.0) config_.nu = base_->config().propagation.nu;
}

LearnStats OnlineLearner::learn(const std::vector<text::Sentence>& batch) {
  LearnStats stats;
  stats.sentences = batch.size();
  if (batch.empty()) {
    stats.converged = true;
    return stats;
  }

  obs::ScopedSpan span("learn.batch");
  span.attr("sentences", static_cast<std::uint64_t>(batch.size()));
  const std::size_t L = base_->labels().num_labels();
  const std::size_t n_before = trigrams_.size();

  // Pass over the batch: register trigram types, accumulate cooccurrence
  // counts (global feature counts always; per-vertex counts only for
  // vertices new in this batch — their vectors are about to be built),
  // and fold each position's CRF posterior into its vertex's running sum.
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> new_vf;
  std::vector<graph::VertexId> touched_existing;
  crf::LinearChainCrf::Scratch scratch;
  features::EncodeScratch encode;
  for (const auto& sentence : batch) {
    if (sentence.size() == 0) continue;
    const crf::SentencePosteriors posterior =
        base_->posteriors_one(sentence, scratch, encode);
    for (std::size_t i = 0; i < sentence.size(); ++i) {
      const auto trigram = graph::trigram_at(sentence, i);
      const std::string key = key_of(trigram);
      auto [slot, inserted] =
          vertex_of_.emplace(key, static_cast<graph::VertexId>(trigrams_.size()));
      const graph::VertexId v = slot->second;
      if (inserted) {
        trigrams_.push_back(trigram);
        posterior_sum_.emplace_back(L);
        occurrences_.push_back(0.0);
        new_vf.emplace_back();
      } else if (v < n_before) {
        touched_existing.push_back(v);
      }
      for (const auto& name : graph::vertex_features_at(
               sentence, i, base_->extractor(), feature_config_)) {
        auto [fit, finserted] = feature_ids_.emplace(
            name, static_cast<std::uint32_t>(feature_counts_.size()));
        if (finserted) feature_counts_.push_back(0);
        ++feature_counts_[fit->second];
        ++total_feature_instances_;
        if (v >= n_before) ++new_vf[v - n_before][fit->second];
      }
      for (std::size_t y = 0; y < L; ++y)
        posterior_sum_[v][y] += posterior.tag_marginals[i][y];
      occurrences_[v] += 1.0;
    }
  }
  const std::size_t n_new = trigrams_.size() - n_before;
  stats.appended_vertices = n_new;

  // Build PPMI vectors for the new vertices against the accumulated
  // counts (same formula as build_vertex_vectors' pass 2) and append them
  // to the index.
  const auto total =
      static_cast<double>(std::max<std::uint64_t>(1, total_feature_instances_));
  const auto df_cap = static_cast<std::uint64_t>(
      feature_config_.max_document_frequency * total);
  std::vector<graph::SparseVector> new_vectors(n_new);
  for (std::size_t j = 0; j < n_new; ++j) {
    const double pv = occurrences_[n_before + j];
    std::vector<graph::SparseEntry> entries;
    entries.reserve(new_vf[j].size());
    for (const auto& [f, c] : new_vf[j]) {
      if (feature_counts_[f] > df_cap) continue;
      const double pmi = std::log(static_cast<double>(c) * total /
                                  (pv * static_cast<double>(feature_counts_[f])));
      if (pmi > 0.0) entries.push_back({f, static_cast<float>(pmi)});
    }
    new_vectors[j] = graph::SparseVector(std::move(entries));
    new_vectors[j].normalize();
  }
  const graph::KnnIndex::AppendResult appended =
      index_.append(std::move(new_vectors));
  stats.patched_vertices = appended.patched.size();

  // Extend the propagation state. Every vertex is anchored (see header):
  // X_ref where the labelled data saw the trigram, the running posterior
  // average elsewhere.
  x_.resize(trigrams_.size(), LabelDistribution(L));
  x_reference_.resize(trigrams_.size(), LabelDistribution(L));
  is_labelled_.resize(trigrams_.size(), true);
  hand_labelled_.resize(trigrams_.size(), false);
  for (std::size_t v = n_before; v < trigrams_.size(); ++v) {
    const auto* ref = base_->reference().find(trigrams_[v]);
    if (ref != nullptr && ref->size() == L) {
      x_reference_[v] = *ref;
      hand_labelled_[v] = true;
    } else {
      for (std::size_t y = 0; y < L; ++y)
        x_reference_[v][y] = posterior_sum_[v][y] / occurrences_[v];
    }
    x_[v] = x_reference_[v];  // warm start at the anchor
  }

  // Existing unlabelled vertices whose running posterior average drifted:
  // their anchor (hence their equation) changed, so they seed too.
  std::sort(touched_existing.begin(), touched_existing.end());
  touched_existing.erase(
      std::unique(touched_existing.begin(), touched_existing.end()),
      touched_existing.end());
  std::vector<graph::VertexId> seeds;
  for (const graph::VertexId v : touched_existing) {
    if (hand_labelled_[v]) continue;
    LabelDistribution anchor(L);
    double drift = 0.0;
    for (std::size_t y = 0; y < L; ++y) {
      anchor[y] = posterior_sum_[v][y] / occurrences_[v];
      drift = std::max(drift, std::abs(anchor[y] - x_reference_[v][y]));
    }
    if (drift > config_.anchor_tolerance) {
      x_reference_[v] = anchor;
      seeds.push_back(v);
      ++stats.perturbed_vertices;
    }
  }
  for (std::size_t v = n_before; v < trigrams_.size(); ++v)
    seeds.push_back(static_cast<graph::VertexId>(v));
  seeds.insert(seeds.end(), appended.patched.begin(), appended.patched.end());

  // Localized re-propagation from the batch's footprint.
  propagation::IncrementalPropagationConfig prop;
  prop.mu = config_.mu;
  prop.nu = config_.nu;
  prop.tolerance = config_.tolerance;
  prop.max_relaxations = config_.max_relaxations;
  // index_.transpose() is maintained incrementally across appends, so the
  // sweep's cost tracks the batch neighbourhood, not the corpus.
  const propagation::IncrementalPropagationResult result =
      propagation::propagate_incremental(index_.graph(), index_.transpose(),
                                         x_, x_reference_, is_labelled_, seeds,
                                         prop);
  stats.relaxations = result.relaxations;
  stats.active_vertices = result.active_vertices;
  stats.final_residual = result.final_residual;
  stats.converged = result.converged;

  rebuild_learned_table();

  obs::Registry& registry = obs::Registry::global();
  registry.counter("learn.batches").inc();
  registry.counter("learn.sentences").inc(stats.sentences);
  registry.counter("learn.vertices_appended").inc(stats.appended_vertices);
  registry.counter("learn.relaxations").inc(stats.relaxations);
  registry.gauge("learn.vertices").set(static_cast<double>(trigrams_.size()));
  registry.gauge("learn.edges").set(static_cast<double>(edge_count()));
  registry.gauge("learn.residual").set(stats.final_residual);
  registry.gauge("learn.active_fraction")
      .set(trigrams_.empty() ? 0.0
                             : static_cast<double>(stats.active_vertices) /
                                   static_cast<double>(trigrams_.size()));
  span.attr("appended", static_cast<std::uint64_t>(stats.appended_vertices));
  span.attr("patched", static_cast<std::uint64_t>(stats.patched_vertices));
  span.attr("relaxations", static_cast<std::uint64_t>(stats.relaxations));
  util::log_info("learn: ", batch.size(), " sentences, +",
                 stats.appended_vertices, " vertices (", trigrams_.size(),
                 " total), ", stats.patched_vertices, " patched, ",
                 stats.relaxations, " relaxations, residual ",
                 stats.final_residual);
  return stats;
}

void OnlineLearner::rebuild_learned_table() {
  // The learned table carries the propagated distributions of every vertex
  // the labelled data never anchored — exactly the trigrams the base
  // model's blended decode has no corpus-level signal for.
  auto learned = std::make_shared<ReferenceDistributions>();
  for (std::size_t v = 0; v < trigrams_.size(); ++v)
    if (!hand_labelled_[v]) learned->set(trigrams_[v], x_[v]);
  learned_ = std::move(learned);
}

void OnlineLearner::save(std::ostream& out) const {
  out << "graphner-learner v1\n";
  out << "base " << std::hex << base_->fingerprint() << std::dec << '\n';
  out.precision(17);  // round-trip doubles exactly
  out << "config " << config_.mu << ' ' << config_.nu << ' '
      << config_.tolerance << ' ' << config_.anchor_tolerance << ' '
      << config_.max_relaxations << '\n';

  out << "vertices " << trigrams_.size() << '\n';
  for (const auto& trigram : trigrams_)
    out << trigram[0] << '\x1f' << trigram[1] << '\x1f' << trigram[2] << '\n';

  // Feature names in id order (feature ids are dense), so load() can
  // reconstruct the name -> id map exactly.
  std::vector<const std::string*> names(feature_ids_.size(), nullptr);
  for (const auto& [name, id] : feature_ids_) names[id] = &name;
  out << "features " << names.size() << ' ' << total_feature_instances_
      << '\n';
  for (std::size_t f = 0; f < names.size(); ++f)
    out << *names[f] << '\x1f' << feature_counts_[f] << '\n';

  // Column count per vertex follows the base model's label inventory; the
  // loader re-derives it from the (fingerprint-checked) base model.
  const std::size_t L = base_->labels().num_labels();
  out << "state " << trigrams_.size() << '\n';
  for (std::size_t v = 0; v < trigrams_.size(); ++v) {
    out << (hand_labelled_[v] ? 1 : 0) << ' ' << occurrences_[v];
    for (std::size_t y = 0; y < L; ++y) out << ' ' << posterior_sum_[v][y];
    for (std::size_t y = 0; y < L; ++y) out << ' ' << x_[v][y];
    for (std::size_t y = 0; y < L; ++y) out << ' ' << x_reference_[v][y];
    out << '\n';
  }

  index_.save(out);
}

OnlineLearner OnlineLearner::load(std::istream& in,
                                  std::shared_ptr<const GraphNerModel> base) {
  std::string word;
  std::string version;
  if (!(in >> word >> version) || word != "graphner-learner" || version != "v1")
    throw std::runtime_error(
        "learner snapshot: bad header (expected `graphner-learner v1`)");
  std::uint64_t base_fingerprint = 0;
  if (!(in >> word >> std::hex >> base_fingerprint >> std::dec) ||
      word != "base")
    throw std::runtime_error("learner snapshot: malformed base line");
  if (base_fingerprint != base->fingerprint())
    throw std::runtime_error(
        "learner snapshot: base model fingerprint mismatch (snapshot was "
        "taken over a different model)");
  OnlineLearnerConfig config;
  if (!(in >> word >> config.mu >> config.nu >> config.tolerance >>
        config.anchor_tolerance >> config.max_relaxations) ||
      word != "config")
    throw std::runtime_error("learner snapshot: malformed config line");
  OnlineLearner learner(std::move(base), config);

  std::size_t n = 0;
  if (!(in >> word >> n) || word != "vertices")
    throw std::runtime_error("learner snapshot: malformed vertices header");
  in.ignore();  // the newline ending the header line
  learner.trigrams_.reserve(n);
  std::string line;
  for (std::size_t v = 0; v < n; ++v) {
    if (!std::getline(in, line))
      throw std::runtime_error("learner snapshot: truncated at vertex " +
                               std::to_string(v));
    const std::size_t first = line.find('\x1f');
    const std::size_t second =
        first == std::string::npos ? first : line.find('\x1f', first + 1);
    if (second == std::string::npos)
      throw std::runtime_error("learner snapshot: malformed trigram " +
                               std::to_string(v));
    // The line IS key_of(trigram) — reuse it as the registry key.
    learner.vertex_of_.emplace(line, static_cast<graph::VertexId>(v));
    learner.trigrams_.push_back({line.substr(0, first),
                                 line.substr(first + 1, second - first - 1),
                                 line.substr(second + 1)});
  }

  std::size_t n_features = 0;
  if (!(in >> word >> n_features >> learner.total_feature_instances_) ||
      word != "features")
    throw std::runtime_error("learner snapshot: malformed features header");
  in.ignore();
  learner.feature_counts_.reserve(n_features);
  for (std::size_t f = 0; f < n_features; ++f) {
    if (!std::getline(in, line))
      throw std::runtime_error("learner snapshot: truncated at feature " +
                               std::to_string(f));
    const std::size_t sep = line.rfind('\x1f');
    if (sep == std::string::npos)
      throw std::runtime_error("learner snapshot: malformed feature " +
                               std::to_string(f));
    learner.feature_ids_.emplace(line.substr(0, sep),
                                 static_cast<std::uint32_t>(f));
    learner.feature_counts_.push_back(std::stoull(line.substr(sep + 1)));
  }

  std::size_t n_state = 0;
  if (!(in >> word >> n_state) || word != "state" || n_state != n)
    throw std::runtime_error("learner snapshot: malformed state header");
  const std::size_t L = learner.base_->labels().num_labels();
  learner.posterior_sum_.assign(n, LabelDistribution(L));
  learner.occurrences_.resize(n);
  learner.x_.assign(n, LabelDistribution(L));
  learner.x_reference_.assign(n, LabelDistribution(L));
  learner.is_labelled_.assign(n, true);
  learner.hand_labelled_.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    int hand = 0;
    bool ok = static_cast<bool>(in >> hand >> learner.occurrences_[v]);
    for (std::size_t y = 0; ok && y < L; ++y)
      ok = static_cast<bool>(in >> learner.posterior_sum_[v][y]);
    for (std::size_t y = 0; ok && y < L; ++y)
      ok = static_cast<bool>(in >> learner.x_[v][y]);
    for (std::size_t y = 0; ok && y < L; ++y)
      ok = static_cast<bool>(in >> learner.x_reference_[v][y]);
    if (!ok)
      throw std::runtime_error("learner snapshot: malformed state of vertex " +
                               std::to_string(v));
    learner.hand_labelled_[v] = hand != 0;
  }

  learner.index_ = graph::KnnIndex::load(in);
  if (learner.index_.size() != n)
    throw std::runtime_error(
        "learner snapshot: index holds " + std::to_string(learner.index_.size()) +
        " vectors for " + std::to_string(n) + " vertices");

  learner.rebuild_learned_table();
  return learner;
}

std::shared_ptr<const GraphNerModel> OnlineLearner::snapshot_model() const {
  auto learned = learned_;
  if (!learned) learned = std::make_shared<const ReferenceDistributions>();
  return std::make_shared<const GraphNerModel>(
      base_->fork_with_learned(std::move(learned)));
}

}  // namespace graphner::core
