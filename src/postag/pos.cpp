#include "src/postag/pos.hpp"

#include <unordered_map>

#include "src/util/strings.hpp"

namespace graphner::postag {
namespace {

const std::unordered_map<std::string, const char*>& closed_class() {
  static const std::unordered_map<std::string, const char*> kDict = {
      {"the", kDeterminer}, {"a", kDeterminer},     {"an", kDeterminer},
      {"this", kDeterminer}, {"these", kDeterminer}, {"all", kDeterminer},
      {"both", kDeterminer}, {"several", kDeterminer}, {"most", kDeterminer},
      {"of", kPreposition},  {"in", kPreposition},   {"with", kPreposition},
      {"for", kPreposition}, {"by", kPreposition},   {"to", kPreposition},
      {"from", kPreposition}, {"into", kPreposition}, {"between", kPreposition},
      {"among", kPreposition}, {"during", kPreposition}, {"after", kPreposition},
      {"before", kPreposition}, {"at", kPreposition}, {"on", kPreposition},
      {"as", kPreposition},   {"according", kPreposition},
      {"and", kConjunction}, {"or", kConjunction},   {"but", kConjunction},
      {"we", kPronoun},      {"it", kPronoun},       {"that", kPronoun},
      {"which", kPronoun},   {"their", kPronoun},    {"s", kPronoun},
      {"was", kVerb},        {"were", kVerb},        {"is", kVerb},
      {"are", kVerb},        {"be", kVerb},          {"been", kVerb},
      {"has", kVerb},        {"have", kVerb},        {"had", kVerb},
      {"may", kVerb},        {"can", kVerb},         {"could", kVerb},
      {"not", kAdverb},      {"no", kAdverb},        {"also", kAdverb},
      {"however", kAdverb},  {"further", kAdverb},   {"previously", kAdverb},
      {"recently", kAdverb}, {"here", kAdverb},      {"often", kAdverb},
  };
  return kDict;
}

}  // namespace

std::vector<std::string> assign_gold_pos(const std::vector<std::string>& tokens) {
  std::vector<std::string> pos;
  pos.reserve(tokens.size());
  for (const auto& token : tokens) {
    const std::string lowered = util::to_lower(token);
    if (const auto it = closed_class().find(lowered); it != closed_class().end()) {
      pos.emplace_back(it->second);
      continue;
    }
    if (util::is_all_digits(token)) {
      pos.emplace_back(kNumber);
      continue;
    }
    if (!util::has_letter(token) && !util::has_digit(token)) {
      pos.emplace_back(token == "%" ? kSymbol : kPunct);
      continue;
    }
    // Derivational-suffix heuristics for open-class words.
    if (util::ends_with(lowered, "ed") || util::ends_with(lowered, "ing")) {
      pos.emplace_back(kVerb);
      continue;
    }
    if (util::ends_with(lowered, "ant") || util::ends_with(lowered, "ent") ||
        util::ends_with(lowered, "ive") || util::ends_with(lowered, "ous") ||
        util::ends_with(lowered, "al") || util::ends_with(lowered, "ic") ||
        util::ends_with(lowered, "able")) {
      pos.emplace_back(kAdjective);
      continue;
    }
    pos.emplace_back(kNoun);
  }
  return pos;
}

}  // namespace graphner::postag
