#include "src/postag/hmm_tagger.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>

#include "src/util/math.hpp"
#include "src/util/strings.hpp"

namespace graphner::postag {
namespace {

[[nodiscard]] std::string shape_class(const std::string& word) {
  if (util::is_all_digits(word)) return "<num>";
  if (!util::has_letter(word) && !util::has_digit(word)) return "<punct>";
  if (util::is_all_caps(word)) return "<caps>";
  if (util::has_digit(word)) return "<alnum>";
  return "<word>";
}

}  // namespace

std::size_t HmmPosTagger::tag_id(const std::string& tag) const {
  const auto it = tag_index_.find(tag);
  assert(it != tag_index_.end());
  return it->second;
}

HmmPosTagger HmmPosTagger::train(const std::vector<text::Sentence>& sentences,
                                 const std::vector<std::vector<std::string>>& pos,
                                 const HmmConfig& config) {
  assert(sentences.size() == pos.size());
  HmmPosTagger model;
  model.config_ = config;

  // Tag inventory.
  for (const auto& tags : pos)
    for (const auto& tag : tags)
      if (!model.tag_index_.contains(tag)) {
        model.tag_index_.emplace(tag, model.tags_.size());
        model.tags_.push_back(tag);
      }
  const std::size_t T = model.tags_.size();
  if (T == 0) return model;

  // Counts: transitions (with virtual start row T), emissions, suffixes.
  std::vector<double> transition((T + 1) * T, 0.0);
  std::unordered_map<std::string, std::vector<double>> emission;
  std::unordered_map<std::string, std::vector<double>> suffix;
  std::vector<double> tag_counts(T, 0.0);

  for (std::size_t s = 0; s < sentences.size(); ++s) {
    assert(sentences[s].size() == pos[s].size());
    std::size_t prev = T;  // virtual start
    for (std::size_t i = 0; i < sentences[s].size(); ++i) {
      const std::size_t t = model.tag_id(pos[s][i]);
      transition[prev * T + t] += 1.0;
      prev = t;
      tag_counts[t] += 1.0;

      const std::string word = util::to_lower(sentences[s].tokens[i]);
      auto [it, inserted] = emission.try_emplace(word, std::vector<double>(T, 0.0));
      it->second[t] += 1.0;

      // Suffix + shape statistics for the unknown-word back-off.
      for (std::size_t n = 1; n <= config.max_suffix_length && n <= word.size(); ++n) {
        const std::string suf = "~" + word.substr(word.size() - n);
        auto [jt, _] = suffix.try_emplace(suf, std::vector<double>(T, 0.0));
        jt->second[t] += 1.0;
      }
      auto [kt, _] = suffix.try_emplace(shape_class(word), std::vector<double>(T, 0.0));
      kt->second[t] += 1.0;
    }
  }

  // Normalize to log probabilities.
  model.transition_log_.assign((T + 1) * T, 0.0);
  for (std::size_t from = 0; from <= T; ++from) {
    double row = 0.0;
    for (std::size_t to = 0; to < T; ++to) row += transition[from * T + to];
    for (std::size_t to = 0; to < T; ++to) {
      model.transition_log_[from * T + to] =
          std::log((transition[from * T + to] + config.transition_smoothing) /
                   (row + config.transition_smoothing * static_cast<double>(T)));
    }
  }
  auto normalize = [&](const std::vector<double>& counts) {
    std::vector<double> out(T);
    double total = 0.0;
    for (const double c : counts) total += c;
    for (std::size_t t = 0; t < T; ++t)
      out[t] = std::log((counts[t] + config.emission_smoothing) /
                        (total + config.emission_smoothing * static_cast<double>(T)));
    return out;
  };
  for (const auto& [word, counts] : emission)
    model.emission_log_.emplace(word, normalize(counts));
  for (const auto& [suf, counts] : suffix)
    model.suffix_log_.emplace(suf, normalize(counts));
  model.open_class_log_ = normalize(tag_counts);
  return model;
}

double HmmPosTagger::emission_log_prob(const std::string& word, std::size_t tag) const {
  if (const auto it = emission_log_.find(word); it != emission_log_.end())
    return it->second[tag];
  // Unknown word: longest-suffix back-off, then shape class, then prior.
  for (std::size_t n = std::min(config_.max_suffix_length, word.size()); n >= 1; --n) {
    const auto it = suffix_log_.find("~" + word.substr(word.size() - n));
    if (it != suffix_log_.end()) return it->second[tag];
  }
  if (const auto it = suffix_log_.find(shape_class(word)); it != suffix_log_.end())
    return it->second[tag];
  return open_class_log_.empty() ? 0.0 : open_class_log_[tag];
}

std::vector<std::string> HmmPosTagger::tag(
    const std::vector<std::string>& tokens) const {
  const std::size_t n = tokens.size();
  const std::size_t T = tags_.size();
  std::vector<std::string> out(n);
  if (n == 0 || T == 0) return out;

  std::vector<double> score(n * T, util::kNegInf);
  std::vector<std::size_t> back(n * T, 0);
  std::vector<std::string> lowered(n);
  for (std::size_t i = 0; i < n; ++i) lowered[i] = util::to_lower(tokens[i]);

  for (std::size_t t = 0; t < T; ++t)
    score[t] = transition_log_[T * T + t] + emission_log_prob(lowered[0], t);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t t = 0; t < T; ++t) {
      double best = util::kNegInf;
      std::size_t arg = 0;
      for (std::size_t p = 0; p < T; ++p) {
        const double cand = score[(i - 1) * T + p] + transition_log_[p * T + t];
        if (cand > best) {
          best = cand;
          arg = p;
        }
      }
      score[i * T + t] = best + emission_log_prob(lowered[i], t);
      back[i * T + t] = arg;
    }
  }
  std::size_t cur = 0;
  double best = util::kNegInf;
  for (std::size_t t = 0; t < T; ++t)
    if (score[(n - 1) * T + t] > best) {
      best = score[(n - 1) * T + t];
      cur = t;
    }
  for (std::size_t i = n; i-- > 0;) {
    out[i] = tags_[cur];
    cur = back[i * T + cur];
  }
  return out;
}

double HmmPosTagger::accuracy(
    const std::vector<text::Sentence>& sentences,
    const std::vector<std::vector<std::string>>& reference) const {
  assert(sentences.size() == reference.size());
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t s = 0; s < sentences.size(); ++s) {
    const auto predicted = tag(sentences[s].tokens);
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      correct += predicted[i] == reference[s][i];
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

void HmmPosTagger::save(std::ostream& out) const {
  out.precision(17);
  const std::size_t T = tags_.size();
  out << "hmm-pos 1\n" << T << ' ' << config_.max_suffix_length << '\n';
  for (const auto& tag : tags_) out << tag << '\n';
  for (const double v : transition_log_) out << v << ' ';
  out << '\n' << emission_log_.size() << '\n';
  for (const auto& [word, row] : emission_log_) {
    out << word;
    for (const double v : row) out << ' ' << v;
    out << '\n';
  }
  out << suffix_log_.size() << '\n';
  for (const auto& [suf, row] : suffix_log_) {
    out << suf;
    for (const double v : row) out << ' ' << v;
    out << '\n';
  }
  for (const double v : open_class_log_) out << v << ' ';
  out << '\n';
}

HmmPosTagger HmmPosTagger::load(std::istream& in) {
  HmmPosTagger model;
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "hmm-pos" || version != 1) return model;
  std::size_t T = 0;
  in >> T >> model.config_.max_suffix_length;
  model.tags_.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    in >> model.tags_[t];
    model.tag_index_.emplace(model.tags_[t], t);
  }
  model.transition_log_.resize((T + 1) * T);
  for (auto& v : model.transition_log_) in >> v;
  std::size_t entries = 0;
  in >> entries;
  for (std::size_t e = 0; e < entries; ++e) {
    std::string word;
    in >> word;
    std::vector<double> row(T);
    for (auto& v : row) in >> v;
    model.emission_log_.emplace(std::move(word), std::move(row));
  }
  in >> entries;
  for (std::size_t e = 0; e < entries; ++e) {
    std::string suf;
    in >> suf;
    std::vector<double> row(T);
    for (auto& v : row) in >> v;
    model.suffix_log_.emplace(std::move(suf), std::move(row));
  }
  model.open_class_log_.resize(T);
  for (auto& v : model.open_class_log_) in >> v;
  return model;
}

}  // namespace graphner::postag
