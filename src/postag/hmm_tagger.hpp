// Bigram HMM part-of-speech tagger.
//
// Generative model p(tags, words) = prod p(t_i | t_{i-1}) p(w_i | t_i),
// add-k smoothed transitions, and an emission back-off for unknown words
// built from 1-3 character suffix statistics plus word-shape classes
// (digits, punctuation, capitalization) — the classic recipe (TnT-style)
// at the scale this corpus needs. Decoding is Viterbi.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/text/sentence.hpp"

namespace graphner::postag {

struct HmmConfig {
  double transition_smoothing = 0.1;  ///< add-k over tag bigrams
  double emission_smoothing = 0.01;
  std::size_t max_suffix_length = 3;
};

class HmmPosTagger {
 public:
  /// Train on sentences with their POS annotations (one tag per token).
  static HmmPosTagger train(const std::vector<text::Sentence>& sentences,
                            const std::vector<std::vector<std::string>>& pos,
                            const HmmConfig& config = {});

  /// Viterbi decode; always returns one tag per token.
  [[nodiscard]] std::vector<std::string> tag(
      const std::vector<std::string>& tokens) const;

  [[nodiscard]] std::size_t tagset_size() const noexcept { return tags_.size(); }
  [[nodiscard]] const std::vector<std::string>& tagset() const noexcept {
    return tags_;
  }

  /// Token accuracy against reference annotations.
  [[nodiscard]] double accuracy(
      const std::vector<text::Sentence>& sentences,
      const std::vector<std::vector<std::string>>& reference) const;

  /// Text serialization.
  void save(std::ostream& out) const;
  static HmmPosTagger load(std::istream& in);

 private:
  [[nodiscard]] std::size_t tag_id(const std::string& tag) const;
  [[nodiscard]] double emission_log_prob(const std::string& word,
                                         std::size_t tag) const;

  HmmConfig config_{};
  std::vector<std::string> tags_;
  std::unordered_map<std::string, std::size_t> tag_index_;
  /// log p(t_j | t_i) with a virtual start state at index tags_.size().
  std::vector<double> transition_log_;
  /// word (lowercased) -> per-tag log emission probability.
  std::unordered_map<std::string, std::vector<double>> emission_log_;
  /// suffix -> per-tag log probability (unknown-word back-off).
  std::unordered_map<std::string, std::vector<double>> suffix_log_;
  std::vector<double> open_class_log_;  ///< last-resort unknown-word prior
};

}  // namespace graphner::postag
