// Part-of-speech substrate.
//
// The real BANNER feeds POS tags (from the Dragon-toolkit HMM tagger) to
// its CRF as features. This module provides the equivalent: a coarse POS
// inventory, a lexical gold-POS assigner for the synthetic corpora (the
// generator's word banks know their word classes), and a bigram HMM tagger
// trained on those annotations with suffix/shape emission back-off for
// unknown words.
#pragma once

#include <string>
#include <vector>

#include "src/text/sentence.hpp"

namespace graphner::postag {

/// Coarse POS inventory (Penn-style granularity is unnecessary here).
inline constexpr const char* kNoun = "NOUN";
inline constexpr const char* kVerb = "VERB";
inline constexpr const char* kAdjective = "ADJ";
inline constexpr const char* kAdverb = "ADV";
inline constexpr const char* kDeterminer = "DET";
inline constexpr const char* kPreposition = "ADP";
inline constexpr const char* kConjunction = "CONJ";
inline constexpr const char* kPronoun = "PRON";
inline constexpr const char* kNumber = "NUM";
inline constexpr const char* kPunct = "PUNCT";
inline constexpr const char* kSymbol = "SYM";

/// Deterministic lexical POS assignment for synthetic-corpus tokens:
/// closed-class dictionary first, then shape rules (digits -> NUM,
/// punctuation -> PUNCT, capitalized symbols -> NOUN), default NOUN.
/// Serves as the gold standard the HMM trains against.
[[nodiscard]] std::vector<std::string> assign_gold_pos(
    const std::vector<std::string>& tokens);

}  // namespace graphner::postag
