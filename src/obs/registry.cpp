#include "src/obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace graphner::obs {

namespace detail {

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

}  // namespace detail

namespace {

[[nodiscard]] double to_bins(Scale scale, double raw) noexcept {
  return scale == Scale::kLog10p1 ? std::log10(1.0 + std::max(0.0, raw)) : raw;
}

[[nodiscard]] double from_bins(Scale scale, double bin_value) noexcept {
  return scale == Scale::kLog10p1 ? std::pow(10.0, bin_value) - 1.0 : bin_value;
}

}  // namespace

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(HistogramSpec spec) : spec_(spec) {
  shards_.reserve(detail::kShards);
  for (std::size_t i = 0; i < detail::kShards; ++i)
    shards_.push_back(std::make_unique<Shard>(spec_));
}

void Histogram::record(double raw_value) noexcept {
  Shard& shard = *shards_[detail::thread_shard()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.buckets.add(to_bins(spec_.scale, raw_value));
  shard.sum += spec_.scale == Scale::kLog10p1 ? std::max(0.0, raw_value)
                                              : raw_value;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.spec = spec_;
  out.buckets = util::Histogram(spec_.lo, spec_.hi, spec_.bins);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.buckets.merge(shard->buckets);
    out.sum += shard->sum;
  }
  return out;
}

double Histogram::Snapshot::mean() const noexcept {
  return buckets.total() == 0 ? 0.0
                              : sum / static_cast<double>(buckets.total());
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  return buckets.total() == 0 ? 0.0
                              : from_bins(spec.scale, buckets.quantile(q));
}

double Histogram::Snapshot::max() const noexcept {
  return buckets.total() == 0 ? 0.0
                              : from_bins(spec.scale, buckets.max_seen());
}

void Histogram::Snapshot::merge(const Snapshot& other) {
  buckets.merge(other.buckets);  // throws on layout mismatch
  sum += other.sum;
}

// --- RegistrySnapshot -------------------------------------------------------

void RegistrySnapshot::append(const RegistrySnapshot& other,
                              const std::string& prefix) {
  for (const auto& c : other.counters)
    counters.push_back({prefix + c.name, c.labels, c.value});
  for (const auto& g : other.gauges)
    gauges.push_back({prefix + g.name, g.labels, g.value});
  for (const auto& h : other.histograms)
    histograms.push_back({prefix + h.name, h.labels, h.data});
}

std::uint64_t RegistrySnapshot::counter_value(
    const std::string& name) const noexcept {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Entry* Registry::find(const std::string& name, const Labels& labels) {
  for (auto& entry : entries_)
    if (entry->name == name && entry->labels == labels) return entry.get();
  return nullptr;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name, labels)) {
    if (!entry->counter)
      throw std::invalid_argument("obs: '" + name +
                                  "' already registered as a non-counter");
    return *entry->counter;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->counter = std::make_unique<Counter>();
  Counter& out = *entry->counter;
  entries_.push_back(std::move(entry));
  return out;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name, labels)) {
    if (!entry->gauge)
      throw std::invalid_argument("obs: '" + name +
                                  "' already registered as a non-gauge");
    return *entry->gauge;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->gauge = std::make_unique<Gauge>();
  Gauge& out = *entry->gauge;
  entries_.push_back(std::move(entry));
  return out;
}

Histogram& Registry::histogram(const std::string& name,
                               const HistogramSpec& spec, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name, labels)) {
    if (!entry->histogram)
      throw std::invalid_argument("obs: '" + name +
                                  "' already registered as a non-histogram");
    const HistogramSpec& have = entry->histogram->spec();
    if (have.lo != spec.lo || have.hi != spec.hi || have.bins != spec.bins ||
        have.scale != spec.scale)
      throw std::invalid_argument("obs: histogram '" + name +
                                  "' re-registered with a different layout");
    return *entry->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->histogram = std::make_unique<Histogram>(spec);
  Histogram& out = *entry->histogram;
  entries_.push_back(std::move(entry));
  return out;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->counter)
      out.counters.push_back({entry->name, entry->labels, entry->counter->value()});
    else if (entry->gauge)
      out.gauges.push_back({entry->name, entry->labels, entry->gauge->value()});
    else if (entry->histogram)
      out.histograms.push_back(
          {entry->name, entry->labels, entry->histogram->snapshot()});
  }
  return out;
}

}  // namespace graphner::obs
