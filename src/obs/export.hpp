// Exporters over RegistrySnapshot / SpanRecord (DESIGN.md §9).
//
// Three text formats, all dependency-free:
//
//   JSON       one line: {"counters":{...},"gauges":{...},"histograms":
//              {...}} — the format serve's #METRICS JSON answers and
//              graphner_tool --metrics-json writes. Histograms export as
//              {"count","mean","p50","p95","p99","max"} in the raw
//              domain (microseconds for latency histograms).
//   TSV        one "<name>\t<value>" line per counter/gauge; histograms
//              flattened to "<name>.count", "<name>.mean", "<name>.p50",
//              "<name>.p95", "<name>.p99", "<name>.max". Labelled
//              instruments render the labels into the name as
//              name{k=v,...}. Grep/awk-friendly: the CI conservation
//              check parses this flavour.
//   Prometheus exposition text format. Names are sanitized ('.' and any
//              other non-[a-zA-Z0-9_] byte become '_') and prefixed
//              "graphner_"; label values are escaped per the Prometheus
//              spec (backslash, double-quote, newline). Histograms
//              export as summaries (quantile series + _sum + _count).
//
// Spans export as a JSON array (export_spans_json) — drained from the
// per-thread rings by whoever scrapes, so a scrape is also what frees
// ring space.
#pragma once

#include <string>
#include <vector>

#include "src/obs/registry.hpp"
#include "src/obs/span.hpp"

namespace graphner::obs {

/// One-line JSON object over the whole snapshot.
[[nodiscard]] std::string export_json(const RegistrySnapshot& snapshot);

/// Multi-line "name\tvalue" dump (no trailing newline on the last line).
[[nodiscard]] std::string export_tsv(const RegistrySnapshot& snapshot);

/// Prometheus exposition text format (each sample line '\n'-terminated).
[[nodiscard]] std::string export_prometheus(const RegistrySnapshot& snapshot);

/// JSON array of span records: [{"name":...,"start_s":...,"dur_s":...,
/// "depth":...,"parent":...,"attrs":{...}}, ...].
[[nodiscard]] std::string export_spans_json(const std::vector<SpanRecord>& spans);

/// Prometheus label-value escaping: backslash, double quote, newline.
[[nodiscard]] std::string prometheus_escape(const std::string& value);

/// "graphner_" + name with every non-[a-zA-Z0-9_:] byte replaced by '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name);

}  // namespace graphner::obs
