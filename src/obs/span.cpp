#include "src/obs/span.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "src/util/logging.hpp"

namespace graphner::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// Single process-wide epoch so span start times are comparable across
/// threads within one run.
[[nodiscard]] Clock::time_point trace_epoch() noexcept {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

[[nodiscard]] double since_epoch_seconds() noexcept {
  return std::chrono::duration<double>(Clock::now() - trace_epoch()).count();
}

std::atomic<std::uint64_t> g_next_span_id{1};

/// Per-thread span state: the open-span stack (nesting) and the active
/// SpanCapture stack (train-style local materialization).
struct ThreadSpanState {
  std::vector<std::uint64_t> open_ids;
  std::vector<SpanCapture*> captures;
};

ThreadSpanState& thread_state() {
  thread_local ThreadSpanState state;
  return state;
}

[[nodiscard]] std::string format_seconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3fs", seconds);
  return buffer;
}

}  // namespace

// --- Trace ------------------------------------------------------------------

/// Fixed-capacity overwrite-oldest ring. The owner thread appends; drain
/// (any thread) empties. One mutex per ring: owner vs. drainer only, so
/// the lock is uncontended in steady state.
struct Trace::Ring {
  explicit Ring(std::size_t cap) : capacity(cap) { records.reserve(cap); }

  std::mutex mutex;
  std::vector<SpanRecord> records;  ///< [head, size) oldest → newest, wrapped
  std::size_t capacity;
  std::size_t head = 0;  ///< index of the oldest record once wrapped
  std::uint64_t dropped = 0;

  void push(SpanRecord&& record) {
    std::lock_guard<std::mutex> lock(mutex);
    if (records.size() < capacity) {
      records.push_back(std::move(record));
    } else {
      records[head] = std::move(record);
      head = (head + 1) % capacity;
      ++dropped;
    }
  }

  void drain_into(std::vector<SpanRecord>& out) {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < records.size(); ++i)
      out.push_back(std::move(records[(head + i) % records.size()]));
    records.clear();
    head = 0;
  }
};

Trace& Trace::global() {
  static Trace trace;
  return trace;
}

Trace::Ring& Trace::ring_for_this_thread() {
  thread_local std::shared_ptr<Ring> ring = [this] {
    auto created =
        std::make_shared<Ring>(ring_capacity_.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(created);
    return created;
  }();
  return *ring;
}

void Trace::record(SpanRecord&& record) {
  ring_for_this_thread().push(std::move(record));
}

std::vector<SpanRecord> Trace::drain() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) ring->drain_into(out);
  return out;
}

std::uint64_t Trace::dropped() const noexcept {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings = rings_;
  }
  std::uint64_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

void Trace::set_ring_capacity(std::size_t capacity) noexcept {
  ring_capacity_.store(capacity == 0 ? 1 : capacity,
                       std::memory_order_relaxed);
}

// --- ScopedSpan -------------------------------------------------------------

ScopedSpan::ScopedSpan(std::string_view name) {
  ThreadSpanState& state = thread_state();
  record_.name.assign(name);
  record_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record_.parent_id = state.open_ids.empty() ? 0 : state.open_ids.back();
  record_.depth = static_cast<std::uint32_t>(state.open_ids.size());
  record_.start_seconds = since_epoch_seconds();
  start_monotonic_ = record_.start_seconds;
  state.open_ids.push_back(record_.span_id);
  util::log_debug("span open  ", record_.name);
}

ScopedSpan::~ScopedSpan() { close(); }

void ScopedSpan::attr(std::string_view key, std::string_view value) {
  if (!closed_) record_.attrs.push_back({std::string(key), std::string(value)});
}

void ScopedSpan::attr(std::string_view key, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  attr(key, std::string_view(buffer));
}

void ScopedSpan::attr(std::string_view key, std::uint64_t value) {
  attr(key, std::string_view(std::to_string(value)));
}

double ScopedSpan::seconds() const noexcept {
  return closed_ ? record_.duration_seconds
                 : since_epoch_seconds() - start_monotonic_;
}

double ScopedSpan::close() noexcept {
  if (closed_) return record_.duration_seconds;
  closed_ = true;
  record_.duration_seconds = since_epoch_seconds() - start_monotonic_;

  ThreadSpanState& state = thread_state();
  // Spans close in inverse open order (they are scoped), so the top of
  // the stack is this span. Defensive pop-if-found keeps a mismatched
  // close from corrupting the stack.
  if (!state.open_ids.empty() && state.open_ids.back() == record_.span_id)
    state.open_ids.pop_back();

  util::log_debug("span close ", record_.name, ' ',
                  format_seconds(record_.duration_seconds));
  const double duration = record_.duration_seconds;
  for (SpanCapture* capture : state.captures)
    capture->records_.push_back(record_);
  Trace::global().record(std::move(record_));
  return duration;
}

// --- SpanCapture ------------------------------------------------------------

SpanCapture::SpanCapture() { thread_state().captures.push_back(this); }

SpanCapture::~SpanCapture() {
  auto& captures = thread_state().captures;
  if (!captures.empty() && captures.back() == this) captures.pop_back();
}

double SpanCapture::total_seconds(std::string_view name) const noexcept {
  double total = 0.0;
  for (const auto& record : records_)
    if (record.name == name) total += record.duration_seconds;
  return total;
}

}  // namespace graphner::obs
