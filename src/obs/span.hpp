// Lightweight trace spans (DESIGN.md §9).
//
// A ScopedSpan brackets one phase of work: it notes the start time on
// construction and, on close (explicit or at scope exit), appends a
// finished SpanRecord — name, nesting depth, parent id, wall time,
// key=value attributes — to the calling thread's ring buffer inside
// Trace::global(). Exporters drain the rings; a ring that is never
// drained overwrites its oldest records (and counts the drops), so
// tracing can stay on forever without growing memory.
//
// Nesting is tracked per thread: a span opened while another span of the
// same thread is open becomes its child. Spans are for phase-granular
// work (training phases, graph builds, checkpoint commits) — they
// allocate on close and are not meant for per-sentence hot paths.
//
// With GRAPHNER_LOG=debug, span open/close lines are emitted through the
// util::logging sink, which replaces the old scattered timing chatter:
//
//   [graphner DEBUG] span open  train.brown
//   [graphner DEBUG] span close train.brown 1.382s
//
// SpanCapture additionally mirrors every span closed *on its thread*
// into a local vector while it is alive — the seam that lets
// GraphNerModel::train materialize the legacy TrainingTimings struct
// from the trace instead of threading stopwatches through every phase.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace graphner::obs {

struct SpanAttr {
  std::string key;
  std::string value;
};

struct SpanRecord {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span of its thread
  std::uint32_t depth = 0;      ///< 0 = root
  double start_seconds = 0.0;   ///< since the process trace epoch
  double duration_seconds = 0.0;
  std::vector<SpanAttr> attrs;
};

/// Process-wide collection of per-thread span rings.
class Trace {
 public:
  [[nodiscard]] static Trace& global();

  /// Move every finished span out of every thread's ring, oldest first
  /// within each thread. Safe to call while spans are being recorded.
  [[nodiscard]] std::vector<SpanRecord> drain();

  /// Records overwritten because no exporter drained them in time.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Per-thread ring capacity for threads that register *after* the call
  /// (existing rings keep their size). Default 1024.
  void set_ring_capacity(std::size_t capacity) noexcept;

 private:
  Trace() = default;
  friend class ScopedSpan;
  friend class SpanCapture;

  struct Ring;
  void record(SpanRecord&& record);
  [[nodiscard]] Ring& ring_for_this_thread();

  std::vector<std::shared_ptr<Ring>> rings_;  // guarded by rings_mutex_
  mutable std::mutex rings_mutex_;
  std::atomic<std::size_t> ring_capacity_{1024};
};

/// RAII span. close() is idempotent and returns the span's wall time in
/// seconds, so call sites that still fill duration structs can do both:
///   obs::ScopedSpan span("train.brown");
///   ... work ...
///   timings.brown_seconds = span.close();
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, double value);
  void attr(std::string_view key, std::uint64_t value);

  /// Wall time so far (or the final duration once closed).
  [[nodiscard]] double seconds() const noexcept;

  /// End the span now: record it, pop the nesting stack, emit the debug
  /// close line. Returns the duration; later calls return the same value.
  double close() noexcept;

 private:
  SpanRecord record_;
  double start_monotonic_ = 0.0;
  bool closed_ = false;
};

/// Mirrors every span closed on the constructing thread into records()
/// while alive. Captures nest (each sees the spans closed during its own
/// lifetime); destruction order must be inverse construction order,
/// which scoping gives for free.
class SpanCapture {
 public:
  SpanCapture();
  ~SpanCapture();

  SpanCapture(const SpanCapture&) = delete;
  SpanCapture& operator=(const SpanCapture&) = delete;

  [[nodiscard]] const std::vector<SpanRecord>& records() const noexcept {
    return records_;
  }

  /// Sum of the durations of captured spans with exactly this name.
  [[nodiscard]] double total_seconds(std::string_view name) const noexcept;

 private:
  friend class Trace;
  friend class ScopedSpan;
  std::vector<SpanRecord> records_;
};

}  // namespace graphner::obs
