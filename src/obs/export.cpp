#include "src/obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace graphner::obs {
namespace {

[[nodiscard]] std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

[[nodiscard]] std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  return buffer;
}

/// "name" or "name{k=v,k2=v2}" — the flat key used by the JSON and TSV
/// flavours (labels stay structured only in the Prometheus format).
[[nodiscard]] std::string flat_name(const std::string& name,
                                    const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].key + "=" + labels[i].value;
  }
  out += '}';
  return out;
}

[[nodiscard]] std::string prometheus_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += prometheus_name(labels[i].key).substr(9);  // strip "graphner_"
    out += "=\"" + prometheus_escape(labels[i].value) + '"';
  }
  out += '}';
  return out;
}

struct HistogramStats {
  std::size_t count;
  double mean, p50, p95, p99, max;
};

[[nodiscard]] HistogramStats stats_of(const Histogram::Snapshot& h) {
  return {h.count(),       h.mean(),        h.quantile(0.50),
          h.quantile(0.95), h.quantile(0.99), h.max()};
}

}  // namespace

std::string export_json(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out << (i > 0 ? "," : "") << '"'
        << json_escape(flat_name(c.name, c.labels)) << "\":" << c.value;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out << (i > 0 ? "," : "") << '"'
        << json_escape(flat_name(g.name, g.labels))
        << "\":" << format_double(g.value);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    const HistogramStats s = stats_of(h.data);
    out << (i > 0 ? "," : "") << '"'
        << json_escape(flat_name(h.name, h.labels)) << "\":{\"count\":"
        << s.count << ",\"mean\":" << format_double(s.mean)
        << ",\"p50\":" << format_double(s.p50)
        << ",\"p95\":" << format_double(s.p95)
        << ",\"p99\":" << format_double(s.p99)
        << ",\"max\":" << format_double(s.max) << '}';
  }
  out << "}}";
  return out.str();
}

std::string export_tsv(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  bool first = true;
  auto line = [&](const std::string& name, const std::string& value) {
    if (!first) out << '\n';
    first = false;
    out << name << '\t' << value;
  };
  for (const auto& c : snapshot.counters)
    line(flat_name(c.name, c.labels), std::to_string(c.value));
  for (const auto& g : snapshot.gauges)
    line(flat_name(g.name, g.labels), format_double(g.value));
  for (const auto& h : snapshot.histograms) {
    const std::string name = flat_name(h.name, h.labels);
    const HistogramStats s = stats_of(h.data);
    line(name + ".count", std::to_string(s.count));
    line(name + ".mean", format_double(s.mean));
    line(name + ".p50", format_double(s.p50));
    line(name + ".p95", format_double(s.p95));
    line(name + ".p99", format_double(s.p99));
    line(name + ".max", format_double(s.max));
  }
  return out.str();
}

std::string export_prometheus(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    out << "# TYPE " << name << " counter\n"
        << name << prometheus_labels(c.labels) << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n"
        << name << prometheus_labels(g.labels) << ' ' << format_double(g.value)
        << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    const HistogramStats s = stats_of(h.data);
    out << "# TYPE " << name << " summary\n";
    // Quantile series share the instrument's labels plus "quantile".
    auto series = [&](const char* q, double value) {
      Labels labels = h.labels;
      labels.push_back({"quantile", q});
      out << name << prometheus_labels(labels) << ' ' << format_double(value)
          << '\n';
    };
    series("0.5", s.p50);
    series("0.95", s.p95);
    series("0.99", s.p99);
    out << name << "_sum" << prometheus_labels(h.labels) << ' '
        << format_double(h.data.sum) << '\n'
        << name << "_count" << prometheus_labels(h.labels) << ' ' << s.count
        << '\n';
  }
  return out.str();
}

std::string export_spans_json(const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& span = spans[i];
    out << (i > 0 ? "," : "") << "{\"name\":\"" << json_escape(span.name)
        << "\",\"id\":" << span.span_id << ",\"parent\":" << span.parent_id
        << ",\"depth\":" << span.depth
        << ",\"start_s\":" << format_double(span.start_seconds)
        << ",\"dur_s\":" << format_double(span.duration_seconds)
        << ",\"attrs\":{";
    for (std::size_t a = 0; a < span.attrs.size(); ++a)
      out << (a > 0 ? "," : "") << '"' << json_escape(span.attrs[a].key)
          << "\":\"" << json_escape(span.attrs[a].value) << '"';
    out << "}}";
  }
  out << ']';
  return out.str();
}

std::string prometheus_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_name(const std::string& name) {
  std::string out = "graphner_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace graphner::obs
