// Process-wide metric registry: named counters, gauges and histograms
// (DESIGN.md §9).
//
// Every subsystem that used to carry its own ad-hoc instrumentation
// (serve::ServiceMetrics, core::TrainingTimings, one-off Stopwatch sums)
// now registers instruments here and reports through the shared
// exporters (src/obs/export.hpp). Design constraints, in order:
//
//   1. Hot-path cost. A counter bump is one *uncontended* relaxed RMW:
//      counters are sharded across cache-line-aligned atomic slots and a
//      thread always hits the shard assigned to it, so decode workers
//      never contend on a shared counter line. Gauges are a single
//      relaxed atomic store. Histogram records lock a per-thread-assigned
//      shard mutex (uncontended in steady state — the same discipline the
//      old per-worker serving metrics used) around a util::Histogram add.
//   2. Snapshot safety. snapshot() can run concurrently with any number
//      of writers (TSAN-clean); it sees each instrument at some point at
//      or after the writes that happened-before the snapshot call.
//   3. Stable handles. counter()/gauge()/histogram() return references
//      that stay valid for the registry's lifetime — resolve once at
//      setup, increment forever. Lookup takes the registry mutex and is
//      not for hot paths.
//
// Registry::global() is the process-wide instance (training pipeline,
// propagation, L-BFGS, checkpoints, graph construction). Subsystems that
// need isolated counts per instance — the serving metrics, every unit
// test — construct their own Registry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/histogram.hpp"

namespace graphner::obs {

/// One metric label (Prometheus-style key/value dimension).
struct Label {
  std::string key;
  std::string value;

  friend bool operator==(const Label&, const Label&) = default;
};

using Labels = std::vector<Label>;

namespace detail {
/// Stable small shard index for the calling thread. Threads are assigned
/// round-robin on first use; the index is shared by every instrument, so
/// a worker thread touches the same shard of every counter it bumps.
[[nodiscard]] std::size_t thread_shard() noexcept;
constexpr std::size_t kShards = 16;  // power of two; see thread_shard()
}  // namespace detail

/// Monotonic counter, sharded so concurrent increments from different
/// threads hit different cache lines.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

/// Last-value instrument (queue depth, current objective, residual).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// How recorded values map onto the fixed histogram bins.
enum class Scale {
  kLinear,    ///< bins directly over the raw value
  kLog10p1,   ///< bins over log10(1 + value): the serving-latency layout,
              ///< near-constant relative resolution from 1 to 10^hi - 1
};

struct HistogramSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t bins = 64;
  Scale scale = Scale::kLinear;
};

/// The serving-latency histogram layout: 256 bins over log10(1 + us) in
/// [0, 8) — ~7% relative resolution from 1 us to ~100 s.
[[nodiscard]] constexpr HistogramSpec latency_us_spec() noexcept {
  return HistogramSpec{0.0, 8.0, 256, Scale::kLog10p1};
}

/// Distribution instrument over util::Histogram buckets. record() takes
/// raw-domain values; quantiles and means come back out in the raw domain
/// regardless of the bin scale.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double raw_value) noexcept;

  /// Point-in-time copy, already merged across shards. Copyable and
  /// detached from the live instrument.
  struct Snapshot {
    HistogramSpec spec{};
    util::Histogram buckets{0.0, 1.0, 1};  ///< bin-domain (transformed) counts
    double sum = 0.0;                      ///< raw-domain sum

    [[nodiscard]] std::size_t count() const noexcept { return buckets.total(); }
    [[nodiscard]] double mean() const noexcept;
    /// Raw-domain quantile (inverse of the bin transform).
    [[nodiscard]] double quantile(double q) const noexcept;
    [[nodiscard]] double max() const noexcept;

    void merge(const Snapshot& other);
  };

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] const HistogramSpec& spec() const noexcept { return spec_; }

 private:
  struct Shard {
    mutable std::mutex mutex;  ///< owner thread vs. snapshot; uncontended
    util::Histogram buckets;
    double sum = 0.0;
    explicit Shard(const HistogramSpec& spec)
        : buckets(spec.lo, spec.hi, spec.bins) {}
  };

  HistogramSpec spec_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// --- Snapshots --------------------------------------------------------------

struct CounterSample {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  Histogram::Snapshot data;
};

/// Point-in-time view of a whole registry: plain data, copyable, and
/// composable — scrape handlers merge the serve registry, the global
/// registry and derived samples (fault-injector fire counts) into one
/// snapshot before exporting.
struct RegistrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Append every sample of `other`, with `prefix` prepended to each name
  /// (pass "" for none). Used to namespace the serve registry as
  /// "serve.*" next to the process-global instruments.
  void append(const RegistrySnapshot& other, const std::string& prefix = "");

  /// Value of a counter by (exact) name; 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const noexcept;
};

/// Named-instrument registry. Instruments are created on first lookup and
/// live as long as the registry; repeated lookups with the same name (and
/// labels) return the same instrument.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (training pipeline, kernels, checkpoints).
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(const std::string& name, const Labels& labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `spec` is honoured on first creation; later lookups of the same name
  /// return the existing instrument (the spec must not conflict — throws
  /// std::invalid_argument on a layout mismatch).
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const HistogramSpec& spec,
                                     const Labels& labels = {});

  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  [[nodiscard]] Entry* find(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
};

}  // namespace graphner::obs
