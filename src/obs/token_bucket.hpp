// Token-bucket admission control for per-tenant quotas (DESIGN.md §14).
//
// A bucket holds up to `burst` tokens and refills at `rate` tokens per
// second; each admitted request spends one token and an empty bucket
// rejects (the router answers Status::kQuotaExceeded). Two properties the
// serving tier leans on:
//
//   - Deterministic CI shape: rate = 0 never refills, so "burst N, rate 0"
//     admits exactly N requests and then rejects every one after — the
//     chaos smokes assert exact counts without racing a clock.
//   - Unlimited by default: a default-constructed bucket admits
//     everything, so tenants only pay the mutex once a quota is set.
//
// Refill is computed lazily from the monotonic clock on each acquire (no
// background thread), capped at `burst` so idle time never banks more
// than one burst.
#pragma once

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

namespace graphner::obs {

class TokenBucket {
 public:
  /// No quota: every try_acquire() succeeds.
  TokenBucket() = default;

  /// Install (or replace) a quota: `burst` tokens now, refilling at
  /// `rate_per_sec`. Negative arguments clamp to zero.
  void configure(double rate_per_sec, double burst) {
    std::lock_guard<std::mutex> lock(mutex_);
    rate_ = std::max(0.0, rate_per_sec);
    burst_ = std::max(0.0, burst);
    tokens_ = burst_;
    last_refill_ = Clock::now();
    limited_ = true;
  }

  /// Drop the quota; the bucket admits everything again.
  void remove() {
    std::lock_guard<std::mutex> lock(mutex_);
    limited_ = false;
  }

  /// Spend one token. False = quota exhausted, reject the request.
  [[nodiscard]] bool try_acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!limited_) return true;
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_refill_).count();
    last_refill_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] bool limited() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return limited_;
  }
  /// The configured shape, for "model list" reporting (0/0 if unlimited).
  [[nodiscard]] std::pair<double, double> shape() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return limited_ ? std::pair<double, double>{rate_, burst_}
                    : std::pair<double, double>{0.0, 0.0};
  }

 private:
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mutex_;
  bool limited_ = false;
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  Clock::time_point last_refill_{};
};

}  // namespace graphner::obs
