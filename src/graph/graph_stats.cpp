#include "src/graph/graph_stats.hpp"

#include <algorithm>
#include <numeric>

namespace graphner::graph {
namespace {

/// Union-find over vertex ids.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

GraphStats compute_graph_stats(const KnnGraph& graph) {
  GraphStats stats;
  stats.vertices = graph.vertex_count();
  stats.edges = graph.edge_count();
  stats.influencees.assign(stats.vertices, 0);
  stats.influence.assign(stats.vertices, 0.0);

  DisjointSets components(stats.vertices);
  for (std::size_t v = 0; v < stats.vertices; ++v) {
    for (const auto& edge : graph.neighbours(static_cast<VertexId>(v))) {
      ++stats.influencees[edge.target];
      stats.influence[edge.target] += edge.weight;
      components.unite(v, edge.target);
    }
  }
  if (stats.vertices > 0)
    stats.mean_out_degree =
        static_cast<double>(stats.edges) / static_cast<double>(stats.vertices);

  std::vector<std::size_t> component_size(stats.vertices, 0);
  for (std::size_t v = 0; v < stats.vertices; ++v) ++component_size[components.find(v)];
  for (const std::size_t size : component_size) {
    if (size > 0) ++stats.weakly_connected_components;
    stats.largest_component = std::max(stats.largest_component, size);
  }
  return stats;
}

}  // namespace graphner::graph
