// Vertex representations: PPMI feature vectors for 3-gram vertices.
//
// A vertex is represented by the pointwise mutual information between its
// 3-gram and the feature instances observed at the 3-gram's occurrences
// (paper §II-C). Three representations, matching Table III:
//   * kAllFeatures — every BANNER feature of the center token,
//   * kLexical     — lemmas in a window of length 5 around the center,
//   * kMiSelected  — BANNER features whose tag MI exceeds a threshold.
// Vectors use positive PMI and are L2-normalized so that k-NN dot products
// equal cosine similarities.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "src/features/extractor.hpp"
#include "src/graph/sparse_vector.hpp"
#include "src/graph/trigram.hpp"
#include "src/text/sentence.hpp"

namespace graphner::graph {

enum class VertexRepresentation { kAllFeatures, kLexical, kMiSelected };

[[nodiscard]] std::string representation_name(VertexRepresentation rep);

struct VertexFeatureConfig {
  VertexRepresentation representation = VertexRepresentation::kAllFeatures;
  /// Feature names kept when representation == kMiSelected.
  std::unordered_set<std::string> selected_features;
  /// Features occurring at more than this fraction of token positions are
  /// dropped before building vectors (they carry no discriminative signal
  /// and would blow up the k-NN inverted index).
  double max_document_frequency = 0.2;
};

struct VertexVectors {
  std::vector<SparseVector> vectors;  ///< one per vertex, unit L2 norm
  std::size_t feature_instance_count = 0;
};

/// The feature names contributing to the vertex at `position` of `sentence`
/// under `config` — the single-position unit build_vertex_vectors counts,
/// exposed so the online learner accumulates the *same* cooccurrence
/// statistics incrementally.
[[nodiscard]] std::vector<std::string> vertex_features_at(
    const text::Sentence& sentence, std::size_t position,
    const features::FeatureExtractor& extractor, const VertexFeatureConfig& config);

/// Build PPMI vectors for every vertex. `sentences` must iterate in the
/// same order as `vertices.positions` (train sentences, then test).
[[nodiscard]] VertexVectors build_vertex_vectors(
    const TrigramVertices& vertices,
    const std::vector<const text::Sentence*>& sentences,
    const features::FeatureExtractor& extractor, const VertexFeatureConfig& config);

}  // namespace graphner::graph
