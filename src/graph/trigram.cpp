#include "src/graph/trigram.hpp"

#include <cassert>

#include "src/util/strings.hpp"

namespace graphner::graph {
namespace {

[[nodiscard]] std::string key_of(const std::array<std::string, 3>& trigram) {
  std::string key;
  key.reserve(trigram[0].size() + trigram[1].size() + trigram[2].size() + 2);
  key += trigram[0];
  key += '\x1f';
  key += trigram[1];
  key += '\x1f';
  key += trigram[2];
  return key;
}

}  // namespace

std::size_t TrigramVertices::token_count() const noexcept {
  std::size_t n = 0;
  for (const auto& row : positions) n += row.size();
  return n;
}

std::string TrigramVertices::vertex_text(VertexId v) const {
  const auto& t = trigrams.at(v);
  return "[" + t[0] + " " + t[1] + " " + t[2] + "]";
}

std::array<std::string, 3> trigram_at(const text::Sentence& sentence,
                                      std::size_t position) {
  assert(position < sentence.size());
  auto at = [&](long long p) -> std::string {
    if (p < 0) return "<s>";
    if (p >= static_cast<long long>(sentence.size())) return "</s>";
    return util::to_lower(sentence.tokens[static_cast<std::size_t>(p)]);
  };
  const auto pos = static_cast<long long>(position);
  return {at(pos - 1), at(pos), at(pos + 1)};
}

TrigramVertices build_trigram_vertices(const std::vector<text::Sentence>& train,
                                       const std::vector<text::Sentence>& test) {
  TrigramVertices out;
  out.train_sentence_count = train.size();
  std::unordered_map<std::string, VertexId> index;

  auto add_side = [&](const std::vector<text::Sentence>& sentences) {
    for (const auto& sentence : sentences) {
      std::vector<VertexId> row;
      row.reserve(sentence.size());
      for (std::size_t i = 0; i < sentence.size(); ++i) {
        auto trigram = trigram_at(sentence, i);
        const std::string key = key_of(trigram);
        auto [it, inserted] =
            index.emplace(key, static_cast<VertexId>(out.trigrams.size()));
        if (inserted) out.trigrams.push_back(std::move(trigram));
        row.push_back(it->second);
      }
      out.positions.push_back(std::move(row));
    }
  };
  add_side(train);
  add_side(test);
  return out;
}

}  // namespace graphner::graph
