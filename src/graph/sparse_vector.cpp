#include "src/graph/sparse_vector.hpp"

#include <algorithm>
#include <cmath>

namespace graphner::graph {

SparseVector::SparseVector(std::vector<SparseEntry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const SparseEntry& a, const SparseEntry& b) { return a.index < b.index; });
  recompute_norm();
}

void SparseVector::recompute_norm() noexcept {
  double acc = 0.0;
  for (const auto& e : entries_) acc += static_cast<double>(e.value) * e.value;
  norm_ = std::sqrt(acc);
}

void SparseVector::normalize() noexcept {
  if (norm_ <= 0.0) return;
  const auto inv = static_cast<float>(1.0 / norm_);
  for (auto& e : entries_) e.value *= inv;
  norm_ = 1.0;
}

double SparseVector::dot(const SparseVector& other) const noexcept {
  double acc = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    const auto a = entries_[i].index;
    const auto b = other.entries_[j].index;
    if (a == b) {
      acc += static_cast<double>(entries_[i].value) * other.entries_[j].value;
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return acc;
}

double SparseVector::cosine(const SparseVector& other) const noexcept {
  if (norm_ <= 0.0 || other.norm_ <= 0.0) return 0.0;
  return dot(other) / (norm_ * other.norm_);
}

}  // namespace graphner::graph
