#include "src/graph/knn_graph.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "src/obs/registry.hpp"
#include "src/obs/span.hpp"
#include "src/util/parallel.hpp"
#include "src/util/top_k.hpp"

namespace graphner::graph {

KnnGraph::KnnGraph(std::size_t num_vertices, std::size_t k)
    : k_(k), edges_(num_vertices) {}

std::size_t KnnGraph::edge_count() const noexcept {
  std::size_t n = 0;
  for (const auto& e : edges_) n += e.size();
  return n;
}

void KnnGraph::save(std::ostream& out) const {
  out.precision(10);  // round-trip float weights exactly
  out << vertex_count() << ' ' << k_ << '\n';
  for (std::size_t v = 0; v < edges_.size(); ++v)
    for (const auto& e : edges_[v]) out << v << ' ' << e.target << ' ' << e.weight << '\n';
}

KnnGraph KnnGraph::load(std::istream& in) {
  std::size_t vertices = 0;
  std::size_t k = 0;
  if (!(in >> vertices >> k))
    throw std::runtime_error("knn graph: malformed header (expected `vertices k`)");
  KnnGraph graph(vertices, k);
  std::size_t src = 0;
  std::size_t record = 0;
  Edge edge;
  while (in >> src) {
    if (!(in >> edge.target >> edge.weight))
      throw std::runtime_error("knn graph: truncated or malformed edge record " +
                               std::to_string(record));
    if (src >= vertices || edge.target >= vertices)
      throw std::runtime_error("knn graph: edge record " + std::to_string(record) +
                               " references vertex out of range (" +
                               std::to_string(src) + " -> " +
                               std::to_string(edge.target) + ", vertices=" +
                               std::to_string(vertices) + ")");
    graph.edges_[src].push_back(edge);
    ++record;
  }
  // The loop may stop either at a clean end-of-stream or on a token that is
  // not a vertex id (e.g. text garbage); only the former is a valid file.
  if (!in.eof())
    throw std::runtime_error("knn graph: unparseable data after edge record " +
                             std::to_string(record));
  return graph;
}

KnnGraph build_knn_graph(const std::vector<SparseVector>& vectors,
                         const KnnConfig& config) {
  const std::size_t n = vectors.size();
  KnnGraph graph(n, config.k);
  obs::ScopedSpan span("graph.knn_build");

  // Inverted index: feature id -> (vertex, value) pairs, so the scoring
  // loop accumulates dot products without touching the candidate's vector.
  struct Posting {
    VertexId vertex;
    float value;
  };
  std::uint32_t max_feature = 0;
  for (const auto& vec : vectors)
    for (const auto& e : vec.entries()) max_feature = std::max(max_feature, e.index);
  std::vector<std::vector<Posting>> postings(static_cast<std::size_t>(max_feature) + 1);
  for (std::size_t v = 0; v < n; ++v)
    for (const auto& e : vectors[v].entries())
      postings[e.index].push_back({static_cast<VertexId>(v), e.value});

  std::size_t skipped_features = 0;
  for (auto& plist : postings)
    if (plist.size() > config.max_posting_length) {
      plist.clear();
      plist.shrink_to_fit();
      ++skipped_features;
    }

  // Each worker keeps a dense accumulator reused across its chunk; the
  // `touched` list bounds the reset cost by the candidate count.
  util::parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
    std::vector<double> acc(n, 0.0);
    std::vector<VertexId> touched;
    for (std::size_t v = lo; v < hi; ++v) {
      touched.clear();
      for (const auto& e : vectors[v].entries()) {
        for (const Posting& p : postings[e.index]) {
          if (p.vertex == v) continue;
          if (acc[p.vertex] == 0.0) touched.push_back(p.vertex);
          acc[p.vertex] += static_cast<double>(e.value) * p.value;
        }
      }
      util::TopK<VertexId> best(config.k);
      for (const VertexId u : touched) {
        if (acc[u] > config.min_similarity) best.push(acc[u], u);
        acc[u] = 0.0;
      }
      std::vector<Edge> edges;
      for (auto& [score, u] : best.take_sorted())
        edges.push_back({u, static_cast<float>(score)});
      graph.set_neighbours(static_cast<VertexId>(v), std::move(edges));
    }
  });

  span.attr("vertices", static_cast<std::uint64_t>(n));
  span.attr("edges", static_cast<std::uint64_t>(graph.edge_count()));
  span.attr("skipped_features", static_cast<std::uint64_t>(skipped_features));
  obs::Registry& registry = obs::Registry::global();
  registry.gauge("graph.knn.vertices").set(static_cast<double>(n));
  registry.gauge("graph.knn.edges").set(static_cast<double>(graph.edge_count()));
  registry.counter("graph.knn.builds").inc();
  return graph;
}

}  // namespace graphner::graph
