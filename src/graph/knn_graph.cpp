#include "src/graph/knn_graph.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "src/graph/knn_index.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/span.hpp"

namespace graphner::graph {

KnnGraph::KnnGraph(std::size_t num_vertices, std::size_t k)
    : k_(k), edges_(num_vertices) {}

void KnnGraph::save(std::ostream& out) const {
  out.precision(10);  // round-trip float weights exactly
  out << vertex_count() << ' ' << k_ << '\n';
  for (std::size_t v = 0; v < edges_.size(); ++v)
    for (const auto& e : edges_[v]) out << v << ' ' << e.target << ' ' << e.weight << '\n';
}

KnnGraph KnnGraph::load(std::istream& in) {
  std::size_t vertices = 0;
  std::size_t k = 0;
  if (!(in >> vertices >> k))
    throw std::runtime_error("knn graph: malformed header (expected `vertices k`)");
  KnnGraph graph(vertices, k);
  std::size_t src = 0;
  std::size_t record = 0;
  Edge edge;
  while (in >> src) {
    if (!(in >> edge.target >> edge.weight))
      throw std::runtime_error("knn graph: truncated or malformed edge record " +
                               std::to_string(record));
    if (src >= vertices || edge.target >= vertices)
      throw std::runtime_error("knn graph: edge record " + std::to_string(record) +
                               " references vertex out of range (" +
                               std::to_string(src) + " -> " +
                               std::to_string(edge.target) + ", vertices=" +
                               std::to_string(vertices) + ")");
    std::vector<Edge>& out_edges = graph.edges_[src];
    if (out_edges.size() >= k)
      throw std::runtime_error("knn graph: vertex " + std::to_string(src) +
                               " has more than k=" + std::to_string(k) +
                               " edges (record " + std::to_string(record) + ")");
    for (const Edge& existing : out_edges)
      if (existing.target == edge.target)
        throw std::runtime_error("knn graph: duplicate edge " +
                                 std::to_string(src) + " -> " +
                                 std::to_string(edge.target) + " (record " +
                                 std::to_string(record) + ")");
    out_edges.push_back(edge);
    ++graph.edge_count_;
    ++record;
  }
  // The loop may stop either at a clean end-of-stream or on a token that is
  // not a vertex id (e.g. text garbage); only the former is a valid file.
  if (!in.eof())
    throw std::runtime_error("knn graph: unparseable data after edge record " +
                             std::to_string(record));
  return graph;
}

KnnGraph build_knn_graph(std::vector<SparseVector>&& vectors,
                         const KnnConfig& config) {
  // One-shot build = one append into an empty KnnIndex (knn_index.cpp):
  // identical candidate enumeration and scoring, so this refactor is
  // behaviour-preserving — and callers that keep the index instead get
  // incremental appends for free.
  obs::ScopedSpan span("graph.knn_build");
  const std::size_t n = vectors.size();
  KnnIndex index = KnnIndex::build(std::move(vectors), config);
  KnnGraph graph = index.take_graph();
  span.attr("vertices", static_cast<std::uint64_t>(n));
  span.attr("edges", static_cast<std::uint64_t>(graph.edge_count()));
  span.attr("skipped_features",
            static_cast<std::uint64_t>(index.capped_features()));
  obs::Registry& registry = obs::Registry::global();
  registry.gauge("graph.knn.vertices").set(static_cast<double>(n));
  registry.gauge("graph.knn.edges").set(static_cast<double>(graph.edge_count()));
  registry.counter("graph.knn.builds").inc();
  return graph;
}

KnnGraph build_knn_graph(const std::vector<SparseVector>& vectors,
                         const KnnConfig& config) {
  // Copy-in convenience for callers that keep using `vectors` afterwards.
  return build_knn_graph(std::vector<SparseVector>(vectors), config);
}

}  // namespace graphner::graph
