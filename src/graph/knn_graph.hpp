// Exact k-nearest-neighbour similarity graph.
//
// The paper keeps the K most cosine-similar vertices for each vertex,
// which makes the graph directed with uniform out-degree K (§III-D). With
// unit-norm PPMI vectors the cosine is a sparse dot product; candidates
// are generated through an inverted index over feature ids so only vertex
// pairs sharing at least one feature are scored. The scoring loop is the
// O(V^2 F) hot spot the paper discusses — it is parallelized across
// vertices (util::parallel_for_chunked).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/graph/sparse_vector.hpp"
#include "src/graph/trigram.hpp"

namespace graphner::graph {

struct Edge {
  VertexId target = 0;
  float weight = 0.0F;
};

class KnnGraph {
 public:
  KnnGraph() = default;
  KnnGraph(std::size_t num_vertices, std::size_t k);

  // The atomic edge counter deletes the implicit special members; copies
  // and moves are only taken from quiescent graphs (no concurrent
  // set_neighbours), so a plain relaxed load transfers the count.
  KnnGraph(const KnnGraph& other)
      : k_(other.k_),
        edge_count_(other.edge_count_.load(std::memory_order_relaxed)),
        edges_(other.edges_) {}
  KnnGraph(KnnGraph&& other) noexcept
      : k_(other.k_),
        edge_count_(other.edge_count_.load(std::memory_order_relaxed)),
        edges_(std::move(other.edges_)) {
    other.edge_count_.store(0, std::memory_order_relaxed);
  }
  KnnGraph& operator=(const KnnGraph& other) {
    if (this != &other) {
      k_ = other.k_;
      edge_count_.store(other.edge_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      edges_ = other.edges_;
    }
    return *this;
  }
  KnnGraph& operator=(KnnGraph&& other) noexcept {
    if (this != &other) {
      k_ = other.k_;
      edge_count_.store(other.edge_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      edges_ = std::move(other.edges_);
      other.edge_count_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  [[nodiscard]] std::size_t vertex_count() const noexcept { return edges_.size(); }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  /// Total directed edges. O(1): the count is maintained incrementally by
  /// set_neighbours / grow / load instead of re-scanned per call (it backs
  /// metric updates on every build and append).
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edge_count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<Edge>& neighbours(VertexId v) const {
    return edges_.at(v);
  }
  /// Safe to call concurrently for *distinct* vertices (KnnIndex::append
  /// scores new vertices from worker threads): each worker writes a
  /// disjoint edges_ slot, and the shared counter is adjusted with one
  /// relaxed atomic add (unsigned wrap makes a negative delta net out).
  void set_neighbours(VertexId v, std::vector<Edge> edges) {
    std::vector<Edge>& slot = edges_.at(v);
    edge_count_.fetch_add(edges.size() - slot.size(),
                          std::memory_order_relaxed);
    slot = std::move(edges);
  }

  /// Append `count` new vertices with empty neighbour lists (incremental
  /// k-NN insertion; existing vertex ids are stable).
  void grow(std::size_t count) { edges_.resize(edges_.size() + count); }

  /// Text serialization: one line per edge "src dst weight".
  void save(std::ostream& out) const;
  /// Rejects (with distinct messages): malformed header, truncated or
  /// unparseable records, out-of-range vertex ids, more than k edges on a
  /// source vertex, and duplicate (src, target) records.
  static KnnGraph load(std::istream& in);

 private:
  std::size_t k_ = 0;
  /// Atomic because parallel append workers set_neighbours concurrently
  /// (disjoint slots, shared counter).
  std::atomic<std::size_t> edge_count_{0};
  std::vector<std::vector<Edge>> edges_;
};

struct KnnConfig {
  std::size_t k = 10;
  /// Features whose posting list exceeds this length are skipped during
  /// candidate generation (they connect everything to everything and would
  /// make the scoring pass quadratic in practice).
  std::size_t max_posting_length = 4000;
  double min_similarity = 1e-4;
};

/// Build the exact k-NN graph over unit-normalized vectors. The rvalue
/// overload moves the vectors into the scoring index; one-shot callers
/// that are done with them should use it so peak memory stays at one copy
/// (the lvalue overload copies, for callers that keep using `vectors`).
[[nodiscard]] KnnGraph build_knn_graph(std::vector<SparseVector>&& vectors,
                                       const KnnConfig& config);
[[nodiscard]] KnnGraph build_knn_graph(const std::vector<SparseVector>& vectors,
                                       const KnnConfig& config);

}  // namespace graphner::graph
