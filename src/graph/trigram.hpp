// 3-gram vertex extraction (Subramanya et al. 2010 convention).
//
// Every token position i of every sentence contributes the 3-gram
// (w_{i-1}, w_i, w_{i+1}), with <s> / </s> padding at the boundaries, so
// each position maps to exactly one vertex. Vertices are the *types*:
// unique lowercased 3-grams across the labelled and unlabelled data.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/text/sentence.hpp"

namespace graphner::graph {

using VertexId = std::uint32_t;

struct TrigramVertices {
  /// Vertex id -> the three (lowercased) tokens.
  std::vector<std::array<std::string, 3>> trigrams;
  /// Per sentence, per position: the vertex at that position.
  /// Indexed [sentence][position]; train sentences first, then test.
  std::vector<std::vector<VertexId>> positions;
  std::size_t train_sentence_count = 0;

  [[nodiscard]] std::size_t vertex_count() const noexcept { return trigrams.size(); }
  [[nodiscard]] std::size_t token_count() const noexcept;

  /// Human-readable form "[a b c]".
  [[nodiscard]] std::string vertex_text(VertexId v) const;
};

/// Build the vertex set over train + test sentences.
[[nodiscard]] TrigramVertices build_trigram_vertices(
    const std::vector<text::Sentence>& train,
    const std::vector<text::Sentence>& test);

/// The lowercased 3-gram key at `position` of `sentence`.
[[nodiscard]] std::array<std::string, 3> trigram_at(const text::Sentence& sentence,
                                                    std::size_t position);

}  // namespace graphner::graph
