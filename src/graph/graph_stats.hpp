// Graph statistics reported in the paper (§III-D and Fig. 3).
#pragma once

#include <cstddef>
#include <vector>

#include "src/graph/knn_graph.hpp"

namespace graphner::graph {

struct GraphStats {
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t weakly_connected_components = 0;
  std::size_t largest_component = 0;
  double mean_out_degree = 0.0;

  /// |Influencees(v)|: number of vertices to which v is a nearest neighbour
  /// (in-degree in the directed k-NN graph).
  std::vector<std::size_t> influencees;
  /// Influence(v) = sum of incoming edge weights.
  std::vector<double> influence;
};

[[nodiscard]] GraphStats compute_graph_stats(const KnnGraph& graph);

}  // namespace graphner::graph
