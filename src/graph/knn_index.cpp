#include "src/graph/knn_index.hpp"

#include <algorithm>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <tuple>

#include "src/obs/registry.hpp"
#include "src/obs/span.hpp"
#include "src/util/parallel.hpp"
#include "src/util/top_k.hpp"

namespace graphner::graph {

KnnIndex KnnIndex::build(std::vector<SparseVector> vectors,
                         const KnnConfig& config) {
  KnnIndex index(config);
  (void)index.append(std::move(vectors));
  return index;
}

KnnIndex::AppendResult KnnIndex::append(std::vector<SparseVector> new_vectors) {
  AppendResult result;
  const std::size_t n_old = vectors_.size();
  const std::size_t n_new = new_vectors.size();
  const std::size_t n_total = n_old + n_new;
  result.first_id = static_cast<VertexId>(n_old);
  result.appended = n_new;
  if (n_new == 0) return result;

  obs::ScopedSpan span("graph.knn_append");
  span.attr("existing", static_cast<std::uint64_t>(n_old));
  span.attr("appended", static_cast<std::uint64_t>(n_new));

  vectors_.reserve(n_total);
  for (auto& vec : new_vectors) vectors_.push_back(std::move(vec));
  graph_.grow(n_new);
  if (transpose_built_) in_edges_.resize(n_total);

  // 1. Extend the inverted index with the new vertices' entries. True
  // posting lengths keep counting past the cap so a list that crossed it
  // stays retired (it would connect everything to everything).
  std::uint32_t max_feature = 0;
  for (std::size_t v = n_old; v < n_total; ++v)
    for (const auto& e : vectors_[v].entries())
      max_feature = std::max(max_feature, e.index);
  if (static_cast<std::size_t>(max_feature) + 1 > postings_.size()) {
    postings_.resize(static_cast<std::size_t>(max_feature) + 1);
    posting_lengths_.resize(postings_.size(), 0);
  }
  for (std::size_t v = n_old; v < n_total; ++v) {
    for (const auto& e : vectors_[v].entries()) {
      std::size_t& length = ++posting_lengths_[e.index];
      std::vector<Posting>& plist = postings_[e.index];
      if (length > config_.max_posting_length) {
        if (!plist.empty()) {
          plist.clear();
          plist.shrink_to_fit();
          ++capped_features_;
          ++result.newly_capped_features;
        }
        continue;
      }
      plist.push_back({static_cast<VertexId>(v), e.value});
    }
  }

  // 2. Score each new vertex against the postings (which now hold old and
  // new vertices alike, so intra-batch edges form too). The loop body is
  // the same candidate enumeration build_knn_graph ran, which is what
  // makes append-then-query bit-identical to a rebuild. Similarities of
  // (old vertex, new vertex) pairs double as reverse-patch candidates:
  // sim is symmetric and both sides accumulate shared features in the
  // same ascending-index order, so the score is the exact double the old
  // vertex's own scan would have produced.
  struct ReverseCandidate {
    VertexId old_vertex;
    VertexId new_vertex;
    double score;
  };
  std::vector<ReverseCandidate> reverse;
  std::mutex reverse_mutex;

  util::parallel_for_chunked(n_old, n_total, [&](std::size_t lo, std::size_t hi) {
    std::vector<double> acc(n_total, 0.0);
    std::vector<VertexId> touched;
    std::vector<ReverseCandidate> local;
    for (std::size_t v = lo; v < hi; ++v) {
      touched.clear();
      for (const auto& e : vectors_[v].entries()) {
        for (const Posting& p : postings_[e.index]) {
          if (p.vertex == v) continue;
          if (acc[p.vertex] == 0.0) touched.push_back(p.vertex);
          acc[p.vertex] += static_cast<double>(e.value) * p.value;
        }
      }
      util::TopK<VertexId> best(config_.k);
      for (const VertexId u : touched) {
        if (acc[u] > config_.min_similarity) {
          best.push(acc[u], u);
          if (u < n_old)
            local.push_back({u, static_cast<VertexId>(v), acc[u]});
        }
        acc[u] = 0.0;
      }
      std::vector<Edge> edges;
      for (auto& [score, u] : best.take_sorted())
        edges.push_back({u, static_cast<float>(score)});
      graph_.set_neighbours(static_cast<VertexId>(v), std::move(edges));
    }
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(reverse_mutex);
      reverse.insert(reverse.end(), local.begin(), local.end());
    }
  });

  // Transpose upkeep for the forward edges: new vertices had no edges
  // before, so these are pure insertions. Serial — two new vertices may
  // share a target, so workers cannot push into in_edges_ directly.
  if (transpose_built_)
    for (std::size_t v = n_old; v < n_total; ++v)
      for (const Edge& e : graph_.neighbours(static_cast<VertexId>(v)))
        in_edges_[e.target].push_back(static_cast<VertexId>(v));

  // 3. Reverse patch: merge each old vertex's candidates into its edge
  // list. The old list is the exact top-k over the old vertex set and the
  // union's top-k can only draw from (old top-k) ∪ (new candidates), so
  // sort-and-truncate over the merge is an exact top-k over the union.
  std::sort(reverse.begin(), reverse.end(),
            [](const ReverseCandidate& a, const ReverseCandidate& b) {
              return std::tie(a.old_vertex, a.new_vertex) <
                     std::tie(b.old_vertex, b.new_vertex);
            });
  std::size_t i = 0;
  while (i < reverse.size()) {
    const VertexId u = reverse[i].old_vertex;
    std::vector<Edge> merged(graph_.neighbours(u));
    for (; i < reverse.size() && reverse[i].old_vertex == u; ++i)
      merged.push_back({reverse[i].new_vertex,
                        static_cast<float>(reverse[i].score)});
    // Stable: an old edge outranks a new candidate of equal weight, the
    // same first-come-stays rule TopK::push applies in a rebuild.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Edge& a, const Edge& b) { return a.weight > b.weight; });
    if (merged.size() > config_.k) merged.resize(config_.k);
    // The pre-append list cannot reference this batch, so u changed iff a
    // batch vertex survived the truncation.
    bool changed = false;
    for (const Edge& e : merged)
      if (e.target >= n_old) {
        changed = true;
        break;
      }
    if (changed) {
      if (transpose_built_) {
        // Diff old vs merged top-k (both <= k entries, so nested scans are
        // fine): dropped targets lose u in their in-list, entered targets
        // gain it. Swap-pop keeps removal O(in-degree); list order is
        // unspecified by contract.
        const std::vector<Edge>& old_edges = graph_.neighbours(u);
        for (const Edge& oe : old_edges) {
          bool kept = false;
          for (const Edge& me : merged)
            if (me.target == oe.target) {
              kept = true;
              break;
            }
          if (kept) continue;
          std::vector<VertexId>& in = in_edges_[oe.target];
          for (std::size_t j = 0; j < in.size(); ++j)
            if (in[j] == u) {
              in[j] = in.back();
              in.pop_back();
              break;
            }
        }
        for (const Edge& me : merged) {
          bool had = false;
          for (const Edge& oe : old_edges)
            if (oe.target == me.target) {
              had = true;
              break;
            }
          if (!had) in_edges_[me.target].push_back(u);
        }
      }
      result.patched.push_back(u);
      graph_.set_neighbours(u, std::move(merged));
    }
  }

  span.attr("patched", static_cast<std::uint64_t>(result.patched.size()));
  span.attr("edges", static_cast<std::uint64_t>(graph_.edge_count()));
  obs::Registry& registry = obs::Registry::global();
  registry.counter("graph.knn.appends").inc();
  registry.counter("graph.knn.appended_vertices").inc(n_new);
  registry.counter("graph.knn.patched_vertices").inc(result.patched.size());
  registry.gauge("graph.knn.vertices").set(static_cast<double>(n_total));
  registry.gauge("graph.knn.edges").set(static_cast<double>(graph_.edge_count()));
  return result;
}

void KnnIndex::save(std::ostream& out) const {
  out << "knn-index v1\n";
  out.precision(17);
  out << "config " << config_.k << ' ' << config_.max_posting_length << ' '
      << config_.min_similarity << '\n';
  out.precision(10);  // round-trip float vector values and edge weights exactly
  out << "vectors " << vectors_.size() << '\n';
  for (const SparseVector& vec : vectors_) {
    out << vec.nnz();
    for (const SparseEntry& e : vec.entries())
      out << ' ' << e.index << ' ' << e.value;
    out << '\n';
  }
  out << "edges " << graph_.vertex_count() << ' ' << graph_.k() << '\n';
  for (std::size_t v = 0; v < graph_.vertex_count(); ++v) {
    const auto& edges = graph_.neighbours(static_cast<VertexId>(v));
    out << edges.size();
    for (const Edge& e : edges) out << ' ' << e.target << ' ' << e.weight;
    out << '\n';
  }
  out << "transpose " << (transpose_built_ ? 1 : 0) << '\n';
  if (transpose_built_)
    for (const auto& in : in_edges_) {
      out << in.size();
      for (const VertexId u : in) out << ' ' << u;
      out << '\n';
    }
}

KnnIndex KnnIndex::load(std::istream& in) {
  std::string word;
  std::string version;
  if (!(in >> word >> version) || word != "knn-index" || version != "v1")
    throw std::runtime_error("knn index: bad header (expected `knn-index v1`)");
  KnnConfig config;
  if (!(in >> word >> config.k >> config.max_posting_length >>
        config.min_similarity) ||
      word != "config")
    throw std::runtime_error("knn index: malformed config line");
  KnnIndex index(config);

  std::size_t n = 0;
  if (!(in >> word >> n) || word != "vectors")
    throw std::runtime_error("knn index: malformed vectors header");
  index.vectors_.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t nnz = 0;
    if (!(in >> nnz))
      throw std::runtime_error("knn index: truncated at vector " +
                               std::to_string(v));
    std::vector<SparseEntry> entries(nnz);
    for (SparseEntry& e : entries)
      if (!(in >> e.index >> e.value))
        throw std::runtime_error("knn index: malformed entry in vector " +
                                 std::to_string(v));
    index.vectors_.emplace_back(std::move(entries));
  }

  std::size_t graph_vertices = 0;
  std::size_t graph_k = 0;
  if (!(in >> word >> graph_vertices >> graph_k) || word != "edges")
    throw std::runtime_error("knn index: malformed edges header");
  if (graph_vertices != n)
    throw std::runtime_error("knn index: edge section lists " +
                             std::to_string(graph_vertices) +
                             " vertices but vector section has " +
                             std::to_string(n));
  index.graph_ = KnnGraph(n, graph_k);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t degree = 0;
    if (!(in >> degree) || degree > graph_k)
      throw std::runtime_error("knn index: bad degree for vertex " +
                               std::to_string(v));
    std::vector<Edge> edges(degree);
    for (Edge& e : edges) {
      if (!(in >> e.target >> e.weight))
        throw std::runtime_error("knn index: malformed edge of vertex " +
                                 std::to_string(v));
      if (e.target >= n)
        throw std::runtime_error("knn index: edge of vertex " +
                                 std::to_string(v) + " targets out-of-range " +
                                 std::to_string(e.target));
    }
    index.graph_.set_neighbours(static_cast<VertexId>(v), std::move(edges));
  }

  int has_transpose = 0;
  if (!(in >> word >> has_transpose) || word != "transpose")
    throw std::runtime_error("knn index: malformed transpose header");
  if (has_transpose != 0) {
    index.in_edges_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t in_degree = 0;
      if (!(in >> in_degree))
        throw std::runtime_error("knn index: truncated transpose at vertex " +
                                 std::to_string(v));
      index.in_edges_[v].resize(in_degree);
      for (VertexId& u : index.in_edges_[v]) {
        if (!(in >> u))
          throw std::runtime_error("knn index: malformed transpose entry of "
                                   "vertex " +
                                   std::to_string(v));
        if (u >= n)
          throw std::runtime_error("knn index: transpose of vertex " +
                                   std::to_string(v) +
                                   " references out-of-range " +
                                   std::to_string(u));
      }
    }
    index.transpose_built_ = true;
  }

  // Rebuild the posting lists by replaying the vectors in id order — the
  // exact order successive appends inserted them, so list contents, cap
  // transitions and capped_features_ all match the live index.
  for (std::size_t v = 0; v < n; ++v) {
    for (const SparseEntry& e : index.vectors_[v].entries()) {
      if (static_cast<std::size_t>(e.index) + 1 > index.postings_.size()) {
        index.postings_.resize(static_cast<std::size_t>(e.index) + 1);
        index.posting_lengths_.resize(index.postings_.size(), 0);
      }
      std::size_t& length = ++index.posting_lengths_[e.index];
      std::vector<Posting>& plist = index.postings_[e.index];
      if (length > config.max_posting_length) {
        if (!plist.empty()) {
          plist.clear();
          plist.shrink_to_fit();
          ++index.capped_features_;
        }
        continue;
      }
      plist.push_back({static_cast<VertexId>(v), e.value});
    }
  }
  return index;
}

const std::vector<std::vector<VertexId>>& KnnIndex::transpose() {
  if (!transpose_built_) {
    in_edges_.assign(graph_.vertex_count(), {});
    for (std::size_t v = 0; v < graph_.vertex_count(); ++v)
      for (const Edge& e : graph_.neighbours(static_cast<VertexId>(v)))
        in_edges_[e.target].push_back(static_cast<VertexId>(v));
    transpose_built_ = true;
  }
  return in_edges_;
}

}  // namespace graphner::graph
