#include "src/graph/vertex_features.hpp"

#include <cassert>
#include <cmath>
#include <unordered_map>

#include "src/text/lemmatizer.hpp"
#include "src/util/logging.hpp"

namespace graphner::graph {
namespace {

/// Lexical representation: lemmas at offsets -2..2 ("L[-2]=mutation", ...).
std::vector<std::string> lexical_features(const text::Sentence& sentence,
                                          std::size_t position) {
  std::vector<std::string> out;
  out.reserve(5);
  for (long long d = -2; d <= 2; ++d) {
    const long long p = static_cast<long long>(position) + d;
    std::string lemma;
    if (p < 0) lemma = "<s>";
    else if (p >= static_cast<long long>(sentence.size())) lemma = "</s>";
    else lemma = text::lemmatize(sentence.tokens[static_cast<std::size_t>(p)]);
    out.push_back("L[" + std::to_string(d) + "]=" + std::move(lemma));
  }
  return out;
}

}  // namespace

std::vector<std::string> vertex_features_at(const text::Sentence& sentence,
                                            std::size_t position,
                                            const features::FeatureExtractor& extractor,
                                            const VertexFeatureConfig& config) {
  if (config.representation == VertexRepresentation::kLexical)
    return lexical_features(sentence, position);
  std::vector<std::string> names = extractor.extract_at(sentence, position);
  if (config.representation == VertexRepresentation::kMiSelected)
    std::erase_if(names, [&](const std::string& n) {
      return !config.selected_features.contains(n);
    });
  return names;
}

std::string representation_name(VertexRepresentation rep) {
  switch (rep) {
    case VertexRepresentation::kAllFeatures: return "All-features";
    case VertexRepresentation::kLexical: return "Lexical-features";
    case VertexRepresentation::kMiSelected: return "MI-selected";
  }
  return "?";
}

VertexVectors build_vertex_vectors(const TrigramVertices& vertices,
                                   const std::vector<const text::Sentence*>& sentences,
                                   const features::FeatureExtractor& extractor,
                                   const VertexFeatureConfig& config) {
  assert(sentences.size() == vertices.positions.size());
  const std::size_t num_vertices = vertices.vertex_count();

  // Pass 1: count (vertex, feature) cooccurrences over all token positions.
  std::unordered_map<std::string, std::uint32_t> feature_ids;
  std::vector<std::uint64_t> feature_counts;
  std::vector<std::uint64_t> vertex_counts(num_vertices, 0);
  // Per-vertex sparse counts gathered as (feature, count) maps.
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> vf(num_vertices);
  std::uint64_t total = 0;

  for (std::size_t s = 0; s < sentences.size(); ++s) {
    const text::Sentence& sentence = *sentences[s];
    for (std::size_t i = 0; i < sentence.size(); ++i) {
      const VertexId v = vertices.positions[s][i];
      const std::vector<std::string> names =
          vertex_features_at(sentence, i, extractor, config);
      ++vertex_counts[v];
      for (const auto& name : names) {
        auto [it, inserted] =
            feature_ids.emplace(name, static_cast<std::uint32_t>(feature_counts.size()));
        if (inserted) feature_counts.push_back(0);
        ++feature_counts[it->second];
        ++vf[v][it->second];
        ++total;
      }
    }
  }

  // Document-frequency cap: features present at nearly every position are
  // stopword-like; drop them.
  const auto df_cap = static_cast<std::uint64_t>(
      config.max_document_frequency * static_cast<double>(std::max<std::uint64_t>(1, total)));

  VertexVectors out;
  out.feature_instance_count = feature_ids.size();
  out.vectors.resize(num_vertices);
  const auto n = static_cast<double>(std::max<std::uint64_t>(1, total));

  for (std::size_t v = 0; v < num_vertices; ++v) {
    std::vector<SparseEntry> entries;
    entries.reserve(vf[v].size());
    const double pv = static_cast<double>(vertex_counts[v]);
    if (pv == 0) continue;
    for (const auto& [f, c] : vf[v]) {
      if (feature_counts[f] > df_cap) continue;
      // PMI(v, f) = log( c(v,f) * N / (c(v) * c(f)) ); keep positive terms.
      const double pmi = std::log(static_cast<double>(c) * n /
                                  (pv * static_cast<double>(feature_counts[f])));
      if (pmi > 0.0) entries.push_back({f, static_cast<float>(pmi)});
    }
    out.vectors[v] = SparseVector(std::move(entries));
    out.vectors[v].normalize();
  }

  util::log_debug("vertex vectors: ", num_vertices, " vertices, ",
                  feature_ids.size(), " feature instances (",
                  representation_name(config.representation), ")");
  return out;
}

}  // namespace graphner::graph
