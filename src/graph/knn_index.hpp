// Incremental exact k-NN index: the persistent state behind KnnGraph.
//
// build_knn_graph (knn_graph.cpp) derives the inverted posting index,
// scores every vertex and throws the index away — absorbing new corpus
// text means an O(V^2 F) rebuild. KnnIndex keeps the postings (and the
// vertex vectors) alive so new vertices can be inserted incrementally:
//
//   * a new vertex is scored only against the posting lists of its own
//     features — O(candidates), the same candidate generation a rebuild
//     would run for that one vertex;
//   * an old vertex u is patched only where a new vertex v actually enters
//     u's top-k (u's existing edge list is its exact top-k over the old
//     vertex set, so merging the new candidates keeps it exact).
//
// append() therefore produces, vertex for vertex, the same edge sets a
// from-scratch rebuild over the union would (the golden test in
// tests/test_graph.cpp): identical candidate enumeration order per source
// vertex gives bit-identical similarity scores, and the reverse patch is
// an exact top-k merge. The one documented divergence is the posting-length
// cap: a feature whose posting list outgrows max_posting_length *during an
// append* stops generating candidates from then on, but edges it justified
// earlier are kept (a rebuild would drop the feature everywhere). That is
// the Feria-et-al-style quality/latency trade of incremental insertion,
// not a correctness issue — and it cannot trigger when the cap is not
// crossed, which the golden test pins.
#pragma once

#include <cstddef>
#include <vector>

#include "src/graph/knn_graph.hpp"
#include "src/graph/sparse_vector.hpp"
#include "src/graph/trigram.hpp"

namespace graphner::graph {

class KnnIndex {
 public:
  KnnIndex() = default;
  explicit KnnIndex(KnnConfig config) : config_(config), graph_(0, config.k) {}

  /// Build from scratch = one append into an empty index (identical
  /// scoring path, so build-then-append and rebuild agree by construction).
  [[nodiscard]] static KnnIndex build(std::vector<SparseVector> vectors,
                                      const KnnConfig& config);

  struct AppendResult {
    VertexId first_id = 0;       ///< id of the first appended vertex
    std::size_t appended = 0;    ///< how many vertices were appended
    /// Pre-existing vertices whose top-k gained at least one new edge
    /// (sorted ascending, unique) — the propagation seeds besides the new
    /// vertices themselves.
    std::vector<VertexId> patched;
    /// Features whose posting list crossed max_posting_length during this
    /// append and stopped generating candidates.
    std::size_t newly_capped_features = 0;
  };

  /// Insert `new_vectors` as vertices [size, size + n) and wire them into
  /// the graph: forward edges (each new vertex's exact top-k over the whole
  /// index, new vertices included) and reverse patches (every old vertex
  /// whose top-k the new vertices enter).
  AppendResult append(std::vector<SparseVector> new_vectors);

  [[nodiscard]] const KnnGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const std::vector<SparseVector>& vectors() const noexcept {
    return vectors_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return vectors_.size(); }
  [[nodiscard]] const KnnConfig& config() const noexcept { return config_; }
  /// Features whose posting list ever crossed max_posting_length.
  [[nodiscard]] std::size_t capped_features() const noexcept {
    return capped_features_;
  }

  /// Reverse adjacency (vertex -> vertices whose edge lists point at it),
  /// the push direction propagate_incremental relaxes along. Materialized
  /// O(V+E) on first call, then patched incrementally by append alongside
  /// the forward edges — so a learn batch costs O(batch neighbourhood),
  /// not an O(V+E) transpose rebuild per call. One-shot builds that never
  /// ask for it pay nothing. Neighbour order within a list is unspecified.
  [[nodiscard]] const std::vector<std::vector<VertexId>>& transpose();

  /// Release the graph (the index keeps an empty one; used by the one-shot
  /// build_knn_graph wrapper).
  [[nodiscard]] KnnGraph take_graph() { return std::move(graph_); }

  /// Text serialization of the full incremental state. Vectors and edges
  /// are written verbatim (floats at precision 10, which round-trips
  /// exactly); the transpose lists are written verbatim too, because their
  /// within-list order drives propagate_incremental's relaxation (hence
  /// floating-point summation) order and must survive a restart
  /// bit-for-bit. The posting lists are NOT written: load() rebuilds them
  /// by replaying the vectors in id order, which reproduces the exact
  /// append-order lists (and cap transitions) the live index had.
  void save(std::ostream& out) const;
  /// Restore an index save()d earlier; a subsequent append() produces
  /// bit-identical edges/transpose to the original instance. Rejects
  /// malformed input with distinct messages per corruption class.
  [[nodiscard]] static KnnIndex load(std::istream& in);

 private:
  struct Posting {
    VertexId vertex;
    float value;
  };

  KnnConfig config_{};
  KnnGraph graph_{0, 0};
  std::vector<SparseVector> vectors_;
  /// Inverted index: feature id -> (vertex, value), vertex-id ascending.
  /// A capped feature keeps an empty list but its true length lives on in
  /// posting_lengths_ so the cap stays crossed.
  std::vector<std::vector<Posting>> postings_;
  std::vector<std::size_t> posting_lengths_;
  std::size_t capped_features_ = 0;
  /// Lazily-built reverse adjacency (see transpose()); kept in sync by
  /// append once materialized.
  std::vector<std::vector<VertexId>> in_edges_;
  bool transpose_built_ = false;
};

}  // namespace graphner::graph
