// Sorted sparse vectors with cosine similarity.
#pragma once

#include <cstdint>
#include <vector>

namespace graphner::graph {

struct SparseEntry {
  std::uint32_t index = 0;
  float value = 0.0F;
};

/// Immutable sorted-by-index sparse vector.
class SparseVector {
 public:
  SparseVector() = default;
  /// Entries must not contain duplicate indices; they get sorted here.
  explicit SparseVector(std::vector<SparseEntry> entries);

  [[nodiscard]] const std::vector<SparseEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
  [[nodiscard]] double norm() const noexcept { return norm_; }

  /// Scale all values so the L2 norm becomes 1 (no-op on the zero vector).
  void normalize() noexcept;

  /// Dot product via sorted merge.
  [[nodiscard]] double dot(const SparseVector& other) const noexcept;

  /// Cosine similarity; 0 if either vector is zero.
  [[nodiscard]] double cosine(const SparseVector& other) const noexcept;

 private:
  void recompute_norm() noexcept;

  std::vector<SparseEntry> entries_;
  double norm_ = 0.0;
};

}  // namespace graphner::graph
