// Sentence templates for the synthetic corpora.
//
// A template is a whitespace-separated pattern of literal tokens and slots:
//   <g>       gene mention (from the lexicon)
//   <trap>    gene-shaped non-gene (cell line / place) — FP bait
//   <disease> disease name (multi-token)
//   <method>  assay / method name (multi-token)
//   <verb> <adj> <noun> <num>  simple lexical slots
// Literal tokens pass through the tokenizer, so punctuation in a template
// splits exactly as real text would.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/rng.hpp"

namespace graphner::corpus {

enum class SlotKind {
  kLiteral,
  kGene,
  kTrap,     ///< cell line / place name (gene-shaped or capitalized non-gene)
  kAcronym,  ///< clinical acronym from the corpus inventory (never a gene)
  kDisease,
  kMethod,
  kVerb,
  kAdjective,
  kNoun,
  kNumber,
};

struct Slot {
  SlotKind kind = SlotKind::kLiteral;
  std::string literal;  ///< only for kLiteral
};

struct Template {
  std::vector<Slot> slots;
  /// Number of gene slots, cached for slot-rate control.
  [[nodiscard]] std::size_t gene_slots() const noexcept;
};

/// Parse the "<g> expression was <verb> ." pattern syntax.
[[nodiscard]] Template parse_template(std::string_view pattern);

/// Abstract-style templates (BC2GM-like register).
[[nodiscard]] std::span<const std::string_view> abstract_patterns() noexcept;

/// Full-text / clinical-style templates (AML-like register).
[[nodiscard]] std::span<const std::string_view> clinical_patterns() noexcept;

/// Parse a whole pattern bank once.
[[nodiscard]] std::vector<Template> parse_bank(std::span<const std::string_view> patterns);

}  // namespace graphner::corpus
