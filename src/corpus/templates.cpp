#include "src/corpus/templates.hpp"

#include <array>

#include "src/text/tokenizer.hpp"
#include "src/util/strings.hpp"

namespace graphner::corpus {
namespace {

using sv = std::string_view;

// Gene-bearing and background sentence patterns in an abstract register.
// Several deliberately reuse the same local contexts around <g> so that the
// corpus-level 3-gram graph has informative neighbourhoods, and several put
// <trap> tokens in gene-like contexts to create false-positive pressure.
constexpr std::array kAbstractPatterns = {
    sv{"mutations of <g> were <verb> in <disease> ."},
    sv{"the mutation of <g> ( <g> ) was <verb> in <disease> ."},
    sv{"<adj> expression of <g> was <verb> in <num> patients ."},
    sv{"expression of <g> and <g> was <adj> in all samples ."},
    sv{"we <verb> <adj> expression of <g> in <disease> ."},
    sv{"<g> encodes a protein that interacts with <g> ."},
    sv{"<g> is a <adj> regulator of <noun> in <noun> cells ."},
    sv{"loss of <g> function leads to <adj> <noun> ."},
    sv{"overexpression of <g> was associated with poor <noun> ."},
    sv{"the <g> gene was <verb> by <method> ."},
    sv{"<g> positive patients showed <adj> response to treatment ."},
    sv{"silencing of <g> reduced <noun> in <trap> cells ."},
    sv{"knockdown of <g> in <trap> cells <verb> <adj> <noun> ."},
    sv{"we <verb> the following mutations in <g> ."},
    sv{"binding of <g> to the <g> promoter was <verb> by <method> ."},
    sv{"phosphorylation of <g> was <adj> after treatment ."},
    sv{"<g> mutations occur in <num> % of <disease> cases ."},
    sv{"the role of <g> in <disease> remains unclear ."},
    sv{"transcription of <g> is controlled by <g> and <g> ."},
    sv{"deletion of <g> was <verb> in the patient ' s <noun> ."},
    sv{"<g> variants were <verb> by <method> in <num> samples ."},
    sv{"activation of the <g> pathway was <adj> in <disease> ."},
    sv{"<g> and <g> form a complex that regulates <noun> ."},
    sv{"no mutations of <g> were <verb> in the control group ."},
    sv{"drug response was <adj> in <g> positive patients ."},
    sv{"we did not observe this mutation in the patient ' s <noun> ."},
    sv{"the study was performed in <trap> with <num> patients ."},
    sv{"samples were <verb> using <method> ."},
    sv{"patients were recruited in <trap> between <num> and <num> ."},
    sv{"<adj> <noun> was <verb> in <num> of <num> cases ."},
    sv{"<trap> cells were cultured and <verb> by <method> ."},
    sv{"the <noun> of <noun> in <disease> is <adj> ."},
    sv{"these results suggest a <adj> role for <noun> in <noun> ."},
    sv{"treatment with inhibitors <verb> <adj> effects on <noun> ."},
    sv{"further studies are needed to confirm these <noun> ."},
    sv{"<disease> is a <adj> disease of the <noun> ."},
    sv{"in <disease> , <g> mutations confer <adj> risk ."},
    sv{"expression was <verb> relative to <trap> controls ."},
    // Acronym bait: clinical acronyms dropped into contexts that elsewhere
    // carry genes, so orthography + context both mislead a supervised CRF.
    sv{"the mutation of <g> was <verb> in <acr> ."},
    sv{"<acr> was <verb> in <num> % of patients ."},
    sv{"expression of <acr> positive blasts was <adj> ."},
    sv{"patients with <acr> showed <adj> response to therapy ."},
    sv{"mutations of <g> and <g> were <verb> in <acr> cases ."},
    sv{"<acr> status was assessed by <method> ."},
    sv{"overexpression of <acr> markers was associated with poor <noun> ."},
    sv{"the role of <acr> in <disease> was <verb> ."},
    // Clearly non-gene acronym contexts: these dominate an acronym's
    // occurrence profile, so its corpus-level average belief leans O and
    // propagation can clean up the gene-like minority contexts above.
    sv{"<acr> criteria were used for response assessment ."},
    sv{"the <acr> score was <num> in most cases ."},
    sv{"patients were stratified by <acr> at baseline ."},
    sv{"according to <acr> , <num> patients responded ."},
    sv{"<acr> was defined as <noun> <noun> below <num> % ."},
    sv{"median <acr> was <num> months in this cohort ."},
    sv{"<acr> and <acr> were recorded for all patients ."},
    sv{"assessment followed <acr> guidelines ."},
};

// Clinical / full-text register: HGNC symbols appear in standardized
// contexts; more background prose sentences (lower positive-vertex rate).
constexpr std::array kClinicalPatterns = {
    sv{"<g> mutations were <verb> in <num> % of patients with <disease> ."},
    sv{"the <g> internal tandem duplication was <verb> by <method> ."},
    sv{"patients with <g> mutations had <adj> overall survival ."},
    sv{"co - occurrence of <g> and <g> mutations was <adj> ."},
    sv{"<g> variant allele frequency was <num> % at diagnosis ."},
    sv{"targeted sequencing of <g> , <g> , and <g> was performed ."},
    sv{"the <g> p . <num> variant was classified as pathogenic ."},
    sv{"<g> is recurrently mutated in <disease> ."},
    sv{"variant interpretation followed standard guidelines for <g> ."},
    sv{"germline <g> variants were excluded by <method> ."},
    sv{"minimal residual disease was monitored using <g> transcripts ."},
    sv{"<g> expression predicts response to induction therapy ."},
    sv{"the prognostic impact of <g> mutations is <adj> ."},
    sv{"<g> and <g> define a <adj> molecular subgroup ."},
    sv{"allogeneic transplantation was considered for <g> mutated cases ."},
    sv{"the cohort included <num> patients with <disease> ."},
    sv{"median age at diagnosis was <num> years ."},
    sv{"bone marrow samples were collected at diagnosis and relapse ."},
    sv{"cytogenetic analysis was performed using standard methods ."},
    sv{"overall survival was <verb> using kaplan meier estimates ."},
    sv{"patients received <adj> induction chemotherapy ."},
    sv{"response was assessed according to standard criteria ."},
    sv{"<method> was used for all samples ."},
    sv{"clinical data were available for <num> of <num> patients ."},
    sv{"the median follow - up was <num> months ."},
    sv{"adverse events were <adj> and manageable ."},
    sv{"informed consent was obtained from all patients ."},
    sv{"statistical analysis was performed with standard software ."},
    sv{"<trap> cells were used as a <adj> control ."},
    sv{"the study protocol was approved in <trap> ."},
    sv{"relapse occurred in <num> patients during follow - up ."},
    sv{"in <disease> , molecular profiling guides therapy selection ."},
    sv{"<acr> positivity predicted <adj> outcome ."},
    sv{"patients in <acr> after induction proceeded to transplant ."},
    sv{"<acr> was <num> % at diagnosis and <num> % at relapse ."},
    sv{"mutations of <g> were <verb> in <acr> positive patients ."},
    sv{"the <acr> classification was applied to all cases ."},
    sv{"monitoring of <acr> guided treatment decisions ."},
    // Gene-like acronym contexts: clinical scores and panels discussed in
    // the same frames as genes ("expression of X", "X and GENE"), the FP
    // bait that gives GraphNER its AML precision headroom.
    sv{"expression of <acr> transcripts was <verb> at relapse ."},
    sv{"co - occurrence of <g> and <acr> was <adj> ."},
};

}  // namespace

std::size_t Template::gene_slots() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : slots)
    if (slot.kind == SlotKind::kGene) ++n;
  return n;
}

Template parse_template(std::string_view pattern) {
  Template out;
  for (const auto& piece : util::split_whitespace(pattern)) {
    SlotKind kind = SlotKind::kLiteral;
    if (piece == "<g>") kind = SlotKind::kGene;
    else if (piece == "<trap>") kind = SlotKind::kTrap;
    else if (piece == "<acr>") kind = SlotKind::kAcronym;
    else if (piece == "<disease>") kind = SlotKind::kDisease;
    else if (piece == "<method>") kind = SlotKind::kMethod;
    else if (piece == "<verb>") kind = SlotKind::kVerb;
    else if (piece == "<adj>") kind = SlotKind::kAdjective;
    else if (piece == "<noun>") kind = SlotKind::kNoun;
    else if (piece == "<num>") kind = SlotKind::kNumber;

    if (kind == SlotKind::kLiteral) {
      // Run literals through the tokenizer so "(" etc. split correctly.
      for (auto& tok : text::tokenize(piece))
        out.slots.push_back({SlotKind::kLiteral, std::move(tok)});
    } else {
      out.slots.push_back({kind, {}});
    }
  }
  return out;
}

std::span<const std::string_view> abstract_patterns() noexcept {
  return kAbstractPatterns;
}

std::span<const std::string_view> clinical_patterns() noexcept {
  return kClinicalPatterns;
}

std::vector<Template> parse_bank(std::span<const std::string_view> patterns) {
  std::vector<Template> bank;
  bank.reserve(patterns.size());
  for (const auto& p : patterns) bank.push_back(parse_template(p));
  return bank;
}

}  // namespace graphner::corpus
