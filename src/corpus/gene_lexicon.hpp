// Synthetic gene nomenclature.
//
// Two naming styles mirror the paper's corpus contrast:
//  * HGNC style  — short standardized symbols ("FLT3", "NPM1"-shaped),
//    dominant in the AML-like corpus (clinical genetics articles).
//  * messy style — descriptive multi-word names with hyphen/number/Greek
//    variants ("wilms tumor - 1", "lymphocyte adaptor protein"), common in
//    the BC2GM-like corpus (broad biology, inconsistent notation).
//
// Each entity carries several surface variants; the generator samples a
// variant per mention, and the variant set also feeds the alternative-
// annotation machinery (ALTGENE) on the BC2GM-like corpus.
#pragma once

#include <string>
#include <vector>

#include "src/util/rng.hpp"

namespace graphner::corpus {

/// One gene entity with all of its acceptable surface forms (tokenized).
struct GeneEntity {
  std::vector<std::vector<std::string>> variants;  ///< variants[0] = canonical
  bool messy = false;  ///< true for descriptive multi-word naming style
};

struct LexiconConfig {
  std::size_t num_genes = 200;
  double messy_fraction = 0.5;  ///< share of entities with descriptive names
};

class GeneLexicon {
 public:
  /// Deterministically generate a lexicon from `rng`.
  static GeneLexicon generate(const LexiconConfig& config, util::Rng& rng);

  [[nodiscard]] const std::vector<GeneEntity>& entities() const noexcept {
    return entities_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entities_.size(); }

  /// All tokens that appear inside any gene variant (lowercased); used by
  /// the error-analysis categorizer ("gene-related" vs "spurious" FPs).
  [[nodiscard]] std::vector<std::string> gene_related_tokens() const;

 private:
  std::vector<GeneEntity> entities_;
};

/// Generate one HGNC-style symbol, e.g. "FLT3" / "SH2B3" / "NPM1".
[[nodiscard]] std::string make_hgnc_symbol(util::Rng& rng);

}  // namespace graphner::corpus
