#include "src/corpus/gene_lexicon.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "src/corpus/wordlists.hpp"
#include "src/util/strings.hpp"

namespace graphner::corpus {
namespace {

/// Abbreviate a descriptive name: first letters of content tokens, uppercased,
/// optionally with a trailing digit ("wilms tumor 1" -> "WT1").
std::string abbreviate(const std::vector<std::string>& tokens) {
  std::string out;
  for (const auto& tok : tokens) {
    if (tok == "-" || tok.empty()) continue;
    if (util::is_all_digits(tok)) {
      out += tok;
      continue;
    }
    out += static_cast<char>(std::toupper(static_cast<unsigned char>(tok[0])));
  }
  return out;
}

GeneEntity make_messy_entity(util::Rng& rng) {
  GeneEntity entity;
  entity.messy = true;

  const auto mods = gene_modifiers();
  const auto heads = gene_head_nouns();
  const auto greek = greek_letters();

  // Canonical descriptive name: 1-2 modifiers + head noun, optional number
  // or Greek-letter suffix.
  std::vector<std::string> name;
  name.emplace_back(rng.pick(mods));
  if (rng.flip(0.45)) name.emplace_back(rng.pick(mods));
  name.emplace_back(rng.pick(heads));

  const bool numbered = rng.flip(0.5);
  const bool greekified = !numbered && rng.flip(0.3);
  std::string number = std::to_string(1 + rng.below(9));

  std::vector<std::string> canonical = name;
  if (numbered) {
    canonical.emplace_back("-");
    canonical.emplace_back(number);
  } else if (greekified) {
    canonical.emplace_back(rng.pick(greek));
  }
  entity.variants.push_back(canonical);

  // Variant: no hyphen ("wilms tumor 1").
  if (numbered) {
    std::vector<std::string> v = name;
    v.push_back(number);
    entity.variants.push_back(std::move(v));
  }
  // Variant: bare descriptive name without the suffix.
  if (numbered || greekified) entity.variants.push_back(name);
  // Variant: abbreviation symbol.
  std::vector<std::string> abbr_tokens = name;
  if (numbered) abbr_tokens.push_back(number);
  const std::string symbol = abbreviate(abbr_tokens);
  if (symbol.size() >= 2) entity.variants.push_back({symbol});

  return entity;
}

GeneEntity make_hgnc_entity(util::Rng& rng) {
  GeneEntity entity;
  entity.messy = false;
  const std::string symbol = make_hgnc_symbol(rng);
  entity.variants.push_back({symbol});
  // Occasional hyphen-split variant ("SH2-B3" style) seen even in clean text.
  if (util::has_digit(symbol) && symbol.size() >= 4 && rng.flip(0.2)) {
    std::size_t split = symbol.size() - 1;
    while (split > 1 && std::isdigit(static_cast<unsigned char>(symbol[split - 1])))
      --split;
    if (split > 1 && split < symbol.size()) {
      entity.variants.push_back(
          {symbol.substr(0, split), "-", symbol.substr(split)});
    }
  }
  return entity;
}

}  // namespace

std::string make_hgnc_symbol(util::Rng& rng) {
  static constexpr char kLetters[] = "ABCDEFGHIKLMNPRSTUWXZ";
  const std::size_t letters = 2 + rng.below(3);  // 2-4 letters
  std::string symbol;
  for (std::size_t i = 0; i < letters; ++i)
    symbol += kLetters[rng.below(sizeof(kLetters) - 1)];
  if (rng.flip(0.8)) symbol += std::to_string(1 + rng.below(19));
  return symbol;
}

GeneLexicon GeneLexicon::generate(const LexiconConfig& config, util::Rng& rng) {
  GeneLexicon lexicon;
  std::set<std::string> seen;
  while (lexicon.entities_.size() < config.num_genes) {
    const bool messy = rng.flip(config.messy_fraction);
    GeneEntity entity = messy ? make_messy_entity(rng) : make_hgnc_entity(rng);
    const std::string key = util::join(entity.variants.front(), " ");
    if (!seen.insert(key).second) continue;  // uniqueness on canonical name
    lexicon.entities_.push_back(std::move(entity));
  }
  return lexicon;
}

std::vector<std::string> GeneLexicon::gene_related_tokens() const {
  std::set<std::string> tokens;
  for (const auto& entity : entities_)
    for (const auto& variant : entity.variants)
      for (const auto& tok : variant)
        if (tok != "-" && !util::is_all_digits(tok))
          tokens.insert(util::to_lower(tok));
  return {tokens.begin(), tokens.end()};
}

}  // namespace graphner::corpus
