#include "src/corpus/jnlpba.hpp"

#include <algorithm>
#include <array>
#include <string_view>

#include "src/corpus/gene_lexicon.hpp"
#include "src/corpus/wordlists.hpp"
#include "src/text/annotation.hpp"
#include "src/text/bio.hpp"
#include "src/util/rng.hpp"

namespace graphner::corpus {
namespace {

using sv = std::string_view;

// Entity-type indices into jnlpba_label_set().entity_types().
enum Type : std::size_t {
  kProtein = 0,
  kDna = 1,
  kRna = 2,
  kCellLine = 3,
  kCellType = 4,
};

// A template slot: either one of the five typed entity kinds or a
// background-text kind. Templates are short clause skeletons in the GENIA
// register; the typed slots are what the generator fills from the shared
// symbol inventory.
enum class Slot {
  kProteinSlot,
  kDnaSlot,
  kRnaSlot,
  kCellLineSlot,
  kCellTypeSlot,
  kVerb,
  kAdjective,
  kNoun,
  kThe,
  kIn,
  kOf,
  kStop,
};

// Clause skeletons. The same symbol inventory feeds the protein/DNA/RNA
// slots, so templates are what disambiguate the type — the property that
// makes JNLPBA harder than single-type gene detection.
constexpr std::array<std::array<Slot, 10>, 14> kTemplates = {{
    {Slot::kThe, Slot::kProteinSlot, Slot::kVerb, Slot::kDnaSlot, Slot::kIn,
     Slot::kCellTypeSlot, Slot::kStop},
    {Slot::kProteinSlot, Slot::kVerb, Slot::kThe, Slot::kAdjective, Slot::kNoun,
     Slot::kIn, Slot::kCellLineSlot, Slot::kStop},
    {Slot::kThe, Slot::kDnaSlot, Slot::kVerb, Slot::kAdjective, Slot::kNoun,
     Slot::kOf, Slot::kProteinSlot, Slot::kStop},
    {Slot::kRnaSlot, Slot::kVerb, Slot::kIn, Slot::kCellTypeSlot, Slot::kOf,
     Slot::kAdjective, Slot::kNoun, Slot::kStop},
    {Slot::kThe, Slot::kNoun, Slot::kOf, Slot::kRnaSlot, Slot::kVerb, Slot::kIn,
     Slot::kCellLineSlot, Slot::kStop},
    {Slot::kCellTypeSlot, Slot::kVerb, Slot::kProteinSlot, Slot::kIn, Slot::kThe,
     Slot::kAdjective, Slot::kNoun, Slot::kStop},
    {Slot::kThe, Slot::kCellLineSlot, Slot::kVerb, Slot::kThe, Slot::kRnaSlot,
     Slot::kStop},
    {Slot::kProteinSlot, Slot::kOf, Slot::kCellTypeSlot, Slot::kVerb, Slot::kThe,
     Slot::kDnaSlot, Slot::kStop},
    {Slot::kThe, Slot::kAdjective, Slot::kProteinSlot, Slot::kVerb, Slot::kIn,
     Slot::kCellTypeSlot, Slot::kStop},
    {Slot::kDnaSlot, Slot::kVerb, Slot::kIn, Slot::kThe, Slot::kAdjective,
     Slot::kCellLineSlot, Slot::kStop},
    {Slot::kThe, Slot::kNoun, Slot::kOf, Slot::kProteinSlot, Slot::kIn,
     Slot::kCellTypeSlot, Slot::kVerb, Slot::kAdjective, Slot::kStop},
    {Slot::kRnaSlot, Slot::kOf, Slot::kThe, Slot::kDnaSlot, Slot::kVerb,
     Slot::kIn, Slot::kCellLineSlot, Slot::kStop},
    {Slot::kThe, Slot::kCellTypeSlot, Slot::kVerb, Slot::kThe, Slot::kNoun,
     Slot::kOf, Slot::kRnaSlot, Slot::kStop},
    {Slot::kAdjective, Slot::kNoun, Slot::kIn, Slot::kCellLineSlot, Slot::kVerb,
     Slot::kThe, Slot::kProteinSlot, Slot::kStop},
}};

// Typed surface suffixes. Protein mentions are bare symbols (or "<SYM>
// protein"); DNA/RNA mentions carry a disambiguating head noun.
constexpr std::array kDnaHeads = {sv{"gene"}, sv{"promoter"}, sv{"enhancer"},
                                  sv{"locus"}};
constexpr std::array kRnaHeads = {sv{"mRNA"}, sv{"transcript"},
                                  sv{"transcripts"}};
constexpr std::array kCellTypes = {
    sv{"T cells"},        sv{"B cells"},         sv{"monocytes"},
    sv{"macrophages"},    sv{"neutrophils"},     sv{"thymocytes"},
    sv{"natural killer cells"}, sv{"dendritic cells"},
    sv{"peripheral blood lymphocytes"}, sv{"erythroid progenitors"}};

struct JnlpbaState {
  const JnlpbaSpec* spec = nullptr;
  std::vector<std::string> symbols;  ///< shared protein/DNA/RNA inventory
  std::size_t shared_symbols = 0;    ///< [0, shared) may appear in training
  std::vector<std::string> cell_line_pool;
  std::size_t shared_cell_lines = 0;
  util::Rng rng;

  explicit JnlpbaState(const JnlpbaSpec& s) : spec(&s), rng(s.seed) {
    util::Rng sym_rng(s.seed ^ 0x1152baULL);
    symbols.reserve(s.num_symbols);
    while (symbols.size() < s.num_symbols) {
      std::string sym = make_hgnc_symbol(sym_rng);
      if (std::find(symbols.begin(), symbols.end(), sym) == symbols.end())
        symbols.push_back(std::move(sym));
    }
    const auto reserved = static_cast<std::size_t>(
        s.test_only_fraction * static_cast<double>(symbols.size()));
    shared_symbols =
        symbols.size() > reserved ? symbols.size() - reserved : symbols.size();

    for (const auto& c : cell_lines()) cell_line_pool.emplace_back(c);
    while (cell_line_pool.size() < 24)
      cell_line_pool.push_back(make_hgnc_symbol(sym_rng) + " cells");
    const auto cl_reserved = static_cast<std::size_t>(
        s.test_only_fraction * static_cast<double>(cell_line_pool.size()));
    shared_cell_lines = cell_line_pool.size() - cl_reserved;
  }

  const std::string& pick_symbol(bool is_test) {
    const bool test_only = is_test && shared_symbols < symbols.size() &&
                           rng.flip(spec->test_only_draw_rate);
    if (test_only) {
      // Zipf over the reserved tail: unseen surfaces recur within the test
      // side, which is what corpus-level averaging exploits.
      return symbols[shared_symbols + rng.zipf(symbols.size() - shared_symbols)];
    }
    return symbols[rng.zipf(shared_symbols)];
  }

  const std::string& pick_cell_line(bool is_test) {
    const bool test_only = is_test && shared_cell_lines < cell_line_pool.size() &&
                           rng.flip(spec->test_only_draw_rate);
    if (test_only) {
      return cell_line_pool[shared_cell_lines +
                            rng.zipf(cell_line_pool.size() - shared_cell_lines)];
    }
    return cell_line_pool[rng.zipf(shared_cell_lines)];
  }
};

struct TypedRealized {
  std::vector<std::string> tokens;
  std::vector<text::TypedTokenSpan> mentions;
};

void append_phrase(TypedRealized& out, sv phrase) {
  std::size_t start = 0;
  while (start < phrase.size()) {
    const std::size_t space = phrase.find(' ', start);
    const sv word = phrase.substr(
        start, space == sv::npos ? sv::npos : space - start);
    if (!word.empty()) out.tokens.emplace_back(word);
    if (space == sv::npos) break;
    start = space + 1;
  }
}

void emit_mention(TypedRealized& out, std::size_t first, std::size_t type) {
  out.mentions.push_back({first, out.tokens.size() - 1, type});
}

TypedRealized realize_jnlpba(JnlpbaState& state, bool is_test) {
  TypedRealized out;
  auto& rng = state.rng;
  const auto& tmpl = kTemplates[rng.below(kTemplates.size())];
  for (const Slot slot : tmpl) {
    switch (slot) {
      case Slot::kProteinSlot: {
        const std::size_t first = out.tokens.size();
        out.tokens.push_back(state.pick_symbol(is_test));
        if (rng.flip(0.3)) out.tokens.emplace_back("protein");
        emit_mention(out, first, kProtein);
        break;
      }
      case Slot::kDnaSlot: {
        const std::size_t first = out.tokens.size();
        out.tokens.push_back(state.pick_symbol(is_test));
        out.tokens.emplace_back(rng.pick(kDnaHeads));
        emit_mention(out, first, kDna);
        break;
      }
      case Slot::kRnaSlot: {
        const std::size_t first = out.tokens.size();
        out.tokens.push_back(state.pick_symbol(is_test));
        out.tokens.emplace_back(rng.pick(kRnaHeads));
        emit_mention(out, first, kRna);
        break;
      }
      case Slot::kCellLineSlot: {
        const std::size_t first = out.tokens.size();
        append_phrase(out, state.pick_cell_line(is_test));
        emit_mention(out, first, kCellLine);
        break;
      }
      case Slot::kCellTypeSlot: {
        const std::size_t first = out.tokens.size();
        append_phrase(out, rng.pick(kCellTypes));
        emit_mention(out, first, kCellType);
        break;
      }
      case Slot::kVerb:
        out.tokens.emplace_back(rng.pick(verbs()));
        break;
      case Slot::kAdjective:
        out.tokens.emplace_back(rng.pick(adjectives()));
        break;
      case Slot::kNoun:
        out.tokens.emplace_back(rng.pick(background_words()));
        break;
      case Slot::kThe:
        out.tokens.emplace_back("the");
        break;
      case Slot::kIn:
        out.tokens.emplace_back("in");
        break;
      case Slot::kOf:
        out.tokens.emplace_back("of");
        break;
      case Slot::kStop:
        out.tokens.emplace_back(".");
        return out;
    }
  }
  return out;
}

}  // namespace

const text::LabelSet& jnlpba_label_set() {
  static const text::LabelSet labels(std::vector<std::string>{
      "protein", "DNA", "RNA", "cell_line", "cell_type"});
  return labels;
}

JnlpbaSpec jnlpba_like_spec(double scale, std::uint64_t seed) {
  JnlpbaSpec spec;
  spec.train_sentences = static_cast<std::size_t>(800 * scale);
  spec.test_sentences = static_cast<std::size_t>(250 * scale);
  spec.num_symbols =
      std::max<std::size_t>(60, static_cast<std::size_t>(120 * scale));
  spec.seed = seed;
  return spec;
}

LabelledCorpus generate_jnlpba_corpus(const JnlpbaSpec& spec) {
  JnlpbaState state(spec);
  const text::LabelSet& labels = jnlpba_label_set();

  LabelledCorpus corpus;
  corpus.name = spec.name;

  auto make_side = [&](std::size_t count, bool is_test,
                       std::vector<text::Sentence>& sink) {
    for (std::size_t i = 0; i < count; ++i) {
      TypedRealized realized = realize_jnlpba(state, is_test);

      text::Sentence sentence;
      sentence.id = spec.name + (is_test ? "-test-" : "-train-") +
                    std::to_string(i);
      sentence.tokens = std::move(realized.tokens);
      sentence.tags =
          text::encode_typed_bio(realized.mentions, sentence.size(), labels);

      if (is_test) {
        // Untyped char-span annotations for the legacy evaluator tooling;
        // typed evaluation decodes the tags against the label set instead.
        for (const auto& span : realized.mentions) {
          text::Annotation ann;
          ann.sentence_id = sentence.id;
          ann.span = sentence.to_char_span({span.first, span.last});
          ann.mention = sentence.span_text({span.first, span.last});
          corpus.test_gold.push_back(ann);
          corpus.test_truth.push_back(std::move(ann));
        }
      }
      sink.push_back(std::move(sentence));
    }
  };

  make_side(spec.train_sentences, /*is_test=*/false, corpus.train);
  make_side(spec.test_sentences, /*is_test=*/true, corpus.test);
  return corpus;
}

}  // namespace graphner::corpus
