// Synthetic corpus factories (BC2GM-like and AML-like).
//
// See DESIGN.md §1 for the substitution rationale. The generator controls
// exactly the properties GraphNER's published gains depend on:
//   * recurring 3-gram contexts shared between train and test,
//   * gene symbols unseen in training (recall pressure on the CRF),
//   * gene-shaped non-genes in gene-like contexts (precision pressure),
//   * annotator noise in the observed gold standard (high for BC2GM-like,
//     low for AML-like),
//   * alternative boundary annotations (BC2GM-like only).
#pragma once

#include <cstdint>
#include <string>

#include "src/corpus/corpus.hpp"
#include "src/corpus/gene_lexicon.hpp"
#include "src/corpus/noise.hpp"

namespace graphner::corpus {

struct CorpusSpec {
  std::string name = "bc2gm-like";
  std::size_t train_sentences = 1500;
  std::size_t test_sentences = 500;
  LexiconConfig lexicon{};
  /// Fraction of the lexicon reserved for test-only genes (out-of-vocabulary
  /// symbols that the CRF never sees in training).
  double test_only_gene_fraction = 0.15;
  /// Probability that a gene slot in a test sentence draws a test-only gene.
  double test_only_draw_rate = 0.25;
  /// Clinical-acronym inventory (gene-shaped non-genes). A sizeable share
  /// is reserved for the test side: unseen recurring acronyms are the main
  /// source of shape-driven CRF false positives that GraphNER's
  /// corpus-level averaging and propagation then clean up.
  std::size_t num_acronyms = 30;
  double test_only_acronym_fraction = 0.4;
  double test_only_acronym_draw_rate = 0.5;
  NoiseSpec train_noise{};
  NoiseSpec test_noise{};
  bool alternatives = true;        ///< emit ALTGENE boundary variants
  bool clinical_register = false;  ///< use the AML/full-text template bank
  std::size_t sentences_per_document = 0;  ///< 0 = one sentence per document
  /// Abstract-realism controls. The template bank alone yields short
  /// (~10-token) sentences over a compact vocabulary — plenty for the graph
  /// experiments, but real BC2GM abstract sentences average ~25 tokens
  /// (they stack clauses) and carry a long tail of near-unique measurement
  /// tokens, which is what pushes emission scoring memory-bound at
  /// deployment feature counts. Both default off, so corpora generated
  /// without them are byte-identical to before these knobs existed.
  double compound_clause_rate = 0.0;  ///< chance of splicing in a further clause (max two)
  double numeric_richness = 0.0;      ///< chance a number slot draws a measurement token
  std::uint64_t seed = 42;
};

/// Paper-shaped presets. `scale` multiplies sentence counts; scale=1 is the
/// fast default (1,500/500); scale=10 reaches the paper's 15,000/5,000.
[[nodiscard]] CorpusSpec bc2gm_like_spec(double scale = 1.0, std::uint64_t seed = 42);
[[nodiscard]] CorpusSpec aml_like_spec(double scale = 1.0, std::uint64_t seed = 43);

/// Generate a corpus deterministically from its spec.
[[nodiscard]] LabelledCorpus generate_corpus(const CorpusSpec& spec);

/// Generate additional unlabelled sentences from the same distribution
/// (for the inductive / extra-unlabelled-data extension).
[[nodiscard]] std::vector<text::Sentence> generate_unlabelled(const CorpusSpec& spec,
                                                              std::size_t count,
                                                              std::uint64_t seed);

}  // namespace graphner::corpus
