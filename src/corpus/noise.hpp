// Annotation-noise model.
//
// The paper attributes part of GraphNER's BC2GM advantage to annotator
// error in the gold standard (undergraduate annotators) versus the
// expert-curated AML corpus. This module corrupts the *observed* gold
// annotations of a generated sentence while the pristine truth is kept for
// the Fig. 4/5-style error analysis.
#pragma once

#include <vector>

#include "src/text/sentence.hpp"
#include "src/util/rng.hpp"

namespace graphner::corpus {

struct NoiseSpec {
  double miss_rate = 0.0;      ///< drop a true mention entirely
  double boundary_rate = 0.0;  ///< shrink/extend a mention by one token
  double spurious_rate = 0.0;  ///< per-sentence chance of a bogus mention
};

/// Apply annotation noise: takes the true mention spans of a sentence and
/// returns the corrupted spans an imperfect annotator would have produced.
/// `length` is the sentence length in tokens.
[[nodiscard]] std::vector<text::TokenSpan> corrupt_spans(
    const std::vector<text::TokenSpan>& truth, std::size_t length,
    const NoiseSpec& spec, util::Rng& rng);

}  // namespace graphner::corpus
