// BioCreative II shared-task on-disk format.
//
// A corpus directory holds:
//   train.in      one sentence per line:  "<sentence-id> <raw text>"
//   test.in       same layout for the test side
//   train.eval    gold annotations for the training sentences
//   GENE.eval     primary gold annotations for the test sentences
//   ALTGENE.eval  alternative (boundary-variant) annotations, optional
//
// This mirrors the real shared-task release closely enough that the tool
// can be pointed at the original data (train/test .in + .eval files) by
// anyone who has it, while the generator writes the same layout for the
// synthetic corpora. Sentences are re-tokenized on load with the
// biomedical tokenizer; tags are reconstructed from the char-offset
// annotations (offsets count non-space characters, as in the task).
#pragma once

#include <filesystem>
#include <string>

#include "src/corpus/corpus.hpp"

namespace graphner::corpus {

/// Write `corpus` into `directory` (created if missing). `test_truth` is
/// stored as TRUTH.eval when present so error analyses survive a roundtrip.
void save_corpus(const LabelledCorpus& corpus, const std::filesystem::path& directory);

/// Load a corpus directory. Missing ALTGENE.eval / TRUTH.eval are fine;
/// throws std::runtime_error when the .in files are absent or unreadable.
[[nodiscard]] LabelledCorpus load_corpus(const std::filesystem::path& directory);

/// Reconstruct BIO tags for a tokenized sentence from char-offset
/// annotations (exposed for tests). Annotations that do not align with
/// token boundaries are dropped.
[[nodiscard]] std::vector<text::Tag> tags_from_annotations(
    const text::Sentence& sentence, const std::vector<text::CharSpan>& spans);

}  // namespace graphner::corpus
