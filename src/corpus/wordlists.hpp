// Static word banks used by the synthetic corpus generator.
//
// The banks give the generated text a biomedical register: background
// vocabulary with a Zipf-ish frequency profile, disease names, cell lines,
// place names (classic spurious-FP bait, cf. the paper's "Ann Arbor"
// example) and morphemes for descriptive gene names.
#pragma once

#include <span>
#include <string_view>

namespace graphner::corpus {

/// High-frequency background words (function + general science words).
[[nodiscard]] std::span<const std::string_view> background_words() noexcept;

/// Verbs used in sentence templates.
[[nodiscard]] std::span<const std::string_view> verbs() noexcept;

/// Adjectives used in sentence templates.
[[nodiscard]] std::span<const std::string_view> adjectives() noexcept;

/// Multi-token disease names ("acute myeloid leukemia", ...).
[[nodiscard]] std::span<const std::string_view> diseases() noexcept;

/// Cell-line names — gene-like tokens that are NOT genes (FP bait).
[[nodiscard]] std::span<const std::string_view> cell_lines() noexcept;

/// Place / institution names — spurious-FP bait.
[[nodiscard]] std::span<const std::string_view> places() noexcept;

/// Disease / clinical-score acronyms — gene-shaped non-genes (FP bait).
[[nodiscard]] std::span<const std::string_view> acronyms() noexcept;

/// Lab methods / assay names.
[[nodiscard]] std::span<const std::string_view> methods() noexcept;

/// Head nouns for descriptive gene names ("factor", "kinase", ...).
[[nodiscard]] std::span<const std::string_view> gene_head_nouns() noexcept;

/// Modifiers for descriptive gene names ("lymphocyte", "growth", ...).
[[nodiscard]] std::span<const std::string_view> gene_modifiers() noexcept;

/// Greek letter words used in gene names ("alpha", "beta", ...).
[[nodiscard]] std::span<const std::string_view> greek_letters() noexcept;

}  // namespace graphner::corpus
