// Synthetic JNLPBA-like corpus: 5-entity multi-class BIO.
//
// The JNLPBA shared task tags five entity types — protein, DNA, RNA,
// cell_line and cell_type — over GENIA-derived abstracts. This factory
// generates a corpus with the same *structural* pressure points the
// single-type generators model (recurring 3-gram contexts, surface forms
// unseen in training, look-alike tokens shared between types), but with
// typed mentions, so the multi-entity decode path (11-label state space,
// typed spans, per-type evaluation) is exercised end to end.
//
// Type confusability is deliberate: DNA and RNA mentions are built from
// the same symbol inventory as proteins ("<SYM> gene" vs "<SYM> mRNA" vs
// bare "<SYM>"), so the context — not the token identity — carries the
// type, exactly the property that makes JNLPBA harder than binary gene
// mention detection.
#pragma once

#include <cstdint>
#include <string>

#include "src/corpus/corpus.hpp"
#include "src/text/label_set.hpp"

namespace graphner::corpus {

/// The five JNLPBA entity types, canonical order. Index into this array is
/// the entity-type id used in tags (B-protein = 0, I-protein = 1, ...).
[[nodiscard]] const text::LabelSet& jnlpba_label_set();

struct JnlpbaSpec {
  std::string name = "jnlpba";
  std::size_t train_sentences = 800;
  std::size_t test_sentences = 250;
  /// Distinct base symbols shared by the protein/DNA/RNA surface pools.
  std::size_t num_symbols = 120;
  /// Fraction of each pool reserved for test-only surfaces, and the chance
  /// a test-side slot draws one (recall pressure, as in the gene corpora).
  double test_only_fraction = 0.15;
  double test_only_draw_rate = 0.25;
  std::uint64_t seed = 77;
};

/// Paper-shaped preset; `scale` multiplies sentence counts.
[[nodiscard]] JnlpbaSpec jnlpba_like_spec(double scale = 1.0,
                                          std::uint64_t seed = 77);

/// Generate deterministically from the spec. Sentence tags use the
/// jnlpba_label_set() canonical 11-label layout; test_gold/test_truth carry
/// the (untyped) span annotations for the legacy evaluator tooling.
[[nodiscard]] LabelledCorpus generate_jnlpba_corpus(const JnlpbaSpec& spec);

}  // namespace graphner::corpus
