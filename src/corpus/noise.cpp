#include "src/corpus/noise.hpp"

#include <algorithm>

namespace graphner::corpus {
namespace {

[[nodiscard]] bool overlaps(const text::TokenSpan& a, const text::TokenSpan& b) noexcept {
  return a.first <= b.last && b.first <= a.last;
}

}  // namespace

std::vector<text::TokenSpan> corrupt_spans(const std::vector<text::TokenSpan>& truth,
                                           std::size_t length, const NoiseSpec& spec,
                                           util::Rng& rng) {
  std::vector<text::TokenSpan> observed;
  observed.reserve(truth.size());
  for (const auto& span : truth) {
    if (rng.flip(spec.miss_rate)) continue;  // annotator missed the mention
    text::TokenSpan out = span;
    if (rng.flip(spec.boundary_rate)) {
      // Four boundary errors, chosen uniformly among the legal ones:
      // shrink left / shrink right / extend left / extend right.
      std::vector<int> moves;
      if (out.first < out.last) { moves.push_back(0); moves.push_back(1); }
      if (out.first > 0) moves.push_back(2);
      if (out.last + 1 < length) moves.push_back(3);
      if (!moves.empty()) {
        switch (moves[rng.below(moves.size())]) {
          case 0: ++out.first; break;
          case 1: --out.last; break;
          case 2: --out.first; break;
          case 3: ++out.last; break;
        }
      }
    }
    observed.push_back(out);
  }
  if (length > 0 && rng.flip(spec.spurious_rate)) {
    // Annotate a random non-gene unigram as a gene.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::size_t pos = rng.below(length);
      const text::TokenSpan bogus{pos, pos};
      const bool clash = std::any_of(
          observed.begin(), observed.end(),
          [&](const text::TokenSpan& s) { return overlaps(s, bogus); });
      if (!clash) {
        observed.push_back(bogus);
        break;
      }
    }
  }
  std::sort(observed.begin(), observed.end());
  return observed;
}

}  // namespace graphner::corpus
