#include "src/corpus/bc2gm_io.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "src/text/bio.hpp"
#include "src/text/tokenizer.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"

namespace graphner::corpus {
namespace {

namespace fs = std::filesystem;

void write_sentences(const fs::path& path, const std::vector<text::Sentence>& sentences) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  for (const auto& s : sentences) out << s.id << ' ' << s.text() << '\n';
}

void write_annotation_file(const fs::path& path,
                           const std::vector<text::Annotation>& anns) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  text::write_annotations(out, anns);
}

std::vector<text::Sentence> read_sentences(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::vector<text::Sentence> sentences;
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto space = trimmed.find(' ');
    text::Sentence s;
    if (space == std::string_view::npos) {
      s.id = std::string(trimmed);
    } else {
      s.id = std::string(trimmed.substr(0, space));
      s.tokens = text::tokenize(trimmed.substr(space + 1));
    }
    sentences.push_back(std::move(s));
  }
  return sentences;
}

std::vector<text::Annotation> read_annotation_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return {};
  return text::parse_annotations(in);
}

void apply_tags(std::vector<text::Sentence>& sentences,
                const std::vector<text::Annotation>& anns) {
  const auto index = text::index_annotations(anns);
  for (auto& s : sentences) {
    const auto it = index.find(s.id);
    s.tags = tags_from_annotations(
        s, it == index.end() ? std::vector<text::CharSpan>{} : it->second);
  }
}

}  // namespace

std::vector<text::Tag> tags_from_annotations(const text::Sentence& sentence,
                                             const std::vector<text::CharSpan>& spans) {
  // Map each token to its space-free char range, then align annotations.
  std::vector<text::CharSpan> token_ranges;
  token_ranges.reserve(sentence.size());
  std::size_t offset = 0;
  for (const auto& tok : sentence.tokens) {
    token_ranges.push_back({offset, offset + tok.size() - 1});
    offset += tok.size();
  }

  std::vector<text::TokenSpan> token_spans;
  std::size_t dropped = 0;
  for (const auto& span : spans) {
    std::size_t first = sentence.size();
    std::size_t last = sentence.size();
    for (std::size_t i = 0; i < token_ranges.size(); ++i) {
      if (token_ranges[i].first == span.first) first = i;
      if (token_ranges[i].last == span.last) last = i;
    }
    if (first >= sentence.size() || last >= sentence.size() || first > last) {
      ++dropped;  // annotation does not align with token boundaries
      continue;
    }
    token_spans.push_back({first, last});
  }
  if (dropped > 0)
    util::log_debug("bc2gm_io: dropped ", dropped,
                    " misaligned annotations in sentence ", sentence.id);
  std::sort(token_spans.begin(), token_spans.end());
  return text::encode_bio(token_spans, sentence.size());
}

void save_corpus(const LabelledCorpus& corpus, const fs::path& directory) {
  fs::create_directories(directory);
  write_sentences(directory / "train.in", corpus.train);
  write_sentences(directory / "test.in", corpus.test);

  std::vector<text::Annotation> train_gold;
  for (const auto& s : corpus.train)
    for (auto& ann : text::annotations_from_tags(s)) train_gold.push_back(std::move(ann));
  write_annotation_file(directory / "train.eval", train_gold);
  write_annotation_file(directory / "GENE.eval", corpus.test_gold);
  if (!corpus.test_alternatives.empty())
    write_annotation_file(directory / "ALTGENE.eval", corpus.test_alternatives);
  if (!corpus.test_truth.empty())
    write_annotation_file(directory / "TRUTH.eval", corpus.test_truth);

  // Gene-related token list for the error categorizer.
  std::ofstream lexicon(directory / "gene_tokens.txt");
  for (const auto& tok : corpus.gene_related_tokens) lexicon << tok << '\n';
  util::log_info("bc2gm_io: wrote corpus '", corpus.name, "' to ", directory.string());
}

LabelledCorpus load_corpus(const fs::path& directory) {
  LabelledCorpus corpus;
  corpus.name = directory.filename().string();
  corpus.train = read_sentences(directory / "train.in");
  corpus.test = read_sentences(directory / "test.in");

  apply_tags(corpus.train, read_annotation_file(directory / "train.eval"));
  corpus.test_gold = read_annotation_file(directory / "GENE.eval");
  apply_tags(corpus.test, corpus.test_gold);
  corpus.test_alternatives = read_annotation_file(directory / "ALTGENE.eval");
  corpus.test_truth = read_annotation_file(directory / "TRUTH.eval");

  std::ifstream lexicon(directory / "gene_tokens.txt");
  std::string token;
  while (std::getline(lexicon, token)) {
    const auto trimmed = util::trim(token);
    if (!trimmed.empty()) corpus.gene_related_tokens.emplace_back(trimmed);
  }
  util::log_info("bc2gm_io: loaded corpus '", corpus.name, "': ",
                 corpus.train.size(), " train / ", corpus.test.size(),
                 " test sentences");
  return corpus;
}

}  // namespace graphner::corpus
