#include "src/corpus/corpus.hpp"

#include <unordered_map>

#include "src/text/bio.hpp"
#include "src/util/rng.hpp"

namespace graphner::corpus {

std::size_t LabelledCorpus::train_token_count() const noexcept {
  std::size_t n = 0;
  for (const auto& s : train) n += s.size();
  return n;
}

std::size_t LabelledCorpus::test_token_count() const noexcept {
  std::size_t n = 0;
  for (const auto& s : test) n += s.size();
  return n;
}

CorpusStats compute_stats(const LabelledCorpus& corpus) {
  CorpusStats stats;
  stats.train_sentences = corpus.train.size();
  stats.test_sentences = corpus.test.size();

  std::size_t train_positive = 0;
  for (const auto& s : corpus.train) {
    stats.train_tokens += s.size();
    train_positive += text::positive_token_count(s.tags);
    stats.train_mentions += text::decode_bio(s.tags).size();
  }
  std::size_t test_positive = 0;
  for (const auto& s : corpus.test) {
    stats.test_tokens += s.size();
    test_positive += text::positive_token_count(s.tags);
    stats.test_mentions += text::decode_bio(s.tags).size();
  }
  if (stats.train_tokens > 0)
    stats.train_positive_token_rate =
        static_cast<double>(train_positive) / static_cast<double>(stats.train_tokens);
  if (stats.test_tokens > 0)
    stats.test_positive_token_rate =
        static_cast<double>(test_positive) / static_cast<double>(stats.test_tokens);
  return stats;
}

LabelledCorpus resplit(const LabelledCorpus& corpus, double train_fraction,
                       std::uint64_t seed) {
  // Index the per-sentence annotation metadata so re-split test sentences
  // that originated in the test half keep their alternatives/truth.
  std::unordered_map<std::string, std::vector<text::Annotation>> alts;
  std::unordered_map<std::string, std::vector<text::Annotation>> truth;
  for (const auto& a : corpus.test_alternatives) alts[a.sentence_id].push_back(a);
  for (const auto& a : corpus.test_truth) truth[a.sentence_id].push_back(a);

  std::vector<const text::Sentence*> all;
  all.reserve(corpus.train.size() + corpus.test.size());
  for (const auto& s : corpus.train) all.push_back(&s);
  for (const auto& s : corpus.test) all.push_back(&s);

  util::Rng rng(seed);
  rng.shuffle(all);

  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(all.size()));

  LabelledCorpus out;
  out.name = corpus.name;
  out.gene_related_tokens = corpus.gene_related_tokens;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const text::Sentence& s = *all[i];
    if (i < cut) {
      out.train.push_back(s);
      continue;
    }
    out.test.push_back(s);
    // Primary gold comes from the observed tags for every test sentence.
    for (auto& ann : text::annotations_from_tags(s)) out.test_gold.push_back(std::move(ann));
    if (auto it = alts.find(s.id); it != alts.end())
      out.test_alternatives.insert(out.test_alternatives.end(), it->second.begin(),
                                   it->second.end());
    if (auto it = truth.find(s.id); it != truth.end()) {
      out.test_truth.insert(out.test_truth.end(), it->second.begin(), it->second.end());
    } else {
      // Train-origin sentence: best available truth is the observed gold.
      for (auto& ann : text::annotations_from_tags(s)) out.test_truth.push_back(std::move(ann));
    }
  }
  return out;
}

}  // namespace graphner::corpus
