#include "src/corpus/generator.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "src/corpus/templates.hpp"
#include "src/corpus/wordlists.hpp"
#include "src/text/bio.hpp"
#include "src/text/tokenizer.hpp"
#include "src/util/strings.hpp"

namespace graphner::corpus {
namespace {

/// Everything needed while realizing sentences from templates.
struct GeneratorState {
  const CorpusSpec* spec = nullptr;
  const GeneLexicon* lexicon = nullptr;
  std::vector<Template> bank;
  std::size_t shared_gene_count = 0;  ///< entities [0, shared) appear anywhere
  std::vector<std::string> acronym_pool;
  std::size_t shared_acronym_count = 0;
  util::Rng rng;

  GeneratorState(const CorpusSpec& s, const GeneLexicon& lex)
      : spec(&s), lexicon(&lex), rng(s.seed) {
    bank = parse_bank(s.clinical_register ? clinical_patterns() : abstract_patterns());
    const auto reserved = static_cast<std::size_t>(
        s.test_only_gene_fraction * static_cast<double>(lex.size()));
    shared_gene_count = lex.size() > reserved ? lex.size() - reserved : lex.size();

    // Acronym inventory: the static clinical list plus generated
    // HGNC-shaped symbols, deterministically derived from the corpus seed.
    util::Rng acr_rng(s.seed ^ 0x5eedac20ULL);
    for (const auto& a : acronyms()) {
      if (acronym_pool.size() >= s.num_acronyms) break;
      acronym_pool.emplace_back(a);
    }
    while (acronym_pool.size() < s.num_acronyms)
      acronym_pool.push_back(make_hgnc_symbol(acr_rng));
    const auto acr_reserved = static_cast<std::size_t>(
        s.test_only_acronym_fraction * static_cast<double>(acronym_pool.size()));
    shared_acronym_count = acronym_pool.size() > acr_reserved
                               ? acronym_pool.size() - acr_reserved
                               : acronym_pool.size();
  }
};

/// One realized sentence plus its true mention spans.
struct Realized {
  std::vector<std::string> tokens;
  std::vector<text::TokenSpan> mentions;
  /// For each mention: index of the realized lexicon entity (for variants).
  std::vector<std::size_t> mention_entities;
};

void append_tokens(Realized& out, std::string_view phrase) {
  for (auto& tok : text::tokenize(phrase)) out.tokens.push_back(std::move(tok));
}

std::size_t pick_gene_entity(GeneratorState& state, bool is_test) {
  const bool use_test_only =
      is_test && state.shared_gene_count < state.lexicon->size() &&
      state.rng.flip(state.spec->test_only_draw_rate);
  if (use_test_only) {
    const std::size_t extra = state.lexicon->size() - state.shared_gene_count;
    // Zipf here too: unseen genes *recur* within the test set, which is
    // what lets corpus-level averaging recover them.
    return state.shared_gene_count + state.rng.zipf(extra);
  }
  // Zipf-ish over the shared inventory so a handful of genes recur often —
  // this is what gives the 3-gram graph informative repeated contexts.
  return state.rng.zipf(state.shared_gene_count);
}

const std::string& pick_acronym(GeneratorState& state, bool is_test) {
  const bool use_test_only =
      is_test && state.shared_acronym_count < state.acronym_pool.size() &&
      state.rng.flip(state.spec->test_only_acronym_draw_rate);
  if (use_test_only) {
    const std::size_t extra = state.acronym_pool.size() - state.shared_acronym_count;
    return state.acronym_pool[state.shared_acronym_count + state.rng.zipf(extra)];
  }
  return state.acronym_pool[state.rng.zipf(state.shared_acronym_count)];
}

/// A measurement-shaped token from the long tail real abstracts carry:
/// decimals, p-values, ranges, fold-changes, kilodalton masses, raw counts.
/// Near-unique across a corpus, so each draw contributes fresh identity /
/// affix / char-n-gram features exactly the way real numeric text does.
std::string make_measurement(util::Rng& rng) {
  switch (rng.below(6)) {
    case 0:  // decimal measurement: "3.7", "41.2"
      return std::to_string(1 + rng.below(99)) + "." + std::to_string(rng.below(10));
    case 1:  // p-value: "0.003", "0.048"
      return "0.0" + std::to_string(1 + rng.below(99));
    case 2:  // range: "10-20"
      return std::to_string(1 + rng.below(89)) + "-" +
             std::to_string(10 + rng.below(90));
    case 3:  // fold change: "12-fold"
      return std::to_string(2 + rng.below(98)) + "-fold";
    case 4:  // molecular mass: "38-kDa"
      return std::to_string(10 + rng.below(190)) + "-kDa";
    default:  // raw count: "1240"
      return std::to_string(100 + rng.below(9900));
  }
}

Realized realize(GeneratorState& state, const Template& tmpl, bool is_test) {
  Realized out;
  auto& rng = state.rng;
  for (const auto& slot : tmpl.slots) {
    switch (slot.kind) {
      case SlotKind::kLiteral:
        out.tokens.push_back(slot.literal);
        break;
      case SlotKind::kGene: {
        const std::size_t entity_idx = pick_gene_entity(state, is_test);
        const GeneEntity& entity = state.lexicon->entities()[entity_idx];
        // Canonical variant dominates; others appear occasionally.
        const std::size_t variant_idx =
            (entity.variants.size() > 1 && rng.flip(0.3))
                ? 1 + rng.below(entity.variants.size() - 1)
                : 0;
        const auto& variant = entity.variants[variant_idx];
        const std::size_t first = out.tokens.size();
        for (const auto& tok : variant) out.tokens.push_back(tok);
        out.mentions.push_back({first, out.tokens.size() - 1});
        out.mention_entities.push_back(entity_idx);
        break;
      }
      case SlotKind::kTrap:
        append_tokens(out, rng.flip(0.5) ? rng.pick(cell_lines()) : rng.pick(places()));
        break;
      case SlotKind::kAcronym:
        out.tokens.push_back(pick_acronym(state, is_test));
        break;
      case SlotKind::kDisease:
        append_tokens(out, rng.pick(diseases()));
        break;
      case SlotKind::kMethod:
        append_tokens(out, rng.pick(methods()));
        break;
      case SlotKind::kVerb:
        out.tokens.emplace_back(rng.pick(verbs()));
        break;
      case SlotKind::kAdjective:
        out.tokens.emplace_back(rng.pick(adjectives()));
        break;
      case SlotKind::kNoun:
        out.tokens.emplace_back(rng.pick(background_words()));
        break;
      case SlotKind::kNumber:
        if (state.spec->numeric_richness > 0.0 &&
            rng.flip(state.spec->numeric_richness))
          out.tokens.push_back(make_measurement(rng));
        else
          out.tokens.push_back(std::to_string(1 + rng.below(99)));
        break;
    }
  }
  return out;
}

/// Realize one full sentence: a base clause, optionally spliced with up to
/// two further clauses (", and <clause>" style). Mention spans from later
/// clauses are offset into the combined token stream.
Realized realize_sentence(GeneratorState& state, bool is_test) {
  auto& rng = state.rng;
  auto pick = [&]() -> const Template& {
    return state.bank[rng.below(state.bank.size())];
  };
  Realized out = realize(state, pick(), is_test);
  if (state.spec->compound_clause_rate <= 0.0) return out;
  static constexpr std::string_view kConnectives[] = {"and", "whereas", "while",
                                                      "although", "but"};
  for (int extra = 0;
       extra < 2 && rng.flip(state.spec->compound_clause_rate); ++extra) {
    if (!out.tokens.empty() && out.tokens.back() == ".") out.tokens.pop_back();
    out.tokens.emplace_back(",");
    out.tokens.emplace_back(kConnectives[rng.below(std::size(kConnectives))]);
    const Realized next = realize(state, pick(), is_test);
    const std::size_t base = out.tokens.size();
    for (const auto& tok : next.tokens) out.tokens.push_back(tok);
    for (const auto& span : next.mentions)
      out.mentions.push_back({span.first + base, span.last + base});
    for (const std::size_t entity : next.mention_entities)
      out.mention_entities.push_back(entity);
  }
  return out;
}

std::string make_sentence_id(const CorpusSpec& spec, std::string_view side,
                             std::size_t index) {
  std::ostringstream id;
  if (spec.sentences_per_document > 0) {
    id << spec.name << "-doc" << (index / spec.sentences_per_document) << '-';
  } else {
    id << spec.name << '-';
  }
  id << side << '-' << index;
  return id.str();
}

/// Boundary-variant alternatives for a mention, in the ALTGENE spirit:
/// accept the mention without its leading modifier and/or without its
/// trailing "- N" / single-token suffix.
std::vector<text::TokenSpan> boundary_alternatives(const text::TokenSpan& span) {
  std::vector<text::TokenSpan> alts;
  if (span.length() >= 2) {
    alts.push_back({span.first + 1, span.last});   // drop leading token
    alts.push_back({span.first, span.last - 1});   // drop trailing token
  }
  if (span.length() >= 3)
    alts.push_back({span.first, span.last - 2});   // drop "- N" style suffix
  return alts;
}

}  // namespace

CorpusSpec bc2gm_like_spec(double scale, std::uint64_t seed) {
  CorpusSpec spec;
  spec.name = "bc2gm";
  spec.train_sentences = static_cast<std::size_t>(1500 * scale);
  spec.test_sentences = static_cast<std::size_t>(500 * scale);
  spec.lexicon.num_genes = std::max<std::size_t>(60, static_cast<std::size_t>(200 * scale));
  spec.lexicon.messy_fraction = 0.6;  // broad-biology notation chaos
  spec.test_only_gene_fraction = 0.15;
  spec.test_only_draw_rate = 0.3;
  // Trap inventory grows with the corpus so the per-sentence pressure from
  // unseen gene-shaped non-genes stays constant across scales.
  spec.num_acronyms = std::max<std::size_t>(40, static_cast<std::size_t>(40 * scale));
  spec.test_only_acronym_fraction = 0.5;
  spec.test_only_acronym_draw_rate = 0.7;
  // Undergraduate annotators: visible error rates in both splits.
  spec.train_noise = NoiseSpec{0.03, 0.04, 0.012};
  spec.test_noise = NoiseSpec{0.03, 0.04, 0.012};
  spec.alternatives = true;
  spec.clinical_register = false;
  spec.sentences_per_document = 0;
  spec.seed = seed;
  return spec;
}

CorpusSpec aml_like_spec(double scale, std::uint64_t seed) {
  CorpusSpec spec;
  spec.name = "aml";
  spec.train_sentences = static_cast<std::size_t>(1050 * scale);
  spec.test_sentences = static_cast<std::size_t>(395 * scale);
  spec.lexicon.num_genes = std::max<std::size_t>(40, static_cast<std::size_t>(120 * scale));
  spec.lexicon.messy_fraction = 0.08;  // HGNC discipline
  spec.test_only_gene_fraction = 0.10;
  spec.test_only_draw_rate = 0.15;
  spec.num_acronyms = std::max<std::size_t>(30, static_cast<std::size_t>(30 * scale));
  spec.test_only_acronym_fraction = 0.4;
  spec.test_only_acronym_draw_rate = 0.5;
  // Expert curators: almost clean gold standard (spurious annotations in
  // particular are vanishingly rare in expert-reviewed corpora).
  spec.train_noise = NoiseSpec{0.004, 0.006, 0.0005};
  spec.test_noise = NoiseSpec{0.004, 0.005, 0.0005};
  spec.alternatives = false;  // the AML corpus shipped no ALTGENE file
  spec.clinical_register = true;
  spec.sentences_per_document = 130;  // ~80 full-text docs at scale 10
  spec.seed = seed;
  return spec;
}

LabelledCorpus generate_corpus(const CorpusSpec& spec) {
  util::Rng lexicon_rng(spec.seed ^ 0xa5a5a5a5ULL);
  const GeneLexicon lexicon = GeneLexicon::generate(spec.lexicon, lexicon_rng);
  GeneratorState state(spec, lexicon);

  LabelledCorpus corpus;
  corpus.name = spec.name;
  corpus.gene_related_tokens = lexicon.gene_related_tokens();

  auto make_side = [&](std::size_t count, bool is_test,
                       std::vector<text::Sentence>& sink) {
    for (std::size_t i = 0; i < count; ++i) {
      Realized realized = realize_sentence(state, is_test);

      text::Sentence sentence;
      sentence.id = make_sentence_id(spec, is_test ? "test" : "train", i);
      sentence.tokens = std::move(realized.tokens);

      const NoiseSpec& noise = is_test ? spec.test_noise : spec.train_noise;
      const auto observed =
          corrupt_spans(realized.mentions, sentence.size(), noise, state.rng);
      sentence.tags = text::encode_bio(observed, sentence.size());

      if (is_test) {
        // Primary gold annotations from the observed (noisy) spans.
        for (auto& ann : text::annotations_from_tags(sentence))
          corpus.test_gold.push_back(std::move(ann));
        // Pristine truth for the error analysis.
        for (const auto& span : realized.mentions) {
          text::Annotation ann;
          ann.sentence_id = sentence.id;
          ann.span = sentence.to_char_span(span);
          ann.mention = sentence.span_text(span);
          corpus.test_truth.push_back(std::move(ann));
        }
        // Boundary alternatives for multi-token (messy-style) mentions.
        if (spec.alternatives) {
          for (const auto& span : observed) {
            for (const auto& alt : boundary_alternatives(span)) {
              text::Annotation ann;
              ann.sentence_id = sentence.id;
              ann.span = sentence.to_char_span(alt);
              ann.mention = sentence.span_text(alt);
              corpus.test_alternatives.push_back(std::move(ann));
            }
          }
        }
      }
      sink.push_back(std::move(sentence));
    }
  };

  make_side(spec.train_sentences, /*is_test=*/false, corpus.train);
  make_side(spec.test_sentences, /*is_test=*/true, corpus.test);
  return corpus;
}

std::vector<text::Sentence> generate_unlabelled(const CorpusSpec& spec,
                                                std::size_t count,
                                                std::uint64_t seed) {
  CorpusSpec shifted = spec;
  shifted.seed = seed;
  util::Rng lexicon_rng(spec.seed ^ 0xa5a5a5a5ULL);  // same lexicon as labelled
  const GeneLexicon lexicon = GeneLexicon::generate(spec.lexicon, lexicon_rng);
  GeneratorState state(shifted, lexicon);

  std::vector<text::Sentence> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Realized realized = realize_sentence(state, /*is_test=*/true);
    text::Sentence sentence;
    sentence.id = spec.name + "-unlab-" + std::to_string(i);
    sentence.tokens = std::move(realized.tokens);
    out.push_back(std::move(sentence));
  }
  return out;
}

}  // namespace graphner::corpus
