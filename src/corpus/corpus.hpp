// The labelled-corpus container plus summary statistics.
#pragma once

#include <string>
#include <vector>

#include "src/text/annotation.hpp"
#include "src/text/sentence.hpp"

namespace graphner::corpus {

/// A generated corpus in the BC2GM layout: tokenized sentences whose tags
/// carry the *observed* (possibly noisy) gold standard, plus the annotation
/// files the shared-task evaluator consumes. `test_truth` keeps the
/// pristine pre-noise annotations for error analysis only — no model or
/// evaluator ever sees it.
struct LabelledCorpus {
  std::string name;

  std::vector<text::Sentence> train;  ///< tags = observed gold
  std::vector<text::Sentence> test;   ///< tags = observed gold

  std::vector<text::Annotation> test_gold;          ///< primary (GENE.eval)
  std::vector<text::Annotation> test_alternatives;  ///< ALTGENE.eval
  std::vector<text::Annotation> test_truth;         ///< noise-free truth

  /// Lowercased tokens that occur inside any lexicon gene variant; used to
  /// categorize errors as gene-related vs spurious (paper §III-E).
  std::vector<std::string> gene_related_tokens;

  [[nodiscard]] std::size_t train_token_count() const noexcept;
  [[nodiscard]] std::size_t test_token_count() const noexcept;
};

/// Corpus-level statistics reported by the harnesses (paper §III-D).
struct CorpusStats {
  std::size_t train_sentences = 0;
  std::size_t test_sentences = 0;
  std::size_t train_tokens = 0;
  std::size_t test_tokens = 0;
  std::size_t train_mentions = 0;
  std::size_t test_mentions = 0;
  double train_positive_token_rate = 0.0;
  double test_positive_token_rate = 0.0;
};

[[nodiscard]] CorpusStats compute_stats(const LabelledCorpus& corpus);

/// Re-split a corpus: merge train+test and cut at `train_fraction` (used by
/// the Fig. 2 timing sweep and cross-validation). Annotations for the new
/// test side are regenerated from the observed tags; alternatives/truth for
/// sentences that came from the original test side are carried over.
[[nodiscard]] LabelledCorpus resplit(const LabelledCorpus& corpus,
                                     double train_fraction, std::uint64_t seed);

}  // namespace graphner::corpus
