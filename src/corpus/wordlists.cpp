#include "src/corpus/wordlists.hpp"

#include <array>

namespace graphner::corpus {
namespace {

using sv = std::string_view;

constexpr std::array kBackground = {
    sv{"the"},        sv{"of"},          sv{"in"},          sv{"and"},
    sv{"to"},         sv{"a"},           sv{"was"},         sv{"were"},
    sv{"is"},         sv{"that"},        sv{"with"},        sv{"for"},
    sv{"by"},         sv{"we"},          sv{"this"},        sv{"these"},
    sv{"patients"},   sv{"cells"},       sv{"expression"},  sv{"mutation"},
    sv{"mutations"},  sv{"protein"},     sv{"analysis"},    sv{"results"},
    sv{"study"},      sv{"levels"},      sv{"samples"},     sv{"treatment"},
    sv{"response"},   sv{"clinical"},    sv{"significant"}, sv{"observed"},
    sv{"data"},       sv{"tumor"},       sv{"cancer"},      sv{"bone"},
    sv{"marrow"},     sv{"blood"},       sv{"tissue"},      sv{"sequence"},
    sv{"variant"},    sv{"variants"},    sv{"allele"},      sv{"exon"},
    sv{"domain"},     sv{"pathway"},     sv{"signaling"},   sv{"activity"},
    sv{"function"},   sv{"binding"},     sv{"region"},      sv{"cases"},
    sv{"cohort"},     sv{"survival"},    sv{"prognosis"},   sv{"therapy"},
    sv{"diagnosis"},  sv{"relapse"},     sv{"remission"},   sv{"risk"},
    sv{"frequency"},  sv{"presence"},    sv{"absence"},     sv{"role"},
    sv{"effect"},     sv{"effects"},     sv{"level"},       sv{"group"},
    sv{"groups"},     sv{"control"},     sv{"controls"},    sv{"normal"},
    sv{"human"},      sv{"mouse"},       sv{"murine"},      sv{"assay"},
    sv{"not"},        sv{"no"},          sv{"also"},        sv{"however"},
    sv{"further"},    sv{"previously"},  sv{"recently"},    sv{"here"},
    sv{"both"},       sv{"all"},         sv{"other"},       sv{"several"},
    sv{"may"},        sv{"can"},         sv{"could"},       sv{"have"},
    sv{"has"},        sv{"been"},        sv{"from"},        sv{"into"},
    sv{"between"},    sv{"among"},       sv{"during"},      sv{"after"},
    sv{"before"},     sv{"using"},       sv{"based"},       sv{"associated"},
    sv{"compared"},   sv{"related"},     sv{"specific"},    sv{"distinct"},
    sv{"novel"},      sv{"known"},       sv{"common"},      sv{"rare"},
    sv{"high"},       sv{"low"},         sv{"higher"},      sv{"lower"},
    sv{"overall"},    sv{"total"},       sv{"primary"},     sv{"secondary"},
    sv{"positive"},   sv{"negative"},    sv{"wild"},        sv{"type"},
    sv{"subclone"},   sv{"clone"},       sv{"lineage"},     sv{"progenitor"},
    sv{"transcript"}, sv{"transcripts"}, sv{"promoter"},    sv{"enhancer"},
    sv{"codon"},      sv{"residue"},     sv{"deletion"},    sv{"insertion"},
    sv{"duplication"}, sv{"translocation"}, sv{"fusion"},   sv{"rearrangement"},
    sv{"methylation"}, sv{"phosphorylation"}, sv{"activation"}, sv{"inhibition"},
    sv{"proliferation"}, sv{"differentiation"}, sv{"apoptosis"}, sv{"senescence"},
};

constexpr std::array kVerbs = {
    sv{"detected"},   sv{"identified"},  sv{"observed"},   sv{"reported"},
    sv{"found"},      sv{"showed"},      sv{"revealed"},   sv{"demonstrated"},
    sv{"suggested"},  sv{"indicated"},   sv{"confirmed"},  sv{"examined"},
    sv{"analyzed"},   sv{"measured"},    sv{"screened"},   sv{"sequenced"},
    sv{"evaluated"},  sv{"investigated"}, sv{"assessed"},  sv{"compared"},
};

constexpr std::array kAdjectives = {
    sv{"significant"}, sv{"recurrent"},  sv{"somatic"},    sv{"germline"},
    sv{"frequent"},    sv{"elevated"},   sv{"reduced"},    sv{"aberrant"},
    sv{"differential"}, sv{"increased"}, sv{"decreased"},  sv{"marked"},
    sv{"notable"},     sv{"robust"},     sv{"consistent"}, sv{"strong"},
};

constexpr std::array kDiseases = {
    sv{"acute myeloid leukemia"},
    sv{"chronic lymphocytic leukemia"},
    sv{"myelodysplastic syndrome"},
    sv{"multiple myeloma"},
    sv{"breast cancer"},
    sv{"colorectal cancer"},
    sv{"lung adenocarcinoma"},
    sv{"diffuse large b cell lymphoma"},
    sv{"essential thrombocythemia"},
    sv{"polycythemia vera"},
    sv{"primary myelofibrosis"},
    sv{"glioblastoma"},
    sv{"melanoma"},
    sv{"neuroblastoma"},
    sv{"hepatocellular carcinoma"},
    sv{"pancreatic cancer"},
};

constexpr std::array kCellLines = {
    sv{"HeLa"},   sv{"K562"},   sv{"HL60"},  sv{"U937"},   sv{"Jurkat"},
    sv{"THP1"},   sv{"MOLM13"}, sv{"OCI3"},  sv{"KG1"},    sv{"NB4"},
    sv{"HEK293"}, sv{"MCF7"},   sv{"A549"},  sv{"SKBR3"},  sv{"RAJI"},
};

// Disease / study acronyms: HGNC-shaped tokens that are never genes. These
// mirror the paper's MPN example — orthographically indistinguishable from
// gene symbols, so shape features alone mislead the CRF.
constexpr std::array kAcronyms = {
    sv{"MPN"},  sv{"MDS"},  sv{"CLL"},  sv{"CML"},   sv{"DLBCL"},
    sv{"ECOG"}, sv{"WHO"},  sv{"FAB"},  sv{"ELN"},   sv{"NCCN"},
    sv{"CR1"},  sv{"OS"},   sv{"EFS"},  sv{"MRD"},   sv{"VAF"},
};

constexpr std::array kPlaces = {
    sv{"Ann Arbor"},   sv{"Vancouver"}, sv{"Bethesda"},  sv{"Rochester"},
    sv{"Heidelberg"},  sv{"Boston"},    sv{"Toronto"},   sv{"Houston"},
    sv{"Seattle"},     sv{"Baltimore"},
};

constexpr std::array kMethods = {
    sv{"flow cytometry"},       sv{"western blot"},
    sv{"polymerase chain reaction"}, sv{"targeted sequencing"},
    sv{"whole exome sequencing"},    sv{"immunohistochemistry"},
    sv{"quantitative pcr"},     sv{"sanger sequencing"},
    sv{"rna sequencing"},       sv{"mass spectrometry"},
};

constexpr std::array kGeneHeads = {
    sv{"factor"},   sv{"kinase"},    sv{"receptor"},  sv{"protein"},
    sv{"ligase"},   sv{"phosphatase"}, sv{"transporter"}, sv{"channel"},
    sv{"adaptor"},  sv{"homolog"},   sv{"antigen"},   sv{"regulator"},
};

constexpr std::array kGeneModifiers = {
    sv{"lymphocyte"},  sv{"growth"},     sv{"tumor"},     sv{"transcription"},
    sv{"tyrosine"},    sv{"serine"},     sv{"nuclear"},   sv{"epidermal"},
    sv{"fibroblast"},  sv{"insulin"},    sv{"platelet"},  sv{"vascular"},
    sv{"myeloid"},     sv{"erythroid"},  sv{"hematopoietic"}, sv{"mitogen"},
    sv{"stress"},      sv{"heat"},       sv{"zinc"},      sv{"retinoic"},
};

constexpr std::array kGreek = {
    sv{"alpha"}, sv{"beta"}, sv{"gamma"}, sv{"delta"}, sv{"epsilon"}, sv{"kappa"},
};

}  // namespace

std::span<const std::string_view> background_words() noexcept { return kBackground; }
std::span<const std::string_view> verbs() noexcept { return kVerbs; }
std::span<const std::string_view> adjectives() noexcept { return kAdjectives; }
std::span<const std::string_view> diseases() noexcept { return kDiseases; }
std::span<const std::string_view> cell_lines() noexcept { return kCellLines; }
std::span<const std::string_view> places() noexcept { return kPlaces; }
std::span<const std::string_view> acronyms() noexcept { return kAcronyms; }
std::span<const std::string_view> methods() noexcept { return kMethods; }
std::span<const std::string_view> gene_head_nouns() noexcept { return kGeneHeads; }
std::span<const std::string_view> gene_modifiers() noexcept { return kGeneModifiers; }
std::span<const std::string_view> greek_letters() noexcept { return kGreek; }

}  // namespace graphner::corpus
