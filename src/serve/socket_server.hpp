// Blocking TCP front-end for any TagService (POSIX sockets, no deps):
// the same server fronts a single TaggingService or a multi-replica
// Router — it only speaks the submit/metrics/admin interface.
//
// One accept thread hands each connection to its own handler thread. A
// handler reads line-delimited requests (src/serve/protocol.hpp) and
// *pipelines* them: every complete line already buffered is submitted to
// the service before the handler waits on the first future, so a client
// that writes requests back-to-back exercises the micro-batcher even over
// a single connection. Responses are written in request order.
//
// stop() closes the listener and shuts down live connections, then joins
// every thread; in-flight requests still get their responses because the
// service drains on its own stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/service.hpp"
#include "src/util/fault.hpp"

namespace graphner::serve {

struct SocketServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after start()
  int backlog = 64;
  std::size_t max_line_bytes = 1 << 20;  ///< oversized lines get an error reply
};

class SocketServer {
 public:
  SocketServer(TagService& service, SocketServerConfig config = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen on 0.0.0.0:<port> and spawn the accept thread.
  /// Throws std::runtime_error if the socket cannot be set up.
  void start();

  /// The bound port (useful with port = 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Close the listener, disconnect clients, join all threads. Idempotent.
  void stop();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void handle_connection(std::size_t slot);

  TagService& service_;
  SocketServerConfig config_;
  /// Written by start()/stop(), read by the accept thread — atomic so the
  /// shutdown handshake (stop() swaps in -1, then closes) is race-free.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t bound_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

/// connect() gave up: every retry failed. Distinct from transient
/// connection errors so callers can tell "the server never came up" from
/// "the connection dropped mid-stream".
class ConnectRetriesExhausted : public std::runtime_error {
 public:
  ConnectRetriesExhausted(const std::string& endpoint, int attempts,
                          const std::string& last_error)
      : std::runtime_error("connect(" + endpoint + "): gave up after " +
                           std::to_string(attempts) + " attempt(s), last error: " +
                           last_error),
        attempts_(attempts) {}
  [[nodiscard]] int attempts() const noexcept { return attempts_; }

 private:
  int attempts_;
};

/// Minimal blocking client used by graphner_client, the load generator and
/// the tests: connect, send one line, read one line.
class ClientConnection {
 public:
  ClientConnection() = default;
  ~ClientConnection() { close(); }
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// Connect to host:port; on failure retries up to `backoff.max_retries`
  /// times with capped exponential backoff and jitter (a just-started
  /// server may not be listening yet; a loaded one decorrelates its
  /// reconnect stampede). Throws ConnectRetriesExhausted after the last
  /// attempt; other errors (e.g. unresolvable host) throw immediately.
  void connect(const std::string& host, std::uint16_t port,
               const util::BackoffPolicy& backoff = {});

  /// Back-compat convenience: `retries` attempts starting at
  /// `initial_delay_ms` (exponential, jittered, capped at 2 s).
  void connect(const std::string& host, std::uint16_t port, int retries,
               int initial_delay_ms = 100);

  /// Send `line` + '\n'. Throws on a broken connection.
  void send_line(const std::string& line);

  /// Read the next '\n'-terminated line (stripped). False on EOF.
  [[nodiscard]] bool recv_line(std::string& line);

  /// Send one request line and wait for its response; while the response
  /// status is retryable (OVERLOADED / DEADLINE_EXCEEDED / UNAVAILABLE),
  /// back off and resend, up to `backoff.max_retries` times. Retrying is
  /// additionally bounded by the request's own '@<ms>' (or JSON
  /// "deadline_ms") deadline: once that budget has elapsed, the next
  /// resend could only be shed as DEADLINE_EXCEEDED again, so the last
  /// response is returned instead of burning the rest of the backoff
  /// schedule. Returns false if the connection closed; on true,
  /// `response` holds the final response line (which may still carry a
  /// retryable status if retries — or the deadline — ran out).
  [[nodiscard]] bool request_with_retry(const std::string& line,
                                        std::string& response,
                                        const util::BackoffPolicy& backoff = {});

  void close() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace graphner::serve
