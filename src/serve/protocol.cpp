#include "src/serve/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "src/util/strings.hpp"

namespace graphner::serve {
namespace {

// --- shape-specific JSON reader -------------------------------------------

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
};

[[nodiscard]] bool parse_json_string(JsonCursor& cur, std::string& out) {
  if (!cur.consume('"')) return false;
  out.clear();
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (cur.pos >= cur.text.size()) return false;
      const char esc = cur.text[cur.pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default: return false;  // \uXXXX not needed for token text
      }
    } else {
      out.push_back(c);
    }
  }
  return false;  // unterminated
}

[[nodiscard]] bool parse_json_request(const std::string& line, Request& out,
                                      std::string& error) {
  JsonCursor cur{line};
  if (!cur.consume('{')) {
    error = "expected '{'";
    return false;
  }
  bool first = true;
  while (!cur.peek_is('}')) {
    if (!first && !cur.consume(',')) {
      error = "expected ',' between members";
      return false;
    }
    first = false;
    std::string key;
    if (!parse_json_string(cur, key)) {
      error = "expected string key";
      return false;
    }
    if (!cur.consume(':')) {
      error = "expected ':' after key";
      return false;
    }
    if (key == "id") {
      if (!parse_json_string(cur, out.id)) {
        error = "\"id\" must be a string";
        return false;
      }
    } else if (key == "deadline_ms") {
      cur.skip_ws();
      std::size_t digits = 0;
      long value = 0;
      while (cur.pos < cur.text.size() &&
             std::isdigit(static_cast<unsigned char>(cur.text[cur.pos]))) {
        value = value * 10 + (cur.text[cur.pos] - '0');
        ++cur.pos;
        ++digits;
      }
      if (digits == 0) {
        error = "\"deadline_ms\" must be a non-negative integer";
        return false;
      }
      out.deadline_ms = value;
    } else if (key == "model") {
      if (!parse_json_string(cur, out.model)) {
        error = "\"model\" must be a string";
        return false;
      }
      if (!valid_model_name(out.model)) {
        error = "\"model\" must be a name of [A-Za-z0-9_.-]";
        return false;
      }
    } else if (key == "tokens") {
      if (!cur.consume('[')) {
        error = "\"tokens\" must be an array";
        return false;
      }
      out.tokens.clear();
      while (!cur.peek_is(']')) {
        if (!out.tokens.empty() && !cur.consume(',')) {
          error = "expected ',' between tokens";
          return false;
        }
        std::string token;
        if (!parse_json_string(cur, token)) {
          error = "tokens must be strings";
          return false;
        }
        out.tokens.push_back(std::move(token));
      }
      (void)cur.consume(']');
    } else {
      error = "unknown key \"" + key + "\"";
      return false;
    }
  }
  (void)cur.consume('}');
  cur.skip_ws();
  if (cur.pos != line.size()) {
    error = "trailing characters after '}'";
    return false;
  }
  out.json = true;
  if (out.id.empty()) out.id = "-";
  return true;
}

// --------------------------------------------------------------------------

[[nodiscard]] std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) out.push_back(std::move(token));
  return out;
}

/// Tabs/newlines inside an id or error would corrupt the TSV framing.
[[nodiscard]] std::string sanitize_tsv(const std::string& text) {
  std::string out = text;
  for (char& c : out)
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  return out;
}

/// Parse the key=value words of a "#DECODE" line. Returns false (with
/// `error` filled) on anything unrecognized — silently ignoring a typo
/// would leave the connection decoding under the wrong options.
[[nodiscard]] bool parse_decode_args(const std::string& args,
                                     std::optional<crf::DecodeOptions>& out,
                                     std::string& error) {
  if (args.empty() || args == "off" || args == "reset") {
    out.reset();
    return true;
  }
  crf::DecodeOptions options;
  for (const std::string& word : split_tokens(args)) {
    const std::size_t eq = word.find('=');
    if (eq == std::string::npos) {
      error = "expected key=value, got \"" + word + "\"";
      return false;
    }
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    try {
      if (key == "beam") {
        options.beam = value == "inf" ? 0 : std::stoul(value);
      } else if (key == "threshold") {
        options.posterior_threshold = std::stod(value);
        if (options.posterior_threshold < 0.0 ||
            options.posterior_threshold >= 1.0)
          throw std::invalid_argument("threshold must be in [0, 1)");
      } else if (key == "quantized") {
        options.quantization = crf::parse_quantization(value);
      } else {
        error = "unknown DECODE key \"" + key +
                "\" (expected beam, threshold or quantized)";
        return false;
      }
    } catch (const std::exception&) {
      error = "bad DECODE value \"" + word + "\"";
      return false;
    }
  }
  out = options;
  return true;
}

/// Split an optional '#<model>' selector suffix off a TSV id (the
/// outermost suffix: "<id>[@ms][#model]"). Only a non-empty suffix of
/// model-name characters counts — see valid_model_name — so ids that
/// legitimately contain '#' still round-trip unchanged.
void split_model_suffix(std::string& id, std::string& model) {
  const std::size_t hash = id.find_last_of('#');
  if (hash == std::string::npos || hash + 1 >= id.size()) return;
  if (!valid_model_name(std::string_view{id}.substr(hash + 1))) return;
  model.assign(id, hash + 1, std::string::npos);
  id.resize(hash);
  if (id.empty()) id = "-";
}

/// Split an optional '@<ms>' deadline suffix off a TSV id. Only a
/// non-empty all-digit suffix counts, so ids that legitimately contain
/// '@' (emails, handles) still round-trip unchanged.
void split_deadline_suffix(std::string& id, long& deadline_ms) {
  const std::size_t at = id.find_last_of('@');
  if (at == std::string::npos || at + 1 >= id.size()) return;
  long value = 0;
  for (std::size_t i = at + 1; i < id.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(id[i]))) return;
    value = value * 10 + (id[i] - '0');
  }
  deadline_ms = value;
  id.resize(at);
  if (id.empty()) id = "-";
}

/// Reject an oversized admin payload with a structured error. Returns
/// true when the line was rejected (out is fully filled).
[[nodiscard]] bool reject_oversized_admin(const std::string& verb,
                                          std::size_t payload_bytes,
                                          ParsedLine& out) {
  if (payload_bytes <= kMaxAdminLineBytes) return false;
  std::ostringstream error;
  error << verb << " line too large: " << payload_bytes
        << " byte(s) exceeds the " << kMaxAdminLineBytes
        << "-byte admin line cap";
  out.kind = LineKind::kMalformed;
  out.error = error.str();
  return true;
}

/// One row of the admin-alias table: the wire spelling, the words
/// prefixed onto the payload before dispatch, and the usage string an
/// empty payload answers with. "#REPLICA" maps 1:1; "#LEARN" is sugar
/// that prefixes "learn" — one parse path for the whole admin surface
/// (oversize cap, empty-payload check, kAdmin framing), per the verb
/// table in protocol.hpp.
struct AdminAlias {
  std::string_view line_verb;     ///< e.g. "#REPLICA"
  std::string_view admin_prefix;  ///< e.g. "" or "learn "
  std::string_view usage;         ///< the empty-payload error detail
};

constexpr AdminAlias kAdminAliases[] = {
    {"#REPLICA", "",
     "needs a command (kill/revive/swap/status/model/quota/learn)"},
    {"#LEARN", "learn ",
     "needs arguments (text <tokens...> | file <path> | status)"},
};

/// Parse `trimmed` against one admin alias. Returns true when the line
/// carried that verb (out is fully filled, kAdmin or kMalformed).
[[nodiscard]] bool parse_admin_alias(const std::string& trimmed,
                                     const AdminAlias& alias, ParsedLine& out) {
  const std::size_t n = alias.line_verb.size();
  if (trimmed.compare(0, n, alias.line_verb) != 0) return false;
  if (trimmed.size() > n && trimmed[n] != ' ') return false;
  const std::string args{
      util::trim(trimmed.size() > n ? trimmed.substr(n + 1) : std::string{})};
  if (reject_oversized_admin(std::string{alias.line_verb}, args.size(), out))
    return true;
  if (args.empty()) {
    out.kind = LineKind::kMalformed;
    out.error = std::string{alias.line_verb} + " " + std::string{alias.usage};
    return true;
  }
  out.admin = std::string{alias.admin_prefix} + args;
  out.kind = LineKind::kAdmin;
  return true;
}

}  // namespace

ParsedLine parse_request_line(const std::string& line) {
  ParsedLine out;
  const std::string trimmed{util::trim(line)};
  if (trimmed.empty()) {
    out.kind = LineKind::kEmpty;
    return out;
  }
  if (trimmed == "#METRICS" || trimmed.rfind("#METRICS ", 0) == 0) {
    const std::string flavour{util::trim(trimmed.substr(8))};
    if (flavour.empty())
      out.metrics_flavour = MetricsFlavour::kLegacy;
    else if (flavour == "JSON")
      out.metrics_flavour = MetricsFlavour::kJson;
    else if (flavour == "TSV")
      out.metrics_flavour = MetricsFlavour::kTsv;
    else if (flavour == "PROM")
      out.metrics_flavour = MetricsFlavour::kProm;
    else {
      out.kind = LineKind::kMalformed;
      out.error = "unknown METRICS flavour \"" + flavour +
                  "\" (expected JSON, TSV or PROM)";
      return out;
    }
    out.kind = LineKind::kMetrics;
    return out;
  }
  if (trimmed == "#DECODE" || trimmed.rfind("#DECODE ", 0) == 0) {
    const std::string args{util::trim(trimmed.substr(7))};
    if (parse_decode_args(args, out.decode, out.error))
      out.kind = LineKind::kDecode;
    else
      out.kind = LineKind::kMalformed;
    return out;
  }
  if (trimmed == "#MODEL" || trimmed.rfind("#MODEL ", 0) == 0) {
    // Connection-scoped default model, the "#DECODE" of the tenant
    // dimension: applies to every later request that carries no selector
    // of its own; no reply on well-formed lines.
    const std::string name{util::trim(trimmed.substr(6))};
    if (name.empty() || name == "off" || name == "reset") {
      out.kind = LineKind::kModel;  // out.model stays empty = reset
    } else if (valid_model_name(name)) {
      out.model = name;
      out.kind = LineKind::kModel;
    } else {
      out.kind = LineKind::kMalformed;
      out.error = "bad MODEL name \"" + name + "\" (expected [A-Za-z0-9_.-])";
    }
    return out;
  }
  // The admin surface: one alias table, one parse path (see protocol.hpp
  // for the verb table). "#LEARN" is spelled-out sugar for "#REPLICA
  // learn", so the online-learning path rides the same admin dispatch.
  for (const AdminAlias& alias : kAdminAliases)
    if (parse_admin_alias(trimmed, alias, out)) return out;
  if (trimmed == "#QUIT") {
    out.kind = LineKind::kQuit;
    return out;
  }
  if (trimmed.front() == '{') {
    if (!parse_json_request(trimmed, out.request, out.error)) {
      out.kind = LineKind::kMalformed;
      return out;
    }
    out.kind = LineKind::kRequest;
  } else {
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      out.request.id = "-";
      out.request.tokens = split_tokens(trimmed);
    } else {
      out.request.id = std::string{util::trim(line.substr(0, tab))};
      // Suffix order mirrors the wire shape "<id>[@ms][#model]": the
      // selector is outermost, the deadline inside it.
      split_model_suffix(out.request.id, out.request.model);
      split_deadline_suffix(out.request.id, out.request.deadline_ms);
      if (out.request.id.empty()) out.request.id = "-";
      out.request.tokens = split_tokens(line.substr(tab + 1));
    }
    out.kind = LineKind::kRequest;
  }
  // Both flavours converge on the same canonical token text here, so
  // everything keyed on the sentence downstream (coalescing, the router
  // cache) sees one spelling per sentence regardless of transport. The
  // key is derived here, once, and threaded through SubmitOptions::key —
  // no later tier re-normalizes or re-joins the tokens.
  normalize_tokens(out.request.tokens);
  out.request.key = sentence_key(out.request.tokens);
  return out;
}

bool valid_model_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string normalize_token(std::string token) {
  static constexpr std::string_view kBom = "\xEF\xBB\xBF";
  if (token.rfind(kBom, 0) == 0) token.erase(0, kBom.size());
  std::string out;
  out.reserve(token.size());
  for (const char c : token) {
    const bool ws = c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
                    c == '\v' || c == '\f';
    if (ws) {
      if (!out.empty() && out.back() != ' ') out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

void normalize_tokens(std::vector<std::string>& tokens) {
  std::size_t kept = 0;
  for (std::string& token : tokens) {
    std::string normalized = normalize_token(std::move(token));
    if (!normalized.empty()) tokens[kept++] = std::move(normalized);
  }
  tokens.resize(kept);
}

std::string sentence_key(const std::vector<std::string>& tokens) {
  std::string key;
  for (const auto& token : tokens) {
    key += token;
    key += '\x1f';  // unit separator: never produced by tokenization
  }
  return key;
}

std::string format_response(const Request& request, const TagResponse& response) {
  // Tag names come from the label inventory of the model that decoded the
  // request (multi-entity models spell "B-protein" etc.); responses with
  // no carrier fall back to the legacy single-type set, whose names are
  // byte-identical to the old hard-coded "B"/"I"/"O".
  const text::LabelSet& labels =
      response.labels ? *response.labels : text::LabelSet::single();
  std::ostringstream out;
  if (request.json) {
    out << "{\"id\":\"" << json_escape(request.id) << "\",\"status\":\"";
    for (const char c : status_name(response.status))
      out << static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    out << '"';
    if (response.degraded) out << ",\"degraded\":true";
    if (response.ok()) {
      out << ",\"tags\":[";
      for (std::size_t i = 0; i < response.tags.size(); ++i)
        out << (i > 0 ? "," : "") << '"' << labels.name(response.tags[i]) << '"';
      out << ']';
    } else {
      out << ",\"error\":\"" << json_escape(response.error) << '"';
    }
    out << '}';
    return out.str();
  }
  out << sanitize_tsv(request.id) << '\t' << status_name(response.status)
      << (response.degraded ? "*" : "") << '\t';
  if (response.ok()) {
    for (std::size_t i = 0; i < response.tags.size(); ++i)
      out << (i > 0 ? " " : "") << labels.name(response.tags[i]);
  } else {
    out << sanitize_tsv(response.error);
  }
  return out.str();
}

std::string format_parse_error(const std::string& error) {
  return "-\tERROR\tmalformed request: " + sanitize_tsv(error);
}

std::string response_status(const std::string& line) {
  std::string status;
  if (!line.empty() && line.front() == '{') {
    static constexpr std::string_view kKey = "\"status\":\"";
    const std::size_t at = line.find(kKey);
    if (at == std::string::npos) return {};
    for (std::size_t i = at + kKey.size(); i < line.size() && line[i] != '"'; ++i)
      status.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(line[i]))));
    return status;
  }
  const std::size_t first = line.find('\t');
  if (first == std::string::npos) return {};
  const std::size_t second = line.find('\t', first + 1);
  status = line.substr(first + 1, second == std::string::npos
                                      ? std::string::npos
                                      : second - first - 1);
  if (!status.empty() && status.back() == '*') status.pop_back();  // degraded
  return status;
}

bool response_retryable(const std::string& line) {
  const std::string status = response_status(line);
  return status == "OVERLOADED" || status == "DEADLINE_EXCEEDED" ||
         status == "UNAVAILABLE";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace graphner::serve
