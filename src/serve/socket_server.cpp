#include "src/serve/socket_server.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <utility>

#include "src/obs/export.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/fault.hpp"
#include "src/util/logging.hpp"

namespace graphner::serve {
namespace {

void send_all(int fd, const std::string& data) {
  // Chaos hook: a peer that vanished mid-write. The handler treats it like
  // any real send failure — drop the connection, never the process.
  if (util::fault_fires("socket.write"))
    throw util::FaultInjectedError("socket.write on fd " + std::to_string(fd));
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("send failed: " + std::string(strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// The response body for one "#METRICS [flavour]" control line. The
/// multi-line flavours end with a terminator line so a client reading a
/// stream knows where the dump stops.
[[nodiscard]] std::string metrics_reply(const TagService& service,
                                        MetricsFlavour flavour) {
  switch (flavour) {
    case MetricsFlavour::kLegacy:
      return service.metrics_json() + "\n";
    case MetricsFlavour::kJson:
      return obs::export_json(service.observability_snapshot()) + "\n";
    case MetricsFlavour::kTsv:
      return obs::export_tsv(service.observability_snapshot()) + "\n#END\n";
    case MetricsFlavour::kProm:
      return obs::export_prometheus(service.observability_snapshot()) +
             "# EOF\n";
  }
  return "\n";
}

/// Pop one complete line out of `buffer`, if present.
[[nodiscard]] bool take_line(std::string& buffer, std::string& line) {
  const std::size_t nl = buffer.find('\n');
  if (nl == std::string::npos) return false;
  line.assign(buffer, 0, nl);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buffer.erase(0, nl + 1);
  return true;
}

}  // namespace

SocketServer::SocketServer(TagService& service, SocketServerConfig config)
    : service_(service), config_(config) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error("socket(): " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string reason = strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind(port " + std::to_string(config_.port) +
                             "): " + reason);
  }
  if (::listen(fd, config_.backlog) < 0) {
    const std::string reason = strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen(): " + reason);
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  util::log_info("serve: listening on port ", bound_port_);
}

void SocketServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listener = listen_fd_.load(std::memory_order_acquire);
    if (listener < 0) break;  // stop() already closed it
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    // Chaos hook: a transient accept-side failure (ECONNABORTED and kin).
    // The connection is lost; the accept loop must keep serving.
    if (util::fault_fires("socket.accept")) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    connections_.push_back(std::move(connection));
    const std::size_t slot = connections_.size() - 1;
    connections_.back()->thread =
        std::thread([this, slot] { handle_connection(slot); });
  }
}

void SocketServer::handle_connection(std::size_t slot) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    fd = connections_[slot]->fd;
  }

  std::string buffer;
  std::string line;
  char chunk[4096];
  // Requests submitted but not yet answered, in arrival order.
  std::deque<std::pair<Request, std::future<TagResponse>>> in_flight;
  // Connection-scoped decode override, set by "#DECODE" lines; nullopt
  // decodes under the service default.
  std::optional<crf::DecodeOptions> conn_decode;
  // Connection-scoped default model, set by "#MODEL" lines; empty resolves
  // to the server's default model (the pre-tenancy behaviour).
  std::string conn_model;
  bool quit = false;

  try {
    while (!quit) {
      // Drain buffered complete lines first: submitting them all before
      // waiting on any future is what lets one connection fill a batch.
      bool want_metrics = false;
      MetricsFlavour metrics_flavour = MetricsFlavour::kLegacy;
      bool want_admin = false;
      std::string admin_command;
      while (!quit && take_line(buffer, line)) {
        ParsedLine parsed = parse_request_line(line);
        switch (parsed.kind) {
          case LineKind::kRequest: {
            text::Sentence sentence;
            sentence.id = parsed.request.id;
            sentence.tokens = std::move(parsed.request.tokens);
            SubmitOptions options;
            options.deadline =
                std::chrono::milliseconds{parsed.request.deadline_ms};
            options.decode = conn_decode;
            // Per-request selector wins; else the connection's "#MODEL"
            // default; else empty = the server default model.
            options.model = parsed.request.model.empty()
                                ? conn_model
                                : parsed.request.model;
            options.key = std::move(parsed.request.key);
            in_flight.emplace_back(
                std::move(parsed.request),
                service_.submit(std::move(sentence), std::move(options)));
            break;
          }
          case LineKind::kMetrics:
            want_metrics = true;
            metrics_flavour = parsed.metrics_flavour;
            break;
          case LineKind::kDecode:
            // Applies to every later request on this connection; no reply,
            // so pipelined clients keep 1:1 request/response accounting.
            conn_decode = parsed.decode;
            break;
          case LineKind::kModel:
            // Same discipline as #DECODE: connection-scoped, no reply.
            conn_model = parsed.model;
            break;
          case LineKind::kAdmin:
            want_admin = true;
            admin_command = std::move(parsed.admin);
            break;
          case LineKind::kQuit:
            quit = true;
            break;
          case LineKind::kEmpty:
            break;
          case LineKind::kMalformed:
            send_all(fd, format_parse_error(parsed.error) + "\n");
            break;
        }
        // Answer control lines after the requests already pipelined.
        if (want_metrics || want_admin) break;
      }

      // Answer everything submitted so far, in order.
      while (!in_flight.empty()) {
        auto& [request, future] = in_flight.front();
        send_all(fd, format_response(request, future.get()) + "\n");
        in_flight.pop_front();
      }
      if (want_metrics) send_all(fd, metrics_reply(service_, metrics_flavour));
      if (want_admin) {
        std::string reply = service_.admin(admin_command);
        if (!reply.empty() && reply.back() != '\n') reply += '\n';
        send_all(fd, reply + "#END\n");
      }
      if (quit) break;
      // A "#METRICS" / "#REPLICA" may have left complete lines buffered —
      // handle them before blocking on the socket again.
      if (buffer.find('\n') != std::string::npos) continue;

      // Chaos hook: a read error mid-connection; the handler drops the
      // connection cleanly (in-flight futures above already resolved).
      if (util::fault_fires("socket.read")) break;
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) break;  // peer closed
      if (buffer.size() + static_cast<std::size_t>(n) > config_.max_line_bytes) {
        send_all(fd, format_parse_error("line exceeds " +
                                        std::to_string(config_.max_line_bytes) +
                                        " bytes") +
                         "\n");
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  } catch (const std::exception& e) {
    util::log_debug("serve: connection dropped: ", e.what());
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_[slot]->fd = -1;  // stop() must not shutdown a recycled fd
}

void SocketServer::stop() {
  if (stopping_.exchange(true)) return;
  const int listener = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listener >= 0) {
    ::shutdown(listener, SHUT_RDWR);  // wakes the blocked accept()
    ::close(listener);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_)
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections_)
    if (connection->thread.joinable()) connection->thread.join();
}

// --- ClientConnection ------------------------------------------------------

void ClientConnection::connect(const std::string& host, std::uint16_t port,
                               const util::BackoffPolicy& backoff) {
  close();
  util::Backoff retry(backoff);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
      throw std::runtime_error("socket(): " + std::string(strerror(errno)));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      // Not a dotted quad — resolve the name.
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* results = nullptr;
      if (::getaddrinfo(host.c_str(), nullptr, &hints, &results) != 0 ||
          results == nullptr) {
        ::close(fd);
        // Resolution failures are not transient server slowness — no retry.
        throw std::runtime_error("cannot resolve host " + host);
      }
      addr.sin_addr =
          reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
      ::freeaddrinfo(results);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      fd_ = fd;
      return;
    }
    const std::string reason = strerror(errno);
    ::close(fd);
    if (!retry.can_retry())
      throw ConnectRetriesExhausted(host + ":" + std::to_string(port),
                                    retry.attempts() + 1, reason);
    retry.sleep();  // capped exponential with jitter
  }
}

void ClientConnection::connect(const std::string& host, std::uint16_t port,
                               int retries, int initial_delay_ms) {
  util::BackoffPolicy policy;
  policy.max_retries = retries;
  policy.initial = std::chrono::milliseconds(initial_delay_ms);
  connect(host, port, policy);
}

bool ClientConnection::request_with_retry(const std::string& line,
                                          std::string& response,
                                          const util::BackoffPolicy& backoff) {
  // The request's own deadline bounds the whole retry loop: resending an
  // '@50' request 200 ms after the first send can only be shed as
  // DEADLINE_EXCEEDED again, so once the budget has elapsed the last
  // response is final and the rest of the backoff schedule is skipped.
  long deadline_ms = 0;
  {
    const ParsedLine parsed = parse_request_line(line);
    if (parsed.kind == LineKind::kRequest)
      deadline_ms = parsed.request.deadline_ms;
  }
  const auto give_up_at =
      deadline_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(deadline_ms)
          : std::chrono::steady_clock::time_point::max();
  util::Backoff retry(backoff);
  for (;;) {
    send_line(line);
    if (!recv_line(response)) return false;
    if (!response_retryable(response) || !retry.can_retry() ||
        std::chrono::steady_clock::now() >= give_up_at)
      return true;
    retry.sleep();
  }
}

void ClientConnection::send_line(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("not connected");
  send_all(fd_, line + "\n");
}

bool ClientConnection::recv_line(std::string& line) {
  if (fd_ < 0) return false;
  while (!take_line(buffer_, line)) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

void ClientConnection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace graphner::serve
