// The submit-side contract of the serving tier.
//
// SocketServer speaks to this interface, so the same TCP front-end serves
// either a single TaggingService (one worker pool over one model — the PR
// 2/4 server) or a Router (N replicas, cross-request cache, failover —
// DESIGN.md §11) without knowing which it got. Everything the wire needs
// is here: request submission, the two metrics serializations, and the
// "#REPLICA" admin surface.
#pragma once

#include <chrono>
#include <future>
#include <optional>
#include <string>

#include "src/crf/decode_options.hpp"
#include "src/obs/registry.hpp"
#include "src/serve/types.hpp"
#include "src/text/sentence.hpp"

namespace graphner::serve {

/// Everything a submission carries besides the sentence itself. Grown
/// instead of the old positional (deadline, decode) parameters so new
/// per-request dimensions ride one struct through every tier — socket
/// handler, router, replica, service — without another signature sweep.
struct SubmitOptions {
  /// Per-request deadline; <= 0 uses the service default.
  std::chrono::milliseconds deadline{0};
  /// Per-request decode override (the wire's "#DECODE"); nullopt decodes
  /// under the service default.
  std::optional<crf::DecodeOptions> decode;
  /// Tenant/model selector (the wire's "#model" id suffix, JSON "model"
  /// member or "#MODEL" connection default). Empty selects the default
  /// model, which is what every pre-tenancy client gets — full wire
  /// compatibility. An unknown name answers Status::kUnknownModel.
  std::string model;
  /// The canonical '\x1f'-joined sentence key, computed once at protocol
  /// ingestion (parse_request_line) right after token normalization.
  /// Every downstream consumer — micro-batch coalescing, the router
  /// cache, failover resubmits — reuses this instead of re-deriving it,
  /// so one request normalizes its tokens exactly once. Empty = the
  /// service derives it itself (direct API callers).
  std::string key;
};

class TagService {
 public:
  virtual ~TagService() = default;

  /// Enqueue one sentence. Must always return a future that will be
  /// fulfilled — with tags, or with a structured non-OK status — and must
  /// never block the caller on decode (pipelining depends on it).
  [[nodiscard]] virtual std::future<TagResponse> submit(
      text::Sentence sentence, SubmitOptions options) = 0;

  /// Positional sugar over the options struct (the pre-tenancy call shape;
  /// derived classes re-expose it with `using TagService::submit`).
  [[nodiscard]] std::future<TagResponse> submit(
      text::Sentence sentence, std::chrono::milliseconds deadline = {},
      std::optional<crf::DecodeOptions> decode = std::nullopt) {
    SubmitOptions options;
    options.deadline = deadline;
    options.decode = std::move(decode);
    return submit(std::move(sentence), std::move(options));
  }

  /// The full scrape the "#METRICS JSON|TSV|PROM" flavours serialize.
  [[nodiscard]] virtual obs::RegistrySnapshot observability_snapshot() const = 0;

  /// The legacy bare-"#METRICS" one-line JSON body.
  [[nodiscard]] virtual std::string metrics_json() const = 0;

  /// Handle a "#REPLICA <command>" admin line and return the reply body
  /// (free-form lines; the server terminates it with "#END"). The base
  /// implementation rejects everything — only the router tier has
  /// replicas to administer.
  [[nodiscard]] virtual std::string admin(const std::string& command) {
    return "ERROR no replica tier (single-service server): " + command + "\n";
  }
};

}  // namespace graphner::serve
