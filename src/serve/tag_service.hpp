// The submit-side contract of the serving tier.
//
// SocketServer speaks to this interface, so the same TCP front-end serves
// either a single TaggingService (one worker pool over one model — the PR
// 2/4 server) or a Router (N replicas, cross-request cache, failover —
// DESIGN.md §11) without knowing which it got. Everything the wire needs
// is here: request submission, the two metrics serializations, and the
// "#REPLICA" admin surface.
#pragma once

#include <chrono>
#include <future>
#include <optional>
#include <string>

#include "src/crf/decode_options.hpp"
#include "src/obs/registry.hpp"
#include "src/serve/types.hpp"
#include "src/text/sentence.hpp"

namespace graphner::serve {

class TagService {
 public:
  virtual ~TagService() = default;

  /// Enqueue one sentence. Must always return a future that will be
  /// fulfilled — with tags, or with a structured non-OK status — and must
  /// never block the caller on decode (pipelining depends on it).
  [[nodiscard]] virtual std::future<TagResponse> submit(
      text::Sentence sentence, std::chrono::milliseconds deadline = {},
      std::optional<crf::DecodeOptions> decode = std::nullopt) = 0;

  /// The full scrape the "#METRICS JSON|TSV|PROM" flavours serialize.
  [[nodiscard]] virtual obs::RegistrySnapshot observability_snapshot() const = 0;

  /// The legacy bare-"#METRICS" one-line JSON body.
  [[nodiscard]] virtual std::string metrics_json() const = 0;

  /// Handle a "#REPLICA <command>" admin line and return the reply body
  /// (free-form lines; the server terminates it with "#END"). The base
  /// implementation rejects everything — only the router tier has
  /// replicas to administer.
  [[nodiscard]] virtual std::string admin(const std::string& command) {
    return "ERROR no replica tier (single-service server): " + command + "\n";
  }
};

}  // namespace graphner::serve
