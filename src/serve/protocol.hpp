// Line-delimited wire protocol of the socket server (no external deps).
//
// Each request is one line, in either flavour; the response mirrors the
// flavour of the request:
//
//   TSV:   <id> '\t' <token> (' ' <token>)*
//      ->  <id> '\t' <STATUS> '\t' <tag> (' ' <tag>)*
//   JSON:  {"id": "...", "tokens": ["...", ...]}
//      ->  {"id":"...","status":"ok","tags":["B","I","O"]}
//
// A line with no tab and not starting with '{' is treated as bare
// space-separated tokens with id "-" (netcat-friendly). Control lines:
// "#METRICS" answers one JSON metrics line, "#QUIT" closes the
// connection. Non-OK statuses put the error detail where the tags would
// go. The JSON reader handles exactly this shape (string escapes
// included) — it is a protocol parser, not a general JSON library.
#pragma once

#include <string>
#include <vector>

#include "src/serve/types.hpp"

namespace graphner::serve {

struct Request {
  std::string id;
  std::vector<std::string> tokens;
  bool json = false;  ///< respond in the request's flavour
};

enum class LineKind {
  kRequest,    ///< `request` is filled
  kMetrics,    ///< "#METRICS"
  kQuit,       ///< "#QUIT"
  kEmpty,      ///< blank line — ignore
  kMalformed,  ///< `error` is filled
};

struct ParsedLine {
  LineKind kind = LineKind::kMalformed;
  Request request;
  std::string error;
};

[[nodiscard]] ParsedLine parse_request_line(const std::string& line);

/// One response line (no trailing newline), in the request's flavour.
[[nodiscard]] std::string format_response(const Request& request,
                                          const TagResponse& response);

/// Error reply for a line that failed to parse.
[[nodiscard]] std::string format_parse_error(const std::string& error);

/// Minimal JSON string escaping (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace graphner::serve
