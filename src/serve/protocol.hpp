// Line-delimited wire protocol of the socket server (no external deps).
//
// Each request is one line, in either flavour; the response mirrors the
// flavour of the request:
//
//   TSV:   <id>['@'<deadline_ms>]['#'<model>] '\t' <token> (' ' <token>)*
//      ->  <id> '\t' <STATUS> '\t' <tag> (' ' <tag>)*
//   JSON:  {"id": "...", "tokens": [...], "deadline_ms": 50, "model": "x"}
//      ->  {"id":"...","status":"ok","tags":["B","I","O"]}
//
// The optional model selector is the tenant dimension (DESIGN.md §14): it
// names which resident model generation decodes the request. "#MODEL"
// sets a connection-scoped default for requests that carry none:
//
//   #MODEL jnlpba   every later bare request decodes under model "jnlpba"
//   #MODEL off      drop the default (bare "#MODEL" does the same)
//
// Like "#DECODE", a well-formed "#MODEL" line produces no reply. Requests
// with no selector anywhere keep the pre-tenancy semantics bit-for-bit:
// they resolve to the registry's "default" alias, so model-less clients
// never see the tenant dimension at all. An unknown name answers with the
// structured UNKNOWN_MODEL status; a tenant past its token-bucket quota
// answers QUOTA_EXCEEDED. Neither is retryable or triggers failover. Tag
// names in responses come from the *serving model's* label inventory, so
// a multi-entity model answers "B-protein I-protein O ..." while
// single-type models keep the legacy "B I O" spelling.
//
// A line with no tab and not starting with '{' is treated as bare
// space-separated tokens with id "-" (netcat-friendly). Control lines:
// "#QUIT" closes the connection; "#METRICS" scrapes the server:
//
//   #METRICS        one JSON line of the service's own metrics
//                   (DEPRECATED — see MetricsFlavour::kLegacy)
//   #METRICS JSON   one JSON line of the full observability snapshot
//                   (serve.* + process-global + fault.* counters)
//   #METRICS TSV    same snapshot as "name<TAB>value" lines, then "#END"
//   #METRICS PROM   same snapshot in Prometheus text format, then "# EOF"
//
// "#DECODE" selects the decode options (DESIGN.md §10) for every later
// request on the connection:
//
//   #DECODE beam=4 threshold=0.001 quantized=int16
//   #DECODE off
//
// Any subset of beam= (0 or inf = unlimited), threshold= and quantized=
// (off | int16 | int8) may appear; omitted knobs keep their exact
// defaults. "#DECODE off" (or a bare "#DECODE") drops the connection
// override and returns to the server's configured options. Well-formed
// lines produce no reply — pipelined clients keep their 1:1
// request/response accounting — while malformed ones answer with the
// usual parse-error line.
//
// Non-OK statuses put the error detail where the tags would go. The JSON
// reader handles exactly this shape (string escapes included) — it is a
// protocol parser, not a general JSON library.
//
// Admin channel — ONE parse path, one verb table. Every administrative
// line funnels into LineKind::kAdmin and is dispatched by the serving
// tier (TagService::admin). "#REPLICA <verb> ..." is the canonical
// spelling; "#LEARN <args>" is pure sugar for "#REPLICA learn <args>"
// (same size cap, same reply framing — free-form lines terminated by
// "#END"). The verbs the router tier implements:
//
//   verb                            | effect
//   --------------------------------+---------------------------------
//   status                          | per-replica health/fingerprint/
//                                   | counters + cache line
//   kill <i>                        | drain replica i, then reject
//   revive <i>                      | fresh worker pool on replica i
//   swap <i> <path>                 | hot-swap replica i's model
//   model add <name> <path>         | load + register a tenant model
//   model swap <name> <path>        | hot-swap a tenant's generation
//   model drop <name>               | unload a tenant model
//   model list                      | resident models, one per line
//   quota <name> <rate> <burst>     | set a tenant's token bucket
//   quota <name> off                | remove the tenant's quota
//   learn text <tokens...>          | absorb one sentence (DESIGN.md §12)
//   learn file <path>               | absorb every sentence line of a file
//   learn status                    | learner/WAL/generation state
//   learn rollback                  | restore the previous generation
//
// Admin payloads larger than kMaxAdminLineBytes are rejected at parse
// time with a structured error (see below).
//
// Fault-tolerance fields: the optional per-request deadline (an '@'
// suffix on the TSV id, a "deadline_ms" member in JSON) bounds how long
// the request may wait before the service sheds it with status
// DEADLINE_EXCEEDED. Responses decoded in degraded mode (plain Viterbi
// fallback under overload) carry "OK*" as the TSV status and
// "degraded":true in JSON — same tags shape, lower decode tier.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/crf/decode_options.hpp"
#include "src/serve/types.hpp"

namespace graphner::serve {

/// Upper bound on the payload of one admin control line ("#REPLICA ..." /
/// "#LEARN ..."). Admin lines are parsed and echoed into logs and the WAL;
/// an unbounded one would let a single connection balloon the learn
/// journal (or the log) with one write. Oversized lines are rejected at
/// parse time with a structured error, before any admin dispatch runs.
inline constexpr std::size_t kMaxAdminLineBytes = 64 * 1024;

struct Request {
  std::string id;
  std::vector<std::string> tokens;
  bool json = false;  ///< respond in the request's flavour
  /// Per-request deadline in milliseconds; 0 = use the service default.
  long deadline_ms = 0;
  /// Tenant/model selector ('#<name>' TSV id suffix, "model" JSON member).
  /// Empty = the connection's "#MODEL" default, else the server default.
  std::string model;
  /// The canonical '\x1f'-joined sentence key over the normalized tokens,
  /// computed exactly once here at ingestion. Threaded through
  /// SubmitOptions::key so coalescing, the router cache and failover
  /// resubmits all reuse it instead of re-normalizing.
  std::string key;
};

enum class LineKind {
  kRequest,    ///< `request` is filled
  kMetrics,    ///< "#METRICS [JSON|TSV|PROM]" — `metrics_flavour` is filled
  kDecode,     ///< "#DECODE ..." — `decode` is filled (nullopt = reset)
  kModel,      ///< "#MODEL ..." — `model` is filled (empty = reset)
  kAdmin,      ///< "#REPLICA ..." / "#LEARN ..." — `admin` holds the words
  kQuit,       ///< "#QUIT"
  kEmpty,      ///< blank line — ignore
  kMalformed,  ///< `error` is filled
};

/// Which serialization a "#METRICS" control line asked for.
enum class MetricsFlavour {
  /// Bare "#METRICS": the service's own metrics, one JSON line.
  /// DEPRECATED since the tenant-scoped API: the body only covers the
  /// answering service's private registry — no tenant.*, cache.* or
  /// fault.* rows — so dashboards over it silently miss the multi-tenant
  /// surface. Kept bit-for-bit for old scrapers; new clients should send
  /// "#METRICS JSON" (same transport, full snapshot). Scheduled for
  /// removal once nothing in CI scrapes the bare form.
  kLegacy,
  kJson,    ///< full observability snapshot, one JSON line
  kTsv,     ///< full snapshot as name<TAB>value lines, terminated "#END"
  kProm,    ///< full snapshot as Prometheus text, terminated "# EOF"
};

struct ParsedLine {
  LineKind kind = LineKind::kMalformed;
  Request request;
  MetricsFlavour metrics_flavour = MetricsFlavour::kLegacy;
  /// For kDecode: the connection's new decode override, or nullopt for
  /// "#DECODE off" (drop the override, use the server default).
  std::optional<crf::DecodeOptions> decode;
  /// For kModel: the connection's new default model, or empty for
  /// "#MODEL off" (drop the default, use the server default).
  std::string model;
  /// For kAdmin: the words after "#REPLICA" (e.g. "kill 1", "status"),
  /// interpreted by the serving tier (TagService::admin). The reply is
  /// free-form lines terminated by "#END".
  std::string admin;
  std::string error;
};

[[nodiscard]] ParsedLine parse_request_line(const std::string& line);

/// Canonical sentence-text normalization, applied once at protocol
/// ingestion so the TSV and JSON flavours agree byte-for-byte on what a
/// sentence *is*: strips a UTF-8 BOM, maps embedded whitespace (tab, CR,
/// LF, vertical tab, form feed) to spaces, trims, collapses internal runs
/// to a single space. Returns empty when nothing survives (the token is
/// dropped). Both the micro-batcher's duplicate coalescing and the
/// router's cross-request cache key on the normalized form, so the same
/// sentence submitted via either flavour hits the same entry.
[[nodiscard]] std::string normalize_token(std::string token);

/// normalize_token over every token, dropping the ones that normalize to
/// nothing (e.g. a JSON token that was only whitespace).
void normalize_tokens(std::vector<std::string>& tokens);

/// The canonical key for a normalized token sequence: tokens joined with
/// the unit separator '\x1f' (never produced by tokenization). This is
/// the coalescing key and the sentence part of the router cache key.
[[nodiscard]] std::string sentence_key(const std::vector<std::string>& tokens);

/// True when `name` is a well-formed model/tenant name: non-empty, only
/// [A-Za-z0-9_.-]. The restricted charset is what lets the '#<model>' TSV
/// id suffix coexist with ids that legitimately contain '#' — a suffix
/// that fails this test is part of the id, not a selector. The router's
/// "model add" admin verb enforces the same rule, so every registrable
/// name is also addressable on the wire.
[[nodiscard]] bool valid_model_name(std::string_view name) noexcept;

/// One response line (no trailing newline), in the request's flavour.
[[nodiscard]] std::string format_response(const Request& request,
                                          const TagResponse& response);

/// Error reply for a line that failed to parse.
[[nodiscard]] std::string format_parse_error(const std::string& error);

/// The status carried by a response line in either flavour ("OK",
/// "OVERLOADED", ... — the degraded marker is stripped, JSON statuses are
/// upper-cased). Empty when the line is not a well-formed response.
[[nodiscard]] std::string response_status(const std::string& line);

/// True when a response line carries a retryable status (OVERLOADED /
/// DEADLINE_EXCEEDED) — the client-side mirror of status_retryable().
[[nodiscard]] bool response_retryable(const std::string& line);

/// Minimal JSON string escaping (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace graphner::serve
