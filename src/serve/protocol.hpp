// Line-delimited wire protocol of the socket server (no external deps).
//
// Each request is one line, in either flavour; the response mirrors the
// flavour of the request:
//
//   TSV:   <id>['@'<deadline_ms>] '\t' <token> (' ' <token>)*
//      ->  <id> '\t' <STATUS> '\t' <tag> (' ' <tag>)*
//   JSON:  {"id": "...", "tokens": ["...", ...], "deadline_ms": 50}
//      ->  {"id":"...","status":"ok","tags":["B","I","O"]}
//
// A line with no tab and not starting with '{' is treated as bare
// space-separated tokens with id "-" (netcat-friendly). Control lines:
// "#QUIT" closes the connection; "#METRICS" scrapes the server:
//
//   #METRICS        one JSON line of the service's own metrics (legacy)
//   #METRICS JSON   one JSON line of the full observability snapshot
//                   (serve.* + process-global + fault.* counters)
//   #METRICS TSV    same snapshot as "name<TAB>value" lines, then "#END"
//   #METRICS PROM   same snapshot in Prometheus text format, then "# EOF"
//
// "#DECODE" selects the decode options (DESIGN.md §10) for every later
// request on the connection:
//
//   #DECODE beam=4 threshold=0.001 quantized=int16
//   #DECODE off
//
// Any subset of beam= (0 or inf = unlimited), threshold= and quantized=
// (off | int16 | int8) may appear; omitted knobs keep their exact
// defaults. "#DECODE off" (or a bare "#DECODE") drops the connection
// override and returns to the server's configured options. Well-formed
// lines produce no reply — pipelined clients keep their 1:1
// request/response accounting — while malformed ones answer with the
// usual parse-error line.
//
// Non-OK statuses put the error detail where the tags would go. The JSON
// reader handles exactly this shape (string escapes included) — it is a
// protocol parser, not a general JSON library.
//
// "#LEARN" feeds the online-learning path (DESIGN.md §12) and is sugar
// for the admin channel ("#LEARN x" parses as "#REPLICA learn x"):
//
//   #LEARN text <tokens...>   absorb one space-separated sentence
//   #LEARN file <path>        absorb every sentence line of a local file
//   #LEARN status             report learner/WAL/generation state
//   #LEARN rollback           restore the previous learned generation
//
// The reply is free-form lines terminated by "#END", like #REPLICA.
// Admin payloads larger than kMaxAdminLineBytes are rejected at parse
// time with a structured error (see below).
//
// Fault-tolerance fields: the optional per-request deadline (an '@'
// suffix on the TSV id, a "deadline_ms" member in JSON) bounds how long
// the request may wait before the service sheds it with status
// DEADLINE_EXCEEDED. Responses decoded in degraded mode (plain Viterbi
// fallback under overload) carry "OK*" as the TSV status and
// "degraded":true in JSON — same tags shape, lower decode tier.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/crf/decode_options.hpp"
#include "src/serve/types.hpp"

namespace graphner::serve {

/// Upper bound on the payload of one admin control line ("#REPLICA ..." /
/// "#LEARN ..."). Admin lines are parsed and echoed into logs and the WAL;
/// an unbounded one would let a single connection balloon the learn
/// journal (or the log) with one write. Oversized lines are rejected at
/// parse time with a structured error, before any admin dispatch runs.
inline constexpr std::size_t kMaxAdminLineBytes = 64 * 1024;

struct Request {
  std::string id;
  std::vector<std::string> tokens;
  bool json = false;  ///< respond in the request's flavour
  /// Per-request deadline in milliseconds; 0 = use the service default.
  long deadline_ms = 0;
};

enum class LineKind {
  kRequest,    ///< `request` is filled
  kMetrics,    ///< "#METRICS [JSON|TSV|PROM]" — `metrics_flavour` is filled
  kDecode,     ///< "#DECODE ..." — `decode` is filled (nullopt = reset)
  kAdmin,      ///< "#REPLICA ..." / "#LEARN ..." — `admin` holds the words
  kQuit,       ///< "#QUIT"
  kEmpty,      ///< blank line — ignore
  kMalformed,  ///< `error` is filled
};

/// Which serialization a "#METRICS" control line asked for.
enum class MetricsFlavour {
  kLegacy,  ///< bare "#METRICS": the service's own metrics, one JSON line
  kJson,    ///< full observability snapshot, one JSON line
  kTsv,     ///< full snapshot as name<TAB>value lines, terminated "#END"
  kProm,    ///< full snapshot as Prometheus text, terminated "# EOF"
};

struct ParsedLine {
  LineKind kind = LineKind::kMalformed;
  Request request;
  MetricsFlavour metrics_flavour = MetricsFlavour::kLegacy;
  /// For kDecode: the connection's new decode override, or nullopt for
  /// "#DECODE off" (drop the override, use the server default).
  std::optional<crf::DecodeOptions> decode;
  /// For kAdmin: the words after "#REPLICA" (e.g. "kill 1", "status"),
  /// interpreted by the serving tier (TagService::admin). The reply is
  /// free-form lines terminated by "#END".
  std::string admin;
  std::string error;
};

[[nodiscard]] ParsedLine parse_request_line(const std::string& line);

/// Canonical sentence-text normalization, applied once at protocol
/// ingestion so the TSV and JSON flavours agree byte-for-byte on what a
/// sentence *is*: strips a UTF-8 BOM, maps embedded whitespace (tab, CR,
/// LF, vertical tab, form feed) to spaces, trims, collapses internal runs
/// to a single space. Returns empty when nothing survives (the token is
/// dropped). Both the micro-batcher's duplicate coalescing and the
/// router's cross-request cache key on the normalized form, so the same
/// sentence submitted via either flavour hits the same entry.
[[nodiscard]] std::string normalize_token(std::string token);

/// normalize_token over every token, dropping the ones that normalize to
/// nothing (e.g. a JSON token that was only whitespace).
void normalize_tokens(std::vector<std::string>& tokens);

/// The canonical key for a normalized token sequence: tokens joined with
/// the unit separator '\x1f' (never produced by tokenization). This is
/// the coalescing key and the sentence part of the router cache key.
[[nodiscard]] std::string sentence_key(const std::vector<std::string>& tokens);

/// One response line (no trailing newline), in the request's flavour.
[[nodiscard]] std::string format_response(const Request& request,
                                          const TagResponse& response);

/// Error reply for a line that failed to parse.
[[nodiscard]] std::string format_parse_error(const std::string& error);

/// The status carried by a response line in either flavour ("OK",
/// "OVERLOADED", ... — the degraded marker is stripped, JSON statuses are
/// upper-cased). Empty when the line is not a well-formed response.
[[nodiscard]] std::string response_status(const std::string& line);

/// True when a response line carries a retryable status (OVERLOADED /
/// DEADLINE_EXCEEDED) — the client-side mirror of status_retryable().
[[nodiscard]] bool response_retryable(const std::string& line);

/// Minimal JSON string escaping (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace graphner::serve
