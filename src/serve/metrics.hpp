// Serving metrics, redesigned onto the obs metric registry.
//
// ServiceMetrics owns a *private* obs::Registry (not Registry::global():
// every TaggingService — and every unit test — gets isolated counts) and
// resolves its instruments once at construction: sharded counters for the
// admission/outcome tallies, a gauge for queue depth, and histograms for
// queue-wait/decode latency (log10(1+us) bins, quantiles inverted back to
// microseconds at report time) and batch size. The per-worker slot +
// mutex plumbing the old implementation carried is gone — the registry's
// sharding gives the same uncontended-write discipline for free, and the
// worker id disappears from the observer API.
//
// MetricsSnapshot keeps its pre-registry shape (typed counter fields,
// LatencyHistogram accessors, mean_batch_size()) so service callers and
// tests are untouched; it is now materialized as a typed view over the
// registry snapshot it carries, and to_json() delegates to the shared
// obs JSON exporter.
#pragma once

#include <cstdint>
#include <string>

#include "src/obs/registry.hpp"
#include "src/serve/types.hpp"
#include "src/util/histogram.hpp"

namespace graphner::serve {

/// util::Histogram over log10(1 + us) with report-time inversion.
class LatencyHistogram {
 public:
  LatencyHistogram();
  /// Typed view over an obs histogram snapshot recorded with
  /// obs::latency_us_spec() (bin-domain buckets + raw-microsecond sum).
  explicit LatencyHistogram(const obs::Histogram::Snapshot& snapshot);

  void record_us(double us) noexcept;
  void merge(const LatencyHistogram& other) {
    histogram_.merge(other.histogram_);
    sum_us_ += other.sum_us_;
  }

  [[nodiscard]] std::size_t total() const noexcept { return histogram_.total(); }
  [[nodiscard]] double mean_us() const noexcept;
  [[nodiscard]] double max_us() const noexcept;
  /// Quantile in microseconds (inverse of the log transform).
  [[nodiscard]] double quantile_us(double q) const noexcept;

 private:
  util::Histogram histogram_;
  double sum_us_ = 0.0;  ///< arithmetic mean support (mean of logs is not it)
};

/// Point-in-time typed view over the service registry. Copyable, detached
/// from the live service.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;          ///< admission attempts
  std::uint64_t rejected_overload = 0;  ///< queue-full rejections
  std::uint64_t rejected_shutdown = 0;  ///< submitted after stop()
  std::uint64_t rejected_unknown_model = 0;  ///< bad SubmitOptions::model
  std::uint64_t completed = 0;          ///< responses produced by workers
  std::uint64_t errors = 0;             ///< decode exceptions
  std::uint64_t batches = 0;            ///< micro-batches decoded
  std::uint64_t coalesced = 0;          ///< duplicates served by a shared decode
  std::uint64_t deadline_expired = 0;   ///< shed before decode (deadline passed)
  std::uint64_t degraded = 0;           ///< answered by the degraded decode path

  LatencyHistogram queue_wait;  ///< enqueue -> batch dequeue
  LatencyHistogram decode;      ///< feature extraction + Viterbi
  util::Histogram batch_size{0.0, 256.0, 256};

  /// The registry snapshot this view was materialized from.
  obs::RegistrySnapshot raw;

  [[nodiscard]] double mean_batch_size() const noexcept {
    return batch_size.mean();
  }
  /// One-line JSON via the shared obs exporter:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
};

class ServiceMetrics {
 public:
  ServiceMetrics();
  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  // Observer hooks (any thread; a counter bump is one uncontended RMW).
  void on_submitted() noexcept { submitted_.inc(); }
  void on_rejected(Status status) noexcept;
  void on_batch(std::size_t batch_size) noexcept;
  void on_completed(double queue_us, double decode_us, bool error,
                    bool coalesced = false, bool degraded = false) noexcept;
  /// A queued request whose deadline passed before decode.
  void on_expired(double queue_us) noexcept;
  /// Gauges are observations, not state — settable through a const ref so
  /// scrape paths can refresh the depth right before snapshotting.
  void set_queue_depth(std::size_t depth) const noexcept {
    queue_depth_.set(static_cast<double>(depth));
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

 private:
  obs::Registry registry_;  ///< must precede the instrument references
  obs::Counter& submitted_;
  obs::Counter& rejected_overload_;
  obs::Counter& rejected_shutdown_;
  obs::Counter& rejected_unknown_model_;
  obs::Counter& completed_;
  obs::Counter& errors_;
  obs::Counter& batches_;
  obs::Counter& coalesced_;
  obs::Counter& deadline_expired_;
  obs::Counter& degraded_;
  obs::Gauge& queue_depth_;
  obs::Histogram& queue_wait_;
  obs::Histogram& decode_;
  obs::Histogram& batch_size_;
};

}  // namespace graphner::serve
