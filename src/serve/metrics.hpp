// Serving metrics: throughput counters + latency/batch-size histograms.
//
// Latencies are recorded as log10(1 + microseconds) into a fixed-bin
// util::Histogram, which gives near-constant *relative* resolution from
// 1 us to ~100 s out of 256 uniform bins; quantiles are mapped back to
// microseconds at report time. Aggregation follows the ownership rule the
// histogram layer was built for: every decode worker writes only its own
// WorkerMetrics slot (guarded by that slot's uncontended mutex so a
// concurrent snapshot is race-free under TSAN), and snapshot() combines
// the slots with Histogram::merge — no shared hot-path counters except
// the front-door admission atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/serve/types.hpp"
#include "src/util/histogram.hpp"

namespace graphner::serve {

/// util::Histogram over log10(1 + us) with report-time inversion.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record_us(double us) noexcept;
  void merge(const LatencyHistogram& other) {
    histogram_.merge(other.histogram_);
    sum_us_ += other.sum_us_;
  }

  [[nodiscard]] std::size_t total() const noexcept { return histogram_.total(); }
  [[nodiscard]] double mean_us() const noexcept;
  [[nodiscard]] double max_us() const noexcept;
  /// Quantile in microseconds (inverse of the log transform).
  [[nodiscard]] double quantile_us(double q) const noexcept;

 private:
  util::Histogram histogram_;
  double sum_us_ = 0.0;  ///< arithmetic mean support (mean of logs is not it)
};

/// Point-in-time aggregate across all workers. Copyable, detached from the
/// live service.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;          ///< admission attempts
  std::uint64_t rejected_overload = 0;  ///< queue-full rejections
  std::uint64_t rejected_shutdown = 0;  ///< submitted after stop()
  std::uint64_t completed = 0;          ///< responses produced by workers
  std::uint64_t errors = 0;             ///< decode exceptions
  std::uint64_t batches = 0;            ///< micro-batches decoded
  std::uint64_t coalesced = 0;          ///< duplicates served by a shared decode
  std::uint64_t deadline_expired = 0;   ///< shed before decode (deadline passed)
  std::uint64_t degraded = 0;           ///< answered by the degraded decode path

  LatencyHistogram queue_wait;  ///< enqueue -> batch dequeue
  LatencyHistogram decode;      ///< feature extraction + Viterbi
  util::Histogram batch_size{0.0, 256.0, 256};

  [[nodiscard]] double mean_batch_size() const noexcept {
    return batch_size.mean();
  }
  /// One-line JSON object (counters + latency quantiles + batch shape).
  [[nodiscard]] std::string to_json() const;
};

class ServiceMetrics {
 public:
  explicit ServiceMetrics(std::size_t workers);

  // Front door (any thread).
  void on_submitted() noexcept { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected(Status status) noexcept;

  // Worker side; `worker` must be < workers passed at construction and each
  // worker id must be used by exactly one thread.
  void on_batch(std::size_t worker, std::size_t batch_size);
  void on_completed(std::size_t worker, double queue_us, double decode_us,
                    bool error, bool coalesced = false, bool degraded = false);
  /// A queued request whose deadline passed before decode (shed by `worker`).
  void on_expired(std::size_t worker, double queue_us);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct WorkerMetrics {
    mutable std::mutex mutex;  ///< worker vs. snapshot; never worker vs. worker
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t degraded = 0;
    LatencyHistogram queue_wait;
    LatencyHistogram decode;
    util::Histogram batch_size{0.0, 256.0, 256};
  };

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::vector<std::unique_ptr<WorkerMetrics>> workers_;
};

}  // namespace graphner::serve
