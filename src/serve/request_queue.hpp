// Bounded MPMC request queue with dynamic micro-batching.
//
// Producers (client threads, socket connections) push single requests;
// consumers (decode workers) pop *batches*. A batch closes when either
// `max_batch` requests are waiting or the oldest waiting request has aged
// `max_delay` — so an idle service answers a lone request within the delay
// budget while a busy one amortises wakeups and warm-buffer reuse over
// full batches. Depth is bounded: a push against a full queue is rejected
// immediately (the caller answers with Status::kOverloaded) instead of
// blocking the producer — explicit backpressure rather than unbounded
// memory growth. shutdown() stops admission but keeps handing out batches
// until the queue is drained, which is what graceful stop needs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "src/crf/decode_options.hpp"
#include "src/serve/types.hpp"
#include "src/text/sentence.hpp"

namespace graphner::serve {

struct BatchPolicy {
  std::size_t max_batch = 32;        ///< batch closes at this many requests
  std::size_t max_queue_depth = 1024;  ///< pushes beyond this are rejected
  std::chrono::microseconds max_delay{2000};  ///< max wait for a fuller batch
  /// Decode identical token sequences within one micro-batch once and fan
  /// the result out to every duplicate. Decode is deterministic, so the
  /// duplicates' responses are byte-identical; corpus-shaped traffic (the
  /// recurring surface forms GraphNER itself exploits) coalesces heavily.
  /// Only batches can do this — a single-request-at-a-time server never
  /// sees two identical requests at once.
  bool coalesce_duplicates = true;
};

/// One queued request: the sentence, the promise the decode worker
/// fulfills, the enqueue timestamp (queue-wait metrics), and the deadline
/// after which the worker sheds it without decoding.
struct PendingRequest {
  text::Sentence sentence;
  std::promise<TagResponse> promise;
  std::chrono::steady_clock::time_point enqueued_at;
  /// max() = no deadline. Carried through the queue so expiry is checked
  /// where it matters: right before the (expensive) decode.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Per-request decode options (pruning / quantization); nullopt decodes
  /// under the service default. Set by the wire's "#DECODE" control line.
  std::optional<crf::DecodeOptions> decode;
  /// Canonical sentence key, threaded from SubmitOptions (or derived once
  /// at admission) so the coalescing worker never re-joins the tokens.
  std::string key;

  [[nodiscard]] bool expired(std::chrono::steady_clock::time_point now) const noexcept {
    return now > deadline;
  }
};

class BatchQueue {
 public:
  explicit BatchQueue(BatchPolicy policy) : policy_(policy) {}

  enum class PushResult { kAccepted, kOverloaded, kShutdown };

  /// Non-blocking admission. `request` is consumed only on kAccepted; on
  /// rejection it is left intact so the caller can fulfill its promise
  /// with the structured rejection.
  PushResult push(PendingRequest&& request);

  /// Block until a micro-batch is ready (see file comment for the closing
  /// rule), move it into `out` (cleared first), and return true. Returns
  /// false only after shutdown() once the queue is fully drained.
  bool pop_batch(std::vector<PendingRequest>& out);

  /// Stop admitting work and wake every waiter. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] const BatchPolicy& policy() const noexcept { return policy_; }

 private:
  BatchPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<PendingRequest> queue_;
  bool shutdown_ = false;
};

}  // namespace graphner::serve
