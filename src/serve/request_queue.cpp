#include "src/serve/request_queue.hpp"

#include <algorithm>

#include "src/util/fault.hpp"

namespace graphner::serve {

BatchQueue::PushResult BatchQueue::push(PendingRequest&& request) {
  // Chaos hook: a slow producer (queue.push stall) widens the race windows
  // the shutdown/overload tests probe.
  util::fault_stall_point("queue.push");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return PushResult::kShutdown;
    if (queue_.size() >= policy_.max_queue_depth) return PushResult::kOverloaded;
    queue_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

bool BatchQueue::pop_batch(std::vector<PendingRequest>& out) {
  out.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
  if (queue_.empty()) return false;  // shutdown and fully drained

  // Batch window: once work exists, linger until the batch fills or the
  // oldest request's age reaches max_delay. During shutdown there is no
  // point waiting for traffic that can no longer arrive.
  const auto deadline = queue_.front().enqueued_at + policy_.max_delay;
  while (queue_.size() < policy_.max_batch && !shutdown_) {
    if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }

  const std::size_t take = std::min(queue_.size(), policy_.max_batch);
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  // If more than max_batch piled up, another worker can start immediately.
  if (!queue_.empty()) not_empty_.notify_one();
  return true;
}

void BatchQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
}

std::size_t BatchQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace graphner::serve
