#include "src/serve/service.hpp"

#include <chrono>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/serve/protocol.hpp"
#include "src/util/fault.hpp"
#include "src/util/logging.hpp"

namespace graphner::serve {
namespace {

[[nodiscard]] std::size_t resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

[[nodiscard]] double us_between(std::chrono::steady_clock::time_point from,
                                std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

TaggingService::TaggingService(const core::GraphNerModel& model,
                               ServiceConfig config)
    : model_(model),
      config_(config),
      decode_default_(config.decode ? *config.decode : model.decode_options()),
      labels_(std::make_shared<const text::LabelSet>(model.labels())),
      queue_(config.batching) {
  if (config_.model_name.empty()) config_.model_name = "default";
  // A degrade policy with low > high would flap; clamp to a sane hysteresis.
  if (config_.degrade.low_watermark > config_.degrade.high_watermark)
    config_.degrade.low_watermark = config_.degrade.high_watermark;
  const std::size_t n = resolve_workers(config.workers);
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
  util::log_info("serve: started ", n, " workers, max_batch ",
                 config.batching.max_batch, ", queue depth ",
                 config.batching.max_queue_depth, ", batch delay ",
                 config.batching.max_delay.count(), " us",
                 config_.blend_decode ? ", blend decode" : "",
                 config_.degrade.high_watermark > 0 ? ", degradable" : "",
                 decode_default_.exact()
                     ? std::string{}
                     : ", decode " + decode_default_.to_string());
}

TaggingService::~TaggingService() { stop(); }

std::future<TagResponse> TaggingService::submit(text::Sentence sentence,
                                                SubmitOptions options) {
  if (!options.model.empty() && options.model != config_.model_name) {
    // A single-model service has exactly one tenant; anything else is a
    // selector error, answered structurally and without touching the queue.
    std::promise<TagResponse> promise;
    TagResponse response;
    response.status = Status::kUnknownModel;
    response.error = "unknown model \"" + options.model +
                     "\" (this server serves \"" + config_.model_name + "\")";
    metrics_.on_rejected(response.status);
    promise.set_value(std::move(response));
    return promise.get_future();
  }

  PendingRequest request;
  // The canonical sentence key: threaded from protocol ingestion when the
  // request came over the wire, derived exactly once here otherwise.
  request.key = options.key.empty() ? sentence_key(sentence.tokens)
                                    : std::move(options.key);
  request.sentence = std::move(sentence);
  request.decode = std::move(options.decode);
  request.enqueued_at = std::chrono::steady_clock::now();
  std::chrono::milliseconds deadline = options.deadline;
  if (deadline.count() <= 0) deadline = config_.default_deadline;
  if (deadline.count() > 0) request.deadline = request.enqueued_at + deadline;
  std::future<TagResponse> future = request.promise.get_future();

  metrics_.on_submitted();
  // push() consumes the request only when it is accepted; on rejection the
  // promise is still ours to resolve with the structured status.
  switch (queue_.push(std::move(request))) {
    case BatchQueue::PushResult::kAccepted:
      break;
    case BatchQueue::PushResult::kOverloaded: {
      TagResponse response;
      response.status = Status::kOverloaded;
      response.error = "queue full (depth " +
                       std::to_string(queue_.policy().max_queue_depth) +
                       "), retry later";
      metrics_.on_rejected(response.status);
      request.promise.set_value(std::move(response));
      break;
    }
    case BatchQueue::PushResult::kShutdown: {
      TagResponse response;
      response.status = Status::kShutdown;
      response.error = "service is stopping";
      metrics_.on_rejected(response.status);
      request.promise.set_value(std::move(response));
      break;
    }
  }
  return future;
}

TagResponse TaggingService::tag(text::Sentence sentence) {
  return submit(std::move(sentence)).get();
}

void TaggingService::stop() {
  if (stopped_.exchange(true)) return;
  queue_.shutdown();  // workers drain the remaining batches, then exit
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
}

bool TaggingService::update_degraded_mode() {
  if (config_.degrade.high_watermark == 0) return false;
  const std::size_t depth = queue_.depth();
  bool degraded = degraded_.load(std::memory_order_relaxed);
  if (!degraded && depth >= config_.degrade.high_watermark) {
    degraded = true;
    degraded_.store(true, std::memory_order_relaxed);
    util::log_info("serve: queue depth ", depth, " >= high-water ",
                   config_.degrade.high_watermark,
                   " — degrading to plain Viterbi");
  } else if (degraded && depth <= config_.degrade.low_watermark) {
    degraded = false;
    degraded_.store(false, std::memory_order_relaxed);
    util::log_info("serve: queue depth ", depth, " <= low-water ",
                   config_.degrade.low_watermark,
                   " — recovered to blend decode");
  }
  return degraded;
}

obs::RegistrySnapshot TaggingService::observability_snapshot() const {
  metrics_.set_queue_depth(queue_.depth());  // fresh depth at scrape time
  obs::RegistrySnapshot out;
  out.append(metrics_.registry().snapshot(), "serve.");
  out.append(obs::Registry::global().snapshot());
  // Fault points live below obs in the layering, so their fire counts are
  // pulled into the snapshot at scrape time rather than pushed on fire.
  for (const auto& [name, stats] : util::FaultInjector::instance().all_stats()) {
    out.counters.push_back({"fault." + name + ".calls", {}, stats.calls});
    out.counters.push_back({"fault." + name + ".fires", {}, stats.fires});
  }
  return out;
}

void TaggingService::worker_loop([[maybe_unused]] std::size_t worker_id) {
  crf::LinearChainCrf::Scratch scratch;  // warm lattice, grows once
  features::EncodeScratch encode;        // warm feature/id buffers
  std::vector<PendingRequest> batch;
  // Within-batch coalescing state: token-sequence key -> (tags, decode_us)
  // of the first occurrence. Decode is deterministic over an immutable
  // model, so duplicates get byte-identical tags without re-decoding.
  std::unordered_map<std::string, std::pair<std::vector<text::Tag>, double>>
      decoded;
  std::string key;
  const bool coalesce = queue_.policy().coalesce_duplicates;

  while (queue_.pop_batch(batch)) {
    // Chaos hook: a stalled worker — the queue backs up, deadlines expire,
    // degradation trips. The batch it stalls on must still fully resolve.
    util::fault_stall_point("worker.stall");
    const auto dequeued_at = std::chrono::steady_clock::now();
    metrics_.on_batch(batch.size());
    // Refreshed once per batch, not per submit: depth() takes the queue
    // mutex, and batch granularity is plenty for a load gauge.
    metrics_.set_queue_depth(queue_.depth());
    // Decode mode is fixed per batch: every response in it reports the
    // same degraded flag, and the coalescing cache (cleared here) never
    // mixes tags from two different decode paths.
    const bool degraded = update_degraded_mode();
    const bool blend = config_.blend_decode && !degraded;
    decoded.clear();
    for (auto& request : batch) {
      TagResponse response;
      response.queue_us = us_between(request.enqueued_at, dequeued_at);
      response.batch_size = batch.size();
      response.degraded = config_.blend_decode && degraded;

      // Deadline shedding *before* decode (and before the encode that
      // feeds it): a request nobody is waiting for anymore must not spend
      // worker time, only answer with the structured status.
      if (request.expired(std::chrono::steady_clock::now())) {
        response.status = Status::kDeadlineExceeded;
        response.error = "deadline exceeded after " +
                         std::to_string(static_cast<long>(response.queue_us)) +
                         " us in queue";
        response.degraded = false;
        metrics_.on_expired(response.queue_us);
        request.promise.set_value(std::move(response));
        continue;
      }

      const crf::DecodeOptions& opts =
          request.decode ? *request.decode : decode_default_;

      const bool try_coalesce = coalesce && batch.size() > 1;
      if (try_coalesce) {
        // The canonical '\x1f'-joined key, computed once at ingestion and
        // carried on the request (PendingRequest::key) — the same key the
        // router's cross-request cache uses, never re-derived here.
        key = request.key;
        // Two requests only share a decode when they share its options:
        // a pruned answer must never be fanned out to an exact request.
        if (request.decode) key += opts.to_string();
        if (const auto hit = decoded.find(key); hit != decoded.end()) {
          response.tags = hit->second.first;       // shared decode's tags
          response.decode_us = hit->second.second; // ...and its cost
          response.coalesced = true;
          response.labels = labels_;
          metrics_.on_completed(response.queue_us, response.decode_us,
                                /*error=*/false, /*coalesced=*/true,
                                response.degraded);
          request.promise.set_value(std::move(response));
          continue;
        }
      }

      const auto decode_start = std::chrono::steady_clock::now();
      try {
        response.tags = blend
                            ? model_.decode_one_blended(request.sentence,
                                                        scratch, encode, opts)
                            : model_.decode_one(request.sentence, scratch,
                                                encode, opts);
      } catch (const std::exception& e) {
        response.status = Status::kError;
        response.error = e.what();
      }
      if (response.status == Status::kOk) response.labels = labels_;
      response.decode_us =
          us_between(decode_start, std::chrono::steady_clock::now());
      if (try_coalesce && response.status == Status::kOk)
        decoded.emplace(key, std::make_pair(response.tags, response.decode_us));
      metrics_.on_completed(response.queue_us, response.decode_us,
                            response.status == Status::kError,
                            /*coalesced=*/false, response.degraded);
      request.promise.set_value(std::move(response));
    }
  }
}

}  // namespace graphner::serve
