// TaggingService: an always-on concurrent tagger over one shared model.
//
// A fixed pool of decode workers drains the BatchQueue; each worker owns a
// warm CRF lattice Scratch and a reusable feature-encode buffer, so the
// steady state decodes with zero per-sentence lattice allocation (the PR-1
// kernels' contract, now held across requests instead of across a corpus
// pass). The model is borrowed const — GraphNerModel::decode_one is
// thread-safe over immutable state, so any number of workers share one
// model with no copies and no locks on the decode path.
//
// Lifecycle: the constructor starts the workers; stop() (or the
// destructor) closes admission, drains every queued request, and joins.
// Requests rejected at admission (queue full, after stop) resolve their
// future immediately with a structured non-OK response — submit() never
// blocks and never drops a promise.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/graphner/pipeline.hpp"
#include "src/serve/metrics.hpp"
#include "src/serve/request_queue.hpp"
#include "src/serve/tag_service.hpp"
#include "src/serve/types.hpp"

namespace graphner::serve {

/// Hysteretic load-shedding of decode *quality*: past the high-water mark
/// the service falls back from the GraphNER posterior-blend decode to the
/// plain CRF Viterbi (roughly the cost of one forward pass instead of
/// forward-backward + belief Viterbi) and marks responses degraded; it
/// recovers only once depth falls to the low-water mark, so the mode
/// cannot flap at the threshold.
struct DegradePolicy {
  std::size_t high_watermark = 0;  ///< queue depth that enters degraded mode; 0 disables
  std::size_t low_watermark = 0;   ///< depth at (or below) which it recovers
};

struct ServiceConfig {
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  BatchPolicy batching;
  /// Deadline applied to requests that do not carry their own (0 = none).
  /// Expired requests are shed before decode with Status::kDeadlineExceeded.
  std::chrono::milliseconds default_deadline{0};
  /// Serve the GraphNER posterior-blend decode (reference-anchored mix of
  /// CRF posteriors, decoded with belief Viterbi) instead of the plain CRF
  /// Viterbi. This is the path DegradePolicy falls back *from*; with it
  /// off, degradation has nothing cheaper to switch to and is inert.
  bool blend_decode = false;
  DegradePolicy degrade;
  /// Default decode options (pruning / quantization, DESIGN.md §10) for
  /// requests that carry none; nullopt inherits whatever the model was
  /// configured with (GraphNerModel::set_decode_options / load-time
  /// quantization).
  std::optional<crf::DecodeOptions> decode;
  /// The name this service's model answers to. A submission whose
  /// SubmitOptions::model is non-empty and different is rejected with
  /// Status::kUnknownModel — a single-model server has nothing else to
  /// offer. Behind a Router the selector is resolved before the replica,
  /// so replicas never see a mismatch.
  std::string model_name = "default";
};

class TaggingService : public TagService {
 public:
  /// `model` is borrowed and must outlive the service.
  explicit TaggingService(const core::GraphNerModel& model,
                          ServiceConfig config = {});
  ~TaggingService() override;

  TaggingService(const TaggingService&) = delete;
  TaggingService& operator=(const TaggingService&) = delete;

  /// Enqueue one sentence. Always returns a future that will be fulfilled:
  /// with tags on success, or with a terminal non-OK status (kOverloaded /
  /// kShutdown / kUnknownModel immediately, kDeadlineExceeded if the
  /// deadline passes while queued). `options.deadline` <= 0 uses the
  /// config default; `options.decode` overrides the service's decode
  /// options for this request only (the wire's "#DECODE" control line).
  [[nodiscard]] std::future<TagResponse> submit(text::Sentence sentence,
                                                SubmitOptions options) override;
  using TagService::submit;  ///< the positional (deadline, decode) sugar

  /// The options requests decode under when they carry no override.
  [[nodiscard]] const crf::DecodeOptions& default_decode_options() const noexcept {
    return decode_default_;
  }

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] TagResponse tag(text::Sentence sentence);

  /// True while the service is answering with the plain-Viterbi fallback.
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Graceful stop: reject new work, decode everything already queued,
  /// join the workers. Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  [[nodiscard]] std::string metrics_json() const override {
    return metrics_.snapshot().to_json();
  }
  /// Everything a scrape should see, merged into one snapshot: this
  /// service's registry (names prefixed "serve."), the process-global
  /// registry (training/propagation/checkpoint instruments), and the
  /// fault-injector fire counts as "fault.<point>.{calls,fires}". Feed it
  /// to the obs exporters — this is what the protocol METRICS flavours
  /// and --metrics-dump-every serialize.
  [[nodiscard]] obs::RegistrySnapshot observability_snapshot() const override;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop(std::size_t worker_id);
  /// Re-evaluate the degradation hysteresis against the current queue
  /// depth; returns the mode the caller's batch should decode under.
  bool update_degraded_mode();

  const core::GraphNerModel& model_;
  ServiceConfig config_;
  crf::DecodeOptions decode_default_;  ///< config_.decode or the model's own
  /// The model's label inventory, attached to every OK response so the
  /// wire layer can name multi-entity tags. A copy under shared_ptr (one
  /// refcount bump per response) rather than a pointer into the model:
  /// responses legally outlive the service *and* the model (a replica
  /// hot-swap drops both while formatted replies are still in flight).
  std::shared_ptr<const text::LabelSet> labels_;
  BatchQueue queue_;
  ServiceMetrics metrics_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> degraded_{false};
};

}  // namespace graphner::serve
