// TaggingService: an always-on concurrent tagger over one shared model.
//
// A fixed pool of decode workers drains the BatchQueue; each worker owns a
// warm CRF lattice Scratch and a reusable feature-encode buffer, so the
// steady state decodes with zero per-sentence lattice allocation (the PR-1
// kernels' contract, now held across requests instead of across a corpus
// pass). The model is borrowed const — GraphNerModel::decode_one is
// thread-safe over immutable state, so any number of workers share one
// model with no copies and no locks on the decode path.
//
// Lifecycle: the constructor starts the workers; stop() (or the
// destructor) closes admission, drains every queued request, and joins.
// Requests rejected at admission (queue full, after stop) resolve their
// future immediately with a structured non-OK response — submit() never
// blocks and never drops a promise.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/graphner/pipeline.hpp"
#include "src/serve/metrics.hpp"
#include "src/serve/request_queue.hpp"
#include "src/serve/types.hpp"

namespace graphner::serve {

struct ServiceConfig {
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  BatchPolicy batching;
};

class TaggingService {
 public:
  /// `model` is borrowed and must outlive the service.
  explicit TaggingService(const core::GraphNerModel& model,
                          ServiceConfig config = {});
  ~TaggingService();

  TaggingService(const TaggingService&) = delete;
  TaggingService& operator=(const TaggingService&) = delete;

  /// Enqueue one sentence. Always returns a future that will be fulfilled:
  /// with tags on success, or immediately with kOverloaded / kShutdown.
  [[nodiscard]] std::future<TagResponse> submit(text::Sentence sentence);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] TagResponse tag(text::Sentence sentence);

  /// Graceful stop: reject new work, decode everything already queued,
  /// join the workers. Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  [[nodiscard]] std::string metrics_json() const {
    return metrics_.snapshot().to_json();
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop(std::size_t worker_id);

  const core::GraphNerModel& model_;
  BatchQueue queue_;
  ServiceMetrics metrics_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace graphner::serve
