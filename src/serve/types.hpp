// Shared request/response vocabulary of the serving runtime.
//
// A tagging request is one tokenized sentence; the response carries either
// the BIO tags or a structured rejection (overload / shutdown / error) plus
// the per-request timing the metrics layer aggregates. Responses travel
// through std::future so the in-process API, the socket server and the
// load generator all consume the same type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/text/label_set.hpp"
#include "src/text/tag.hpp"

namespace graphner::serve {

enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,  ///< bounded queue was full — retry later (backpressure)
  kShutdown = 2,    ///< service is stopping and no longer accepts work
  kError = 3,       ///< decode threw; `error` holds the reason
  /// The request's deadline passed before a worker reached it; it was shed
  /// without being decoded. Retryable (with backoff) like kOverloaded.
  kDeadlineExceeded = 4,
  /// No replica could take the request (all siblings down or draining).
  /// Emitted by the router tier, never by a single TaggingService; a
  /// retry may land after a hot-swap revives a replica.
  kUnavailable = 5,
  /// The request named a model no resident generation answers to (the
  /// tenant dimension of SubmitOptions::model). Not retryable and never a
  /// failover trigger: the tier is healthy, the selector is wrong.
  kUnknownModel = 6,
  /// The tenant's token-bucket quota is exhausted. A policy rejection,
  /// not a load signal — the client should slow down, so it is neither
  /// retryable nor a failover trigger.
  kQuotaExceeded = 7,
};

[[nodiscard]] constexpr std::string_view status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kShutdown: return "SHUTDOWN";
    case Status::kError: return "ERROR";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Status::kUnavailable: return "UNAVAILABLE";
    case Status::kUnknownModel: return "UNKNOWN_MODEL";
    case Status::kQuotaExceeded: return "QUOTA_EXCEEDED";
  }
  return "?";
}

/// Statuses a client may retry after backoff: transient load conditions,
/// not permanent failures.
[[nodiscard]] constexpr bool status_retryable(Status status) noexcept {
  return status == Status::kOverloaded || status == Status::kDeadlineExceeded ||
         status == Status::kUnavailable;
}

struct TagResponse {
  Status status = Status::kOk;
  std::vector<text::Tag> tags;  ///< one per token when status == kOk
  std::string error;            ///< human-readable detail for non-OK statuses
  double queue_us = 0.0;        ///< time spent waiting in the batch queue
  double decode_us = 0.0;       ///< feature extraction + Viterbi
  std::size_t batch_size = 0;   ///< size of the micro-batch it rode in
  bool coalesced = false;       ///< served by a duplicate's decode in-batch
  /// The service was in degraded mode and answered with the plain CRF
  /// Viterbi decode instead of the GraphNER posterior-blend decode.
  bool degraded = false;
  /// The label inventory `tags` decodes under — how the wire layer turns
  /// tag ids into names for multi-entity models ("B-protein", ...). Null
  /// falls back to the legacy single-type names ("B"/"I"/"O"), which is
  /// what single() also spells, so the carrier never changes legacy bytes.
  std::shared_ptr<const text::LabelSet> labels;

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

}  // namespace graphner::serve
