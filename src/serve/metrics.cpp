#include "src/serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "src/obs/export.hpp"

namespace graphner::serve {
namespace {

// The bin transform of obs::latency_us_spec(): log10(1 + us), so 0 maps
// to 0 and ~100 s maps to 8 with ~7% relative resolution from 256 bins.
[[nodiscard]] double to_log(double us) noexcept {
  return std::log10(1.0 + std::max(0.0, us));
}

[[nodiscard]] double from_log(double log_value) noexcept {
  return std::pow(10.0, log_value) - 1.0;
}

[[nodiscard]] constexpr obs::HistogramSpec batch_size_spec() noexcept {
  return obs::HistogramSpec{0.0, 256.0, 256, obs::Scale::kLinear};
}

}  // namespace

LatencyHistogram::LatencyHistogram()
    : histogram_(obs::latency_us_spec().lo, obs::latency_us_spec().hi,
                 obs::latency_us_spec().bins) {}

LatencyHistogram::LatencyHistogram(const obs::Histogram::Snapshot& snapshot)
    : histogram_(snapshot.buckets), sum_us_(snapshot.sum) {}

void LatencyHistogram::record_us(double us) noexcept {
  histogram_.add(to_log(us));
  sum_us_ += std::max(0.0, us);
}

double LatencyHistogram::mean_us() const noexcept {
  return histogram_.total() == 0
             ? 0.0
             : sum_us_ / static_cast<double>(histogram_.total());
}

double LatencyHistogram::max_us() const noexcept {
  return histogram_.total() == 0 ? 0.0 : from_log(histogram_.max_seen());
}

double LatencyHistogram::quantile_us(double q) const noexcept {
  return histogram_.total() == 0 ? 0.0 : from_log(histogram_.quantile(q));
}

std::string MetricsSnapshot::to_json() const { return obs::export_json(raw); }

ServiceMetrics::ServiceMetrics()
    : submitted_(registry_.counter("submitted")),
      rejected_overload_(registry_.counter("rejected_overload")),
      rejected_shutdown_(registry_.counter("rejected_shutdown")),
      rejected_unknown_model_(registry_.counter("rejected_unknown_model")),
      completed_(registry_.counter("completed")),
      errors_(registry_.counter("errors")),
      batches_(registry_.counter("batches")),
      coalesced_(registry_.counter("coalesced")),
      deadline_expired_(registry_.counter("deadline_expired")),
      degraded_(registry_.counter("degraded")),
      queue_depth_(registry_.gauge("queue_depth")),
      queue_wait_(registry_.histogram("queue_wait_us", obs::latency_us_spec())),
      decode_(registry_.histogram("decode_us", obs::latency_us_spec())),
      batch_size_(registry_.histogram("batch_size", batch_size_spec())) {}

void ServiceMetrics::on_rejected(Status status) noexcept {
  if (status == Status::kOverloaded)
    rejected_overload_.inc();
  else if (status == Status::kShutdown)
    rejected_shutdown_.inc();
  else if (status == Status::kUnknownModel)
    rejected_unknown_model_.inc();
}

void ServiceMetrics::on_batch(std::size_t batch_size) noexcept {
  batches_.inc();
  batch_size_.record(static_cast<double>(batch_size));
}

void ServiceMetrics::on_completed(double queue_us, double decode_us, bool error,
                                  bool coalesced, bool degraded) noexcept {
  completed_.inc();
  if (error) errors_.inc();
  if (coalesced) coalesced_.inc();
  if (degraded) degraded_.inc();
  queue_wait_.record(queue_us);
  decode_.record(decode_us);
}

void ServiceMetrics::on_expired(double queue_us) noexcept {
  deadline_expired_.inc();
  // The wait is still real signal: expiries cluster exactly when queue
  // waits blow out, which is what the histogram is for.
  queue_wait_.record(queue_us);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot out;
  out.raw = registry_.snapshot();
  out.submitted = out.raw.counter_value("submitted");
  out.rejected_overload = out.raw.counter_value("rejected_overload");
  out.rejected_shutdown = out.raw.counter_value("rejected_shutdown");
  out.rejected_unknown_model = out.raw.counter_value("rejected_unknown_model");
  out.completed = out.raw.counter_value("completed");
  out.errors = out.raw.counter_value("errors");
  out.batches = out.raw.counter_value("batches");
  out.coalesced = out.raw.counter_value("coalesced");
  out.deadline_expired = out.raw.counter_value("deadline_expired");
  out.degraded = out.raw.counter_value("degraded");
  for (const auto& h : out.raw.histograms) {
    if (h.name == "queue_wait_us")
      out.queue_wait = LatencyHistogram(h.data);
    else if (h.name == "decode_us")
      out.decode = LatencyHistogram(h.data);
    else if (h.name == "batch_size")
      out.batch_size = h.data.buckets;
  }
  return out;
}

}  // namespace graphner::serve
