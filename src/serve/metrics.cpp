#include "src/serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace graphner::serve {
namespace {

// log10(1 + us): 0 maps to 0, ~100 s maps to 8. 256 bins over [0, 8)
// give ~7% relative resolution everywhere in that range.
constexpr double kLogLo = 0.0;
constexpr double kLogHi = 8.0;
constexpr std::size_t kLogBins = 256;

[[nodiscard]] double to_log(double us) noexcept {
  return std::log10(1.0 + std::max(0.0, us));
}

[[nodiscard]] double from_log(double log_value) noexcept {
  return std::pow(10.0, log_value) - 1.0;
}

void append_latency_json(std::ostringstream& out, const char* name,
                         const LatencyHistogram& latency) {
  out << '"' << name << "\":{\"count\":" << latency.total()
      << ",\"mean_us\":" << latency.mean_us()
      << ",\"p50_us\":" << latency.quantile_us(0.50)
      << ",\"p95_us\":" << latency.quantile_us(0.95)
      << ",\"p99_us\":" << latency.quantile_us(0.99)
      << ",\"max_us\":" << latency.max_us() << '}';
}

}  // namespace

LatencyHistogram::LatencyHistogram() : histogram_(kLogLo, kLogHi, kLogBins) {}

void LatencyHistogram::record_us(double us) noexcept {
  histogram_.add(to_log(us));
  sum_us_ += std::max(0.0, us);
}

double LatencyHistogram::mean_us() const noexcept {
  return histogram_.total() == 0
             ? 0.0
             : sum_us_ / static_cast<double>(histogram_.total());
}

double LatencyHistogram::max_us() const noexcept {
  return histogram_.total() == 0 ? 0.0 : from_log(histogram_.max_seen());
}

double LatencyHistogram::quantile_us(double q) const noexcept {
  return histogram_.total() == 0 ? 0.0 : from_log(histogram_.quantile(q));
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"submitted\":" << submitted
      << ",\"completed\":" << completed
      << ",\"errors\":" << errors
      << ",\"rejected_overload\":" << rejected_overload
      << ",\"rejected_shutdown\":" << rejected_shutdown
      << ",\"batches\":" << batches
      << ",\"coalesced\":" << coalesced
      << ",\"deadline_expired\":" << deadline_expired
      << ",\"degraded\":" << degraded << ',';
  append_latency_json(out, "queue_wait", queue_wait);
  out << ',';
  append_latency_json(out, "decode", decode);
  out << ",\"batch_size\":{\"count\":" << batch_size.total()
      << ",\"mean\":" << batch_size.mean()
      << ",\"p50\":" << batch_size.quantile(0.50)
      << ",\"max\":" << batch_size.max_seen() << "}}";
  return out.str();
}

ServiceMetrics::ServiceMetrics(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.push_back(std::make_unique<WorkerMetrics>());
}

void ServiceMetrics::on_rejected(Status status) noexcept {
  if (status == Status::kOverloaded)
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
  else if (status == Status::kShutdown)
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::on_batch(std::size_t worker, std::size_t batch_size) {
  WorkerMetrics& slot = *workers_.at(worker);
  std::lock_guard<std::mutex> lock(slot.mutex);
  ++slot.batches;
  slot.batch_size.add(static_cast<double>(batch_size));
}

void ServiceMetrics::on_completed(std::size_t worker, double queue_us,
                                  double decode_us, bool error, bool coalesced,
                                  bool degraded) {
  WorkerMetrics& slot = *workers_.at(worker);
  std::lock_guard<std::mutex> lock(slot.mutex);
  ++slot.completed;
  if (error) ++slot.errors;
  if (coalesced) ++slot.coalesced;
  if (degraded) ++slot.degraded;
  slot.queue_wait.record_us(queue_us);
  slot.decode.record_us(decode_us);
}

void ServiceMetrics::on_expired(std::size_t worker, double queue_us) {
  WorkerMetrics& slot = *workers_.at(worker);
  std::lock_guard<std::mutex> lock(slot.mutex);
  ++slot.deadline_expired;
  // The wait is still real signal: expiries cluster exactly when queue
  // waits blow out, which is what the histogram is for.
  slot.queue_wait.record_us(queue_us);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  out.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  for (const auto& slot : workers_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    out.completed += slot->completed;
    out.errors += slot->errors;
    out.batches += slot->batches;
    out.coalesced += slot->coalesced;
    out.deadline_expired += slot->deadline_expired;
    out.degraded += slot->degraded;
    out.queue_wait.merge(slot->queue_wait);
    out.decode.merge(slot->decode);
    out.batch_size.merge(slot->batch_size);
  }
  return out;
}

}  // namespace graphner::serve
