#include "src/stats/sigf.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/rng.hpp"

namespace graphner::stats {
namespace {

using eval::evaluate_bc2gm;

double score(const eval::Metrics& m, Metric metric) {
  switch (metric) {
    case Metric::kPrecision: return m.precision();
    case Metric::kRecall: return m.recall();
    case Metric::kFScore: return m.f_score();
  }
  return 0.0;
}

}  // namespace

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kPrecision: return "Precision";
    case Metric::kRecall: return "Recall";
    case Metric::kFScore: return "F-score";
  }
  return "?";
}

SigfResult sigf_test(const std::vector<text::Annotation>& system_a,
                     const std::vector<text::Annotation>& system_b,
                     const std::vector<text::Annotation>& gold,
                     const std::vector<text::Annotation>& alternatives,
                     Metric metric, const SigfOptions& options) {
  SigfResult result;
  const double observed_a = score(evaluate_bc2gm(system_a, gold, alternatives).metrics, metric);
  const double observed_b = score(evaluate_bc2gm(system_b, gold, alternatives).metrics, metric);
  result.observed_difference = observed_a - observed_b;
  const double threshold = std::abs(result.observed_difference);

  // Sentence ids where the two systems' prediction sets differ; sentences
  // with identical predictions cancel in every permutation, so only the
  // differing ones need to be swapped (this is sigf's optimization too).
  auto map_a = eval::group_by_sentence(system_a);
  auto map_b = eval::group_by_sentence(system_b);
  std::set<std::string> ids;
  for (const auto& [id, _] : map_a) ids.insert(id);
  for (const auto& [id, _] : map_b) ids.insert(id);

  auto canonical = [](std::vector<text::Annotation> v) {
    std::sort(v.begin(), v.end(), [](const auto& x, const auto& y) {
      return x.span < y.span;
    });
    return v;
  };
  std::vector<std::string> differing;
  std::vector<text::Annotation> common;  // identical predictions, never swapped
  for (const auto& id : ids) {
    auto a = canonical(map_a.count(id) ? map_a[id] : std::vector<text::Annotation>{});
    auto b = canonical(map_b.count(id) ? map_b[id] : std::vector<text::Annotation>{});
    if (a == b) {
      common.insert(common.end(), a.begin(), a.end());
    } else {
      differing.push_back(id);
    }
  }

  util::Rng rng(options.seed);
  std::size_t at_least_as_extreme = 0;
  std::vector<text::Annotation> pseudo_a;
  std::vector<text::Annotation> pseudo_b;
  for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
    pseudo_a = common;
    pseudo_b = common;
    for (const auto& id : differing) {
      const bool swap = rng.flip(0.5);
      const auto& from_a = map_a.count(id) ? map_a[id] : std::vector<text::Annotation>{};
      const auto& from_b = map_b.count(id) ? map_b[id] : std::vector<text::Annotation>{};
      auto& sink_a = swap ? pseudo_b : pseudo_a;
      auto& sink_b = swap ? pseudo_a : pseudo_b;
      sink_a.insert(sink_a.end(), from_a.begin(), from_a.end());
      sink_b.insert(sink_b.end(), from_b.begin(), from_b.end());
    }
    const double sa = score(evaluate_bc2gm(pseudo_a, gold, alternatives).metrics, metric);
    const double sb = score(evaluate_bc2gm(pseudo_b, gold, alternatives).metrics, metric);
    if (std::abs(sa - sb) >= threshold - 1e-12) ++at_least_as_extreme;
  }
  result.p_value = static_cast<double>(at_least_as_extreme + 1) /
                   static_cast<double>(options.repetitions + 1);
  return result;
}

}  // namespace graphner::stats
