// Approximate-randomization significance testing (Yeh 2000; Padó's sigf).
//
// To test whether system A and system B differ in P / R / F beyond chance,
// the test repeatedly builds pseudo-systems by swapping, per sentence and
// with probability 1/2, the two systems' prediction sets, and measures how
// often the pseudo-systems' score difference is at least as extreme as the
// observed one. The add-one p-value estimate (n_ge + 1) / (reps + 1) keeps
// the test exact-level.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/eval/bc2gm_eval.hpp"
#include "src/text/annotation.hpp"

namespace graphner::stats {

enum class Metric { kPrecision, kRecall, kFScore };

[[nodiscard]] std::string metric_name(Metric metric);

struct SigfOptions {
  std::size_t repetitions = 10000;
  std::uint64_t seed = 1234;
};

struct SigfResult {
  double observed_difference = 0.0;  ///< score(A) - score(B)
  double p_value = 1.0;
};

/// Two-sided test of H0: A and B have the same `metric` on this test set.
[[nodiscard]] SigfResult sigf_test(const std::vector<text::Annotation>& system_a,
                                   const std::vector<text::Annotation>& system_b,
                                   const std::vector<text::Annotation>& gold,
                                   const std::vector<text::Annotation>& alternatives,
                                   Metric metric, const SigfOptions& options = {});

/// Bonferroni-corrected significance level for m hypotheses.
[[nodiscard]] constexpr double bonferroni_alpha(double alpha, std::size_t m) noexcept {
  return m == 0 ? alpha : alpha / static_cast<double>(m);
}

}  // namespace graphner::stats
