#include "src/stats/chi_square.hpp"

#include <algorithm>
#include <cmath>

namespace graphner::stats {

double chi_square_1df_p_value(double statistic) {
  if (statistic <= 0.0) return 1.0;
  // Chi-square(1) upper tail = erfc(sqrt(x / 2)).
  return std::erfc(std::sqrt(statistic / 2.0));
}

ProportionTestResult proportion_test(std::size_t successes_a, std::size_t trials_a,
                                     std::size_t successes_b, std::size_t trials_b) {
  ProportionTestResult result;
  if (trials_a == 0 || trials_b == 0) return result;

  const double a = static_cast<double>(successes_a);
  const double b = static_cast<double>(successes_b);
  const double na = static_cast<double>(trials_a);
  const double nb = static_cast<double>(trials_b);
  const double pooled = (a + b) / (na + nb);
  if (pooled <= 0.0 || pooled >= 1.0) return result;  // degenerate margins

  const double expected_a = na * pooled;
  const double expected_b = nb * pooled;
  const double correction = 0.5;

  auto cell = [&](double observed, double expected) {
    const double d = std::max(0.0, std::abs(observed - expected) - correction);
    return d * d / expected;
  };
  // 2x2 table: (success, failure) x (sample A, sample B).
  result.chi_square = cell(a, expected_a) + cell(na - a, na - expected_a) +
                      cell(b, expected_b) + cell(nb - b, nb - expected_b);
  result.p_value = chi_square_1df_p_value(result.chi_square);
  return result;
}

}  // namespace graphner::stats
