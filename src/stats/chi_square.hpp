// Chi-square two-sample test for equality of proportions (paper §III-E).
#pragma once

#include <cstddef>

namespace graphner::stats {

struct ProportionTestResult {
  double chi_square = 0.0;
  double p_value = 1.0;
};

/// Two-sample test that successes_a/trials_a == successes_b/trials_b, with
/// Yates continuity correction (matches R's prop.test default, which the
/// paper used). Returns p = 1 when a margin is empty.
[[nodiscard]] ProportionTestResult proportion_test(std::size_t successes_a,
                                                   std::size_t trials_a,
                                                   std::size_t successes_b,
                                                   std::size_t trials_b);

/// Upper tail of the chi-square distribution with 1 degree of freedom.
[[nodiscard]] double chi_square_1df_p_value(double statistic);

}  // namespace graphner::stats
