// Iterative graph propagation (paper §II-A, equations 1 and 2).
//
// Label distributions over {B, I, O} live on the 3-gram vertices. The loss
//   C(X) =   sum_{u in V_l} ||X(u) - X_ref(u)||^2
//          + mu * sum_u sum_{k in N(u)} w_uk ||X(u) - X(k)||^2
//          + nu * sum_u ||X(u) - U||^2
// is minimized coordinate-wise by the closed-form update of equation 2,
// applied for a fixed number of iterations (a tuned hyper-parameter in the
// paper, 2-3). Updates are Jacobi-style (computed from the previous
// iterate) so sweeps are deterministic and parallelizable.
#pragma once

#include <array>
#include <vector>

#include "src/graph/knn_graph.hpp"
#include "src/text/tag.hpp"

namespace graphner::propagation {

using LabelDistribution = std::array<double, text::kNumTags>;

[[nodiscard]] constexpr LabelDistribution uniform_distribution() noexcept {
  LabelDistribution u{};
  u.fill(1.0 / static_cast<double>(text::kNumTags));
  return u;
}

struct PropagationConfig {
  double mu = 1e-6;          ///< neighbour-agreement weight
  double nu = 1e-6;          ///< uniform-prior weight
  std::size_t iterations = 3;
  /// Evaluate the loss after every `loss_every`-th sweep (and always after
  /// the final one). The loss is diagnostic only — it costs a full pass over
  /// the graph's edges — so monitoring can be thinned out or, with 0,
  /// disabled entirely.
  std::size_t loss_every = 1;
};

struct PropagationResult {
  std::vector<LabelDistribution> distributions;
  /// Loss after each monitored sweep (every `loss_every`-th and the final
  /// one; empty when loss_every == 0). Monotone non-increasing in exact
  /// arithmetic for Gauss-Seidel, near-monotone for Jacobi.
  std::vector<double> loss_per_iteration;
};

/// Equation 1. `is_labelled[v]` marks V_l membership (reference defined).
[[nodiscard]] double propagation_loss(
    const graph::KnnGraph& graph, const std::vector<LabelDistribution>& x,
    const std::vector<LabelDistribution>& reference,
    const std::vector<bool>& is_labelled, const PropagationConfig& config);

/// Run `config.iterations` sweeps of equation 2 starting from `initial`.
[[nodiscard]] PropagationResult propagate(
    const graph::KnnGraph& graph, const std::vector<LabelDistribution>& initial,
    const std::vector<LabelDistribution>& reference,
    const std::vector<bool>& is_labelled, const PropagationConfig& config);

}  // namespace graphner::propagation
