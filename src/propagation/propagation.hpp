// Iterative graph propagation (paper §II-A, equations 1 and 2).
//
// Label distributions over the model's label set (legacy {B, I, O}, or any
// multi-entity BIO inventory) live on the 3-gram vertices. The loss
//   C(X) =   sum_{u in V_l} ||X(u) - X_ref(u)||^2
//          + mu * sum_u sum_{k in N(u)} w_uk ||X(u) - X(k)||^2
//          + nu * sum_u ||X(u) - U||^2
// is minimized coordinate-wise by the closed-form update of equation 2,
// applied for a fixed number of iterations (a tuned hyper-parameter in the
// paper, 2-3). Updates are Jacobi-style (computed from the previous
// iterate) so sweeps are deterministic and parallelizable.
#pragma once

#include <vector>

#include "src/graph/knn_graph.hpp"
#include "src/text/label_set.hpp"
#include "src/text/tag.hpp"

namespace graphner::propagation {

/// One column per label of the owning model's LabelSet (default size 3,
/// the legacy {B, I, O} set). All distributions passed into one propagation
/// call must share a size; the sweeps take the label count from the inputs.
using LabelDistribution = text::LabelDist;

[[nodiscard]] constexpr LabelDistribution uniform_distribution(
    std::size_t num_labels = text::kNumTags) noexcept {
  LabelDistribution u(num_labels);
  u.fill(1.0 / static_cast<double>(num_labels));
  return u;
}

struct PropagationConfig {
  double mu = 1e-6;          ///< neighbour-agreement weight
  double nu = 1e-6;          ///< uniform-prior weight
  std::size_t iterations = 3;
  /// Evaluate the loss after every `loss_every`-th sweep (and always after
  /// the final one). The loss is diagnostic only — it costs a full pass over
  /// the graph's edges — so monitoring can be thinned out or, with 0,
  /// disabled entirely.
  std::size_t loss_every = 1;
};

struct PropagationResult {
  std::vector<LabelDistribution> distributions;
  /// Loss after each monitored sweep (every `loss_every`-th and the final
  /// one; empty when loss_every == 0). Monotone non-increasing in exact
  /// arithmetic for Gauss-Seidel, near-monotone for Jacobi.
  std::vector<double> loss_per_iteration;
};

/// Equation 1. `is_labelled[v]` marks V_l membership (reference defined).
[[nodiscard]] double propagation_loss(
    const graph::KnnGraph& graph, const std::vector<LabelDistribution>& x,
    const std::vector<LabelDistribution>& reference,
    const std::vector<bool>& is_labelled, const PropagationConfig& config);

/// Run `config.iterations` sweeps of equation 2 starting from `initial`.
[[nodiscard]] PropagationResult propagate(
    const graph::KnnGraph& graph, const std::vector<LabelDistribution>& initial,
    const std::vector<LabelDistribution>& reference,
    const std::vector<bool>& is_labelled, const PropagationConfig& config);

// --- incremental, residual-driven re-propagation -------------------------
//
// Equation 2's fixed point is unique whenever nu > 0: each coordinate
// update is a convex combination with strictly positive weight on the
// seed/prior anchors, so the sweep operator is a sup-norm contraction and
// Jacobi (propagate, run to convergence) and the asynchronous Gauss-Seidel
// relaxations below agree on the limit. That is what makes a *localized*
// update sound: after appending vertices or perturbing a neighbourhood,
// only the equations of the touched vertices changed — relaxing outward
// from them along reverse edges until every residual falls under tolerance
// reaches the same fixed point a full re-propagation would, while leaving
// converged regions of the graph untouched (their residual never rises
// above tolerance, so the worklist never admits them).

struct IncrementalPropagationConfig {
  double mu = 1e-6;       ///< neighbour-agreement weight (as PropagationConfig)
  double nu = 1e-6;       ///< uniform-prior weight; must be > 0 for the
                          ///< contraction argument above
  double tolerance = 1e-9;  ///< sup-norm residual at which a vertex is settled
  /// Safety valve on total relaxations; 0 = 200 * vertex_count. Hitting it
  /// reports converged = false rather than looping on a degenerate input.
  std::size_t max_relaxations = 0;
};

struct IncrementalPropagationResult {
  std::size_t relaxations = 0;       ///< vertex updates applied
  std::size_t active_vertices = 0;   ///< distinct vertices that ever entered
                                     ///< the worklist (the localized set)
  double final_residual = 0.0;       ///< max residual at exit (<= tolerance
                                     ///< when converged)
  bool converged = false;
};

/// Residual-prioritized push sweep: relax the highest-residual vertex
/// first, starting from `seeds` (appended vertices, patched neighbourhoods,
/// perturbed references), propagating along reverse edges. `x` is updated
/// in place and must already hold every untouched vertex's (approximate)
/// fixed-point value — vertices outside the seeds' influence region are
/// never visited. Publishes the propagation.residual gauge (the PR-5
/// convergence driver) and propagation.incremental.* counters.
///
/// `in_edges` is the graph's reverse adjacency (in_edges[v] = vertices
/// whose edge lists contain v). Passing it in keeps a learn batch's cost
/// proportional to the batch neighbourhood: KnnIndex maintains the
/// transpose incrementally across appends (KnnIndex::transpose()), so the
/// per-call O(V+E) rebuild disappears from the steady-state learn path.
IncrementalPropagationResult propagate_incremental(
    const graph::KnnGraph& graph,
    const std::vector<std::vector<graph::VertexId>>& in_edges,
    std::vector<LabelDistribution>& x,
    const std::vector<LabelDistribution>& reference,
    const std::vector<bool>& is_labelled,
    const std::vector<graph::VertexId>& seeds,
    const IncrementalPropagationConfig& config);

/// Convenience overload for callers without a maintained transpose: builds
/// the reverse adjacency from `graph` (O(V+E)) and delegates.
IncrementalPropagationResult propagate_incremental(
    const graph::KnnGraph& graph, std::vector<LabelDistribution>& x,
    const std::vector<LabelDistribution>& reference,
    const std::vector<bool>& is_labelled,
    const std::vector<graph::VertexId>& seeds,
    const IncrementalPropagationConfig& config);

}  // namespace graphner::propagation
