#include "src/propagation/propagation.hpp"

#include <cassert>
#include <cmath>
#include <queue>
#include <utility>

#include "src/obs/registry.hpp"
#include "src/obs/span.hpp"
#include "src/util/parallel.hpp"

namespace graphner::propagation {

using text::kNumTags;

double propagation_loss(const graph::KnnGraph& graph,
                        const std::vector<LabelDistribution>& x,
                        const std::vector<LabelDistribution>& reference,
                        const std::vector<bool>& is_labelled,
                        const PropagationConfig& config) {
  const std::size_t n = x.size();
  assert(reference.size() == n && is_labelled.size() == n);
  const std::size_t L = n > 0 ? x[0].size() : kNumTags;
  const LabelDistribution u = uniform_distribution(L);

  // Each term only reads x, so the sum splits cleanly across workers.
  struct Terms {
    double seed = 0.0;
    double smooth = 0.0;
    double prior = 0.0;
  };
  const Terms total = util::parallel_reduce(
      std::size_t{0}, n, Terms{},
      [&](Terms& acc, std::size_t v) {
        if (is_labelled[v]) {
          for (std::size_t y = 0; y < L; ++y) {
            const double d = x[v][y] - reference[v][y];
            acc.seed += d * d;
          }
        }
        for (const auto& edge : graph.neighbours(static_cast<graph::VertexId>(v))) {
          for (std::size_t y = 0; y < L; ++y) {
            const double d = x[v][y] - x[edge.target][y];
            acc.smooth += edge.weight * d * d;
          }
        }
        for (std::size_t y = 0; y < L; ++y) {
          const double d = x[v][y] - u[y];
          acc.prior += d * d;
        }
      },
      [](Terms& lhs, const Terms& rhs) {
        lhs.seed += rhs.seed;
        lhs.smooth += rhs.smooth;
        lhs.prior += rhs.prior;
      });
  return total.seed + config.mu * total.smooth + config.nu * total.prior;
}

PropagationResult propagate(const graph::KnnGraph& graph,
                            const std::vector<LabelDistribution>& initial,
                            const std::vector<LabelDistribution>& reference,
                            const std::vector<bool>& is_labelled,
                            const PropagationConfig& config) {
  const std::size_t n = initial.size();
  assert(graph.vertex_count() == n);
  assert(reference.size() == n && is_labelled.size() == n);

  const std::size_t L = n > 0 ? initial[0].size() : kNumTags;
  PropagationResult result;
  result.distributions = initial;
  std::vector<LabelDistribution> next(n, LabelDistribution(L));
  const double inv_y = 1.0 / static_cast<double>(L);

  obs::ScopedSpan span("propagation");
  span.attr("vertices", static_cast<std::uint64_t>(n));
  span.attr("iterations", static_cast<std::uint64_t>(config.iterations));
  obs::Registry& registry = obs::Registry::global();
  obs::Counter& iteration_counter = registry.counter("propagation.iterations");
  obs::Gauge& residual_gauge = registry.gauge("propagation.residual");
  obs::Gauge& loss_gauge = registry.gauge("propagation.loss");

  double last_residual = 0.0;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const auto& cur = result.distributions;
    util::parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t v = lo; v < hi; ++v) {
        const double seed = is_labelled[v] ? 1.0 : 0.0;
        LabelDistribution gamma(L);
        double weight_sum = 0.0;
        for (const auto& edge : graph.neighbours(static_cast<graph::VertexId>(v))) {
          weight_sum += edge.weight;
          for (std::size_t y = 0; y < L; ++y)
            gamma[y] += edge.weight * cur[edge.target][y];
        }
        const double kappa = seed + config.nu + config.mu * weight_sum;
        for (std::size_t y = 0; y < L; ++y) {
          gamma[y] = seed * reference[v][y] + config.mu * gamma[y] + config.nu * inv_y;
          next[v][y] = kappa > 0.0 ? gamma[y] / kappa : cur[v][y];
        }
      }
    });
    // Sup-norm update residual: how far this sweep still moved the
    // distributions. A cheap O(n) pass next to the O(n * k) sweep, and the
    // live convergence signal the loss (O(n * k), gated by loss_every)
    // is too expensive to provide every iteration.
    double residual = 0.0;
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t y = 0; y < L; ++y)
        residual = std::max(residual,
                            std::abs(next[v][y] - result.distributions[v][y]));
    residual_gauge.set(residual);
    last_residual = residual;
    iteration_counter.inc();

    result.distributions.swap(next);
    const bool monitor =
        config.loss_every > 0 && ((iter + 1) % config.loss_every == 0 ||
                                  iter + 1 == config.iterations);
    if (monitor) {
      result.loss_per_iteration.push_back(propagation_loss(
          graph, result.distributions, reference, is_labelled, config));
      loss_gauge.set(result.loss_per_iteration.back());
    }
  }
  span.attr("final_residual", last_residual);
  return result;
}

IncrementalPropagationResult propagate_incremental(
    const graph::KnnGraph& graph,
    const std::vector<std::vector<graph::VertexId>>& in_edges,
    std::vector<LabelDistribution>& x,
    const std::vector<LabelDistribution>& reference,
    const std::vector<bool>& is_labelled,
    const std::vector<graph::VertexId>& seeds,
    const IncrementalPropagationConfig& config) {
  const std::size_t n = x.size();
  assert(graph.vertex_count() == n);
  assert(in_edges.size() == n);
  assert(reference.size() == n && is_labelled.size() == n);
  const std::size_t L = n > 0 ? x[0].size() : kNumTags;
  const double inv_y = 1.0 / static_cast<double>(L);
  const std::size_t max_relaxations =
      config.max_relaxations > 0 ? config.max_relaxations : 200 * n;

  IncrementalPropagationResult result;
  if (n == 0 || seeds.empty()) {
    result.converged = true;
    return result;
  }

  obs::ScopedSpan span("propagation.incremental");
  span.attr("vertices", static_cast<std::uint64_t>(n));
  span.attr("seeds", static_cast<std::uint64_t>(seeds.size()));

  // Gauss-Seidel coordinate update (equation 2 against the *current* x).
  const auto relaxed_value = [&](std::size_t v, LabelDistribution& out) {
    const double seed = is_labelled[v] ? 1.0 : 0.0;
    LabelDistribution gamma(L);
    double weight_sum = 0.0;
    for (const auto& edge : graph.neighbours(static_cast<graph::VertexId>(v))) {
      weight_sum += edge.weight;
      for (std::size_t y = 0; y < L; ++y)
        gamma[y] += edge.weight * x[edge.target][y];
    }
    const double kappa = seed + config.nu + config.mu * weight_sum;
    for (std::size_t y = 0; y < L; ++y) {
      gamma[y] = seed * reference[v][y] + config.mu * gamma[y] + config.nu * inv_y;
      out[y] = kappa > 0.0 ? gamma[y] / kappa : x[v][y];
    }
  };

  // Lazy max-heap worklist: residual[] holds each vertex's latest residual;
  // a popped entry whose priority no longer matches it is stale and skipped
  // (cheaper than a decrease-key heap at these fanouts).
  std::vector<double> residual(n, 0.0);
  std::vector<char> ever_active(n, 0);
  std::vector<graph::VertexId> activated;  // the localized set, for the
                                           // active-only exit scan below
  std::priority_queue<std::pair<double, graph::VertexId>> heap;

  const auto enqueue = [&](graph::VertexId v) {
    LabelDistribution relaxed(L);
    relaxed_value(v, relaxed);
    double r = 0.0;
    for (std::size_t y = 0; y < L; ++y)
      r = std::max(r, std::abs(relaxed[y] - x[v][y]));
    residual[v] = r;
    if (r > config.tolerance) {
      heap.emplace(r, v);
      if (!ever_active[v]) {
        ever_active[v] = 1;
        activated.push_back(v);
        ++result.active_vertices;
      }
    }
  };

  // Seed both the touched vertices and their in-neighbours: a seed whose x
  // was perturbed directly (rather than via an edge change) has residual
  // zero itself while its in-neighbours' equations already moved.
  for (const graph::VertexId s : seeds) {
    enqueue(s);
    for (const graph::VertexId u : in_edges[s]) enqueue(u);
  }

  obs::Registry& registry = obs::Registry::global();
  obs::Gauge& residual_gauge = registry.gauge("propagation.residual");

  while (!heap.empty() && result.relaxations < max_relaxations) {
    const auto [r, v] = heap.top();
    heap.pop();
    if (r != residual[v]) continue;  // stale entry
    if (r <= config.tolerance) continue;
    LabelDistribution relaxed(L);
    relaxed_value(v, relaxed);
    x[v] = relaxed;
    residual[v] = 0.0;  // exact coordinate-wise minimizer given current x
    ++result.relaxations;
    residual_gauge.set(r);
    for (const graph::VertexId u : in_edges[v]) enqueue(u);
  }

  // Exit residual over the active set only: every vertex outside it kept a
  // zero residual throughout (its equation never changed), so scanning all
  // n vertices would cost O(corpus) per batch for no information.
  double final_residual = 0.0;
  for (const graph::VertexId v : activated)
    final_residual = std::max(final_residual, residual[v]);
  result.final_residual = final_residual;
  result.converged = final_residual <= config.tolerance;
  residual_gauge.set(final_residual);
  registry.counter("propagation.incremental.runs").inc();
  registry.counter("propagation.incremental.relaxations")
      .inc(result.relaxations);
  registry.gauge("propagation.incremental.active")
      .set(static_cast<double>(result.active_vertices));

  span.attr("relaxations", static_cast<std::uint64_t>(result.relaxations));
  span.attr("active", static_cast<std::uint64_t>(result.active_vertices));
  span.attr("final_residual", result.final_residual);
  span.attr("converged", result.converged ? std::uint64_t{1} : std::uint64_t{0});
  return result;
}

IncrementalPropagationResult propagate_incremental(
    const graph::KnnGraph& graph, std::vector<LabelDistribution>& x,
    const std::vector<LabelDistribution>& reference,
    const std::vector<bool>& is_labelled,
    const std::vector<graph::VertexId>& seeds,
    const IncrementalPropagationConfig& config) {
  // No maintained transpose available — derive it here. The learner avoids
  // this path by passing KnnIndex::transpose() (incrementally patched).
  const std::size_t n = x.size();
  std::vector<std::vector<graph::VertexId>> in_edges(n);
  for (std::size_t v = 0; v < n; ++v)
    for (const auto& edge : graph.neighbours(static_cast<graph::VertexId>(v)))
      in_edges[edge.target].push_back(static_cast<graph::VertexId>(v));
  return propagate_incremental(graph, in_edges, x, reference, is_labelled,
                               seeds, config);
}

}  // namespace graphner::propagation
