// Frozen copy of the pre-windowing BrownClustering::train (see header).
// Any edit here invalidates the golden-equivalence contract — don't.
#include "src/embeddings/brown_reference.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/util/strings.hpp"

namespace graphner::embeddings {
namespace {

/// Mutable cluster-level bigram model with AMI merge-cost queries.
/// Slots 0..capacity-1; merging marks the absorbed slot dead.
class DenseClusterModel {
 public:
  DenseClusterModel(std::size_t capacity, double total_bigrams)
      : capacity_(capacity),
        total_(total_bigrams),
        bigram_(capacity * capacity, 0.0),
        left_(capacity, 0.0),
        right_(capacity, 0.0),
        alive_(capacity, false) {}

  void activate(std::size_t slot) { alive_[slot] = true; }
  [[nodiscard]] bool alive(std::size_t slot) const { return alive_[slot]; }

  void add_bigram(std::size_t a, std::size_t b, double count) {
    bigram_[a * capacity_ + b] += count;
    left_[a] += count;
    right_[b] += count;
  }

  /// AMI term for the (a, b) cluster bigram.
  [[nodiscard]] double q(std::size_t a, std::size_t b) const {
    const double c = bigram_[a * capacity_ + b];
    if (c <= 0.0 || left_[a] <= 0.0 || right_[b] <= 0.0) return 0.0;
    const double p = c / total_;
    return p * std::log(p * total_ * total_ / (left_[a] * right_[b]));
  }

  /// Sum of AMI terms that mention slot c (row + column - diagonal).
  [[nodiscard]] double contribution(std::size_t c,
                                    const std::vector<std::size_t>& active) const {
    double acc = 0.0;
    for (const std::size_t d : active) {
      acc += q(c, d);
      if (d != c) acc += q(d, c);
    }
    return acc;
  }

  /// AMI loss of merging b into a (non-negative up to fp noise).
  [[nodiscard]] double merge_loss(std::size_t a, std::size_t b,
                                  const std::vector<std::size_t>& active) const {
    // Terms removed: everything mentioning a or b.
    double removed = contribution(a, active) + contribution(b, active);
    removed -= q(a, b) + q(b, a);  // counted in both contributions

    // Terms added: the merged cluster u against all remaining clusters.
    const double lu = left_[a] + left_[b];
    const double ru = right_[a] + right_[b];
    double added = 0.0;
    auto q_merged = [&](double count, double l, double r) {
      if (count <= 0.0 || l <= 0.0 || r <= 0.0) return 0.0;
      const double p = count / total_;
      return p * std::log(p * total_ * total_ / (l * r));
    };
    for (const std::size_t d : active) {
      if (d == a || d == b) continue;
      added += q_merged(bigram_[a * capacity_ + d] + bigram_[b * capacity_ + d], lu,
                        right_[d]);
      added += q_merged(bigram_[d * capacity_ + a] + bigram_[d * capacity_ + b],
                        left_[d], ru);
    }
    added += q_merged(bigram_[a * capacity_ + a] + bigram_[a * capacity_ + b] +
                          bigram_[b * capacity_ + a] + bigram_[b * capacity_ + b],
                      lu, ru);
    return removed - added;
  }

  /// Merge slot b into slot a.
  void merge(std::size_t a, std::size_t b, const std::vector<std::size_t>& active) {
    for (const std::size_t d : active) {
      if (d == b) continue;
      bigram_[a * capacity_ + d] += bigram_[b * capacity_ + d];
      bigram_[b * capacity_ + d] = 0.0;
      bigram_[d * capacity_ + a] += bigram_[d * capacity_ + b];
      bigram_[d * capacity_ + b] = 0.0;
    }
    bigram_[a * capacity_ + a] += bigram_[b * capacity_ + b] +
                                  bigram_[a * capacity_ + b] +
                                  bigram_[b * capacity_ + a];
    bigram_[a * capacity_ + b] = 0.0;
    bigram_[b * capacity_ + a] = 0.0;
    bigram_[b * capacity_ + b] = 0.0;
    left_[a] += left_[b];
    right_[a] += right_[b];
    left_[b] = 0.0;
    right_[b] = 0.0;
    alive_[b] = false;
  }

 private:
  std::size_t capacity_;
  double total_;
  std::vector<double> bigram_;
  std::vector<double> left_;
  std::vector<double> right_;
  std::vector<bool> alive_;
};

struct Counts {
  std::unordered_map<std::string, std::uint64_t> unigram;
  std::unordered_map<std::string, std::unordered_map<std::string, std::uint64_t>> bigram;
  std::uint64_t total_bigrams = 0;
};

Counts count_corpus(const std::vector<text::Sentence>& sentences) {
  Counts counts;
  for (const auto& sentence : sentences) {
    std::string prev = "<s>";
    counts.unigram[prev] += 1;
    for (const auto& raw : sentence.tokens) {
      const std::string tok = util::to_lower(raw);
      counts.unigram[tok] += 1;
      counts.bigram[prev][tok] += 1;
      ++counts.total_bigrams;
      prev = tok;
    }
    counts.bigram[prev]["</s>"] += 1;
    ++counts.total_bigrams;
  }
  return counts;
}

}  // namespace

BrownClustering train_brown_reference(const std::vector<text::Sentence>& sentences,
                                      const BrownConfig& config) {
  BrownClustering result;
  const Counts counts = count_corpus(sentences);
  if (counts.total_bigrams == 0) return result;

  // Frequency-ordered vocabulary (excluding boundary pseudo-tokens).
  std::vector<std::pair<std::string, std::uint64_t>> vocab;
  for (const auto& [word, count] : counts.unigram) {
    if (word == "<s>" || word == "</s>") continue;
    if (count >= config.min_count) vocab.emplace_back(word, count);
  }
  std::sort(vocab.begin(), vocab.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (vocab.size() > config.max_vocabulary) vocab.resize(config.max_vocabulary);
  if (vocab.empty()) return result;

  const std::size_t num_clusters = std::min(config.num_clusters, vocab.size());

  // Each vocabulary word gets a slot; slot merging is tracked by a
  // union-find so word -> final cluster resolves after all merges.
  std::unordered_map<std::string, std::size_t> word_slot;
  for (std::size_t i = 0; i < vocab.size(); ++i) word_slot[vocab[i].first] = i;
  std::vector<std::size_t> parent(vocab.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  DenseClusterModel model(vocab.size(), static_cast<double>(counts.total_bigrams));
  std::vector<std::size_t> active;

  // Reverse bigram index (word -> list of (preceding word, count)) so that
  // counts from words already absorbed into a cluster are still credited to
  // that cluster's representative slot when a new word is inserted.
  std::unordered_map<std::string, std::vector<std::pair<std::string, std::uint64_t>>>
      reverse_bigram;
  for (const auto& [prev, nexts] : counts.bigram)
    for (const auto& [next, c] : nexts) reverse_bigram[next].emplace_back(prev, c);

  auto add_word_counts = [&](std::size_t slot) {
    const std::string& word = vocab[slot].first;
    // Forward: word -> (active cluster | itself).
    if (auto it = counts.bigram.find(word); it != counts.bigram.end()) {
      for (const auto& [next, c] : it->second) {
        const auto jt = word_slot.find(next);
        if (jt == word_slot.end()) continue;
        const std::size_t other = find(jt->second);
        if (other == slot || model.alive(other))
          model.add_bigram(slot, other, static_cast<double>(c));
      }
    }
    // Reverse: (active cluster) -> word; the self pair was added above.
    if (auto it = reverse_bigram.find(word); it != reverse_bigram.end()) {
      for (const auto& [prev, c] : it->second) {
        const auto jt = word_slot.find(prev);
        if (jt == word_slot.end()) continue;
        const std::size_t other = find(jt->second);
        if (other != slot && model.alive(other))
          model.add_bigram(other, slot, static_cast<double>(c));
      }
    }
    model.activate(slot);
  };

  // Phase 1: seed with the most frequent `num_clusters` words.
  for (std::size_t i = 0; i < num_clusters; ++i) {
    add_word_counts(i);
    active.push_back(i);
  }

  // Phase 2: insert each remaining word, then merge it into the cluster
  // whose merge loses the least average mutual information.
  for (std::size_t i = num_clusters; i < vocab.size(); ++i) {
    add_word_counts(i);
    active.push_back(i);
    double best_loss = std::numeric_limits<double>::infinity();
    std::size_t best_target = active.front();
    for (const std::size_t target : active) {
      if (target == i) continue;
      const double loss = model.merge_loss(target, i, active);
      if (loss < best_loss) {
        best_loss = loss;
        best_target = target;
      }
    }
    model.merge(best_target, i, active);
    parent[i] = best_target;
    active.pop_back();  // slot i no longer active
  }

  // Phase 3: merge the final clusters down to one, recording the tree.
  struct Node {
    int left = -1;
    int right = -1;
    std::size_t slot = 0;  ///< leaf only
  };
  std::vector<Node> tree;
  std::unordered_map<std::size_t, int> slot_node;
  for (const std::size_t slot : active) {
    slot_node[slot] = static_cast<int>(tree.size());
    tree.push_back({-1, -1, slot});
  }
  std::vector<std::size_t> remaining = active;
  while (remaining.size() > 1) {
    double best_loss = std::numeric_limits<double>::infinity();
    std::size_t best_a = remaining[0];
    std::size_t best_b = remaining[1];
    for (std::size_t x = 0; x < remaining.size(); ++x) {
      for (std::size_t y = x + 1; y < remaining.size(); ++y) {
        const double loss = model.merge_loss(remaining[x], remaining[y], remaining);
        if (loss < best_loss) {
          best_loss = loss;
          best_a = remaining[x];
          best_b = remaining[y];
        }
      }
    }
    model.merge(best_a, best_b, remaining);
    const int node = static_cast<int>(tree.size());
    tree.push_back({slot_node[best_a], slot_node[best_b], 0});
    slot_node[best_a] = node;
    remaining.erase(std::find(remaining.begin(), remaining.end(), best_b));
  }

  // Walk the tree from the root assigning bit strings to leaves.
  std::vector<std::string> slot_path(vocab.size());
  if (!tree.empty()) {
    struct Frame {
      int node;
      std::string path;
    };
    std::vector<Frame> stack{{static_cast<int>(tree.size()) - 1, ""}};
    while (!stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      const Node& node = tree[static_cast<std::size_t>(frame.node)];
      if (node.left < 0) {
        slot_path[node.slot] = frame.path.empty() ? "0" : frame.path;
        continue;
      }
      stack.push_back({node.left, frame.path + "0"});
      stack.push_back({node.right, frame.path + "1"});
    }
  }

  // Final cluster ids and word assignments.
  std::unordered_map<std::size_t, int> slot_cluster;
  for (const std::size_t slot : active) {
    slot_cluster[slot] = static_cast<int>(result.paths_.size());
    result.paths_.push_back(slot_path[slot]);
  }
  for (const auto& [word, slot] : word_slot)
    result.word_cluster_[word] = slot_cluster[find(slot)];

  return result;
}

}  // namespace graphner::embeddings
