#include "src/embeddings/word2vec.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/logging.hpp"
#include "src/util/strings.hpp"

namespace graphner::embeddings {
namespace {

constexpr std::size_t kNegativeTableSize = 1 << 17;

[[nodiscard]] float sigmoid(float x) noexcept {
  if (x > 8.0F) return 1.0F;
  if (x < -8.0F) return 0.0F;
  return 1.0F / (1.0F + std::exp(-x));
}

}  // namespace

Word2Vec Word2Vec::train(const std::vector<text::Sentence>& sentences,
                         const Word2VecConfig& config) {
  Word2Vec model;
  model.dims_ = config.dimensions;

  // Vocabulary.
  std::unordered_map<std::string, std::uint64_t> counts;
  std::uint64_t total_tokens = 0;
  for (const auto& sentence : sentences) {
    for (const auto& raw : sentence.tokens) {
      ++counts[util::to_lower(raw)];
      ++total_tokens;
    }
  }
  std::vector<std::pair<std::string, std::uint64_t>> vocab;
  for (auto& [word, count] : counts)
    if (count >= config.min_count) vocab.emplace_back(word, count);
  std::sort(vocab.begin(), vocab.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    model.index_[vocab[i].first] = i;
    model.words_.push_back(vocab[i].first);
  }
  const std::size_t v = vocab.size();
  if (v == 0 || total_tokens == 0) return model;

  // Negative-sampling table over unigram^(3/4).
  std::vector<std::size_t> neg_table(kNegativeTableSize);
  {
    double z = 0.0;
    for (const auto& [_, count] : vocab) z += std::pow(static_cast<double>(count), 0.75);
    std::size_t word = 0;
    double cum = std::pow(static_cast<double>(vocab[0].second), 0.75) / z;
    for (std::size_t i = 0; i < kNegativeTableSize; ++i) {
      neg_table[i] = word;
      if (static_cast<double>(i) / kNegativeTableSize > cum && word + 1 < v) {
        ++word;
        cum += std::pow(static_cast<double>(vocab[word].second), 0.75) / z;
      }
    }
  }

  util::Rng rng(config.seed);
  model.input_.assign(v * config.dimensions, 0.0F);
  std::vector<float> output(v * config.dimensions, 0.0F);
  for (auto& x : model.input_)
    x = static_cast<float>(rng.uniform(-0.5, 0.5) / static_cast<double>(config.dimensions));

  // Pre-encode sentences as id sequences.
  std::vector<std::vector<std::size_t>> encoded;
  encoded.reserve(sentences.size());
  for (const auto& sentence : sentences) {
    std::vector<std::size_t> ids;
    for (const auto& raw : sentence.tokens) {
      const auto it = model.index_.find(util::to_lower(raw));
      if (it != model.index_.end()) ids.push_back(it->second);
    }
    if (ids.size() >= 2) encoded.push_back(std::move(ids));
  }

  const std::size_t dims = config.dimensions;
  std::vector<float> grad_center(dims);
  std::uint64_t processed = 0;
  const std::uint64_t budget =
      std::max<std::uint64_t>(1, config.epochs * total_tokens);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& ids : encoded) {
      for (std::size_t pos = 0; pos < ids.size(); ++pos) {
        ++processed;
        const std::size_t center = ids[pos];
        // Subsample very frequent words.
        const double freq = static_cast<double>(vocab[center].second) /
                            static_cast<double>(total_tokens);
        if (freq > config.subsample_threshold) {
          const double keep =
              std::sqrt(config.subsample_threshold / freq) +
              config.subsample_threshold / freq;
          if (!rng.flip(std::min(1.0, keep))) continue;
        }
        const float lr = static_cast<float>(
            config.initial_lr *
            std::max(0.05, 1.0 - static_cast<double>(processed) /
                               static_cast<double>(budget)));
        const std::size_t window = 1 + rng.below(config.window);
        const std::size_t lo = pos >= window ? pos - window : 0;
        const std::size_t hi = std::min(ids.size(), pos + window + 1);
        float* vc = model.input_.data() + center * dims;
        for (std::size_t ctx = lo; ctx < hi; ++ctx) {
          if (ctx == pos) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0F);
          for (std::size_t neg = 0; neg <= config.negatives; ++neg) {
            std::size_t target;
            float label;
            if (neg == 0) {
              target = ids[ctx];
              label = 1.0F;
            } else {
              target = neg_table[rng.below(kNegativeTableSize)];
              if (target == ids[ctx]) continue;
              label = 0.0F;
            }
            float* vo = output.data() + target * dims;
            float score = 0.0F;
            for (std::size_t d = 0; d < dims; ++d) score += vc[d] * vo[d];
            const float g = (label - sigmoid(score)) * lr;
            for (std::size_t d = 0; d < dims; ++d) {
              grad_center[d] += g * vo[d];
              vo[d] += g * vc[d];
            }
          }
          for (std::size_t d = 0; d < dims; ++d) vc[d] += grad_center[d];
        }
      }
    }
  }
  util::log_debug("word2vec: ", v, " words x ", dims, " dims, ",
                  config.epochs, " epochs");
  return model;
}

std::optional<std::span<const float>> Word2Vec::vector(const std::string& word) const {
  const auto it = index_.find(util::to_lower(word));
  if (it == index_.end()) return std::nullopt;
  return std::span<const float>(input_.data() + it->second * dims_, dims_);
}

double Word2Vec::similarity(const std::string& a, const std::string& b) const {
  const auto va = vector(a);
  const auto vb = vector(b);
  if (!va || !vb) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t d = 0; d < dims_; ++d) {
    dot += static_cast<double>((*va)[d]) * (*vb)[d];
    na += static_cast<double>((*va)[d]) * (*va)[d];
    nb += static_cast<double>((*vb)[d]) * (*vb)[d];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

EmbeddingClusters cluster_embeddings(const Word2Vec& embeddings, std::size_t k,
                                     std::uint64_t seed, std::size_t iterations) {
  EmbeddingClusters result;
  const std::size_t v = embeddings.vocabulary_size();
  const std::size_t dims = embeddings.dimensions();
  if (v == 0 || k == 0) return result;
  k = std::min(k, v);
  result.k = k;

  // L2-normalized copies so k-means approximates spherical clustering.
  std::vector<std::vector<float>> points(v, std::vector<float>(dims, 0.0F));
  for (std::size_t i = 0; i < v; ++i) {
    const auto vec = embeddings.vector(embeddings.words()[i]);
    double norm = 0.0;
    for (std::size_t d = 0; d < dims; ++d) norm += static_cast<double>((*vec)[d]) * (*vec)[d];
    const float inv = norm > 0 ? static_cast<float>(1.0 / std::sqrt(norm)) : 0.0F;
    for (std::size_t d = 0; d < dims; ++d) points[i][d] = (*vec)[d] * inv;
  }

  util::Rng rng(seed);
  std::vector<std::size_t> seeds(v);
  for (std::size_t i = 0; i < v; ++i) seeds[i] = i;
  rng.shuffle(seeds);
  std::vector<std::vector<float>> centers(k);
  for (std::size_t c = 0; c < k; ++c) centers[c] = points[seeds[c]];

  std::vector<int> assign(v, 0);
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < v; ++i) {
      double best = -1e300;
      int arg = 0;
      for (std::size_t c = 0; c < k; ++c) {
        double dot = 0.0;
        for (std::size_t d = 0; d < dims; ++d)
          dot += static_cast<double>(points[i][d]) * centers[c][d];
        if (dot > best) {
          best = dot;
          arg = static_cast<int>(c);
        }
      }
      if (assign[i] != arg) {
        assign[i] = arg;
        changed = true;
      }
    }
    if (!changed) break;
    // Recompute centers.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t i = 0; i < v; ++i) {
      for (std::size_t d = 0; d < dims; ++d)
        sums[static_cast<std::size_t>(assign[i])][d] += points[i][d];
      ++sizes[static_cast<std::size_t>(assign[i])];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) continue;
      double norm = 0.0;
      for (std::size_t d = 0; d < dims; ++d) norm += sums[c][d] * sums[c][d];
      const double inv = norm > 0 ? 1.0 / std::sqrt(norm) : 0.0;
      for (std::size_t d = 0; d < dims; ++d)
        centers[c][d] = static_cast<float>(sums[c][d] * inv);
    }
  }

  for (std::size_t i = 0; i < v; ++i)
    result.assignment[embeddings.words()[i]] = assign[i];
  return result;
}

}  // namespace graphner::embeddings
