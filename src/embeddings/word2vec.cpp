#include "src/embeddings/word2vec.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>

#if defined(__SSE2__) && !defined(__SANITIZE_THREAD__)
#include <emmintrin.h>
#endif

#include "src/util/logging.hpp"
#include "src/util/parallel.hpp"
#include "src/util/strings.hpp"

namespace graphner::embeddings {
namespace {

constexpr std::size_t kNegativeTableSize = 1 << 17;

[[nodiscard]] float sigmoid(float x) noexcept {
  if (x > 8.0F) return 1.0F;
  if (x < -8.0F) return 0.0F;
  return 1.0F / (1.0F + std::exp(-x));
}

// ---------------------------------------------------------------------------
// Hogwild helpers (threads > 1 only; the serial path never calls these).

// The Hogwild workers read and write the shared embedding tables without
// synchronization — racy by design (Niu et al. 2011), and a lost update is
// just a slightly stale gradient. Under TSAN those accesses must be tagged
// as intentional: route them through relaxed atomic_ref so the tool sees
// synchronization-free atomics instead of data races, and stay scalar (the
// same reason crf/model.cpp gates its vector kernel off under sanitizers).
// Normal builds use plain loads and SSE2 — guaranteed on the x86-64
// baseline this repo targets — because the scalar loops are chained float
// adds that -O2 cannot reassociate.
#if defined(__SANITIZE_THREAD__)
[[nodiscard]] inline float hw_load(const float* p) noexcept {
  return std::atomic_ref<float>(*const_cast<float*>(p)).load(std::memory_order_relaxed);
}
inline void hw_store(float* p, float v) noexcept {
  std::atomic_ref<float>(*p).store(v, std::memory_order_relaxed);
}

/// score = private . shared  (shared side read through atomic_ref).
[[nodiscard]] inline float hw_dot(const float* priv, const float* shared_vec,
                                  std::size_t n) noexcept {
  float s0 = 0.0F;
  float s1 = 0.0F;
  float s2 = 0.0F;
  float s3 = 0.0F;
  std::size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    s0 += priv[d] * hw_load(shared_vec + d);
    s1 += priv[d + 1] * hw_load(shared_vec + d + 1);
    s2 += priv[d + 2] * hw_load(shared_vec + d + 2);
    s3 += priv[d + 3] * hw_load(shared_vec + d + 3);
  }
  for (; d < n; ++d) s0 += priv[d] * hw_load(shared_vec + d);
  return (s0 + s1) + (s2 + s3);
}

/// grad += g * vo ; vo += g * priv   (vo shared, grad/priv private).
inline void hw_update(float* vo, float* grad, const float* priv, float g,
                      std::size_t n) noexcept {
  for (std::size_t d = 0; d < n; ++d) {
    const float od = hw_load(vo + d);
    grad[d] += g * od;
    hw_store(vo + d, od + g * priv[d]);
  }
}

/// priv += grad ; shared = priv   (write the private center row back).
inline void hw_writeback(float* shared_vec, float* priv, const float* grad,
                         std::size_t n) noexcept {
  for (std::size_t d = 0; d < n; ++d) {
    priv[d] += grad[d];
    hw_store(shared_vec + d, priv[d]);
  }
}
#else
[[nodiscard]] inline float hw_load(const float* p) noexcept { return *p; }
inline void hw_store(float* p, float v) noexcept { *p = v; }

[[nodiscard]] inline float hw_dot(const float* priv, const float* shared_vec,
                                  std::size_t n) noexcept {
#if defined(__SSE2__)
  __m128 acc0 = _mm_setzero_ps();
  __m128 acc1 = _mm_setzero_ps();
  std::size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(priv + d),
                                       _mm_loadu_ps(shared_vec + d)));
    acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_loadu_ps(priv + d + 4),
                                       _mm_loadu_ps(shared_vec + d + 4)));
  }
  for (; d + 4 <= n; d += 4)
    acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(priv + d),
                                       _mm_loadu_ps(shared_vec + d)));
  __m128 acc = _mm_add_ps(acc0, acc1);
  acc = _mm_add_ps(acc, _mm_movehl_ps(acc, acc));
  acc = _mm_add_ss(acc, _mm_shuffle_ps(acc, acc, 0x55));
  float sum = _mm_cvtss_f32(acc);
  for (; d < n; ++d) sum += priv[d] * shared_vec[d];
  return sum;
#else
  float s0 = 0.0F;
  float s1 = 0.0F;
  float s2 = 0.0F;
  float s3 = 0.0F;
  std::size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    s0 += priv[d] * shared_vec[d];
    s1 += priv[d + 1] * shared_vec[d + 1];
    s2 += priv[d + 2] * shared_vec[d + 2];
    s3 += priv[d + 3] * shared_vec[d + 3];
  }
  for (; d < n; ++d) s0 += priv[d] * shared_vec[d];
  return (s0 + s1) + (s2 + s3);
#endif
}

inline void hw_update(float* vo, float* grad, const float* priv, float g,
                      std::size_t n) noexcept {
#if defined(__SSE2__)
  const __m128 vg = _mm_set1_ps(g);
  std::size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    const __m128 od = _mm_loadu_ps(vo + d);
    _mm_storeu_ps(grad + d,
                  _mm_add_ps(_mm_loadu_ps(grad + d), _mm_mul_ps(vg, od)));
    _mm_storeu_ps(vo + d,
                  _mm_add_ps(od, _mm_mul_ps(vg, _mm_loadu_ps(priv + d))));
  }
  for (; d < n; ++d) {
    const float od = vo[d];
    grad[d] += g * od;
    vo[d] = od + g * priv[d];
  }
#else
  for (std::size_t d = 0; d < n; ++d) {
    const float od = vo[d];
    grad[d] += g * od;
    vo[d] = od + g * priv[d];
  }
#endif
}

inline void hw_writeback(float* shared_vec, float* priv, const float* grad,
                         std::size_t n) noexcept {
  for (std::size_t d = 0; d < n; ++d) {
    priv[d] += grad[d];
    shared_vec[d] = priv[d];
  }
}
#endif

/// Precomputed logistic function over [-8, 8] (word2vec.c's expTable):
/// replaces an expf call per training sample with a table lookup.
class SigmoidLut {
 public:
  SigmoidLut() noexcept {
    for (std::size_t i = 0; i <= kSize; ++i) {
      const float x = -kRange + 2.0F * kRange * static_cast<float>(i) / kSize;
      table_[i] = 1.0F / (1.0F + std::exp(-x));
    }
  }
  [[nodiscard]] float operator()(float x) const noexcept {
    if (x >= kRange) return 1.0F;
    if (x <= -kRange) return 0.0F;
    return table_[static_cast<std::size_t>((x + kRange) * (kSize / (2.0F * kRange)))];
  }

 private:
  static constexpr std::size_t kSize = 4096;
  static constexpr float kRange = 8.0F;
  std::array<float, kSize + 1> table_{};
};

const SigmoidLut& sigmoid_lut() {
  static const SigmoidLut lut;
  return lut;
}

struct HogwildShared {
  const std::vector<std::vector<std::size_t>>& encoded;
  const std::vector<std::size_t>& neg_table;
  const std::vector<float>& keep_prob;  ///< per word; >= 1 means never drop
  const Word2VecConfig& config;
  std::vector<float>& input;
  std::vector<float>& output;
};

/// One Hogwild worker: all epochs over its contiguous sentence shard,
/// learning rate decayed over the shard's own token budget (the word2vec.c
/// scheme, minus the shared progress counter — a per-shard clock decays at
/// the same rate when shards are token-balanced).
///
/// The center row is staged in a private buffer for the duration of a
/// token: loaded from the shared table once, read race-free by every dot
/// against the negatives, and flushed back after each context pair so
/// concurrent readers of the same word still see fresh values.
void hogwild_worker(const HogwildShared& shared, std::size_t shard_begin,
                    std::size_t shard_end, std::uint64_t shard_tokens,
                    util::Rng rng) {
  const Word2VecConfig& config = shared.config;
  const std::size_t dims = config.dimensions;
  const SigmoidLut& lut = sigmoid_lut();
  std::vector<float> grad_center(dims);
  std::vector<float> vc_local(dims);
  std::uint64_t processed = 0;
  const std::uint64_t budget = std::max<std::uint64_t>(1, config.epochs * shard_tokens);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t s = shard_begin; s < shard_end; ++s) {
      const auto& ids = shared.encoded[s];
      for (std::size_t pos = 0; pos < ids.size(); ++pos) {
        ++processed;
        const std::size_t center = ids[pos];
        const float keep = shared.keep_prob[center];
        if (keep < 1.0F && !rng.flip(keep)) continue;
        const float lr = static_cast<float>(
            config.initial_lr *
            std::max(0.05, 1.0 - static_cast<double>(processed) /
                               static_cast<double>(budget)));
        const std::size_t window = 1 + rng.below(config.window);
        const std::size_t lo = pos >= window ? pos - window : 0;
        const std::size_t hi = std::min(ids.size(), pos + window + 1);
        float* vc = shared.input.data() + center * dims;
        for (std::size_t d = 0; d < dims; ++d) vc_local[d] = hw_load(vc + d);
        for (std::size_t ctx = lo; ctx < hi; ++ctx) {
          if (ctx == pos) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0F);
          for (std::size_t neg = 0; neg <= config.negatives; ++neg) {
            std::size_t target;
            float label;
            if (neg == 0) {
              target = ids[ctx];
              label = 1.0F;
            } else {
              target = shared.neg_table[rng.below(kNegativeTableSize)];
              if (target == ids[ctx]) continue;
              label = 0.0F;
            }
            float* vo = shared.output.data() + target * dims;
            const float g = (label - lut(hw_dot(vc_local.data(), vo, dims))) * lr;
            hw_update(vo, grad_center.data(), vc_local.data(), g, dims);
          }
          hw_writeback(vc, vc_local.data(), grad_center.data(), dims);
        }
      }
    }
  }
}

}  // namespace

Word2Vec Word2Vec::train(const std::vector<text::Sentence>& sentences,
                         const Word2VecConfig& config) {
  Word2Vec model;
  model.dims_ = config.dimensions;

  // Vocabulary.
  std::unordered_map<std::string, std::uint64_t> counts;
  std::uint64_t total_tokens = 0;
  for (const auto& sentence : sentences) {
    for (const auto& raw : sentence.tokens) {
      ++counts[util::to_lower(raw)];
      ++total_tokens;
    }
  }
  std::vector<std::pair<std::string, std::uint64_t>> vocab;
  for (auto& [word, count] : counts)
    if (count >= config.min_count) vocab.emplace_back(word, count);
  std::sort(vocab.begin(), vocab.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    model.index_[vocab[i].first] = i;
    model.words_.push_back(vocab[i].first);
  }
  const std::size_t v = vocab.size();
  if (v == 0 || total_tokens == 0) {
    model.rebuild_norms();
    return model;
  }

  // Negative-sampling table over unigram^(3/4).
  std::vector<std::size_t> neg_table(kNegativeTableSize);
  {
    double z = 0.0;
    for (const auto& [_, count] : vocab) z += std::pow(static_cast<double>(count), 0.75);
    std::size_t word = 0;
    double cum = std::pow(static_cast<double>(vocab[0].second), 0.75) / z;
    for (std::size_t i = 0; i < kNegativeTableSize; ++i) {
      neg_table[i] = word;
      if (static_cast<double>(i) / kNegativeTableSize > cum && word + 1 < v) {
        ++word;
        cum += std::pow(static_cast<double>(vocab[word].second), 0.75) / z;
      }
    }
  }

  util::Rng rng(config.seed);
  model.input_.assign(v * config.dimensions, 0.0F);
  std::vector<float> output(v * config.dimensions, 0.0F);
  for (auto& x : model.input_)
    x = static_cast<float>(rng.uniform(-0.5, 0.5) / static_cast<double>(config.dimensions));

  // Pre-encode sentences as id sequences.
  std::vector<std::vector<std::size_t>> encoded;
  encoded.reserve(sentences.size());
  for (const auto& sentence : sentences) {
    std::vector<std::size_t> ids;
    for (const auto& raw : sentence.tokens) {
      const auto it = model.index_.find(util::to_lower(raw));
      if (it != model.index_.end()) ids.push_back(it->second);
    }
    if (ids.size() >= 2) encoded.push_back(std::move(ids));
  }

  const std::size_t dims = config.dimensions;
  const std::size_t threads = std::max<std::size_t>(1, std::min(config.threads, encoded.size()));

  if (threads == 1) {
    // Serial trajectory — bitwise-locked by the golden test in
    // tests/test_train_kernels.cpp; `rng` continues the stream that
    // initialized the input table. Do not "optimize" this loop.
    std::vector<float> grad_center(dims);
    std::uint64_t processed = 0;
    const std::uint64_t budget =
        std::max<std::uint64_t>(1, config.epochs * total_tokens);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
      for (const auto& ids : encoded) {
        for (std::size_t pos = 0; pos < ids.size(); ++pos) {
          ++processed;
          const std::size_t center = ids[pos];
          // Subsample very frequent words.
          const double freq = static_cast<double>(vocab[center].second) /
                              static_cast<double>(total_tokens);
          if (freq > config.subsample_threshold) {
            const double keep =
                std::sqrt(config.subsample_threshold / freq) +
                config.subsample_threshold / freq;
            if (!rng.flip(std::min(1.0, keep))) continue;
          }
          const float lr = static_cast<float>(
              config.initial_lr *
              std::max(0.05, 1.0 - static_cast<double>(processed) /
                                 static_cast<double>(budget)));
          const std::size_t window = 1 + rng.below(config.window);
          const std::size_t lo = pos >= window ? pos - window : 0;
          const std::size_t hi = std::min(ids.size(), pos + window + 1);
          float* vc = model.input_.data() + center * dims;
          for (std::size_t ctx = lo; ctx < hi; ++ctx) {
            if (ctx == pos) continue;
            std::fill(grad_center.begin(), grad_center.end(), 0.0F);
            for (std::size_t neg = 0; neg <= config.negatives; ++neg) {
              std::size_t target;
              float label;
              if (neg == 0) {
                target = ids[ctx];
                label = 1.0F;
              } else {
                target = neg_table[rng.below(kNegativeTableSize)];
                if (target == ids[ctx]) continue;
                label = 0.0F;
              }
              float* vo = output.data() + target * dims;
              float score = 0.0F;
              for (std::size_t d = 0; d < dims; ++d) score += vc[d] * vo[d];
              const float g = (label - sigmoid(score)) * lr;
              for (std::size_t d = 0; d < dims; ++d) {
                grad_center[d] += g * vo[d];
                vo[d] += g * vc[d];
              }
            }
            for (std::size_t d = 0; d < dims; ++d) vc[d] += grad_center[d];
          }
        }
      }
    }
  } else {
    // Hogwild: contiguous token-balanced shards, one worker each, lock-free
    // updates on the shared tables.
    std::vector<float> keep_prob(v, 2.0F);  // >= 1: never subsampled
    for (std::size_t i = 0; i < v; ++i) {
      const double freq = static_cast<double>(vocab[i].second) /
                          static_cast<double>(total_tokens);
      if (freq > config.subsample_threshold)
        keep_prob[i] = static_cast<float>(std::min(
            1.0, std::sqrt(config.subsample_threshold / freq) +
                     config.subsample_threshold / freq));
    }

    std::vector<std::uint64_t> token_prefix(encoded.size() + 1, 0);
    for (std::size_t s = 0; s < encoded.size(); ++s)
      token_prefix[s + 1] = token_prefix[s] + encoded[s].size();
    const std::uint64_t encoded_tokens = token_prefix.back();

    const HogwildShared shared{encoded, neg_table, keep_prob,
                               config,  model.input_, output};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    std::size_t begin = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      // Shard boundary: first sentence at or past the t+1-th token slice.
      const std::uint64_t target = encoded_tokens * (t + 1) / threads;
      std::size_t end = t + 1 == threads ? encoded.size() : begin;
      while (end < encoded.size() && token_prefix[end] < target) ++end;
      const std::uint64_t shard_tokens = token_prefix[end] - token_prefix[begin];
      util::Rng worker_rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
      if (begin < end)
        pool.emplace_back(hogwild_worker, std::cref(shared), begin, end,
                          shard_tokens, worker_rng);
      begin = end;
    }
    for (auto& worker : pool) worker.join();
  }

  util::log_debug("word2vec: ", v, " words x ", dims, " dims, ",
                  config.epochs, " epochs, ", threads, " threads");
  model.rebuild_norms();
  return model;
}

void Word2Vec::rebuild_norms() {
  norms_.assign(words_.size(), 0.0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const float* row = input_.data() + i * dims_;
    double acc = 0.0;
    for (std::size_t d = 0; d < dims_; ++d)
      acc += static_cast<double>(row[d]) * row[d];
    norms_[i] = std::sqrt(acc);
  }
}

std::optional<std::span<const float>> Word2Vec::vector(const std::string& word) const {
  const auto it = index_.find(util::to_lower(word));
  if (it == index_.end()) return std::nullopt;
  return std::span<const float>(input_.data() + it->second * dims_, dims_);
}

double Word2Vec::similarity(const std::string& a, const std::string& b) const {
  const auto ia = index_.find(util::to_lower(a));
  const auto ib = index_.find(util::to_lower(b));
  if (ia == index_.end() || ib == index_.end()) return 0.0;
  const float* va = input_.data() + ia->second * dims_;
  const float* vb = input_.data() + ib->second * dims_;
  double dot = 0.0;
  for (std::size_t d = 0; d < dims_; ++d)
    dot += static_cast<double>(va[d]) * vb[d];
  const double denom = norms_[ia->second] * norms_[ib->second];
  return denom == 0.0 ? 0.0 : dot / denom;
}

void Word2Vec::save(std::ostream& out) const {
  const auto old_precision = out.precision(9);  // float max_digits10
  out << "word2vec " << words_.size() << ' ' << dims_ << '\n';
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out << words_[i];
    const float* row = input_.data() + i * dims_;
    for (std::size_t d = 0; d < dims_; ++d) out << ' ' << row[d];
    out << '\n';
  }
  out << "end\n";
  out.precision(old_precision);
}

Word2Vec Word2Vec::load(std::istream& in) {
  Word2Vec model;
  std::string magic;
  if (!(in >> magic) || magic != "word2vec")
    throw std::runtime_error("word2vec: bad magic (expected `word2vec`, got '" +
                             magic + "')");
  std::size_t v = 0;
  std::size_t dims = 0;
  if (!(in >> v >> dims))
    throw std::runtime_error("word2vec: malformed header (expected `words dims`)");
  if (v > 0 && dims == 0)
    throw std::runtime_error("word2vec: header claims " + std::to_string(v) +
                             " words with zero dimensions");
  model.dims_ = dims;
  model.input_.resize(v * dims);
  model.words_.reserve(v);
  for (std::size_t i = 0; i < v; ++i) {
    std::string word;
    if (!(in >> word))
      throw std::runtime_error("word2vec: truncated vector table (read " +
                               std::to_string(i) + " of " + std::to_string(v) +
                               " rows)");
    if (!model.index_.emplace(word, i).second)
      throw std::runtime_error("word2vec: duplicate word entry '" + word + "'");
    model.words_.push_back(std::move(word));
    float* row = model.input_.data() + i * dims;
    for (std::size_t d = 0; d < dims; ++d) {
      if (!(in >> row[d]))
        throw std::runtime_error("word2vec: truncated vector for word '" +
                                 model.words_.back() + "' (component " +
                                 std::to_string(d) + " of " +
                                 std::to_string(dims) + ")");
      if (!std::isfinite(row[d]))
        throw std::runtime_error("word2vec: non-finite component in vector for '" +
                                 model.words_.back() + "'");
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end")
    throw std::runtime_error("word2vec: missing end sentinel after " +
                             std::to_string(v) + " rows");
  model.rebuild_norms();
  return model;
}

EmbeddingClusters cluster_embeddings(const Word2Vec& embeddings, std::size_t k,
                                     std::uint64_t seed, std::size_t iterations) {
  EmbeddingClusters result;
  const std::size_t v = embeddings.vocabulary_size();
  const std::size_t dims = embeddings.dimensions();
  if (v == 0 || k == 0) return result;
  k = std::min(k, v);
  result.k = k;

  // L2-normalized flat copies so k-means approximates spherical clustering
  // (contiguous rows — the assignment loop streams points x centers).
  std::vector<float> points(v * dims, 0.0F);
  for (std::size_t i = 0; i < v; ++i) {
    const auto vec = embeddings.vector(embeddings.words()[i]);
    double norm = 0.0;
    for (std::size_t d = 0; d < dims; ++d) norm += static_cast<double>((*vec)[d]) * (*vec)[d];
    const float inv = norm > 0 ? static_cast<float>(1.0 / std::sqrt(norm)) : 0.0F;
    for (std::size_t d = 0; d < dims; ++d) points[i * dims + d] = (*vec)[d] * inv;
  }

  util::Rng rng(seed);
  std::vector<std::size_t> seeds(v);
  for (std::size_t i = 0; i < v; ++i) seeds[i] = i;
  rng.shuffle(seeds);
  std::vector<float> centers(k * dims);
  for (std::size_t c = 0; c < k; ++c)
    std::copy_n(points.data() + seeds[c] * dims, dims, centers.data() + c * dims);

  std::vector<int> assign(v, 0);
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    // Assignment is a pure function of (points, centers) per point, so the
    // parallel sweep is deterministic and thread-count independent.
    std::atomic<bool> changed{false};
    util::parallel_for_chunked(0, v, [&](std::size_t chunk_begin, std::size_t chunk_end) {
      bool local_changed = false;
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
        const float* point = points.data() + i * dims;
        double best = -1e300;
        int arg = 0;
        for (std::size_t c = 0; c < k; ++c) {
          const float* center = centers.data() + c * dims;
          double dot = 0.0;
          for (std::size_t d = 0; d < dims; ++d)
            dot += static_cast<double>(point[d]) * center[d];
          if (dot > best) {
            best = dot;
            arg = static_cast<int>(c);
          }
        }
        if (assign[i] != arg) {
          assign[i] = arg;
          local_changed = true;
        }
      }
      if (local_changed) changed.store(true, std::memory_order_relaxed);
    });
    if (!changed.load(std::memory_order_relaxed)) break;
    // Recompute centers (serial: O(v * dims), negligible vs assignment).
    std::vector<double> sums(k * dims, 0.0);
    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t i = 0; i < v; ++i) {
      const auto c = static_cast<std::size_t>(assign[i]);
      for (std::size_t d = 0; d < dims; ++d) sums[c * dims + d] += points[i * dims + d];
      ++sizes[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) continue;
      double norm = 0.0;
      for (std::size_t d = 0; d < dims; ++d) norm += sums[c * dims + d] * sums[c * dims + d];
      const double inv = norm > 0 ? 1.0 / std::sqrt(norm) : 0.0;
      for (std::size_t d = 0; d < dims; ++d)
        centers[c * dims + d] = static_cast<float>(sums[c * dims + d] * inv);
    }
  }

  for (std::size_t i = 0; i < v; ++i)
    result.assignment[embeddings.words()[i]] = assign[i];
  return result;
}

void EmbeddingClusters::save(std::ostream& out) const {
  out << "embclusters " << k << ' ' << assignment.size() << '\n';
  std::vector<std::pair<std::string, int>> entries(assignment.begin(),
                                                   assignment.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [word, cluster] : entries) out << word << ' ' << cluster << '\n';
}

EmbeddingClusters EmbeddingClusters::load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != "embclusters")
    throw std::runtime_error(
        "embclusters: bad magic (expected `embclusters`, got '" + magic + "')");
  EmbeddingClusters result;
  std::size_t entries = 0;
  if (!(in >> result.k >> entries))
    throw std::runtime_error("embclusters: missing header counts");
  for (std::size_t i = 0; i < entries; ++i) {
    std::string word;
    int cluster = 0;
    if (!(in >> word >> cluster))
      throw std::runtime_error("embclusters: truncated table (read " +
                               std::to_string(i) + " of " +
                               std::to_string(entries) + " rows)");
    result.assignment[std::move(word)] = cluster;
  }
  return result;
}

}  // namespace graphner::embeddings
