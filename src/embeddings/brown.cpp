#include "src/embeddings/brown.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <functional>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "src/util/logging.hpp"
#include "src/util/parallel.hpp"
#include "src/util/strings.hpp"

namespace graphner::embeddings {
namespace {

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// Cluster-level bigram statistics over a recycled (C+1)-slot window with a
/// cached AMI-term table.
///
/// The original trainer kept a dense V x V matrix (V = vocabulary) and
/// recomputed every AMI term on demand. Only C+1 slots are ever alive at
/// once — the C cluster representatives plus the word currently being
/// inserted — so this model stores exactly that window (O(C^2) memory) and
/// additionally caches q(a, b) for every window pair. Counts mutations mark
/// the affected rows/columns dirty; `refresh` recomputes just those before
/// the next round of merge-loss queries. Because a cached entry is always
/// produced by the same expression over the same operands as an on-demand
/// evaluation, every loss assembled from the cache is bit-for-bit equal to
/// the frozen reference implementation's — the property the golden tests
/// assert. (The classic O(1)-per-pair delta update of Liang 2005 is
/// deliberately NOT used: it reassociates the floating-point sums and can
/// flip near-tie merge decisions.)
class WindowModel {
 public:
  WindowModel(std::size_t window, double total_bigrams)
      : window_(window),
        total_(total_bigrams),
        bigram_(window * window, 0.0),
        q_(window * window, 0.0),
        left_(window, 0.0),
        right_(window, 0.0),
        alive_(window, false),
        dirty_row_(window, 1),
        dirty_col_(window, 1) {}

  void activate(std::size_t slot) { alive_[slot] = true; }
  [[nodiscard]] bool alive(std::size_t slot) const { return alive_[slot]; }

  void add_bigram(std::size_t a, std::size_t b, double count) {
    bigram_[a * window_ + b] += count;
    left_[a] += count;   // feeds every q(a, *)
    right_[b] += count;  // feeds every q(*, b)
    dirty_row_[a] = 1;
    dirty_col_[b] = 1;
  }

  /// Zero a slot so it can host the next inserted word.
  void recycle(std::size_t slot) {
    for (std::size_t d = 0; d < window_; ++d) {
      bigram_[slot * window_ + d] = 0.0;
      bigram_[d * window_ + slot] = 0.0;
    }
    left_[slot] = 0.0;
    right_[slot] = 0.0;
    alive_[slot] = false;
    dirty_row_[slot] = 1;
    dirty_col_[slot] = 1;
  }

  /// Recompute the cached q entries whose inputs changed, restricted to the
  /// given slot list (the only slots the upcoming loss queries touch).
  void refresh(const std::vector<std::size_t>& slots) {
    for (const std::size_t r : slots) {
      if (!dirty_row_[r]) continue;
      for (const std::size_t d : slots) q_[r * window_ + d] = compute_q(r, d);
      dirty_row_[r] = 0;
    }
    for (const std::size_t c : slots) {
      if (!dirty_col_[c]) continue;
      for (const std::size_t d : slots) q_[d * window_ + c] = compute_q(d, c);
      dirty_col_[c] = 0;
    }
  }

  /// Cached AMI term; `refresh` must have run since the last mutation.
  [[nodiscard]] double q(std::size_t a, std::size_t b) const {
    return q_[a * window_ + b];
  }

  /// Sum of AMI terms that mention slot c, folded in `order` sequence
  /// (matches the reference implementation's summation order exactly).
  [[nodiscard]] double contribution(std::size_t c,
                                    const std::vector<std::size_t>& order) const {
    double acc = 0.0;
    for (const std::size_t d : order) {
      acc += q(c, d);
      if (d != c) acc += q(d, c);
    }
    return acc;
  }

  /// The "terms added" half of the AMI merge loss: the merged cluster
  /// (a u b) scored against every other slot in `order`, plus its self
  /// term. Fresh evaluation per call — these are merge hypotheticals and
  /// have no cacheable identity.
  [[nodiscard]] double merge_added(std::size_t a, std::size_t b,
                                   const std::vector<std::size_t>& order) const {
    const double lu = left_[a] + left_[b];
    const double ru = right_[a] + right_[b];
    const double* arow = bigram_.data() + a * window_;
    const double* brow = bigram_.data() + b * window_;
    double added = 0.0;
    auto q_merged = [&](double count, double l, double r) {
      if (count <= 0.0 || l <= 0.0 || r <= 0.0) return 0.0;
      const double p = count / total_;
      return p * std::log(p * total_ * total_ / (l * r));
    };
    for (const std::size_t d : order) {
      if (d == a || d == b) continue;
      const double* drow = bigram_.data() + d * window_;
      added += q_merged(arow[d] + brow[d], lu, right_[d]);
      added += q_merged(drow[a] + drow[b], left_[d], ru);
    }
    added += q_merged(arow[a] + arow[b] + brow[a] + brow[b], lu, ru);
    return added;
  }

  /// Merge slot b into slot a (b dies). `order` lists the slots carrying
  /// counts, exactly as the reference implementation's `active` argument.
  void merge(std::size_t a, std::size_t b, const std::vector<std::size_t>& order) {
    for (const std::size_t d : order) {
      if (d == b) continue;
      bigram_[a * window_ + d] += bigram_[b * window_ + d];
      bigram_[b * window_ + d] = 0.0;
      bigram_[d * window_ + a] += bigram_[d * window_ + b];
      bigram_[d * window_ + b] = 0.0;
    }
    bigram_[a * window_ + a] += bigram_[b * window_ + b] +
                                bigram_[a * window_ + b] +
                                bigram_[b * window_ + a];
    bigram_[a * window_ + b] = 0.0;
    bigram_[b * window_ + a] = 0.0;
    bigram_[b * window_ + b] = 0.0;
    left_[a] += left_[b];
    right_[a] += right_[b];
    left_[b] = 0.0;
    right_[b] = 0.0;
    alive_[b] = false;
    dirty_row_[a] = 1;
    dirty_col_[a] = 1;
  }

 private:
  [[nodiscard]] double compute_q(std::size_t a, std::size_t b) const {
    const double c = bigram_[a * window_ + b];
    if (c <= 0.0 || left_[a] <= 0.0 || right_[b] <= 0.0) return 0.0;
    const double p = c / total_;
    return p * std::log(p * total_ * total_ / (left_[a] * right_[b]));
  }

  std::size_t window_;
  double total_;
  std::vector<double> bigram_;
  std::vector<double> q_;  ///< cached AMI terms, maintained by refresh()
  std::vector<double> left_;
  std::vector<double> right_;
  std::vector<bool> alive_;
  std::vector<char> dirty_row_;
  std::vector<char> dirty_col_;
};

/// Interned corpus counts: every distinct lowercased token gets a dense
/// integer id, unigrams live in a flat array, and bigrams are folded into a
/// single integer-keyed map before being scattered into per-word adjacency
/// lists. Replaces the nested string-keyed maps (three hash lookups plus a
/// lowercase allocation per token) that the frozen dense reference still
/// carries. All counts are integers, so no accumulation-order change can
/// perturb the doubles the AMI terms are computed from.
struct Counts {
  std::vector<std::string> words;      ///< id -> token text
  std::vector<std::uint64_t> unigram;  ///< id -> count
  /// id -> (neighbour id, bigram count); `forward` lists successors,
  /// `reverse` predecessors.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> forward;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> reverse;
  std::uint32_t bos = 0;  ///< "<s>"
  std::uint32_t eos = 0;  ///< "</s>"
  std::uint64_t total_bigrams = 0;
};

/// Open-addressed (packed bigram id -> count) table: the single hot map in
/// counting. Linear probing over power-of-two capacity with a splitmix64
/// finalizer; several times faster than the node-based unordered_map.
class PairCounter {
 public:
  PairCounter() : keys_(kInitialCapacity, kEmpty), vals_(kInitialCapacity, 0) {}

  void add(std::uint64_t key) {
    if ((used_ + 1) * 10 >= keys_.size() * 7) grow();
    std::size_t i = slot(key, keys_.size());
    while (keys_[i] != kEmpty && keys_[i] != key) i = (i + 1) & (keys_.size() - 1);
    if (keys_[i] == kEmpty) {
      keys_[i] = key;
      ++used_;
    }
    ++vals_[i];
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i)
      if (keys_[i] != kEmpty) fn(keys_[i], vals_[i]);
  }

 private:
  // Packed keys are (id_a << 32) | id_b with both ids far below 2^32, so the
  // all-ones sentinel can never collide with a real key.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  static constexpr std::size_t kInitialCapacity = 1 << 16;

  static std::size_t slot(std::uint64_t key, std::size_t capacity) {
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 33;
    return static_cast<std::size_t>(key) & (capacity - 1);
  }

  void grow() {
    const std::vector<std::uint64_t> old_keys = std::move(keys_);
    const std::vector<std::uint64_t> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    vals_.assign(old_vals.size() * 2, 0);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = slot(old_keys[i], keys_.size());
      while (keys_[j] != kEmpty) j = (j + 1) & (keys_.size() - 1);
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> vals_;
  std::size_t used_ = 0;
};

Counts count_corpus(const std::vector<text::Sentence>& sentences) {
  Counts counts;
  std::unordered_map<std::string, std::uint32_t> intern;
  intern.reserve(1 << 15);
  // try_emplace: the key string is only copied into a node on a genuine
  // insert — the overwhelmingly common duplicate-token case is a pure find.
  auto id_of = [&](const std::string& token) {
    const auto [it, inserted] =
        intern.try_emplace(token, static_cast<std::uint32_t>(counts.words.size()));
    if (inserted) {
      counts.words.push_back(token);
      counts.unigram.push_back(0);
    }
    return it->second;
  };
  counts.bos = id_of("<s>");
  counts.eos = id_of("</s>");
  PairCounter pair_counts;
  std::string lower;
  for (const auto& sentence : sentences) {
    std::uint32_t prev = counts.bos;
    ++counts.unigram[prev];
    for (const auto& raw : sentence.tokens) {
      lower.assign(raw);  // ASCII lowercase in place, as util::to_lower
      for (char& c : lower)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      const std::uint32_t tok = id_of(lower);
      ++counts.unigram[tok];
      pair_counts.add((static_cast<std::uint64_t>(prev) << 32) | tok);
      ++counts.total_bigrams;
      prev = tok;
    }
    pair_counts.add((static_cast<std::uint64_t>(prev) << 32) | counts.eos);
    ++counts.total_bigrams;
  }
  counts.forward.resize(counts.words.size());
  counts.reverse.resize(counts.words.size());
  pair_counts.for_each([&](std::uint64_t key, std::uint64_t c) {
    const auto a = static_cast<std::uint32_t>(key >> 32);
    const auto b = static_cast<std::uint32_t>(key & 0xffffffffULL);
    counts.forward[a].emplace_back(b, c);
    counts.reverse[b].emplace_back(a, c);
  });
  return counts;
}

/// First index of the strictly smallest loss, scanned in `count` candidate
/// order — the parallel equivalent of the reference implementation's serial
/// `loss < best_loss` scan (ties keep the earlier candidate; NaNs lose).
struct BestLoss {
  double loss = std::numeric_limits<double>::infinity();
  std::size_t index = kNoSlot;
};

template <typename LossFn>
BestLoss parallel_argmin(std::size_t count, const LossFn& loss_of) {
  return util::parallel_reduce(
      std::size_t{0}, count, BestLoss{},
      [&](BestLoss& acc, std::size_t k) {
        const double loss = loss_of(k);
        if (loss < acc.loss) {
          acc.loss = loss;
          acc.index = k;
        }
      },
      [](BestLoss& lhs, const BestLoss& rhs) {
        if (rhs.index != kNoSlot && rhs.loss < lhs.loss) lhs = rhs;
      });
}

}  // namespace

BrownClustering BrownClustering::train(const std::vector<text::Sentence>& sentences,
                                       const BrownConfig& config) {
  BrownClustering result;
  const Counts counts = count_corpus(sentences);
  if (counts.total_bigrams == 0) return result;

  // Frequency-ordered vocabulary (excluding boundary pseudo-tokens).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> vocab;  // (id, count)
  for (std::uint32_t id = 0; id < counts.words.size(); ++id) {
    if (id == counts.bos || id == counts.eos) continue;
    if (counts.unigram[id] >= config.min_count)
      vocab.emplace_back(id, counts.unigram[id]);
  }
  std::sort(vocab.begin(), vocab.end(), [&](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second
                                : counts.words[a.first] < counts.words[b.first];
  });
  if (vocab.size() > config.max_vocabulary) vocab.resize(config.max_vocabulary);
  if (vocab.empty()) return result;

  const std::size_t num_clusters = std::min(config.num_clusters, vocab.size());
  if (num_clusters == 0) return result;

  // Each vocabulary word gets a slot; slot merging is tracked by a
  // union-find so word -> final cluster resolves after all merges. The
  // greedy procedure only ever merges a new word into one of the
  // `num_clusters` seed slots, so every union-find root is a seed slot —
  // which is what lets the count window stay (C+1)-sized: seed slot s
  // occupies window slot s, and one extra window slot hosts whichever word
  // is currently being inserted.
  std::vector<std::size_t> slot_of(counts.words.size(), kNoSlot);
  for (std::size_t i = 0; i < vocab.size(); ++i) slot_of[vocab[i].first] = i;
  std::vector<std::size_t> parent(vocab.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  const std::size_t transient = num_clusters;  // recycled window slot
  WindowModel model(num_clusters + 1, static_cast<double>(counts.total_bigrams));

  // Add word `vocab_slot`'s bigram counts into window slot `wslot`. A
  // neighbour contributes iff it is the word itself or resolves to a live
  // cluster representative (always a seed slot, see above).
  auto add_word_counts = [&](std::size_t vocab_slot, std::size_t wslot) {
    const std::uint32_t id = vocab[vocab_slot].first;
    // Forward: word -> (active cluster | itself).
    for (const auto& [next, c] : counts.forward[id]) {
      const std::size_t vs = slot_of[next];
      if (vs == kNoSlot) continue;
      const std::size_t other = find(vs);
      if (other == vocab_slot)
        model.add_bigram(wslot, wslot, static_cast<double>(c));
      else if (other < num_clusters && model.alive(other))
        model.add_bigram(wslot, other, static_cast<double>(c));
    }
    // Reverse: (active cluster) -> word; the self pair was added above.
    for (const auto& [prev, c] : counts.reverse[id]) {
      const std::size_t vs = slot_of[prev];
      if (vs == kNoSlot) continue;
      const std::size_t other = find(vs);
      if (other != vocab_slot && other < num_clusters && model.alive(other))
        model.add_bigram(other, wslot, static_cast<double>(c));
    }
    model.activate(wslot);
  };

  // Phase 1: seed with the most frequent `num_clusters` words.
  std::vector<std::size_t> seeds;
  for (std::size_t i = 0; i < num_clusters; ++i) {
    add_word_counts(i, i);
    seeds.push_back(i);
  }

  // Phase 2: insert each remaining word into the transient slot, then merge
  // it into the cluster whose merge loses the least average mutual
  // information. `scan_order` mirrors the reference implementation's
  // `active` vector (seeds in insertion order, then the new word), which
  // fixes the floating-point summation order of every loss term.
  std::vector<std::size_t> scan_order = seeds;
  scan_order.push_back(transient);
  std::vector<double> base(num_clusters, 0.0);  // per-seed contribution prefix
  for (std::size_t i = num_clusters; i < vocab.size(); ++i) {
    model.recycle(transient);
    add_word_counts(i, transient);
    model.refresh(scan_order);

    // contribution(seed, active) folds the seed terms first and the two
    // transient terms last; precomputing the seed-only prefix lets every
    // candidate reuse it without changing the fold.
    for (const std::size_t t : seeds) base[t] = model.contribution(t, seeds);
    const double contrib_word = model.contribution(transient, scan_order);

    const BestLoss best = parallel_argmin(num_clusters, [&](std::size_t t) {
      const double ca = (base[t] + model.q(t, transient)) + model.q(transient, t);
      double removed = ca + contrib_word;
      removed -= model.q(t, transient) + model.q(transient, t);
      return removed - model.merge_added(t, transient, scan_order);
    });
    const std::size_t best_target = best.index == kNoSlot ? seeds.front() : best.index;
    model.merge(best_target, transient, scan_order);
    parent[i] = best_target;
  }

  // Phase 3: merge the final clusters down to one, recording the tree.
  struct Node {
    int left = -1;
    int right = -1;
    std::size_t slot = 0;  ///< leaf only
  };
  std::vector<Node> tree;
  std::unordered_map<std::size_t, int> slot_node;
  for (const std::size_t slot : seeds) {
    slot_node[slot] = static_cast<int>(tree.size());
    tree.push_back({-1, -1, slot});
  }
  std::vector<std::size_t> remaining = seeds;
  std::vector<double> contrib(num_clusters + 1, 0.0);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  while (remaining.size() > 1) {
    model.refresh(remaining);
    for (const std::size_t x : remaining) contrib[x] = model.contribution(x, remaining);
    pairs.clear();
    for (std::size_t x = 0; x < remaining.size(); ++x)
      for (std::size_t y = x + 1; y < remaining.size(); ++y)
        pairs.emplace_back(remaining[x], remaining[y]);
    const BestLoss best = parallel_argmin(pairs.size(), [&](std::size_t k) {
      const auto [a, b] = pairs[k];
      double removed = contrib[a] + contrib[b];
      removed -= model.q(a, b) + model.q(b, a);
      return removed - model.merge_added(a, b, remaining);
    });
    const auto [best_a, best_b] =
        best.index == kNoSlot ? pairs.front() : pairs[best.index];
    model.merge(best_a, best_b, remaining);
    const int node = static_cast<int>(tree.size());
    tree.push_back({slot_node[best_a], slot_node[best_b], 0});
    slot_node[best_a] = node;
    remaining.erase(std::find(remaining.begin(), remaining.end(), best_b));
  }

  // Walk the tree from the root assigning bit strings to leaves.
  std::vector<std::string> slot_path(num_clusters);
  if (!tree.empty()) {
    struct Frame {
      int node;
      std::string path;
    };
    std::vector<Frame> stack{{static_cast<int>(tree.size()) - 1, ""}};
    while (!stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      const Node& node = tree[static_cast<std::size_t>(frame.node)];
      if (node.left < 0) {
        slot_path[node.slot] = frame.path.empty() ? "0" : frame.path;
        continue;
      }
      stack.push_back({node.left, frame.path + "0"});
      stack.push_back({node.right, frame.path + "1"});
    }
  }

  // Final cluster ids and word assignments.
  std::unordered_map<std::size_t, int> slot_cluster;
  for (const std::size_t slot : seeds) {
    slot_cluster[slot] = static_cast<int>(result.paths_.size());
    result.paths_.push_back(slot_path[slot]);
  }
  for (std::size_t i = 0; i < vocab.size(); ++i)
    result.word_cluster_[counts.words[vocab[i].first]] = slot_cluster[find(i)];

  util::log_debug("brown: ", result.paths_.size(), " clusters over ",
                  vocab.size(), " words");
  return result;
}

std::string BrownClustering::path(const std::string& word) const {
  const int c = cluster(word);
  return c < 0 ? std::string{} : paths_[static_cast<std::size_t>(c)];
}

std::string BrownClustering::path_prefix(const std::string& word, std::size_t n) const {
  std::string p = path(word);
  if (p.size() > n) p.resize(n);
  return p;
}

void BrownClustering::save(std::ostream& out) const {
  out << paths_.size() << ' ' << word_cluster_.size() << '\n';
  for (const auto& path : paths_) out << path << '\n';
  // Sorted word table: the serialization is a deterministic function of the
  // model, not of unordered_map iteration order.
  std::vector<std::pair<std::string, int>> entries(word_cluster_.begin(),
                                                   word_cluster_.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [word, cluster] : entries) out << word << ' ' << cluster << '\n';
}

BrownClustering BrownClustering::load(std::istream& in) {
  BrownClustering result;
  std::size_t clusters = 0;
  std::size_t words = 0;
  if (!(in >> clusters >> words))
    throw std::runtime_error(
        "brown clusters: malformed header (expected `clusters words`)");
  // Every cluster owns at least one word in any file save() wrote, so a
  // header claiming otherwise (or an absurd allocation request) is corrupt.
  if (clusters > words)
    throw std::runtime_error("brown clusters: header claims " +
                             std::to_string(clusters) + " clusters but only " +
                             std::to_string(words) + " words");
  result.paths_.resize(clusters);
  for (std::size_t i = 0; i < clusters; ++i) {
    auto& path = result.paths_[i];
    if (!(in >> path))
      throw std::runtime_error("brown clusters: truncated path table (read " +
                               std::to_string(i) + " of " +
                               std::to_string(clusters) + " paths)");
    for (const char c : path)
      if (c != '0' && c != '1')
        throw std::runtime_error("brown clusters: path " + std::to_string(i) +
                                 " is not a bit string: '" + path + "'");
  }
  for (std::size_t i = 0; i < words; ++i) {
    std::string word;
    int cluster = 0;
    if (!(in >> word >> cluster))
      throw std::runtime_error("brown clusters: truncated word table (read " +
                               std::to_string(i) + " of " + std::to_string(words) +
                               " words)");
    if (cluster < 0 || static_cast<std::size_t>(cluster) >= clusters)
      throw std::runtime_error("brown clusters: word '" + word +
                               "' references cluster " + std::to_string(cluster) +
                               " outside [0, " + std::to_string(clusters) + ")");
    if (!result.word_cluster_.emplace(std::move(word), cluster).second)
      throw std::runtime_error("brown clusters: duplicate word entry at record " +
                               std::to_string(i));
  }
  return result;
}

int BrownClustering::cluster(const std::string& word) const {
  const auto it = word_cluster_.find(util::to_lower(word));
  return it == word_cluster_.end() ? -1 : it->second;
}

}  // namespace graphner::embeddings
