// Brown clustering (Brown et al. 1992).
//
// BANNER-ChemDNER feeds hierarchical Brown-cluster bit-string prefixes to
// its CRF as features extracted from unlabelled text. This implementation
// follows the classic greedy algorithm: keep C active clusters, insert
// words in frequency order, and repeatedly merge the pair whose merge
// loses the least average mutual information of the cluster-level bigram
// distribution. After all words are inserted, the final C clusters are
// merged down to one while recording the merge tree, which yields a binary
// path (bit string) per cluster.
//
// Clustering cost is O(V * C^3) with the straightforward merge-cost
// evaluation used here, so the vocabulary is capped to the most frequent
// `max_vocabulary` words; rarer words map to the cluster of a same-shape
// frequent word when possible, else to a catch-all rare cluster.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/text/sentence.hpp"

namespace graphner::embeddings {

struct BrownConfig {
  std::size_t num_clusters = 48;
  std::size_t max_vocabulary = 1200;
  std::size_t min_count = 2;
};

class BrownClustering {
 public:
  /// Cluster the token stream of `sentences` (sentence boundaries break
  /// bigrams). Deterministic.
  static BrownClustering train(const std::vector<text::Sentence>& sentences,
                               const BrownConfig& config);

  /// Bit-string path of the word's cluster ("0110..."); empty if unknown.
  [[nodiscard]] std::string path(const std::string& word) const;

  /// Path prefix of length n (whole path if shorter); empty if unknown.
  [[nodiscard]] std::string path_prefix(const std::string& word, std::size_t n) const;

  /// Flat cluster id in [0, num_clusters); -1 if unknown.
  [[nodiscard]] int cluster(const std::string& word) const;

  [[nodiscard]] std::size_t num_clusters() const noexcept { return paths_.size(); }
  [[nodiscard]] std::size_t vocabulary_size() const noexcept { return word_cluster_.size(); }

  /// Text serialization (cluster paths + word assignments).
  void save(std::ostream& out) const;
  static BrownClustering load(std::istream& in);

 private:
  std::unordered_map<std::string, int> word_cluster_;
  std::vector<std::string> paths_;  ///< per cluster id
};

}  // namespace graphner::embeddings
