// Brown clustering (Brown et al. 1992).
//
// BANNER-ChemDNER feeds hierarchical Brown-cluster bit-string prefixes to
// its CRF as features extracted from unlabelled text. This implementation
// follows the classic greedy algorithm: keep C active clusters, insert
// words in frequency order, and repeatedly merge the pair whose merge
// loses the least average mutual information of the cluster-level bigram
// distribution. After all words are inserted, the final C clusters are
// merged down to one while recording the merge tree, which yields a binary
// path (bit string) per cluster.
//
// The trainer keeps the cluster-bigram statistics in a recycled
// (C+1) x (C+1) slot window — C persistent cluster slots plus one slot
// reused for each inserted word — so memory is O(C^2) regardless of the
// vocabulary, and it caches the per-pair AMI terms in a table that is
// refreshed incrementally (only the rows/columns whose counts changed
// since the last merge). The candidate scans run under
// util::parallel_reduce. The greedy merge sequence is bit-for-bit the one
// the original dense-matrix implementation produced; that implementation
// is frozen in brown_reference.{hpp,cpp} and the equivalence is enforced
// by tests/test_train_kernels.cpp.
//
// Training cost is O(V * C^2) merge-loss term evaluations over an
// L1-resident window; the vocabulary cap exists to bound the number of
// greedy insertions, not memory. Rarer words map to the cluster of a
// same-shape frequent word when possible, else to a catch-all rare
// cluster.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/text/sentence.hpp"

namespace graphner::embeddings {

struct BrownConfig {
  std::size_t num_clusters = 48;
  std::size_t max_vocabulary = 1200;
  std::size_t min_count = 2;
};

class BrownClustering {
 public:
  /// Cluster the token stream of `sentences` (sentence boundaries break
  /// bigrams). Deterministic, and independent of the thread count.
  static BrownClustering train(const std::vector<text::Sentence>& sentences,
                               const BrownConfig& config);

  /// Bit-string path of the word's cluster ("0110..."); empty if unknown.
  [[nodiscard]] std::string path(const std::string& word) const;

  /// Path prefix of length n (whole path if shorter); empty if unknown.
  [[nodiscard]] std::string path_prefix(const std::string& word, std::size_t n) const;

  /// Flat cluster id in [0, num_clusters); -1 if unknown.
  [[nodiscard]] int cluster(const std::string& word) const;

  [[nodiscard]] std::size_t num_clusters() const noexcept { return paths_.size(); }
  [[nodiscard]] std::size_t vocabulary_size() const noexcept { return word_cluster_.size(); }

  /// Text serialization (cluster paths + word assignments).
  void save(std::ostream& out) const;

  /// Restore from `save` output. Throws std::runtime_error on malformed
  /// input: bad header, truncated tables, non-bit-string paths,
  /// out-of-range cluster ids, duplicate words.
  static BrownClustering load(std::istream& in);

 private:
  friend BrownClustering train_brown_reference(
      const std::vector<text::Sentence>& sentences, const BrownConfig& config);

  std::unordered_map<std::string, int> word_cluster_;
  std::vector<std::string> paths_;  ///< per cluster id
};

}  // namespace graphner::embeddings
