// word2vec skip-gram with negative sampling (Mikolov et al. 2013).
//
// BANNER-ChemDNER uses word2vec vectors trained on unlabelled text as CRF
// features. This is a from-scratch SGNS trainer: unigram^(3/4) negative
// sampling table, linear learning-rate decay, frequent-word subsampling,
// deterministic under a fixed seed (single-threaded SGD by design — the
// corpus sizes here make hogwild unnecessary and determinism is worth more).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/text/sentence.hpp"
#include "src/util/rng.hpp"

namespace graphner::embeddings {

struct Word2VecConfig {
  std::size_t dimensions = 24;
  std::size_t window = 4;
  std::size_t negatives = 4;
  std::size_t epochs = 3;
  std::size_t min_count = 2;
  double initial_lr = 0.05;
  double subsample_threshold = 1e-3;
  std::uint64_t seed = 7;
};

class Word2Vec {
 public:
  static Word2Vec train(const std::vector<text::Sentence>& sentences,
                        const Word2VecConfig& config);

  /// Input (center-word) vector; nullopt for OOV.
  [[nodiscard]] std::optional<std::span<const float>> vector(const std::string& word) const;

  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
  [[nodiscard]] std::size_t vocabulary_size() const noexcept { return words_.size(); }
  [[nodiscard]] const std::vector<std::string>& words() const noexcept { return words_; }

  /// Cosine similarity between two words' vectors (0 if either is OOV).
  [[nodiscard]] double similarity(const std::string& a, const std::string& b) const;

 private:
  std::size_t dims_ = 0;
  std::vector<std::string> words_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<float> input_;  ///< vocabulary x dims
};

/// Hard k-means over the (L2-normalized) embedding vectors; the resulting
/// cluster ids are discretized into CRF features, mirroring how
/// BANNER-ChemDNER buckets continuous vectors.
struct EmbeddingClusters {
  std::unordered_map<std::string, int> assignment;
  std::size_t k = 0;

  [[nodiscard]] int cluster(const std::string& word) const {
    const auto it = assignment.find(word);
    return it == assignment.end() ? -1 : it->second;
  }
};

[[nodiscard]] EmbeddingClusters cluster_embeddings(const Word2Vec& embeddings,
                                                   std::size_t k,
                                                   std::uint64_t seed = 11,
                                                   std::size_t iterations = 12);

}  // namespace graphner::embeddings
