// word2vec skip-gram with negative sampling (Mikolov et al. 2013).
//
// BANNER-ChemDNER uses word2vec vectors trained on unlabelled text as CRF
// features. This is a from-scratch SGNS trainer: unigram^(3/4) negative
// sampling table, linear learning-rate decay, frequent-word subsampling.
//
// Threading follows the original word2vec.c Hogwild design: with
// `threads > 1` the encoded sentences are sharded across a worker pool
// doing lock-free SGD on the shared embedding tables (updates may race and
// occasionally lose — benign for SGD, but the trajectory is not
// reproducible run-to-run). `threads = 1` (the default and the test path)
// runs the exact serial loop the trainer has always had, deterministic
// under a fixed seed and bitwise-locked by a golden test. The Hogwild path
// additionally uses a sigmoid lookup table, precomputed subsampling
// keep-probabilities, and dependency-broken dot products — optimizations
// the serial path cannot take without changing its trajectory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/text/sentence.hpp"
#include "src/util/rng.hpp"

namespace graphner::embeddings {

struct Word2VecConfig {
  std::size_t dimensions = 24;
  std::size_t window = 4;
  std::size_t negatives = 4;
  std::size_t epochs = 3;
  std::size_t min_count = 2;
  double initial_lr = 0.05;
  double subsample_threshold = 1e-3;
  std::uint64_t seed = 7;
  /// SGD worker count. 1 = deterministic serial trajectory (default);
  /// > 1 = Hogwild lock-free sharded SGD (not bitwise reproducible).
  std::size_t threads = 1;
};

class Word2Vec {
 public:
  static Word2Vec train(const std::vector<text::Sentence>& sentences,
                        const Word2VecConfig& config);

  /// Input (center-word) vector; nullopt for OOV.
  [[nodiscard]] std::optional<std::span<const float>> vector(const std::string& word) const;

  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
  [[nodiscard]] std::size_t vocabulary_size() const noexcept { return words_.size(); }
  [[nodiscard]] const std::vector<std::string>& words() const noexcept { return words_; }

  /// Cosine similarity between two words' vectors (0 if either is OOV).
  /// Uses per-word L2 norms cached at train/load time.
  [[nodiscard]] double similarity(const std::string& a, const std::string& b) const;

  /// Text serialization (vocabulary + input vectors).
  void save(std::ostream& out) const;

  /// Restore from `save` output. Throws std::runtime_error on malformed
  /// input: bad magic/header, truncated vector rows, non-finite values,
  /// duplicate words, missing end sentinel.
  static Word2Vec load(std::istream& in);

 private:
  void rebuild_norms();

  std::size_t dims_ = 0;
  std::vector<std::string> words_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<float> input_;   ///< vocabulary x dims
  std::vector<double> norms_;  ///< per-word L2 norm of input_ row
};

/// Hard k-means over the (L2-normalized) embedding vectors; the resulting
/// cluster ids are discretized into CRF features, mirroring how
/// BANNER-ChemDNER buckets continuous vectors. The assignment step runs
/// under util::parallel_for_chunked; results are deterministic and
/// independent of the thread count.
struct EmbeddingClusters {
  std::unordered_map<std::string, int> assignment;
  std::size_t k = 0;

  [[nodiscard]] int cluster(const std::string& word) const {
    const auto it = assignment.find(word);
    return it == assignment.end() ? -1 : it->second;
  }

  /// Canonical (word-sorted) serialization: the bytes are a function of
  /// the model only, never of unordered_map iteration order — checkpoint
  /// resume relies on save→load→save being byte-identical.
  void save(std::ostream& out) const;
  static EmbeddingClusters load(std::istream& in);
};

[[nodiscard]] EmbeddingClusters cluster_embeddings(const Word2Vec& embeddings,
                                                   std::size_t k,
                                                   std::uint64_t seed = 11,
                                                   std::size_t iterations = 12);

}  // namespace graphner::embeddings
