// Frozen pre-windowing Brown clustering trainer (golden reference).
//
// This is the original dense-matrix implementation of
// BrownClustering::train, kept verbatim for two purposes:
//
//   * golden-equivalence tests: the windowed trainer in brown.cpp must
//     reproduce this implementation's merge sequence bit for bit
//     (tests/test_train_kernels.cpp), and
//   * before/after benchmarking: bench/train_kernels interleaves this
//     trainer with the windowed one and reports the speedup.
//
// It allocates a dense V x V cluster-bigram matrix (quadratic in the
// *vocabulary*, not the cluster count) and recomputes every merge loss
// from scratch, so it is intentionally slow at scale. Do not use outside
// tests and benchmarks; do not "fix" it — its whole value is staying
// byte-for-byte what shipped before the windowed rewrite.
#pragma once

#include "src/embeddings/brown.hpp"

namespace graphner::embeddings {

/// Train with the frozen dense-matrix algorithm. Produces the same cluster
/// paths and word assignments as BrownClustering::train.
[[nodiscard]] BrownClustering train_brown_reference(
    const std::vector<text::Sentence>& sentences, const BrownConfig& config);

}  // namespace graphner::embeddings
