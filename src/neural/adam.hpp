// Adam optimizer step over Param groups.
#pragma once

#include <cmath>
#include <vector>

#include "src/neural/tensor.hpp"

namespace graphner::neural {

struct AdamConfig {
  double lr = 0.003;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double clip = 5.0;  ///< global gradient-norm clip; <= 0 disables
};

class Adam {
 public:
  explicit Adam(AdamConfig config) : config_(config) {}

  /// Apply one update to every parameter, then zero the gradients.
  void step(const std::vector<Param*>& params) {
    ++t_;
    if (config_.clip > 0.0) {
      double norm_sq = 0.0;
      for (const Param* p : params)
        for (const float g : p->grad.data) norm_sq += static_cast<double>(g) * g;
      const double norm = std::sqrt(norm_sq);
      if (norm > config_.clip) {
        const auto scale = static_cast<float>(config_.clip / norm);
        for (Param* p : params)
          for (float& g : p->grad.data) g *= scale;
      }
    }
    const double bc1 = 1.0 - std::pow(config_.beta1, t_);
    const double bc2 = 1.0 - std::pow(config_.beta2, t_);
    for (Param* p : params) {
      for (std::size_t i = 0; i < p->value.data.size(); ++i) {
        const double g = p->grad.data[i];
        p->m.data[i] = static_cast<float>(config_.beta1 * p->m.data[i] +
                                          (1.0 - config_.beta1) * g);
        p->v.data[i] = static_cast<float>(config_.beta2 * p->v.data[i] +
                                          (1.0 - config_.beta2) * g * g);
        const double mhat = p->m.data[i] / bc1;
        const double vhat = p->v.data[i] / bc2;
        p->value.data[i] -=
            static_cast<float>(config_.lr * mhat / (std::sqrt(vhat) + config_.epsilon));
        p->grad.data[i] = 0.0F;
      }
    }
  }

 private:
  AdamConfig config_;
  long t_ = 0;
};

}  // namespace graphner::neural
