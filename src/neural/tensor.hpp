// Minimal dense linear-algebra helpers for the neural baselines.
//
// The bi-LSTM-CRF models are small (tens of thousands of parameters), so a
// simple row-major float matrix with hand-rolled ops is the right tool —
// no BLAS dependency, fully deterministic.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "src/util/rng.hpp"

namespace graphner::neural {

struct Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> data;

  Matrix() = default;
  Matrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0F) {}

  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    assert(r < rows && c < cols);
    return data[r * cols + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    assert(r < rows && c < cols);
    return data[r * cols + c];
  }
  [[nodiscard]] float* row(std::size_t r) { return data.data() + r * cols; }
  [[nodiscard]] const float* row(std::size_t r) const { return data.data() + r * cols; }

  void zero() { std::fill(data.begin(), data.end(), 0.0F); }
};

/// A trainable parameter: value, gradient and Adam moments.
struct Param {
  Matrix value;
  Matrix grad;
  Matrix m;  ///< first moment
  Matrix v;  ///< second moment

  Param() = default;
  Param(std::size_t rows, std::size_t cols)
      : value(rows, cols), grad(rows, cols), m(rows, cols), v(rows, cols) {}

  /// Glorot-uniform initialization.
  void init(util::Rng& rng) {
    const double limit =
        std::sqrt(6.0 / static_cast<double>(value.rows + value.cols));
    for (auto& x : value.data) x = static_cast<float>(rng.uniform(-limit, limit));
  }
};

/// y += W x  (W: out x in, x: in, y: out).
inline void matvec_accum(const Matrix& w, const float* x, float* y) {
  for (std::size_t r = 0; r < w.rows; ++r) {
    const float* wr = w.row(r);
    float acc = 0.0F;
    for (std::size_t c = 0; c < w.cols; ++c) acc += wr[c] * x[c];
    y[r] += acc;
  }
}

/// Backward of y += W x: accumulate dW += dy x^T and dx += W^T dy.
inline void matvec_backward(const Matrix& w, const float* x, const float* dy,
                            Matrix& dw, float* dx) {
  for (std::size_t r = 0; r < w.rows; ++r) {
    const float g = dy[r];
    float* dwr = dw.row(r);
    const float* wr = w.row(r);
    for (std::size_t c = 0; c < w.cols; ++c) {
      dwr[c] += g * x[c];
      if (dx != nullptr) dx[c] += g * wr[c];
    }
  }
}

[[nodiscard]] inline float sigmoidf(float x) noexcept {
  if (x > 12.0F) return 1.0F;
  if (x < -12.0F) return 0.0F;
  return 1.0F / (1.0F + std::exp(-x));
}

[[nodiscard]] inline float tanhf_clamped(float x) noexcept {
  if (x > 12.0F) return 1.0F;
  if (x < -12.0F) return -1.0F;
  return std::tanh(x);
}

}  // namespace graphner::neural
