// LSTM layer with explicit backpropagation through time.
//
// Gate layout in the stacked weight matrices is [input, forget, output,
// candidate]. The runner caches per-step activations on the forward pass
// so backward() can replay them exactly.
#pragma once

#include <vector>

#include "src/neural/tensor.hpp"

namespace graphner::neural {

struct LstmCell {
  std::size_t input_size = 0;
  std::size_t hidden_size = 0;
  Param wx;  ///< 4H x I
  Param wh;  ///< 4H x H
  Param b;   ///< 4H x 1

  LstmCell() = default;
  LstmCell(std::size_t input, std::size_t hidden)
      : input_size(input),
        hidden_size(hidden),
        wx(4 * hidden, input),
        wh(4 * hidden, hidden),
        b(4 * hidden, 1) {}

  void init(util::Rng& rng) {
    wx.init(rng);
    wh.init(rng);
    // Forget-gate bias starts at 1 (standard trick for gradient flow).
    for (std::size_t h = 0; h < hidden_size; ++h)
      b.value.data[hidden_size + h] = 1.0F;
  }

  [[nodiscard]] std::vector<Param*> params() { return {&wx, &wh, &b}; }
};

/// Forward/backward over one direction of a sequence.
class LstmRunner {
 public:
  /// inputs[t] must have cell.input_size entries. Returns hidden states
  /// (outputs()[t], size hidden). Caches activations for backward().
  void forward(const LstmCell& cell, const std::vector<std::vector<float>>& inputs);

  [[nodiscard]] const std::vector<std::vector<float>>& outputs() const noexcept {
    return h_;
  }

  /// d_h[t] = upstream gradient on the hidden output at step t. Accumulates
  /// parameter gradients into `cell` and writes input gradients to d_inputs
  /// (resized to match inputs).
  void backward(LstmCell& cell, const std::vector<std::vector<float>>& d_h,
                std::vector<std::vector<float>>& d_inputs);

 private:
  // Per-step caches.
  std::vector<std::vector<float>> x_;
  std::vector<std::vector<float>> gates_;  ///< post-activation [i f o g], 4H
  std::vector<std::vector<float>> c_;      ///< cell states
  std::vector<std::vector<float>> h_;      ///< hidden states
};

}  // namespace graphner::neural
