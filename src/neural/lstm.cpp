#include "src/neural/lstm.hpp"

#include <cassert>

namespace graphner::neural {

void LstmRunner::forward(const LstmCell& cell,
                         const std::vector<std::vector<float>>& inputs) {
  const std::size_t n = inputs.size();
  const std::size_t H = cell.hidden_size;
  x_ = inputs;
  gates_.assign(n, std::vector<float>(4 * H, 0.0F));
  c_.assign(n, std::vector<float>(H, 0.0F));
  h_.assign(n, std::vector<float>(H, 0.0F));

  std::vector<float> zero(H, 0.0F);
  for (std::size_t t = 0; t < n; ++t) {
    const float* h_prev = t == 0 ? zero.data() : h_[t - 1].data();
    const float* c_prev = t == 0 ? zero.data() : c_[t - 1].data();
    auto& gates = gates_[t];

    // Pre-activations: Wx x + Wh h_prev + b.
    for (std::size_t j = 0; j < 4 * H; ++j) gates[j] = cell.b.value.data[j];
    matvec_accum(cell.wx.value, x_[t].data(), gates.data());
    matvec_accum(cell.wh.value, h_prev, gates.data());

    for (std::size_t j = 0; j < H; ++j) {
      const float i = sigmoidf(gates[j]);
      const float f = sigmoidf(gates[H + j]);
      const float o = sigmoidf(gates[2 * H + j]);
      const float g = tanhf_clamped(gates[3 * H + j]);
      gates[j] = i;
      gates[H + j] = f;
      gates[2 * H + j] = o;
      gates[3 * H + j] = g;
      c_[t][j] = f * c_prev[j] + i * g;
      h_[t][j] = o * tanhf_clamped(c_[t][j]);
    }
  }
}

void LstmRunner::backward(LstmCell& cell, const std::vector<std::vector<float>>& d_h,
                          std::vector<std::vector<float>>& d_inputs) {
  const std::size_t n = x_.size();
  const std::size_t H = cell.hidden_size;
  assert(d_h.size() == n);
  d_inputs.assign(n, std::vector<float>(cell.input_size, 0.0F));
  if (n == 0) return;

  std::vector<float> zero(H, 0.0F);
  std::vector<float> dc_next(H, 0.0F);   // dL/dc flowing from step t+1
  std::vector<float> dh_next(H, 0.0F);   // dL/dh flowing from step t+1
  std::vector<float> d_pre(4 * H, 0.0F);

  for (std::size_t t = n; t-- > 0;) {
    const float* c_prev = t == 0 ? zero.data() : c_[t - 1].data();
    const float* h_prev = t == 0 ? zero.data() : h_[t - 1].data();
    const auto& gates = gates_[t];

    for (std::size_t j = 0; j < H; ++j) {
      const float dh = d_h[t][j] + dh_next[j];
      const float i = gates[j];
      const float f = gates[H + j];
      const float o = gates[2 * H + j];
      const float g = gates[3 * H + j];
      const float tc = tanhf_clamped(c_[t][j]);
      const float dc = dh * o * (1.0F - tc * tc) + dc_next[j];

      d_pre[j] = dc * g * i * (1.0F - i);                 // input gate
      d_pre[H + j] = dc * c_prev[j] * f * (1.0F - f);     // forget gate
      d_pre[2 * H + j] = dh * tc * o * (1.0F - o);        // output gate
      d_pre[3 * H + j] = dc * i * (1.0F - g * g);         // candidate
      dc_next[j] = dc * f;
    }

    // Parameter and input gradients.
    for (std::size_t j = 0; j < 4 * H; ++j) cell.b.grad.data[j] += d_pre[j];
    matvec_backward(cell.wx.value, x_[t].data(), d_pre.data(), cell.wx.grad,
                    d_inputs[t].data());
    std::fill(dh_next.begin(), dh_next.end(), 0.0F);
    matvec_backward(cell.wh.value, h_prev, d_pre.data(), cell.wh.grad,
                    t == 0 ? nullptr : dh_next.data());
  }
}

}  // namespace graphner::neural
