#include "src/neural/bilstm_crf.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "src/neural/adam.hpp"
#include "src/text/bio.hpp"
#include "src/util/logging.hpp"
#include "src/util/math.hpp"
#include "src/util/strings.hpp"

namespace graphner::neural {

using text::kNumTags;
using text::Tag;

namespace {
constexpr std::size_t kUnk = 0;
constexpr std::size_t kNumChars = 128;
}  // namespace

/// Per-sentence activation caches for one forward pass.
struct BiLstmCrfTagger::Forward {
  std::size_t n = 0;
  std::vector<std::size_t> word_ids;
  std::vector<std::vector<std::size_t>> char_ids;  ///< per word
  std::vector<LstmRunner> char_fwd;
  std::vector<LstmRunner> char_bwd;
  std::vector<std::vector<float>> word_vecs;
  std::vector<std::vector<float>> char_reprs;  ///< 2 * char_hidden
  std::vector<std::vector<float>> gate_z;      ///< attention combine only
  std::vector<std::vector<float>> combined;    ///< main BiLSTM inputs
  LstmRunner main_fwd;
  LstmRunner main_bwd;
  std::vector<std::vector<float>> h;  ///< 2 * hidden per position
  std::vector<std::array<double, kNumTags>> emissions;
};

BiLstmCrfTagger::BiLstmCrfTagger(const std::vector<text::Sentence>& vocab_source,
                                 const BiLstmCrfConfig& config)
    : config_(config) {
  // Vocabulary from training counts.
  std::unordered_map<std::string, std::size_t> counts;
  for (const auto& s : vocab_source)
    for (const auto& tok : s.tokens) ++counts[util::to_lower(tok)];
  word_index_.clear();
  std::size_t next = kUnk + 1;
  for (const auto& [word, count] : counts)
    if (count >= config.min_word_count) word_index_.emplace(word, next++);
  char_count_ = kNumChars;

  util::Rng rng(config.seed);
  word_embeddings_ = Param(next, config.word_dim);
  word_embeddings_.init(rng);
  if (config.pretrained != nullptr) {
    std::size_t initialized = 0;
    for (const auto& [word, id] : word_index_) {
      const auto vec = config.pretrained->vector(word);
      if (!vec) continue;
      float* row = word_embeddings_.value.row(id);
      const std::size_t dims = std::min<std::size_t>(config.word_dim, vec->size());
      for (std::size_t d = 0; d < dims; ++d) row[d] = (*vec)[d];
      ++initialized;
    }
    util::log_debug("bilstm-crf: ", initialized, " of ", word_index_.size(),
                    " word embeddings initialized from word2vec");
  }
  char_embeddings_ = Param(char_count_, config.char_dim);
  char_embeddings_.init(rng);
  char_fwd_ = LstmCell(config.char_dim, config.char_hidden);
  char_bwd_ = LstmCell(config.char_dim, config.char_hidden);
  char_fwd_.init(rng);
  char_bwd_.init(rng);

  const std::size_t char_repr = 2 * config.char_hidden;
  std::size_t main_input = config.word_dim + char_repr;
  if (config.combine == CharCombine::kAttention) {
    assert(char_repr == config.word_dim &&
           "attention combine requires word_dim == 2 * char_hidden");
    gate_w_ = Param(config.word_dim, config.word_dim + char_repr);
    gate_b_ = Param(config.word_dim, 1);
    gate_w_.init(rng);
    main_input = config.word_dim;
  }
  main_fwd_ = LstmCell(main_input, config.hidden);
  main_bwd_ = LstmCell(main_input, config.hidden);
  main_fwd_.init(rng);
  main_bwd_.init(rng);
  proj_w_ = Param(kNumTags, 2 * config.hidden);
  proj_b_ = Param(kNumTags, 1);
  proj_w_.init(rng);
  crf_transition_ = Param(kNumTags, kNumTags);
  crf_start_ = Param(kNumTags, 1);
}

std::size_t BiLstmCrfTagger::word_id(const std::string& token) const {
  const auto it = word_index_.find(util::to_lower(token));
  return it == word_index_.end() ? kUnk : it->second;
}

std::size_t BiLstmCrfTagger::char_id(char c) const {
  return static_cast<unsigned char>(c) % kNumChars;
}

std::vector<Param*> BiLstmCrfTagger::parameters() {
  std::vector<Param*> out = {&word_embeddings_, &char_embeddings_,
                             &proj_w_,          &proj_b_,
                             &crf_transition_,  &crf_start_};
  for (Param* p : char_fwd_.params()) out.push_back(p);
  for (Param* p : char_bwd_.params()) out.push_back(p);
  for (Param* p : main_fwd_.params()) out.push_back(p);
  for (Param* p : main_bwd_.params()) out.push_back(p);
  if (config_.combine == CharCombine::kAttention) {
    out.push_back(&gate_w_);
    out.push_back(&gate_b_);
  }
  return out;
}

std::size_t BiLstmCrfTagger::parameter_count() const {
  std::size_t n = 0;
  for (const Param* p : const_cast<BiLstmCrfTagger*>(this)->parameters())
    n += p->value.data.size();
  return n;
}

void BiLstmCrfTagger::run_forward(const text::Sentence& sentence, Forward& fwd) const {
  const std::size_t n = sentence.size();
  const std::size_t char_repr = 2 * config_.char_hidden;
  fwd.n = n;
  fwd.word_ids.resize(n);
  fwd.char_ids.assign(n, {});
  fwd.char_fwd.resize(n);
  fwd.char_bwd.resize(n);
  fwd.word_vecs.assign(n, std::vector<float>(config_.word_dim));
  fwd.char_reprs.assign(n, std::vector<float>(char_repr, 0.0F));
  fwd.combined.clear();
  fwd.gate_z.clear();

  for (std::size_t t = 0; t < n; ++t) {
    const std::string& token = sentence.tokens[t];
    fwd.word_ids[t] = word_id(token);
    const float* emb = word_embeddings_.value.row(fwd.word_ids[t]);
    std::copy(emb, emb + config_.word_dim, fwd.word_vecs[t].begin());

    // Character encoder.
    std::vector<std::vector<float>> chars_f;
    chars_f.reserve(token.size());
    for (const char c : token) {
      fwd.char_ids[t].push_back(char_id(c));
      const float* ce = char_embeddings_.value.row(char_id(c));
      chars_f.emplace_back(ce, ce + config_.char_dim);
    }
    if (chars_f.empty())
      chars_f.emplace_back(config_.char_dim, 0.0F);  // degenerate empty token
    std::vector<std::vector<float>> chars_b(chars_f.rbegin(), chars_f.rend());
    fwd.char_fwd[t].forward(char_fwd_, chars_f);
    fwd.char_bwd[t].forward(char_bwd_, chars_b);
    const auto& hf = fwd.char_fwd[t].outputs().back();
    const auto& hb = fwd.char_bwd[t].outputs().back();
    std::copy(hf.begin(), hf.end(), fwd.char_reprs[t].begin());
    std::copy(hb.begin(), hb.end(),
              fwd.char_reprs[t].begin() + static_cast<long>(config_.char_hidden));
  }

  // Combine word + char representations.
  if (config_.combine == CharCombine::kConcat) {
    fwd.combined.assign(n, std::vector<float>(config_.word_dim + char_repr));
    for (std::size_t t = 0; t < n; ++t) {
      std::copy(fwd.word_vecs[t].begin(), fwd.word_vecs[t].end(),
                fwd.combined[t].begin());
      std::copy(fwd.char_reprs[t].begin(), fwd.char_reprs[t].end(),
                fwd.combined[t].begin() + static_cast<long>(config_.word_dim));
    }
  } else {
    fwd.gate_z.assign(n, std::vector<float>(config_.word_dim));
    fwd.combined.assign(n, std::vector<float>(config_.word_dim));
    std::vector<float> concat(config_.word_dim + char_repr);
    for (std::size_t t = 0; t < n; ++t) {
      std::copy(fwd.word_vecs[t].begin(), fwd.word_vecs[t].end(), concat.begin());
      std::copy(fwd.char_reprs[t].begin(), fwd.char_reprs[t].end(),
                concat.begin() + static_cast<long>(config_.word_dim));
      std::vector<float> pre(config_.word_dim);
      for (std::size_t j = 0; j < config_.word_dim; ++j)
        pre[j] = gate_b_.value.data[j];
      matvec_accum(gate_w_.value, concat.data(), pre.data());
      for (std::size_t j = 0; j < config_.word_dim; ++j) {
        const float z = sigmoidf(pre[j]);
        fwd.gate_z[t][j] = z;
        fwd.combined[t][j] =
            z * fwd.word_vecs[t][j] + (1.0F - z) * fwd.char_reprs[t][j];
      }
    }
  }

  // Sentence BiLSTM.
  std::vector<std::vector<float>> reversed(fwd.combined.rbegin(), fwd.combined.rend());
  fwd.main_fwd.forward(main_fwd_, fwd.combined);
  fwd.main_bwd.forward(main_bwd_, reversed);
  fwd.h.assign(n, std::vector<float>(2 * config_.hidden));
  for (std::size_t t = 0; t < n; ++t) {
    const auto& hf = fwd.main_fwd.outputs()[t];
    const auto& hb = fwd.main_bwd.outputs()[n - 1 - t];
    std::copy(hf.begin(), hf.end(), fwd.h[t].begin());
    std::copy(hb.begin(), hb.end(),
              fwd.h[t].begin() + static_cast<long>(config_.hidden));
  }

  // Emission scores.
  fwd.emissions.assign(n, {});
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t k = 0; k < kNumTags; ++k) {
      float acc = proj_b_.value.data[k];
      const float* wr = proj_w_.value.row(k);
      for (std::size_t j = 0; j < 2 * config_.hidden; ++j) acc += wr[j] * fwd.h[t][j];
      fwd.emissions[t][k] = acc;
    }
  }
}

namespace {

/// CRF-layer forward-backward over 3 tags; returns logZ, node and pairwise
/// marginals. Unconstrained (the model learns the BIO transitions).
struct CrfMarginals {
  double log_z = 0.0;
  std::vector<std::array<double, kNumTags>> node;
  std::vector<std::array<double, kNumTags * kNumTags>> pairwise;  ///< [t] for (t-1 -> t)
};

CrfMarginals crf_forward_backward(
    const std::vector<std::array<double, kNumTags>>& emissions,
    const Matrix& transition, const Matrix& start) {
  const std::size_t n = emissions.size();
  CrfMarginals out;
  std::vector<std::array<double, kNumTags>> alpha(n);
  std::vector<std::array<double, kNumTags>> beta(n);

  for (std::size_t k = 0; k < kNumTags; ++k)
    alpha[0][k] = start.data[k] + emissions[0][k];
  for (std::size_t t = 1; t < n; ++t) {
    for (std::size_t k = 0; k < kNumTags; ++k) {
      double acc = util::kNegInf;
      for (std::size_t p = 0; p < kNumTags; ++p)
        acc = util::log_add(acc, alpha[t - 1][p] + transition.at(p, k));
      alpha[t][k] = acc + emissions[t][k];
    }
  }
  out.log_z = util::log_sum_exp(std::span<const double>(alpha[n - 1].data(), kNumTags));

  for (std::size_t k = 0; k < kNumTags; ++k) beta[n - 1][k] = 0.0;
  for (std::size_t t = n - 1; t-- > 0;) {
    for (std::size_t p = 0; p < kNumTags; ++p) {
      double acc = util::kNegInf;
      for (std::size_t k = 0; k < kNumTags; ++k)
        acc = util::log_add(acc, transition.at(p, k) + emissions[t + 1][k] + beta[t + 1][k]);
      beta[t][p] = acc;
    }
  }

  out.node.assign(n, {});
  for (std::size_t t = 0; t < n; ++t)
    for (std::size_t k = 0; k < kNumTags; ++k)
      out.node[t][k] = std::exp(alpha[t][k] + beta[t][k] - out.log_z);

  out.pairwise.assign(n, {});
  for (std::size_t t = 1; t < n; ++t)
    for (std::size_t p = 0; p < kNumTags; ++p)
      for (std::size_t k = 0; k < kNumTags; ++k)
        out.pairwise[t][p * kNumTags + k] =
            std::exp(alpha[t - 1][p] + transition.at(p, k) + emissions[t][k] +
                     beta[t][k] - out.log_z);
  return out;
}

}  // namespace

double BiLstmCrfTagger::loss(const text::Sentence& sentence) const {
  assert(sentence.has_tags() && sentence.size() > 0);
  Forward fwd;
  run_forward(sentence, fwd);
  const CrfMarginals marginals =
      crf_forward_backward(fwd.emissions, crf_transition_.value, crf_start_.value);
  double gold = crf_start_.value.data[text::tag_index(sentence.tags[0])] +
                fwd.emissions[0][text::tag_index(sentence.tags[0])];
  for (std::size_t t = 1; t < fwd.n; ++t) {
    gold += crf_transition_.value.at(text::tag_index(sentence.tags[t - 1]),
                                     text::tag_index(sentence.tags[t]));
    gold += fwd.emissions[t][text::tag_index(sentence.tags[t])];
  }
  return marginals.log_z - gold;
}

double BiLstmCrfTagger::backward(const text::Sentence& sentence, Forward& fwd) {
  const std::size_t n = fwd.n;
  const CrfMarginals marginals =
      crf_forward_backward(fwd.emissions, crf_transition_.value, crf_start_.value);

  // NLL and CRF-layer gradients (expected - observed).
  double gold = crf_start_.value.data[text::tag_index(sentence.tags[0])] +
                fwd.emissions[0][text::tag_index(sentence.tags[0])];
  std::vector<std::array<double, kNumTags>> d_emit(n, std::array<double, kNumTags>{});
  for (std::size_t t = 0; t < n; ++t)
    for (std::size_t k = 0; k < kNumTags; ++k) d_emit[t][k] = marginals.node[t][k];
  d_emit[0][text::tag_index(sentence.tags[0])] -= 1.0;
  for (std::size_t k = 0; k < kNumTags; ++k)
    crf_start_.grad.data[k] += static_cast<float>(
        marginals.node[0][k] - (k == text::tag_index(sentence.tags[0]) ? 1.0 : 0.0));
  for (std::size_t t = 1; t < n; ++t) {
    const std::size_t gp = text::tag_index(sentence.tags[t - 1]);
    const std::size_t gk = text::tag_index(sentence.tags[t]);
    gold += crf_transition_.value.at(gp, gk) + fwd.emissions[t][gk];
    d_emit[t][gk] -= 1.0;
    for (std::size_t p = 0; p < kNumTags; ++p)
      for (std::size_t k = 0; k < kNumTags; ++k)
        crf_transition_.grad.at(p, k) += static_cast<float>(
            marginals.pairwise[t][p * kNumTags + k] -
            ((p == gp && k == gk) ? 1.0 : 0.0));
  }
  const double nll = marginals.log_z - gold;

  // Projection backward -> dh.
  std::vector<std::vector<float>> dh(n, std::vector<float>(2 * config_.hidden, 0.0F));
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t k = 0; k < kNumTags; ++k) {
      const auto g = static_cast<float>(d_emit[t][k]);
      proj_b_.grad.data[k] += g;
      float* dwr = proj_w_.grad.row(k);
      const float* wr = proj_w_.value.row(k);
      for (std::size_t j = 0; j < 2 * config_.hidden; ++j) {
        dwr[j] += g * fwd.h[t][j];
        dh[t][j] += g * wr[j];
      }
    }
  }

  // Main BiLSTM backward.
  std::vector<std::vector<float>> dh_fwd(n, std::vector<float>(config_.hidden));
  std::vector<std::vector<float>> dh_bwd(n, std::vector<float>(config_.hidden));
  for (std::size_t t = 0; t < n; ++t) {
    std::copy(dh[t].begin(), dh[t].begin() + static_cast<long>(config_.hidden),
              dh_fwd[t].begin());
    std::copy(dh[t].begin() + static_cast<long>(config_.hidden), dh[t].end(),
              dh_bwd[n - 1 - t].begin());
  }
  std::vector<std::vector<float>> dx_fwd;
  std::vector<std::vector<float>> dx_bwd;
  fwd.main_fwd.backward(main_fwd_, dh_fwd, dx_fwd);
  fwd.main_bwd.backward(main_bwd_, dh_bwd, dx_bwd);
  std::vector<std::vector<float>> d_combined(n,
                                             std::vector<float>(fwd.combined[0].size()));
  for (std::size_t t = 0; t < n; ++t)
    for (std::size_t j = 0; j < d_combined[t].size(); ++j)
      d_combined[t][j] = dx_fwd[t][j] + dx_bwd[n - 1 - t][j];

  // Combine backward -> word-embedding and char-representation gradients.
  const std::size_t char_repr = 2 * config_.char_hidden;
  std::vector<std::vector<float>> d_char(n, std::vector<float>(char_repr, 0.0F));
  for (std::size_t t = 0; t < n; ++t) {
    float* d_word = word_embeddings_.grad.row(fwd.word_ids[t]);
    if (config_.combine == CharCombine::kConcat) {
      for (std::size_t j = 0; j < config_.word_dim; ++j) d_word[j] += d_combined[t][j];
      for (std::size_t j = 0; j < char_repr; ++j)
        d_char[t][j] = d_combined[t][config_.word_dim + j];
    } else {
      // x = z (.) w + (1-z) (.) c;  z = sigma(Wz [w;c] + bz).
      std::vector<float> d_pre(config_.word_dim);
      std::vector<float> concat(config_.word_dim + char_repr);
      std::copy(fwd.word_vecs[t].begin(), fwd.word_vecs[t].end(), concat.begin());
      std::copy(fwd.char_reprs[t].begin(), fwd.char_reprs[t].end(),
                concat.begin() + static_cast<long>(config_.word_dim));
      for (std::size_t j = 0; j < config_.word_dim; ++j) {
        const float z = fwd.gate_z[t][j];
        const float dx = d_combined[t][j];
        d_word[j] += dx * z;
        d_char[t][j] += dx * (1.0F - z);
        const float dz = dx * (fwd.word_vecs[t][j] - fwd.char_reprs[t][j]);
        d_pre[j] = dz * z * (1.0F - z);
        gate_b_.grad.data[j] += d_pre[j];
      }
      std::vector<float> d_concat(concat.size(), 0.0F);
      matvec_backward(gate_w_.value, concat.data(), d_pre.data(), gate_w_.grad,
                      d_concat.data());
      for (std::size_t j = 0; j < config_.word_dim; ++j) d_word[j] += d_concat[j];
      for (std::size_t j = 0; j < char_repr; ++j)
        d_char[t][j] += d_concat[config_.word_dim + j];
    }
  }

  // Char encoder backward.
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t chars = std::max<std::size_t>(1, fwd.char_ids[t].size());
    std::vector<std::vector<float>> dh_cf(chars, std::vector<float>(config_.char_hidden, 0.0F));
    std::vector<std::vector<float>> dh_cb(chars, std::vector<float>(config_.char_hidden, 0.0F));
    for (std::size_t j = 0; j < config_.char_hidden; ++j) {
      dh_cf[chars - 1][j] = d_char[t][j];
      dh_cb[chars - 1][j] = d_char[t][config_.char_hidden + j];
    }
    std::vector<std::vector<float>> dx_cf;
    std::vector<std::vector<float>> dx_cb;
    fwd.char_fwd[t].backward(char_fwd_, dh_cf, dx_cf);
    fwd.char_bwd[t].backward(char_bwd_, dh_cb, dx_cb);
    for (std::size_t c = 0; c < fwd.char_ids[t].size(); ++c) {
      float* d_ce = char_embeddings_.grad.row(fwd.char_ids[t][c]);
      for (std::size_t j = 0; j < config_.char_dim; ++j) {
        d_ce[j] += dx_cf[c][j];
        d_ce[j] += dx_cb[fwd.char_ids[t].size() - 1 - c][j];
      }
    }
  }
  return nll;
}

double BiLstmCrfTagger::train_step(const text::Sentence& sentence) {
  Forward fwd;
  run_forward(sentence, fwd);
  return backward(sentence, fwd);
}

std::vector<Tag> BiLstmCrfTagger::predict(const text::Sentence& sentence) const {
  const std::size_t n = sentence.size();
  std::vector<Tag> tags(n, Tag::kO);
  if (n == 0) return tags;
  Forward fwd;
  run_forward(sentence, fwd);

  // Viterbi with the BIO constraint enforced at decode time.
  std::vector<std::array<double, kNumTags>> score(n);
  std::vector<std::array<std::size_t, kNumTags>> back(n);
  for (std::size_t k = 0; k < kNumTags; ++k) {
    const bool legal = text::tag_from_index(k) != Tag::kI;
    score[0][k] = legal ? crf_start_.value.data[k] + fwd.emissions[0][k]
                        : util::kNegInf;
  }
  for (std::size_t t = 1; t < n; ++t) {
    for (std::size_t k = 0; k < kNumTags; ++k) {
      double best = util::kNegInf;
      std::size_t arg = 0;
      for (std::size_t p = 0; p < kNumTags; ++p) {
        if (text::is_illegal_transition(text::tag_from_index(p), text::tag_from_index(k)))
          continue;
        const double cand = score[t - 1][p] + crf_transition_.value.at(p, k);
        if (cand > best) {
          best = cand;
          arg = p;
        }
      }
      score[t][k] = best + fwd.emissions[t][k];
      back[t][k] = arg;
    }
  }
  std::size_t cur = 0;
  double best = util::kNegInf;
  for (std::size_t k = 0; k < kNumTags; ++k)
    if (score[n - 1][k] > best) {
      best = score[n - 1][k];
      cur = k;
    }
  for (std::size_t t = n; t-- > 0;) {
    tags[t] = text::tag_from_index(cur);
    if (t > 0) cur = back[t][cur];
  }
  return tags;
}

BiLstmCrfTagger BiLstmCrfTagger::train(const std::vector<text::Sentence>& labelled,
                                       const BiLstmCrfConfig& config) {
  // Dev split for early stopping (the published systems require one).
  util::Rng rng(config.seed ^ 0xdeadbeefULL);
  std::vector<const text::Sentence*> pool;
  for (const auto& s : labelled)
    if (s.size() > 0 && s.has_tags()) pool.push_back(&s);
  rng.shuffle(pool);
  const auto dev_count = static_cast<std::size_t>(
      config.dev_fraction * static_cast<double>(pool.size()));
  std::vector<const text::Sentence*> dev(pool.begin(), pool.begin() + dev_count);
  std::vector<const text::Sentence*> train_set(pool.begin() + dev_count, pool.end());

  std::vector<text::Sentence> vocab_source;
  vocab_source.reserve(train_set.size());
  for (const auto* s : train_set) vocab_source.push_back(*s);

  BiLstmCrfTagger model(vocab_source, config);
  Adam adam({config.learning_rate, 0.9, 0.999, 1e-8, config.gradient_clip});
  const auto params = model.parameters();

  auto dev_accuracy = [&] {
    std::size_t correct = 0;
    std::size_t total = 0;
    for (const auto* s : dev) {
      const auto predicted = model.predict(*s);
      for (std::size_t t = 0; t < s->size(); ++t) {
        correct += predicted[t] == s->tags[t];
        ++total;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
  };

  double best_dev = -1.0;
  std::vector<Matrix> best_values;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(train_set);
    double total_nll = 0.0;
    for (const auto* s : train_set) {
      total_nll += model.train_step(*s);
      adam.step(params);
    }
    const double acc = dev_accuracy();
    if (config.verbose)
      util::log_info("bilstm-crf epoch ", epoch, ": nll ",
                     total_nll / std::max<std::size_t>(1, train_set.size()),
                     ", dev acc ", acc);
    if (acc > best_dev) {
      best_dev = acc;
      best_values.clear();
      for (const Param* p : params) best_values.push_back(p->value);
    }
  }
  if (!best_values.empty())
    for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = best_values[i];
  return model;
}

}  // namespace graphner::neural
