// Neural sequence-tagging baselines (paper Tables I and II):
//   * LSTM-CRF (Lample et al. 2016): word embeddings + character BiLSTM,
//     concatenated, fed to a sentence BiLSTM with a CRF output layer.
//   * Char-attention (Rei et al. 2016): instead of concatenation, a learned
//     sigmoid gate z mixes the word and character representations,
//     x = z (.) w + (1 - z) (.) c.
// Trained with Adam + BPTT and early stopping on a held-out dev split
// (both published systems require a dev set; paper §III notes the same).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/embeddings/word2vec.hpp"
#include "src/neural/lstm.hpp"
#include "src/neural/tensor.hpp"
#include "src/text/sentence.hpp"

namespace graphner::neural {

enum class CharCombine {
  kConcat,     ///< LSTM-CRF (Lample et al.)
  kAttention,  ///< char-attention gating (Rei et al.)
};

struct BiLstmCrfConfig {
  std::size_t word_dim = 16;
  std::size_t char_dim = 8;
  std::size_t char_hidden = 8;  ///< per direction; char repr = 2 * char_hidden
  std::size_t hidden = 20;      ///< per direction
  CharCombine combine = CharCombine::kConcat;
  std::size_t epochs = 8;
  double learning_rate = 0.003;
  double gradient_clip = 5.0;
  std::size_t min_word_count = 2;
  double dev_fraction = 0.15;
  std::uint64_t seed = 3;
  bool verbose = false;
  /// Optional pretrained word2vec model: in-vocabulary word embeddings are
  /// initialized from it (truncated/padded to word_dim), as the published
  /// LSTM-CRF baselines initialize from pretrained embeddings. Non-owning;
  /// only used during construction.
  const embeddings::Word2Vec* pretrained = nullptr;
};

class BiLstmCrfTagger {
 public:
  static BiLstmCrfTagger train(const std::vector<text::Sentence>& labelled,
                               const BiLstmCrfConfig& config);

  [[nodiscard]] std::vector<text::Tag> predict(const text::Sentence& sentence) const;

  /// Negative log-likelihood of a labelled sentence under the current
  /// parameters (exposed for the finite-difference gradient tests).
  [[nodiscard]] double loss(const text::Sentence& sentence) const;

  /// One forward+backward+update step (exposed for tests).
  double train_step(const text::Sentence& sentence);

  [[nodiscard]] std::vector<Param*> parameters();
  [[nodiscard]] std::size_t parameter_count() const;

  /// Construct an untrained model over the given training vocabulary
  /// (exposed for tests; normal users call train()).
  BiLstmCrfTagger(const std::vector<text::Sentence>& vocab_source,
                  const BiLstmCrfConfig& config);

 private:
  struct Forward;  // per-sentence activation caches (defined in .cpp)

  [[nodiscard]] std::size_t word_id(const std::string& token) const;
  [[nodiscard]] std::size_t char_id(char c) const;
  void run_forward(const text::Sentence& sentence, Forward& fwd) const;
  double backward(const text::Sentence& sentence, Forward& fwd);

  BiLstmCrfConfig config_;
  std::unordered_map<std::string, std::size_t> word_index_;  ///< lowercased
  std::size_t char_count_ = 0;

  Param word_embeddings_;
  Param char_embeddings_;
  LstmCell char_fwd_;
  LstmCell char_bwd_;
  Param gate_w_;  ///< attention combine only: word_dim x (word_dim + char repr)
  Param gate_b_;
  LstmCell main_fwd_;
  LstmCell main_bwd_;
  Param proj_w_;  ///< 3 x (2 * hidden)
  Param proj_b_;  ///< 3 x 1
  Param crf_transition_;  ///< 3 x 3
  Param crf_start_;       ///< 3 x 1

  // Adam optimizer state lives in the Params; this counter is in train().
};

}  // namespace graphner::neural
