// Encoded training/test instances for the CRF.
#pragma once

#include <vector>

#include "src/crf/feature_index.hpp"
#include "src/crf/state_space.hpp"
#include "src/text/tag.hpp"

namespace graphner::crf {

/// One sentence after feature extraction: per-position active feature ids
/// (binary features; sorted, unique) and, for training data, gold states.
struct EncodedSentence {
  std::vector<std::vector<FeatureIndex::Id>> features;
  std::vector<StateId> states;  ///< empty at test time

  [[nodiscard]] std::size_t size() const noexcept { return features.size(); }
  [[nodiscard]] bool labelled() const noexcept {
    return states.size() == features.size() && !features.empty();
  }
};

using Batch = std::vector<EncodedSentence>;

}  // namespace graphner::crf
