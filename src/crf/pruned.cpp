// Pruned and quantized CRF decode kernels (DESIGN.md §10).
//
// Two independent levers, composable per decode call:
//
//   * Quantization attacks the emission pass — the decode-time cost of
//     these lattices is dominated by streaming per-feature emission rows.
//     Float mode runs the unchanged vectorized exact kernel (identical
//     scores, identical summation order); int16/int8 modes run a dense
//     vectorized pass over a quantized table (one calibrated float scale
//     per feature row, float accumulator) whose rows are 4x/8x smaller
//     than the double table — the speedup is the saved memory traffic.
//
//   * Pruning attacks the recurrences, fused into the forward pass itself
//     rather than run as a pre-pass: at each position the recurrence only
//     extends the previous position's survivors, then keeps the `beam`
//     best states by *actual* forward score (Viterbi) or forward mass
//     (forward-backward), with `posterior_threshold` cutting states whose
//     score falls below threshold x the position's best. Because ranking
//     uses the true recurrence values — transition history included — a
//     narrow beam tracks exact decode far more faithfully than any
//     order-0 emission proxy. Survivors are recorded per position; the
//     backward pass and the marginal products then touch survivors only,
//     with lattices pre-zeroed so pruned entries contribute nothing.
//
// The position's best state always survives its own cut, and every state
// has outgoing edges, so pruning cannot strand a position. The remaining
// degeneracies — a scaled-lattice underflow, a state space too large for
// the uint32 survivor masks — transparently rerun the whole sentence on
// the exact kernels and count a fallback.
//
// Exactness: default options never reach this file — the public entry
// points dispatch straight to the unchanged exact kernels, so beam=inf /
// threshold=0 / float stays bit-identical by construction. A forced pruned
// float decode that keeps every state (beam >= S, threshold 0) is *also*
// bit-identical: the emission pass is the exact kernel, psi rows use the
// same full-row maxima, and skipping states the exact recurrence scores
// as zero / -inf drops only exact zeros from the same summation order
// (golden-tested).

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "src/crf/model.hpp"
#include "src/obs/registry.hpp"
#include "src/util/math.hpp"

namespace graphner::crf {

using text::kNumTags;
using util::kNegInf;

namespace {

/// Survivor-set bound: states must fit the uint32 masks. Both shipped state
/// spaces (3 and 9 states) fit with room for experimentation.
constexpr std::size_t kMaxStates = 32;

// Same vectorization pragma story as the exact emission kernel in model.cpp:
// -O2 leaves the accumulation scalar and the build targets baseline x86-64,
// so opt this loop into the vectorizer with an AVX2 ifunc clone. Skipped
// under sanitizers (instrumented ifunc resolvers run before __tsan_init).
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define GRAPHNER_QUANT_KERNEL \
  __attribute__((optimize("tree-vectorize"), target_clones("default", "avx2")))
#else
#define GRAPHNER_QUANT_KERNEL
#endif

/// Dense quantized emission: out[i * S + s] = sum_f scale[f] * q[f * S + s].
/// Same shape as accumulate_emission, with the int rows widened through a
/// float accumulator (drift is bounded by the per-row scales; see
/// quantize_table).
template <std::size_t S, typename Int>
GRAPHNER_QUANT_KERNEL void accumulate_emission_quant(const EncodedSentence& sentence,
                                                     const Int* table,
                                                     const float* scale,
                                                     double* out) {
  const std::size_t n = sentence.size();
  for (std::size_t i = 0; i < n; ++i) {
    float acc[S] = {};
    for (const FeatureIndex::Id f : sentence.features[i]) {
      const Int* row = table + static_cast<std::size_t>(f) * S;
      const float fs = scale[static_cast<std::size_t>(f)];
      for (std::size_t s = 0; s < S; ++s)
        acc[s] += fs * static_cast<float>(row[s]);
    }
    double* row = out + i * S;
    for (std::size_t s = 0; s < S; ++s) row[s] = static_cast<double>(acc[s]);
  }
}

#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define GRAPHNER_QUANT_AVX2 1
#endif

#if GRAPHNER_QUANT_AVX2
// Hand-scheduled AVX2 order-2 (S = 9) kernels: the autovectorizer splits the
// int -> float widening into 128-bit halves, which costs more µops than the
// double kernel it is supposed to undercut. One vpmovsx + vcvtdq2ps + vfmadd
// covers states 0..7 per feature row (the 9th rides a scalar FMA chain), so
// the quantized path matches the exact kernel's µop count while loading
// 4x/8x fewer bytes — the whole point of the narrow tables. Guarded by a
// plain runtime CPU check (no ifunc, so no sanitizer resolver hazards);
// per-state sums visit features in the same order as the generic kernel,
// FMA rounding aside.
__attribute__((target("avx2,fma"))) void emission_quant_avx2_s9(
    const EncodedSentence& sentence, const std::int16_t* table,
    const float* scale, double* out) {
  const std::size_t n = sentence.size();
  for (std::size_t i = 0; i < n; ++i) {
    __m256 acc = _mm256_setzero_ps();
    float acc8 = 0.0f;
    for (const FeatureIndex::Id f : sentence.features[i]) {
      const std::int16_t* row = table + static_cast<std::size_t>(f) * 9;
      const float fs = scale[static_cast<std::size_t>(f)];
      const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row))));
      acc = _mm256_fmadd_ps(v, _mm256_set1_ps(fs), acc);
      acc8 += fs * static_cast<float>(row[8]);
    }
    double* o = out + i * 9;
    _mm256_storeu_pd(o, _mm256_cvtps_pd(_mm256_castps256_ps128(acc)));
    _mm256_storeu_pd(o + 4, _mm256_cvtps_pd(_mm256_extractf128_ps(acc, 1)));
    o[8] = static_cast<double>(acc8);
  }
}

__attribute__((target("avx2,fma"))) void emission_quant_avx2_s9(
    const EncodedSentence& sentence, const std::int8_t* table,
    const float* scale, double* out) {
  const std::size_t n = sentence.size();
  for (std::size_t i = 0; i < n; ++i) {
    __m256 acc = _mm256_setzero_ps();
    float acc8 = 0.0f;
    for (const FeatureIndex::Id f : sentence.features[i]) {
      const std::int8_t* row = table + static_cast<std::size_t>(f) * 9;
      const float fs = scale[static_cast<std::size_t>(f)];
      const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row))));
      acc = _mm256_fmadd_ps(v, _mm256_set1_ps(fs), acc);
      acc8 += fs * static_cast<float>(row[8]);
    }
    double* o = out + i * 9;
    _mm256_storeu_pd(o, _mm256_cvtps_pd(_mm256_castps256_ps128(acc)));
    _mm256_storeu_pd(o + 4, _mm256_cvtps_pd(_mm256_extractf128_ps(acc, 1)));
    o[8] = static_cast<double>(acc8);
  }
}
#endif  // GRAPHNER_QUANT_AVX2

template <typename Int>
void emission_quant_dispatch(const EncodedSentence& sentence, std::size_t S,
                             const Int* table, const float* scale, double* out) {
#if GRAPHNER_QUANT_AVX2
  static const bool have_avx2 = __builtin_cpu_supports("avx2") != 0 &&
                                __builtin_cpu_supports("fma") != 0;
  if (S == 9 && have_avx2) {
    emission_quant_avx2_s9(sentence, table, scale, out);
    return;
  }
#endif
  switch (S) {
    case 3:
      accumulate_emission_quant<3>(sentence, table, scale, out);
      return;
    case 9:
      accumulate_emission_quant<9>(sentence, table, scale, out);
      return;
    default:
      break;
  }
  const std::size_t n = sentence.size();
  for (std::size_t i = 0; i < n; ++i) {
    double* row = out + i * S;
    std::fill(row, row + S, 0.0);
    for (const FeatureIndex::Id f : sentence.features[i]) {
      const Int* w = table + static_cast<std::size_t>(f) * S;
      const double fs = scale[static_cast<std::size_t>(f)];
      for (std::size_t s = 0; s < S; ++s)
        row[s] += fs * static_cast<double>(w[s]);
    }
  }
}

/// Beam cap over candidate (state, value) pairs held in ascending state
/// order. Selection marks winners (or losers, whichever needs fewer
/// extraction scans — c <= 32, so a uint32 bitmask) and compacts once,
/// preserving the ascending order the kernels rely on for deterministic
/// summation. Ties go to the lower state, matching the exact kernels'
/// first-best scan direction. `arg` (nullable) is a parallel payload array
/// compacted alongside — the Viterbi path carries backpointers through.
/// (A branchless O(c^2) rank-select variant measured slower here: its
/// serial flag-accumulation chain costs more than these scans mispredict.)
inline std::size_t beam_cap(StateId* cand, double* val, StateId* arg,
                            std::size_t c, std::size_t beam) {
  if (c <= beam) return c;
  std::uint32_t drop = 0;
  if (c - beam <= beam) {
    for (std::size_t r = c - beam; r-- > 0;) {
      std::size_t worst = 0;
      double wv = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < c; ++j)
        if (!((drop >> j) & 1u) && val[j] < wv) {
          wv = val[j];
          worst = j;
        }
      drop |= 1u << worst;
    }
  } else {
    std::uint32_t keep = 0;
    for (std::size_t r = beam; r-- > 0;) {
      std::size_t bestj = 0;
      double bv = -std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < c; ++j)
        if (!((keep >> j) & 1u) && val[j] > bv) {
          bv = val[j];
          bestj = j;
        }
      keep |= 1u << bestj;
    }
    drop = ~keep;
  }
  std::size_t k = 0;
  for (std::size_t j = 0; j < c; ++j) {
    if ((drop >> j) & 1u) continue;
    cand[k] = cand[j];
    val[k] = val[j];
    if (arg != nullptr) arg[k] = arg[j];
    ++k;
  }
  return k;
}

}  // namespace

// ---------------------------------------------------------------------------
// Decode-table maintenance
// ---------------------------------------------------------------------------

void LinearChainCrf::rebuild_decode_tables() {
  // Reachability masks are space-derived (cheap enough to rebuild alongside
  // the weight caches): bit p of in_mask_[s] says a legal p -> s edge exists.
  const std::size_t S = space_.num_states();
  if (S <= kMaxStates) {
    in_mask_.assign(S, 0);
    const auto& in_off = space_.incoming_offsets();
    const auto& in_edges = space_.incoming_edges();
    for (std::size_t s = 0; s < S; ++s)
      for (std::uint32_t e = in_off[s]; e < in_off[s + 1]; ++e)
        in_mask_[s] |= 1u << in_edges[e].state;
    start_mask_ = 0;
    for (const StateId s : space_.start_states()) start_mask_ |= 1u << s;
  }
  // Prepared quantized tables track the live weights.
  if (!quant16_.empty()) prepare_quantization(Quantization::kInt16);
  if (!quant8_.empty()) prepare_quantization(Quantization::kInt8);
}

namespace {

/// Quantize one weight table: per-feature-row absmax scale, symmetric
/// round-to-nearest. Returns the max absolute reconstruction error.
template <typename Int>
double quantize_table(const double* weights, std::size_t num_features,
                      std::size_t num_states, std::vector<Int>& q,
                      std::vector<float>& scale) {
  constexpr double kMaxQ = static_cast<double>(std::numeric_limits<Int>::max());
  q.resize(num_features * num_states);
  scale.resize(num_features);
  double drift = 0.0;
  for (std::size_t f = 0; f < num_features; ++f) {
    const double* w = weights + f * num_states;
    double absmax = 0.0;
    for (std::size_t s = 0; s < num_states; ++s)
      absmax = std::max(absmax, std::abs(w[s]));
    const double sc = absmax > 0.0 ? absmax / kMaxQ : 1.0;
    scale[f] = static_cast<float>(sc);
    Int* row = q.data() + f * num_states;
    for (std::size_t s = 0; s < num_states; ++s) {
      const double v = std::nearbyint(w[s] / sc);
      row[s] = static_cast<Int>(std::clamp(v, -kMaxQ, kMaxQ));
      drift = std::max(
          drift, std::abs(w[s] - static_cast<double>(scale[f]) *
                                     static_cast<double>(row[s])));
    }
  }
  return drift;
}

}  // namespace

void LinearChainCrf::prepare_quantization(Quantization mode) {
  const std::size_t S = space_.num_states();
  switch (mode) {
    case Quantization::kFloat:
      quant16_.clear();
      quant16_.shrink_to_fit();
      quant_scale16_.clear();
      quant8_.clear();
      quant8_.shrink_to_fit();
      quant_scale8_.clear();
      quant_drift_ = 0.0;
      return;
    case Quantization::kInt16:
      quant_drift_ =
          quantize_table(wspan_.data(), num_features_, S, quant16_, quant_scale16_);
      break;
    case Quantization::kInt8:
      quant_drift_ =
          quantize_table(wspan_.data(), num_features_, S, quant8_, quant_scale8_);
      break;
  }
  obs::Registry::global().gauge("decode.quant_drift").set(quant_drift_);
}

void LinearChainCrf::set_decode_options(const DecodeOptions& options) {
  decode_options_ = options;
  // Build the table the options will decode with; an already-prepared table
  // for the *other* width is left alone so per-call overrides keep working.
  if (options.quantization != Quantization::kFloat &&
      !quantization_ready(options.quantization))
    prepare_quantization(options.quantization);
}

// ---------------------------------------------------------------------------
// Dense emission (exact or quantized)
// ---------------------------------------------------------------------------

void LinearChainCrf::emission_scores(const EncodedSentence& sentence,
                                     Quantization quantization,
                                     std::vector<double>& out) const {
  switch (quantization) {
    case Quantization::kFloat:
      // The unchanged exact kernel: same scores, same summation order, so a
      // prune that keeps every state stays bit-identical to exact decode.
      emission_scores(sentence, out);
      return;
    case Quantization::kInt16:
      out.resize(sentence.size() * space_.num_states());
      emission_quant_dispatch(sentence, space_.num_states(), quant16_.data(),
                              quant_scale16_.data(), out.data());
      return;
    case Quantization::kInt8:
      out.resize(sentence.size() * space_.num_states());
      emission_quant_dispatch(sentence, space_.num_states(), quant8_.data(),
                              quant_scale8_.data(), out.data());
      return;
  }
}

// ---------------------------------------------------------------------------
// Pruned forward-backward
// ---------------------------------------------------------------------------

void LinearChainCrf::run_forward_backward_pruned(const EncodedSentence& sentence,
                                                 const DecodeOptions& options,
                                                 Scratch& sc) const {
  const std::size_t n = sentence.size();
  const std::size_t S = space_.num_states();
  assert(n > 0);

  if (S > kMaxStates) {  // exotic space: exact fallback
    sc.prune.fallback = true;
    run_forward_backward(sentence, sc);
    return;
  }
  emission_scores(sentence, options.quantization, sc.emit);

  // Zero lattices so pruned entries contribute exactly nothing: the inner
  // loops can then walk full CSR edge runs branch-free (pruned neighbours
  // add 0.0) and node/pair products vanish on their own. The assigns are
  // O(n*S) memsets — noise next to the feature loops.
  sc.psi.assign(n * S, 0.0);
  sc.alpha.assign(n * S, 0.0);
  sc.beta.assign(n * S, 0.0);
  sc.scale.resize(n);
  sc.tmp.resize(S);

  const std::size_t beam =
      options.beam == 0 ? S : std::min<std::size_t>(options.beam, S);
  const double threshold = options.posterior_threshold;
  sc.active.resize(n * beam);
  sc.active_off.resize(n + 1);
  sc.active_off[0] = 0;
  sc.prune = {};
  sc.prune.total_states = n * S;
  StateId* act_out = sc.active.data();
  std::uint32_t pos = 0;

  const auto& in_off = space_.incoming_offsets();
  const CsrEdge* in_edges = space_.incoming_edges().data();
  const double* exp_in = exp_trans_in_.data();

  // Forward pass with pruning fused in. Per position: extend the previous
  // survivors through the CSR edges (exactly the exact recurrence, but only
  // for states reachable from a survivor), then keep the `beam` largest
  // masses above threshold x the row's best. The per-position sums z_i are
  // taken over the survivors *after* the cut, so alpha rows still sum to 1
  // and the mass of pruned states is what log Z underestimates by.
  StateId cand[kMaxStates];
  double val[kMaxStates];
  bool ok = true;
  std::uint32_t prev_mask = 0;
  double log_z = 0.0;
  for (std::size_t i = 0; i < n && ok; ++i) {
    const double* e = sc.emit.data() + i * S;
    // Full-row max, matching the exact kernel: psi stays bounded in (0, 1]
    // and the forced all-active float decode stays bit-identical.
    double m = e[0];
    for (std::size_t s = 1; s < S; ++s) m = std::max(m, e[s]);
    log_z += m;

    double* p = sc.psi.data() + i * S;
    double* a = sc.alpha.data() + i * S;
    const double* prev = a - S;  // unused when i == 0
    std::size_t c = 0;
    double vmax = 0.0;
    for (std::size_t s = 0; s < S; ++s) {
      double acc;
      if (i == 0) {
        if (!((start_mask_ >> s) & 1u)) continue;
        acc = exp_start_[s];
      } else {
        if ((in_mask_[s] & prev_mask) == 0) continue;
        acc = 0.0;
        for (std::uint32_t ed = in_off[s]; ed < in_off[s + 1]; ++ed)
          acc += prev[in_edges[ed].state] * exp_in[ed];
      }
      const double psi_s = std::exp(e[s] - m);
      p[s] = psi_s;
      const double v = acc * psi_s;
      cand[c] = static_cast<StateId>(s);
      val[c] = v;
      vmax = std::max(vmax, v);
      ++c;
    }

    // Threshold cut (linear domain: v is a mass), then beam cap. The row's
    // best always survives, so the cut cannot empty a position.
    if (threshold > 0.0) {
      const double cut = vmax * threshold;
      std::size_t k = 0;
      for (std::size_t j = 0; j < c; ++j) {
        if (val[j] < cut) continue;
        cand[k] = cand[j];
        val[k] = val[j];
        ++k;
      }
      c = k;
    }
    c = beam_cap(cand, val, nullptr, c, beam);

    double z = 0.0;
    for (std::size_t j = 0; j < c; ++j) z += val[j];
    sc.scale[i] = z;
    if (z > 0.0 && std::isfinite(z)) {
      const double inv = 1.0 / z;
      std::uint32_t mask = 0;
      for (std::size_t j = 0; j < c; ++j) {
        a[cand[j]] = val[j] * inv;
        mask |= 1u << cand[j];
        act_out[pos + j] = cand[j];
      }
      pos += static_cast<std::uint32_t>(c);
      prev_mask = mask;
      sc.active_off[i + 1] = pos;
      log_z += std::log(z);
    } else {
      ok = false;
    }
  }
  if (!ok) {
    // Same degeneracy contract as the exact scaled kernel: rerun the exact
    // recurrence (with its log-space safety net underneath) over the
    // emission lattice already in sc.emit — keeping whatever quantization
    // the caller asked for and not paying for the features twice.
    sc.prune.fallback = true;
    forward_backward_from_emit(sentence, sc);
    return;
  }
  sc.log_z = log_z;
  sc.prune.active_states = pos;

  // Backward pass over the recorded survivors. psi and beta are 0 at pruned
  // states, so staging over all S keeps the edge loops branch-free while
  // pruned successors contribute nothing.
  const StateId* act = sc.active.data();
  const std::uint32_t* off = sc.active_off.data();
  const auto& out_off = space_.outgoing_offsets();
  const CsrEdge* out_edges = space_.outgoing_edges().data();
  const double* exp_out = exp_trans_out_.data();
  double* tmp = sc.tmp.data();
  for (std::uint32_t j = off[n - 1]; j < off[n]; ++j)
    sc.beta[(n - 1) * S + act[j]] = 1.0;
  for (std::size_t i = n - 1; i-- > 0;) {
    const double* next_b = sc.beta.data() + (i + 1) * S;
    const double* next_p = sc.psi.data() + (i + 1) * S;
    double* cur = sc.beta.data() + i * S;
    const double invz = 1.0 / sc.scale[i + 1];
    for (std::size_t s = 0; s < S; ++s) tmp[s] = next_p[s] * next_b[s] * invz;
    for (std::uint32_t j = off[i]; j < off[i + 1]; ++j) {
      const StateId s = act[j];
      double acc = 0.0;
      for (std::uint32_t e = out_off[s]; e < out_off[s + 1]; ++e)
        acc += exp_out[e] * tmp[out_edges[e].state];
      cur[s] = acc;
    }
  }

  sc.node.resize(n * S);
  for (std::size_t i = 0; i < n * S; ++i) sc.node[i] = sc.alpha[i] * sc.beta[i];

  const auto& transitions = space_.transitions();
  const std::size_t num_trans = transitions.size();
  sc.pair.resize(n * num_trans);
  for (std::size_t i = 1; i < n; ++i) {
    const double* pa = sc.alpha.data() + (i - 1) * S;
    const double* pb = sc.beta.data() + i * S;
    const double* pp = sc.psi.data() + i * S;
    const double invz = 1.0 / sc.scale[i];
    double* pw = sc.pair.data() + i * num_trans;
    for (std::size_t s = 0; s < S; ++s) tmp[s] = pp[s] * pb[s] * invz;
    for (std::size_t t = 0; t < num_trans; ++t)
      pw[t] = pa[transitions[t].from] * exp_trans_slot_[t] * tmp[transitions[t].to];
  }
}

// ---------------------------------------------------------------------------
// Pruned Viterbi
// ---------------------------------------------------------------------------

std::vector<text::Tag> LinearChainCrf::viterbi_pruned(const EncodedSentence& sentence,
                                                      const DecodeOptions& options,
                                                      Scratch& sc) const {
  const std::size_t n = sentence.size();
  const std::size_t S = space_.num_states();
  assert(n > 0);

  if (S > kMaxStates) {
    sc.prune.fallback = true;
    return viterbi_exact(sentence, sc);
  }
  emission_scores(sentence, options.quantization, sc.emit);

  const double* start = wspan_.data() + start_base();
  const std::size_t beam =
      options.beam == 0 ? S : std::min<std::size_t>(options.beam, S);
  const double log_thresh = options.posterior_threshold > 0.0
                                ? std::log(options.posterior_threshold)
                                : kNegInf;

  // Beam search with compact survivor storage: no n x S lattice is written
  // at all. Survivor states land in sc.active; sc.vback holds, for each
  // survivor, its best predecessor *state*; path scores live in stack rows.
  sc.active.resize(n * beam);
  sc.vback.resize(n * beam);
  sc.active_off.resize(n + 1);
  sc.active_off[0] = 0;
  sc.prune = {};
  sc.prune.total_states = n * S;
  StateId* act = sc.active.data();
  StateId* par = sc.vback.data();
  std::uint32_t* off = sc.active_off.data();

  const auto& in_off = space_.incoming_offsets();
  const CsrEdge* in_edges = space_.incoming_edges().data();
  const double* trans_in = trans_in_.data();

  // Each position keeps the `beam` best states by true path score, with the
  // threshold dropping states more than -ln(threshold) behind the
  // position's best (a path-mass ratio, matching the FB cut). The
  // relaxation *gathers* like the exact kernel — per reachable state, a max
  // chain over its incoming edges that lives entirely in registers —
  // because a scatter through a staging array serializes on
  // store-to-load-forwarded cmovs and loses to the exact kernel outright.
  // prev_val[] is dense by state, kNegInf at pruned states, so the chain
  // needs no per-edge membership test: pruned predecessors propose -inf and
  // never win. The winning edge is tracked in the same chain (register
  // cmov) and rides through selection as a parallel payload.
  StateId cand[kMaxStates];
  double val[kMaxStates];
  StateId parg[kMaxStates];
  double prev_val[kMaxStates];
  std::size_t c = 0;
  std::uint32_t pos = 0;
  std::uint32_t prev_mask = 0;
  double vmax = kNegInf;
  for (std::size_t s = 0; s < S; ++s) {
    if (!((start_mask_ >> s) & 1u)) continue;
    cand[c] = static_cast<StateId>(s);
    val[c] = start[s] + sc.emit[s];
    parg[c] = 0;  // position 0 has no predecessor; never read back
    vmax = std::max(vmax, val[c]);
    ++c;
  }
  for (std::size_t i = 0;; ++i) {
    if (log_thresh != kNegInf) {
      const double cut = vmax + log_thresh;  // the best always survives
      std::size_t k = 0;
      for (std::size_t j = 0; j < c; ++j) {
        if (val[j] < cut) continue;
        cand[k] = cand[j];
        val[k] = val[j];
        parg[k] = parg[j];
        ++k;
      }
      c = k;
    }
    c = beam_cap(cand, val, parg, c, beam);

    for (std::size_t j = 0; j < c; ++j) {
      act[pos + j] = cand[j];
      par[pos + j] = parg[j];  // dummy zeros at i == 0, never read back
    }
    pos += static_cast<std::uint32_t>(c);
    off[i + 1] = pos;
    if (i + 1 == n) break;

    for (std::size_t s = 0; s < S; ++s) prev_val[s] = kNegInf;
    std::uint32_t mask = 0;
    for (std::size_t j = 0; j < c; ++j) {
      prev_val[cand[j]] = val[j];
      mask |= 1u << cand[j];
    }
    prev_mask = mask;

    const double* e = sc.emit.data() + (i + 1) * S;
    c = 0;
    vmax = kNegInf;
    for (std::size_t s = 0; s < S; ++s) {
      if ((in_mask_[s] & prev_mask) == 0) continue;  // no surviving predecessor
      double best = kNegInf;
      StateId arg = 0;
      for (std::uint32_t ed = in_off[s]; ed < in_off[s + 1]; ++ed) {
        const StateId p = in_edges[ed].state;
        const double v = prev_val[p] + trans_in[ed];
        const bool better = v > best;  // first-best ties keep the earliest
        best = better ? v : best;      // CSR edge, like the exact kernel
        arg = better ? p : arg;
      }
      cand[c] = static_cast<StateId>(s);
      val[c] = best + e[s];
      parg[c] = arg;
      vmax = std::max(vmax, val[c]);
      ++c;
    }
    if (c == 0) {
      // Unreachable in the shipped spaces (every state has outgoing edges);
      // guards exotic spaces with dead-end states. sc.emit is already
      // filled, so rerun just the exact recurrence.
      sc.prune.fallback = true;
      return viterbi_from_emit(sentence, sc);
    }
  }
  sc.prune.active_states = pos;

  // val[] still holds the final position's survivor scores, aligned with
  // act[off[n-1]..off[n]); first-best ties go to the lower state, matching
  // the exact kernel's termination scan. The backtrace follows predecessor
  // states, locating each within the previous survivor list (a scan over at
  // most `beam` entries, once per position).
  std::size_t jbest = 0;
  for (std::size_t j = 1; j < c; ++j)
    if (val[j] > val[jbest]) jbest = j;
  std::vector<text::Tag> tags(n);
  std::size_t j = jbest;
  for (std::size_t i = n; i-- > 0;) {
    tags[i] = space_.tag_of(act[off[i] + j]);
    if (i == 0) break;
    const StateId p = par[off[i] + j];
    j = 0;
    while (act[off[i - 1] + j] != p) ++j;  // p is always a survivor there
  }
  return tags;
}

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

void LinearChainCrf::publish_prune_stats(const Scratch& sc) const {
  // Resolved once: registry lookup takes a mutex, the instruments don't.
  auto& reg = obs::Registry::global();
  static obs::Counter& sentences = reg.counter("decode.pruned_sentences");
  static obs::Counter& fallbacks = reg.counter("decode.beam_fallbacks");
  static obs::Gauge& fraction = reg.gauge("decode.active_state_fraction");
  sentences.inc();
  if (sc.prune.fallback)
    fallbacks.inc();
  else
    fraction.set(sc.prune.active_fraction());
}

}  // namespace graphner::crf
