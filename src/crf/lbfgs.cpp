#include "src/crf/lbfgs.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/obs/registry.hpp"
#include "src/util/logging.hpp"
#include "src/util/math.hpp"

namespace graphner::crf {
namespace {

struct Pair {
  std::vector<double> s;  ///< x_{k+1} - x_k
  std::vector<double> y;  ///< g_{k+1} - g_k
  double rho = 0.0;       ///< 1 / (y . s)
};

/// Two-loop recursion: returns the descent direction -H g.
std::vector<double> two_loop(const std::deque<Pair>& history,
                             std::span<const double> grad) {
  std::vector<double> q(grad.begin(), grad.end());
  std::vector<double> alpha(history.size());
  for (std::size_t i = history.size(); i-- > 0;) {
    alpha[i] = history[i].rho * util::dot(history[i].s, q);
    for (std::size_t j = 0; j < q.size(); ++j) q[j] -= alpha[i] * history[i].y[j];
  }
  if (!history.empty()) {
    const auto& last = history.back();
    const double yy = util::dot(last.y, last.y);
    if (yy > 0) {
      const double gamma = util::dot(last.s, last.y) / yy;
      for (double& v : q) v *= gamma;
    }
  }
  for (std::size_t i = 0; i < history.size(); ++i) {
    const double beta = history[i].rho * util::dot(history[i].y, q);
    for (std::size_t j = 0; j < q.size(); ++j)
      q[j] += history[i].s[j] * (alpha[i] - beta);
  }
  for (double& v : q) v = -v;
  return q;
}

}  // namespace

LbfgsResult lbfgs_minimize(std::vector<double>& x, const Objective& objective,
                           const LbfgsOptions& options) {
  const std::size_t n = x.size();
  std::vector<double> grad(n, 0.0);
  std::vector<double> new_grad(n, 0.0);
  std::vector<double> trial(n, 0.0);

  double f = objective(x, grad);
  std::deque<Pair> history;

  LbfgsResult result;
  result.objective = f;

  // Live optimization telemetry: resolved once (lookup takes the registry
  // mutex), updated once per iteration — a scrape mid-train sees the
  // current objective and gradient norm.
  obs::Registry& registry = obs::Registry::global();
  obs::Counter& iteration_counter = registry.counter("crf.lbfgs.iterations");
  obs::Gauge& objective_gauge = registry.gauge("crf.lbfgs.objective");
  obs::Gauge& gradient_gauge = registry.gauge("crf.lbfgs.gradient_norm");
  objective_gauge.set(f);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const double gnorm = util::norm(grad);
    const double xnorm = std::max(1.0, util::norm(x));
    if (gnorm / xnorm < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    std::vector<double> direction = two_loop(history, grad);
    double dg = util::dot(direction, grad);
    if (dg >= 0.0) {
      // Not a descent direction (stale curvature); restart with -g.
      history.clear();
      for (std::size_t j = 0; j < n; ++j) direction[j] = -grad[j];
      dg = util::dot(direction, grad);
    }

    // Backtracking Armijo line search.
    double new_f = f;
    auto line_search = [&](double step) {
      for (std::size_t ls = 0; ls < options.max_line_search_steps; ++ls) {
        for (std::size_t j = 0; j < n; ++j) trial[j] = x[j] + step * direction[j];
        std::fill(new_grad.begin(), new_grad.end(), 0.0);
        new_f = objective(trial, new_grad);
        if (new_f <= f + options.armijo_c1 * step * dg) return true;
        step *= options.backtrack_factor;
      }
      return false;
    };
    // With an empty history the direction is the raw gradient; scale the
    // first trial step by 1/||g|| so the line search starts in a sane range.
    const double first_step = history.empty()
                                  ? std::min(options.initial_step, 1.0 / (1.0 + gnorm))
                                  : options.initial_step;
    bool accepted = line_search(first_step);
    if (!accepted) {
      // Stale curvature can make the quasi-Newton direction useless; fall
      // back to a gradient-scaled steepest-descent step before giving up.
      history.clear();
      for (std::size_t j = 0; j < n; ++j) direction[j] = -grad[j];
      dg = util::dot(direction, grad);
      accepted = line_search(1.0 / (1.0 + gnorm));
    }
    if (!accepted) {
      util::log_debug("lbfgs: line search failed at iter ", iter, ", stopping");
      break;
    }

    Pair pair;
    pair.s.resize(n);
    pair.y.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      pair.s[j] = trial[j] - x[j];
      pair.y[j] = new_grad[j] - grad[j];
    }
    const double ys = util::dot(pair.y, pair.s);
    if (ys > 1e-10) {
      pair.rho = 1.0 / ys;
      history.push_back(std::move(pair));
      if (history.size() > options.history) history.pop_front();
    }

    x.swap(trial);
    grad.swap(new_grad);
    f = new_f;
    result.iterations = iter + 1;
    result.objective = f;
    iteration_counter.inc();
    objective_gauge.set(f);
    gradient_gauge.set(util::norm(grad));
  }
  return result;
}

}  // namespace graphner::crf
