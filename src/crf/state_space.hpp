// State space abstraction: one linear-chain CRF implementation serves both
// CRF orders used in the paper, over any BIO label set.
//
// Order 1: states are the labels themselves (L states; 3 for the legacy
// single-type set). Order 2: states are (previous label, label) pairs (L^2
// states); a transition (a,b) -> (c,d) is legal iff b == c, so the chain
// over pair-states encodes a second-order dependency while the inference
// code stays first-order. Both spaces also bake in the multi-class BIO
// constraint (I_t only after B_t or I_t, no initial I).
//
// The legal transition structure is exposed as two CSR tables built once in
// finalize(): for each state, a contiguous run of (neighbour state,
// transition slot) edges, indexed by an offsets array. The inference inner
// loops walk these runs linearly — no jagged vector-of-vectors indirection
// and no per-edge slot lookup.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/text/label_set.hpp"
#include "src/text/tag.hpp"

namespace graphner::crf {

using StateId = std::uint16_t;

struct Transition {
  StateId from = 0;
  StateId to = 0;
};

/// One CSR entry: the neighbouring state of an edge plus the index of its
/// transition parameter (the edge's position in transitions()).
struct CsrEdge {
  StateId state = 0;
  std::uint16_t slot = 0;
};

class StateSpace {
 public:
  /// Legacy single-type spaces (label set {B, I, O}).
  [[nodiscard]] static StateSpace order1() {
    return order1(text::LabelSet::single());
  }
  [[nodiscard]] static StateSpace order2() {
    return order2(text::LabelSet::single());
  }
  /// The same spaces over an arbitrary BIO label set. For the single-type
  /// set these are bit-identical to the legacy factories (state id ==
  /// label id at order 1, state = prev * 3 + cur at order 2).
  [[nodiscard]] static StateSpace order1(const text::LabelSet& labels);
  [[nodiscard]] static StateSpace order2(const text::LabelSet& labels);

  [[nodiscard]] std::size_t num_states() const noexcept { return state_tag_.size(); }
  [[nodiscard]] text::Tag tag_of(StateId state) const { return state_tag_[state]; }
  [[nodiscard]] int order() const noexcept { return order_; }
  /// The label inventory this space was built over.
  [[nodiscard]] const text::LabelSet& labels() const noexcept { return labels_; }
  [[nodiscard]] std::size_t num_labels() const noexcept {
    return labels_.num_labels();
  }

  /// Legal (from, to) pairs, including the BIO constraint.
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  /// Legal start states.
  [[nodiscard]] const std::vector<StateId>& start_states() const noexcept {
    return starts_;
  }

  // --- CSR transition tables (forward walks incoming, backward outgoing) ---

  /// Incoming edges of `to`: contiguous (from state, slot) pairs.
  [[nodiscard]] std::span<const CsrEdge> incoming_edges(StateId to) const noexcept {
    return {in_edges_.data() + in_offsets_[to],
            in_edges_.data() + in_offsets_[to + 1]};
  }
  /// Outgoing edges of `from`: contiguous (to state, slot) pairs.
  [[nodiscard]] std::span<const CsrEdge> outgoing_edges(StateId from) const noexcept {
    return {out_edges_.data() + out_offsets_[from],
            out_edges_.data() + out_offsets_[from + 1]};
  }
  /// Whole incoming table; incoming_offsets()[s] .. [s+1] delimits state s.
  /// Global edge indices into this table align with per-edge weight caches.
  [[nodiscard]] const std::vector<CsrEdge>& incoming_edges() const noexcept {
    return in_edges_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& incoming_offsets() const noexcept {
    return in_offsets_;
  }
  [[nodiscard]] const std::vector<CsrEdge>& outgoing_edges() const noexcept {
    return out_edges_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& outgoing_offsets() const noexcept {
    return out_offsets_;
  }

  /// Dense transition-parameter slot for (from, to); one weight per legal pair.
  [[nodiscard]] std::size_t transition_slot(StateId from, StateId to) const noexcept {
    return static_cast<std::size_t>(slot_[from * num_states() + to]);
  }

  /// Map a gold tag sequence to the state sequence this space uses.
  [[nodiscard]] std::vector<StateId> encode(const std::vector<text::Tag>& tags) const;

 private:
  int order_ = 1;
  text::LabelSet labels_;
  std::vector<text::Tag> state_tag_;
  std::vector<Transition> transitions_;
  std::vector<StateId> starts_;
  std::vector<std::int32_t> slot_;  ///< num_states^2 lookup, -1 = illegal

  // CSR adjacency, built once in finalize().
  std::vector<std::uint32_t> in_offsets_;   ///< num_states + 1
  std::vector<CsrEdge> in_edges_;           ///< grouped by to-state
  std::vector<std::uint32_t> out_offsets_;  ///< num_states + 1
  std::vector<CsrEdge> out_edges_;          ///< grouped by from-state

  void finalize();
};

}  // namespace graphner::crf
