// State space abstraction: one linear-chain CRF implementation serves both
// CRF orders used in the paper.
//
// Order 1: states are the tags themselves (3 states).
// Order 2: states are (previous tag, tag) pairs (9 states); a transition
// (a,b) -> (c,d) is legal iff b == c, so the chain over pair-states encodes
// a second-order dependency while the inference code stays first-order.
// Both spaces also bake in the BIO constraint (no I directly after O).
#pragma once

#include <cstdint>
#include <vector>

#include "src/text/tag.hpp"

namespace graphner::crf {

using StateId = std::uint16_t;

struct Transition {
  StateId from = 0;
  StateId to = 0;
};

class StateSpace {
 public:
  [[nodiscard]] static StateSpace order1();
  [[nodiscard]] static StateSpace order2();

  [[nodiscard]] std::size_t num_states() const noexcept { return state_tag_.size(); }
  [[nodiscard]] text::Tag tag_of(StateId state) const { return state_tag_[state]; }
  [[nodiscard]] int order() const noexcept { return order_; }

  /// Legal (from, to) pairs, including the BIO constraint.
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  /// Legal start states.
  [[nodiscard]] const std::vector<StateId>& start_states() const noexcept {
    return starts_;
  }
  /// Incoming legal transitions per state (for forward passes).
  [[nodiscard]] const std::vector<std::vector<StateId>>& incoming() const noexcept {
    return incoming_;
  }
  /// Outgoing legal transitions per state (for backward passes).
  [[nodiscard]] const std::vector<std::vector<StateId>>& outgoing() const noexcept {
    return outgoing_;
  }
  /// Dense transition-parameter slot for (from, to); one weight per legal pair.
  [[nodiscard]] std::size_t transition_slot(StateId from, StateId to) const;

  /// Map a gold tag sequence to the state sequence this space uses.
  [[nodiscard]] std::vector<StateId> encode(const std::vector<text::Tag>& tags) const;

 private:
  int order_ = 1;
  std::vector<text::Tag> state_tag_;
  std::vector<Transition> transitions_;
  std::vector<StateId> starts_;
  std::vector<std::vector<StateId>> incoming_;
  std::vector<std::vector<StateId>> outgoing_;
  std::vector<std::int32_t> slot_;  ///< num_states^2 lookup, -1 = illegal

  void finalize();
};

}  // namespace graphner::crf
