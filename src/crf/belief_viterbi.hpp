// Tag-level Viterbi over externally supplied node beliefs.
//
// Algorithm 1, line 9: after GraphNER mixes CRF posteriors with propagated
// graph distributions, the final decode runs Viterbi over those combined
// per-token tag beliefs and the CRF's tag-transition probabilities.
//
// All entry points are generic over the model's LabelSet: beliefs carry one
// column per label, matrices are L x L, and the BIO legality constraint is
// taken from the set (no I_t after anything but B_t/I_t, no initial I). The
// defaulted `labels` parameter is the legacy single-type {B, I, O} set.
#pragma once

#include <vector>

#include "src/text/label_set.hpp"
#include "src/text/tag.hpp"

namespace graphner::crf {

/// Row-major L x L matrix of transition probabilities p(next | prev);
/// rows need not be perfectly normalized.
using TagTransitionMatrix = text::LabelMatrix;

/// Decode argmax_t sum_i log(beliefs[i][t_i]) + sum_i log(T[t_{i-1}][t_i])
/// with the BIO constraint of `labels` enforced.
/// Zero beliefs/transitions are floored at a tiny epsilon.
[[nodiscard]] std::vector<text::Tag> belief_viterbi(
    const std::vector<text::LabelDist>& beliefs,
    const TagTransitionMatrix& transitions,
    const text::LabelSet& labels = text::LabelSet::single());

/// Position-specific variant: transitions[i] applies to the edge between
/// positions i-1 and i (entry 0 unused; sizes must match beliefs). Used
/// with per-edge pairwise/marginal ratios from the CRF, which makes the
/// decode the exact tree reparameterization of the CRF distribution at
/// order 1 — a corpus-aggregated matrix misprices rare transitions (e.g.
/// rewards B -> I between two adjacent single-token mentions).
[[nodiscard]] std::vector<text::Tag> belief_viterbi(
    const std::vector<text::LabelDist>& beliefs,
    const std::vector<TagTransitionMatrix>& per_edge_transitions,
    const text::LabelSet& labels = text::LabelSet::single());

/// Normalize expected tag-bigram counts into a row-stochastic transition
/// matrix (rows with zero mass become uniform).
[[nodiscard]] TagTransitionMatrix normalize_transition_counts(
    const TagTransitionMatrix& counts);

/// Turn expected tag-bigram counts into the pairwise/marginal ratio
/// R[a][b] = p(a,b) / (p(a) p(b)). For a chain-structured distribution the
/// joint factorizes as prod_i p(t_i) * prod_i R[t_{i-1}][t_i], so Viterbi
/// over node *marginals* with R as the transition matrix recovers the MAP
/// sequence without double-counting transition mass (using p(b|a) here
/// would re-penalize rare tags that the marginals already account for).
[[nodiscard]] TagTransitionMatrix transition_ratio_matrix(
    const TagTransitionMatrix& counts);

}  // namespace graphner::crf
