// Decode-time knobs for the pruned / quantized CRF kernels.
//
// The exact scaled kernels (DESIGN.md §4c) score the full tag lattice of
// every sentence. DecodeOptions trades bounded accuracy for speed along
// two independent axes:
//
//   * Pruning: beam search fused into the recurrences themselves — at each
//     position only the `beam` states with the best *actual* forward score
//     (Viterbi) or forward mass (forward-backward) survive, with
//     `posterior_threshold` additionally cutting states that fall below
//     threshold x the position's best. The next position is then reached
//     through the survivors' outgoing edges only. Ranking on the true
//     recurrence values (transition history included) keeps narrow beams
//     faithful to exact decode. If pruning ever degenerates, the whole
//     sentence transparently falls back to the exact kernel.
//
//   * Quantization: emission weights stored as int16/int8 with one
//     calibrated scale per feature row and a float accumulator — 4-8x less
//     weight-table memory traffic on the dominant emission accumulation.
//     Requires LinearChainCrf::prepare_quantization (done at model load or
//     by set_decode_options); options that ask for a table that was never
//     built decode in float.
//
// Default-constructed options are *exact*: every entry point dispatches to
// the unchanged scaled kernels, bit-identical to a build without this layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace graphner::crf {

/// Emission-weight storage for the decode path. Transition/start weights
/// (tens of doubles) always stay exact.
enum class Quantization : std::uint8_t {
  kFloat = 0,  ///< exact doubles (the trained weights)
  kInt16 = 1,  ///< int16 weights, per-feature float scale
  kInt8 = 2,   ///< int8 weights, per-feature float scale
};

[[nodiscard]] constexpr const char* quantization_name(Quantization q) noexcept {
  switch (q) {
    case Quantization::kFloat: return "float";
    case Quantization::kInt16: return "int16";
    case Quantization::kInt8: return "int8";
  }
  return "?";
}

/// "float" / "off" / "" -> kFloat, "int16" -> kInt16, "int8" -> kInt8;
/// anything else throws (CLI/wire validation).
[[nodiscard]] inline Quantization parse_quantization(const std::string& name) {
  if (name.empty() || name == "float" || name == "off") return Quantization::kFloat;
  if (name == "int16") return Quantization::kInt16;
  if (name == "int8") return Quantization::kInt8;
  throw std::invalid_argument("unknown quantization '" + name +
                              "' (expected off, int16 or int8)");
}

struct DecodeOptions {
  /// Max active states per lattice position; 0 = unlimited. Values >= the
  /// state count (3 at order 1, 9 at order 2) only exercise the pruned code
  /// path without dropping states.
  std::size_t beam = 0;
  /// Drop states whose forward mass (forward-backward) or best-path mass
  /// (Viterbi, where the cut is -ln(threshold) in score space) falls below
  /// this fraction of the position's best surviving state; 0 = keep
  /// everything. The position's best always survives its own cut.
  double posterior_threshold = 0.0;
  Quantization quantization = Quantization::kFloat;

  /// True when decoding under these options is guaranteed bit-identical to
  /// the exact scaled kernels (which is then what actually runs).
  [[nodiscard]] bool exact() const noexcept {
    return beam == 0 && posterior_threshold == 0.0 &&
           quantization == Quantization::kFloat;
  }
  /// True when the active-set machinery runs (beam or threshold set).
  [[nodiscard]] bool prunes() const noexcept {
    return beam > 0 || posterior_threshold > 0.0;
  }

  [[nodiscard]] std::string to_string() const {
    return "beam=" + (beam == 0 ? std::string("inf") : std::to_string(beam)) +
           " threshold=" + std::to_string(posterior_threshold) +
           " quantized=" + quantization_name(quantization);
  }
};

/// Per-sentence pruning outcome, left in the Scratch by the pruned kernels
/// (and mirrored into the obs registry: decode.active_state_fraction,
/// decode.beam_fallbacks).
struct PruneStats {
  std::size_t active_states = 0;  ///< sum of active-set sizes over positions
  std::size_t total_states = 0;   ///< positions x num_states
  bool fallback = false;          ///< pruning degenerated; exact kernel ran

  [[nodiscard]] double active_fraction() const noexcept {
    return total_states == 0
               ? 1.0
               : static_cast<double>(active_states) /
                     static_cast<double>(total_states);
  }
};

}  // namespace graphner::crf
