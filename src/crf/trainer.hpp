// CRF training: L2-regularized maximum conditional likelihood via L-BFGS.
#pragma once

#include "src/crf/dataset.hpp"
#include "src/crf/lbfgs.hpp"
#include "src/crf/model.hpp"

namespace graphner::crf {

struct TrainOptions {
  double l2_sigma = 2.0;  ///< Gaussian prior stddev; smaller = stronger prior
  LbfgsOptions lbfgs{};
  bool verbose = false;
};

struct TrainReport {
  double final_objective = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Train `model` in place on `batch` (all sentences must be labelled).
/// The per-sentence gradient is embarrassingly parallel; accumulation is
/// partitioned across worker threads (util::parallel_reduce).
TrainReport train_crf(LinearChainCrf& model, const Batch& batch,
                      const TrainOptions& options = {});

}  // namespace graphner::crf
