#include "src/crf/feature_index.hpp"

#include <cassert>

namespace graphner::crf {

FeatureIndex::Id FeatureIndex::intern(std::string_view name) {
  if (auto it = index_.find(std::string(name)); it != index_.end()) return it->second;
  assert(!frozen_ && "intern called on a frozen FeatureIndex");
  const Id id = static_cast<Id>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<FeatureIndex::Id> FeatureIndex::find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace graphner::crf
