// Linear-chain CRF: potentials, forward-backward, marginals, Viterbi.
//
// Parameters:
//   * emission weights  — one per (feature id, state): w_emit[f * S + s]
//   * transition weights — one per legal (from, to) pair
//   * start weights      — one per legal start state
//
// Forward-backward runs in the scaled linear domain (per-position scaling
// constants, CRFsuite-style): emission scores are exponentiated once per
// position after subtracting the row maximum, transition/start weights are
// exponentiated once per set_weights(), and the O(n * |transitions|) inner
// loops are plain multiply-adds over the StateSpace CSR tables. If a scaling
// constant ever degenerates (all reachable states underflow at a position),
// the affected sentence transparently falls back to the log-space
// recurrences, so results match log-space inference to rounding error.
// Viterbi is max-sum and stays in the log domain.
//
// All per-sentence buffers live in a caller-supplied Scratch so hot loops
// (L-BFGS objective evaluations, corpus-wide posterior extraction) perform
// zero per-sentence heap allocation once the scratch is warm.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/crf/dataset.hpp"
#include "src/crf/decode_options.hpp"
#include "src/crf/state_space.hpp"
#include "src/text/tag.hpp"

namespace graphner::crf {

/// Per-sentence inference outputs consumed by GraphNER (Algorithm 1 line 5).
struct SentencePosteriors {
  /// posterior[i][t] = p(label at i == t | x); rows sum to 1 (one column
  /// per label of the model's LabelSet — 3 for the legacy B/I/O set).
  std::vector<text::LabelDist> tag_marginals;
  /// pairwise[i][a * L + b] = p(label_{i-1} = a, label_i = b | x) for
  /// i >= 1 (entry 0 is unused). These are the position-specific
  /// "transition probabilities" GraphNER's final Viterbi consumes.
  std::vector<text::LabelMatrix> pairwise_marginals;
  double log_z = 0.0;
};

class LinearChainCrf {
 public:
  /// Reusable per-worker lattice buffers. Treat as opaque: default-construct
  /// one per worker thread, pass it to the inference entry points, and reuse
  /// it across sentences of any length — buffers grow to the largest
  /// sentence seen and are then recycled without further allocation.
  struct Scratch {
    std::vector<double> emit;   ///< n x S log-domain emission scores
    std::vector<double> psi;    ///< n x S exp(emit - row max)
    std::vector<double> alpha;  ///< n x S scaled forward (rows sum to 1)
    std::vector<double> beta;   ///< n x S scaled backward
    std::vector<double> scale;  ///< n per-position scale sums z_i
    std::vector<double> node;   ///< n x S node marginals p(state at i)
    std::vector<double> pair;   ///< n x T edge marginals, row 0 unused
    std::vector<double> tmp;    ///< S inner-loop staging
    std::vector<double> vscore; ///< n x S Viterbi scores (log domain)
    std::vector<StateId> vback; ///< n x S Viterbi backpointers
    double log_z = 0.0;

    // Pruned-decode workspace (see src/crf/pruned.cpp). `prune` holds the
    // outcome of the most recent pruned call on this scratch.
    std::vector<StateId> active;       ///< concatenated active lists
    std::vector<std::uint32_t> active_off;  ///< n + 1 offsets into `active`
    PruneStats prune;
  };

  LinearChainCrf(StateSpace space, std::size_t num_features);

  [[nodiscard]] const StateSpace& space() const noexcept { return space_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return num_features_; }
  [[nodiscard]] std::size_t num_parameters() const noexcept { return wspan_.size(); }

  [[nodiscard]] std::span<const double> weights() const noexcept { return wspan_; }
  /// Replace all weights (copied into owned storage); also refreshes the
  /// cached exponentiated transition/start tables. Together with
  /// set_weights_view, the only supported ways to mutate weights.
  void set_weights(std::span<const double> w);
  /// Borrow the weight table from caller-owned storage — typically a
  /// read-only mmap of a model file — instead of copying it onto the heap:
  /// every replica of a model then shares one page-cache copy of the
  /// (dominant) emission table. The caller guarantees `w` outlives the CRF
  /// (GraphNerModel keeps the mapping alive). Derived caches (exponentiated
  /// transitions, quantized tables) are rebuilt into owned storage as usual.
  void set_weights_view(std::span<const double> w);
  /// True when the weight table is a borrowed view (set_weights_view)
  /// rather than heap storage.
  [[nodiscard]] bool weights_borrowed() const noexcept {
    return wspan_.data() != weights_.data();
  }

  /// Emission lattice: out[i * S + s] = sum of active feature weights.
  void emission_scores(const EncodedSentence& sentence,
                       std::vector<double>& out) const;
  /// Emission lattice under a specific weight storage: kFloat runs the
  /// exact kernel above (same scores, same summation order), int16/int8 the
  /// dense pass over the prepared quantized table. Exposed so tests and
  /// benches can bound quantization drift at the score level; the decode
  /// entry points use it internally (src/crf/pruned.cpp).
  void emission_scores(const EncodedSentence& sentence, Quantization quantization,
                       std::vector<double>& out) const;

  /// Conditional log-likelihood of the gold states; if `grad` is non-null,
  /// accumulates d(logL)/dw into it (same layout as weights()).
  double log_likelihood(const EncodedSentence& sentence, std::span<double> grad,
                        Scratch& scratch) const;
  double log_likelihood(const EncodedSentence& sentence,
                        std::span<double> grad = {}) const;

  // --- decode configuration (pruning + quantization, DESIGN.md §10) ---

  /// Default options for posteriors()/viterbi(). Also prepares whatever the
  /// options need: a non-float quantization builds its weight table up
  /// front (so the first decode pays nothing). NOT thread-safe against
  /// concurrent decodes — configure before sharing the model across
  /// workers, like set_weights().
  void set_decode_options(const DecodeOptions& options);
  [[nodiscard]] const DecodeOptions& decode_options() const noexcept {
    return decode_options_;
  }
  /// Build (or rebuild) the int16/int8 emission table so per-call options
  /// may request that mode. kFloat drops the tables. Implied by
  /// set_decode_options when its options quantize.
  void prepare_quantization(Quantization mode);
  /// True when decode options/overrides asking for `mode` will actually use
  /// it (the table has been prepared).
  [[nodiscard]] bool quantization_ready(Quantization mode) const noexcept {
    if (mode == Quantization::kInt16) return !quant16_.empty();
    if (mode == Quantization::kInt8) return !quant8_.empty();
    return true;
  }
  /// Max absolute emission-weight error introduced by the most recently
  /// prepared quantized table (0 when none); published as the
  /// decode.quant_drift gauge.
  [[nodiscard]] double quantization_drift() const noexcept { return quant_drift_; }

  /// Tag-level posterior marginals (states folded down to tags). The
  /// two-argument forms decode under decode_options(); the explicit-options
  /// forms are per-call overrides (serving wire flags, benches).
  SentencePosteriors posteriors(const EncodedSentence& sentence,
                                Scratch& scratch) const;
  [[nodiscard]] SentencePosteriors posteriors(const EncodedSentence& sentence) const;
  SentencePosteriors posteriors(const EncodedSentence& sentence, Scratch& scratch,
                                const DecodeOptions& options) const;

  /// Expected tag-bigram counts E[count(t at i-1, t' at i)] summed over the
  /// sentence, added into `counts` (L x L row-major, sized to the space's
  /// label count). Used to derive the tag-transition matrix GraphNER's
  /// final Viterbi consumes.
  void accumulate_tag_transition_expectations(const EncodedSentence& sentence,
                                              text::LabelMatrix& counts,
                                              Scratch& scratch) const;
  void accumulate_tag_transition_expectations(const EncodedSentence& sentence,
                                              text::LabelMatrix& counts) const;

  /// MAP decode to tags (same options contract as posteriors()).
  std::vector<text::Tag> viterbi(const EncodedSentence& sentence,
                                 Scratch& scratch) const;
  [[nodiscard]] std::vector<text::Tag> viterbi(const EncodedSentence& sentence) const;
  std::vector<text::Tag> viterbi(const EncodedSentence& sentence, Scratch& scratch,
                                 const DecodeOptions& options) const;

  // --- weight slot helpers (shared with the trainer) ---
  [[nodiscard]] std::size_t emission_slot(FeatureIndex::Id f, StateId s) const noexcept {
    return static_cast<std::size_t>(f) * space_.num_states() + s;
  }
  [[nodiscard]] std::size_t transition_base() const noexcept {
    return num_features_ * space_.num_states();
  }
  [[nodiscard]] std::size_t start_base() const noexcept {
    return transition_base() + space_.transitions().size();
  }

 private:
  /// Normalize per-call decode options: downgrade quantization modes whose
  /// tables are not prepared, and erase beams as wide as the state space
  /// (they can never drop a state, so the dense path is strictly better).
  [[nodiscard]] DecodeOptions effective_options(const DecodeOptions& options) const;
  /// Scaled linear-domain forward-backward. Postcondition (shared with the
  /// log-space fallback): sc.log_z, sc.node (n x S node marginals) and
  /// sc.pair (n x |transitions()| edge marginals, row 0 unused) are filled;
  /// everything else in the scratch is internal workspace.
  void run_forward_backward(const EncodedSentence& sentence, Scratch& sc) const;
  /// The recurrence half of run_forward_backward: assumes sc.emit is already
  /// filled (by either emission kernel), so quantized-but-unpruned decodes
  /// and pruning fallbacks can reuse the lattice they already paid for.
  void forward_backward_from_emit(const EncodedSentence& sentence, Scratch& sc) const;
  /// Log-space recurrences for sentences whose scaled lattice degenerates
  /// (a position where the forward row underflows behind a constraint).
  /// Fills node/pair directly from the log-domain lattice: the factored
  /// scaled representation cannot express forward/backward masses whose
  /// ratios exceed the double range even when their products (the
  /// marginals) are ordinary probabilities.
  void run_forward_backward_logspace(const EncodedSentence& sentence,
                                     Scratch& sc) const;
  /// Recompute exp(transition)/exp(start) caches after a weight change.
  void rebuild_weight_caches();

  // --- pruned / quantized decode internals (src/crf/pruned.cpp) ---

  /// Pruned counterparts of the exact kernels. Pruning is fused into the
  /// forward recurrences (beam search on true forward scores / masses, not
  /// a pre-pass proxy); survivors per position are recorded in
  /// sc.active/active_off. Shared postcondition with run_forward_backward:
  /// sc.log_z / sc.node / sc.pair filled (pruned entries zero). Both fall
  /// back to the exact kernels when pruning degenerates, recording it in
  /// sc.prune.
  void run_forward_backward_pruned(const EncodedSentence& sentence,
                                   const DecodeOptions& options, Scratch& sc) const;
  std::vector<text::Tag> viterbi_pruned(const EncodedSentence& sentence,
                                        const DecodeOptions& options,
                                        Scratch& sc) const;
  /// The pre-pruning exact kernels, unchanged; what exact options (and the
  /// pruned fallbacks) dispatch to.
  std::vector<text::Tag> viterbi_exact(const EncodedSentence& sentence,
                                       Scratch& sc) const;
  /// Recurrence half of viterbi_exact over a pre-filled sc.emit (same reuse
  /// contract as forward_backward_from_emit).
  std::vector<text::Tag> viterbi_from_emit(const EncodedSentence& sentence,
                                           Scratch& sc) const;
  /// Fold sc.node / sc.pair (filled by any forward-backward flavour) down to
  /// tag-level marginals.
  [[nodiscard]] SentencePosteriors fold_posteriors(const EncodedSentence& sentence,
                                                   const Scratch& sc) const;
  /// Refresh the reachability masks and any prepared quantized table after
  /// a weight change.
  void rebuild_decode_tables();
  /// Publish sc.prune to the obs registry after a pruned decode.
  void publish_prune_stats(const Scratch& sc) const;

  StateSpace space_;
  std::size_t num_features_;
  std::vector<double> weights_;  ///< [emission | transition | start] (owned)
  /// The active weight table: `weights_` after set_weights, caller-owned
  /// storage after set_weights_view. Every reader goes through this span.
  std::span<const double> wspan_;

  // Weight-derived caches, rebuilt by set_weights(). exp() of a transition
  // or start weight; per-edge copies follow the CSR edge order so the inner
  // loops stream through them linearly.
  std::vector<double> exp_trans_slot_;  ///< per transition slot
  std::vector<double> exp_trans_in_;    ///< incoming CSR edge order
  std::vector<double> exp_trans_out_;   ///< outgoing CSR edge order
  std::vector<double> trans_in_;        ///< raw weights, incoming CSR order
  std::vector<double> trans_out_;       ///< raw weights, outgoing CSR order
  std::vector<double> exp_start_;       ///< per state; 0 for illegal starts

  // Space-derived lookup tables, built once in the constructor.
  std::vector<std::uint8_t> state_tag_idx_;   ///< tag index per state
  std::vector<std::uint8_t> slot_tag_pair_;   ///< tag_from * num_labels + tag_to

  // Decode-time tables (DESIGN.md §10), refreshed alongside the weight
  // caches by rebuild_decode_tables().
  DecodeOptions decode_options_{};
  std::vector<std::uint32_t> in_mask_;  ///< per state: bitmask of CSR predecessors
  std::uint32_t start_mask_ = 0;        ///< bitmask of legal start states
  // Quantized emission tables (num_features x S, feature-row scales beside
  // them); empty until prepare_quantization() builds them.
  std::vector<std::int16_t> quant16_;
  std::vector<float> quant_scale16_;
  std::vector<std::int8_t> quant8_;
  std::vector<float> quant_scale8_;
  double quant_drift_ = 0.0;
};

}  // namespace graphner::crf
