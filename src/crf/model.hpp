// Linear-chain CRF: potentials, forward-backward, marginals, Viterbi.
//
// Parameters:
//   * emission weights  — one per (feature id, state): w_emit[f * S + s]
//   * transition weights — one per legal (from, to) pair
//   * start weights      — one per legal start state
//
// Forward-backward runs in the scaled linear domain (per-position scaling
// constants, CRFsuite-style): emission scores are exponentiated once per
// position after subtracting the row maximum, transition/start weights are
// exponentiated once per set_weights(), and the O(n * |transitions|) inner
// loops are plain multiply-adds over the StateSpace CSR tables. If a scaling
// constant ever degenerates (all reachable states underflow at a position),
// the affected sentence transparently falls back to the log-space
// recurrences, so results match log-space inference to rounding error.
// Viterbi is max-sum and stays in the log domain.
//
// All per-sentence buffers live in a caller-supplied Scratch so hot loops
// (L-BFGS objective evaluations, corpus-wide posterior extraction) perform
// zero per-sentence heap allocation once the scratch is warm.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/crf/dataset.hpp"
#include "src/crf/state_space.hpp"
#include "src/text/tag.hpp"

namespace graphner::crf {

/// Per-sentence inference outputs consumed by GraphNER (Algorithm 1 line 5).
struct SentencePosteriors {
  /// posterior[i][t] = p(tag at i == t | x); rows sum to 1 (kNumTags cols).
  std::vector<std::array<double, text::kNumTags>> tag_marginals;
  /// pairwise[i][a * kNumTags + b] = p(tag_{i-1} = a, tag_i = b | x) for
  /// i >= 1 (entry 0 is unused). These are the position-specific
  /// "transition probabilities" GraphNER's final Viterbi consumes.
  std::vector<std::array<double, text::kNumTags * text::kNumTags>> pairwise_marginals;
  double log_z = 0.0;
};

class LinearChainCrf {
 public:
  /// Reusable per-worker lattice buffers. Treat as opaque: default-construct
  /// one per worker thread, pass it to the inference entry points, and reuse
  /// it across sentences of any length — buffers grow to the largest
  /// sentence seen and are then recycled without further allocation.
  struct Scratch {
    std::vector<double> emit;   ///< n x S log-domain emission scores
    std::vector<double> psi;    ///< n x S exp(emit - row max)
    std::vector<double> alpha;  ///< n x S scaled forward (rows sum to 1)
    std::vector<double> beta;   ///< n x S scaled backward
    std::vector<double> scale;  ///< n per-position scale sums z_i
    std::vector<double> node;   ///< n x S node marginals p(state at i)
    std::vector<double> pair;   ///< n x T edge marginals, row 0 unused
    std::vector<double> tmp;    ///< S inner-loop staging
    std::vector<double> vscore; ///< n x S Viterbi scores (log domain)
    std::vector<StateId> vback; ///< n x S Viterbi backpointers
    double log_z = 0.0;
  };

  LinearChainCrf(StateSpace space, std::size_t num_features);

  [[nodiscard]] const StateSpace& space() const noexcept { return space_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return num_features_; }
  [[nodiscard]] std::size_t num_parameters() const noexcept { return weights_.size(); }

  [[nodiscard]] std::span<const double> weights() const noexcept { return weights_; }
  /// Replace all weights; also refreshes the cached exponentiated
  /// transition/start tables (the only supported way to mutate weights).
  void set_weights(std::span<const double> w);

  /// Emission lattice: out[i * S + s] = sum of active feature weights.
  void emission_scores(const EncodedSentence& sentence,
                       std::vector<double>& out) const;

  /// Conditional log-likelihood of the gold states; if `grad` is non-null,
  /// accumulates d(logL)/dw into it (same layout as weights()).
  double log_likelihood(const EncodedSentence& sentence, std::span<double> grad,
                        Scratch& scratch) const;
  double log_likelihood(const EncodedSentence& sentence,
                        std::span<double> grad = {}) const;

  /// Tag-level posterior marginals (states folded down to tags).
  SentencePosteriors posteriors(const EncodedSentence& sentence,
                                Scratch& scratch) const;
  [[nodiscard]] SentencePosteriors posteriors(const EncodedSentence& sentence) const;

  /// Expected tag-bigram counts E[count(t at i-1, t' at i)] summed over the
  /// sentence, added into `counts` (kNumTags x kNumTags row-major). Used to
  /// derive the tag-transition matrix GraphNER's final Viterbi consumes.
  void accumulate_tag_transition_expectations(
      const EncodedSentence& sentence,
      std::array<double, text::kNumTags * text::kNumTags>& counts,
      Scratch& scratch) const;
  void accumulate_tag_transition_expectations(
      const EncodedSentence& sentence,
      std::array<double, text::kNumTags * text::kNumTags>& counts) const;

  /// MAP decode to tags.
  std::vector<text::Tag> viterbi(const EncodedSentence& sentence,
                                 Scratch& scratch) const;
  [[nodiscard]] std::vector<text::Tag> viterbi(const EncodedSentence& sentence) const;

  // --- weight slot helpers (shared with the trainer) ---
  [[nodiscard]] std::size_t emission_slot(FeatureIndex::Id f, StateId s) const noexcept {
    return static_cast<std::size_t>(f) * space_.num_states() + s;
  }
  [[nodiscard]] std::size_t transition_base() const noexcept {
    return num_features_ * space_.num_states();
  }
  [[nodiscard]] std::size_t start_base() const noexcept {
    return transition_base() + space_.transitions().size();
  }

 private:
  /// Scaled linear-domain forward-backward. Postcondition (shared with the
  /// log-space fallback): sc.log_z, sc.node (n x S node marginals) and
  /// sc.pair (n x |transitions()| edge marginals, row 0 unused) are filled;
  /// everything else in the scratch is internal workspace.
  void run_forward_backward(const EncodedSentence& sentence, Scratch& sc) const;
  /// Log-space recurrences for sentences whose scaled lattice degenerates
  /// (a position where the forward row underflows behind a constraint).
  /// Fills node/pair directly from the log-domain lattice: the factored
  /// scaled representation cannot express forward/backward masses whose
  /// ratios exceed the double range even when their products (the
  /// marginals) are ordinary probabilities.
  void run_forward_backward_logspace(const EncodedSentence& sentence,
                                     Scratch& sc) const;
  /// Recompute exp(transition)/exp(start) caches after a weight change.
  void rebuild_weight_caches();

  StateSpace space_;
  std::size_t num_features_;
  std::vector<double> weights_;  ///< [emission | transition | start]

  // Weight-derived caches, rebuilt by set_weights(). exp() of a transition
  // or start weight; per-edge copies follow the CSR edge order so the inner
  // loops stream through them linearly.
  std::vector<double> exp_trans_slot_;  ///< per transition slot
  std::vector<double> exp_trans_in_;    ///< incoming CSR edge order
  std::vector<double> exp_trans_out_;   ///< outgoing CSR edge order
  std::vector<double> trans_in_;        ///< raw weights, incoming CSR order
  std::vector<double> exp_start_;       ///< per state; 0 for illegal starts

  // Space-derived lookup tables, built once in the constructor.
  std::vector<std::uint8_t> state_tag_idx_;   ///< tag index per state
  std::vector<std::uint8_t> slot_tag_pair_;   ///< tag_from * kNumTags + tag_to
};

}  // namespace graphner::crf
