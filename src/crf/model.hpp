// Linear-chain CRF: potentials, forward-backward, marginals, Viterbi.
//
// Parameters:
//   * emission weights  — one per (feature id, state): w_emit[f * S + s]
//   * transition weights — one per legal (from, to) pair
//   * start weights      — one per legal start state
// Inference runs in log space throughout; sentences are short (tens of
// tokens) and the state count is 3 or 9, so log-space costs are negligible
// next to feature extraction.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "src/crf/dataset.hpp"
#include "src/crf/state_space.hpp"
#include "src/text/tag.hpp"

namespace graphner::crf {

/// Per-sentence inference outputs consumed by GraphNER (Algorithm 1 line 5).
struct SentencePosteriors {
  /// posterior[i][t] = p(tag at i == t | x); rows sum to 1 (kNumTags cols).
  std::vector<std::array<double, text::kNumTags>> tag_marginals;
  /// pairwise[i][a * kNumTags + b] = p(tag_{i-1} = a, tag_i = b | x) for
  /// i >= 1 (entry 0 is unused). These are the position-specific
  /// "transition probabilities" GraphNER's final Viterbi consumes.
  std::vector<std::array<double, text::kNumTags * text::kNumTags>> pairwise_marginals;
  double log_z = 0.0;
};

class LinearChainCrf {
 public:
  LinearChainCrf(StateSpace space, std::size_t num_features);

  [[nodiscard]] const StateSpace& space() const noexcept { return space_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return num_features_; }
  [[nodiscard]] std::size_t num_parameters() const noexcept { return weights_.size(); }

  [[nodiscard]] std::span<double> weights() noexcept { return weights_; }
  [[nodiscard]] std::span<const double> weights() const noexcept { return weights_; }
  void set_weights(std::span<const double> w);

  /// Emission lattice: out[i * S + s] = sum of active feature weights.
  void emission_scores(const EncodedSentence& sentence,
                       std::vector<double>& out) const;

  /// Conditional log-likelihood of the gold states; if `grad` is non-null,
  /// accumulates d(logL)/dw into it (same layout as weights()).
  double log_likelihood(const EncodedSentence& sentence,
                        std::span<double> grad = {}) const;

  /// Tag-level posterior marginals (states folded down to tags).
  [[nodiscard]] SentencePosteriors posteriors(const EncodedSentence& sentence) const;

  /// Expected tag-bigram counts E[count(t at i-1, t' at i)] summed over the
  /// sentence, added into `counts` (kNumTags x kNumTags row-major). Used to
  /// derive the tag-transition matrix GraphNER's final Viterbi consumes.
  void accumulate_tag_transition_expectations(
      const EncodedSentence& sentence,
      std::array<double, text::kNumTags * text::kNumTags>& counts) const;

  /// MAP decode to tags.
  [[nodiscard]] std::vector<text::Tag> viterbi(const EncodedSentence& sentence) const;

  // --- weight slot helpers (shared with the trainer) ---
  [[nodiscard]] std::size_t emission_slot(FeatureIndex::Id f, StateId s) const noexcept {
    return static_cast<std::size_t>(f) * space_.num_states() + s;
  }
  [[nodiscard]] std::size_t transition_base() const noexcept {
    return num_features_ * space_.num_states();
  }
  [[nodiscard]] std::size_t start_base() const noexcept {
    return transition_base() + space_.transitions().size();
  }

 private:
  struct Lattice {
    std::vector<double> emit;     ///< n x S
    std::vector<double> alpha;    ///< n x S, log forward
    std::vector<double> beta;     ///< n x S, log backward
    double log_z = 0.0;
  };

  void run_forward_backward(const EncodedSentence& sentence, Lattice& lat) const;

  StateSpace space_;
  std::size_t num_features_;
  std::vector<double> weights_;  ///< [emission | transition | start]
};

}  // namespace graphner::crf
