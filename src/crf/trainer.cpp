#include "src/crf/trainer.hpp"

#include <cassert>
#include <cmath>

#include "src/obs/span.hpp"
#include "src/util/logging.hpp"
#include "src/util/parallel.hpp"

namespace graphner::crf {

TrainReport train_crf(LinearChainCrf& model, const Batch& batch,
                      const TrainOptions& options) {
  assert(!batch.empty());
  const double inv_sigma2 = 1.0 / (options.l2_sigma * options.l2_sigma);
  const std::size_t dim = model.num_parameters();

  struct Partial {
    double neg_log_likelihood = 0.0;
    std::vector<double> grad;
    /// Lattice buffers reused across every sentence this worker scores, so
    /// L-BFGS objective evaluations do no per-sentence heap allocation.
    LinearChainCrf::Scratch scratch;
  };

  // Negative regularized conditional log-likelihood and its gradient.
  const Objective objective = [&](std::span<const double> x,
                                  std::span<double> grad) -> double {
    model.set_weights(x);

    Partial init;
    init.grad.assign(dim, 0.0);
    Partial total = util::parallel_reduce(
        std::size_t{0}, batch.size(), std::move(init),
        [&](Partial& acc, std::size_t i) {
          // log_likelihood adds d(logL)/dw; we negate at the end.
          acc.neg_log_likelihood -=
              model.log_likelihood(batch[i], acc.grad, acc.scratch);
        },
        [](Partial& lhs, const Partial& rhs) {
          lhs.neg_log_likelihood += rhs.neg_log_likelihood;
          for (std::size_t j = 0; j < lhs.grad.size(); ++j)
            lhs.grad[j] += rhs.grad[j];
        });

    double objective_value = total.neg_log_likelihood;
    for (std::size_t j = 0; j < dim; ++j) {
      grad[j] = -total.grad[j] + inv_sigma2 * x[j];
      objective_value += 0.5 * inv_sigma2 * x[j] * x[j];
    }
    return objective_value;
  };

  obs::ScopedSpan span("crf.optimize");
  span.attr("sentences", static_cast<std::uint64_t>(batch.size()));
  std::vector<double> x(model.weights().begin(), model.weights().end());
  const LbfgsResult result = lbfgs_minimize(x, objective, options.lbfgs);
  model.set_weights(x);
  span.attr("iterations", static_cast<std::uint64_t>(result.iterations));
  span.attr("objective", result.objective);

  if (options.verbose) {
    util::log_info("crf: trained on ", batch.size(), " sentences, ",
                   result.iterations, " L-BFGS iterations, objective ",
                   result.objective, ", ", span.seconds(), "s");
  }
  return TrainReport{result.objective, result.iterations, result.converged};
}

}  // namespace graphner::crf
