#include "src/crf/state_space.hpp"

namespace graphner::crf {

using text::Tag;
using text::kNumTags;

namespace {

[[nodiscard]] bool bio_legal(Tag prev, Tag next) noexcept {
  return !text::is_illegal_transition(prev, next);
}

}  // namespace

StateSpace StateSpace::order1() {
  StateSpace space;
  space.order_ = 1;
  space.state_tag_ = {Tag::kB, Tag::kI, Tag::kO};
  for (StateId s = 0; s < kNumTags; ++s) {
    // A sentence may start with B or O but not I.
    if (space.state_tag_[s] != Tag::kI) space.starts_.push_back(s);
  }
  for (StateId a = 0; a < kNumTags; ++a)
    for (StateId b = 0; b < kNumTags; ++b)
      if (bio_legal(space.state_tag_[a], space.state_tag_[b]))
        space.transitions_.push_back({a, b});
  space.finalize();
  return space;
}

StateSpace StateSpace::order2() {
  StateSpace space;
  space.order_ = 2;
  // State (prev, cur) = prev * 3 + cur; only BIO-legal pairs are reachable
  // but we materialize all 9 for simple indexing.
  space.state_tag_.resize(kNumTags * kNumTags);
  for (std::size_t prev = 0; prev < kNumTags; ++prev)
    for (std::size_t cur = 0; cur < kNumTags; ++cur)
      space.state_tag_[prev * kNumTags + cur] = text::tag_from_index(cur);

  // Start states behave as (O, t): the virtual pre-sentence tag is O, so
  // the first real tag may be B or O.
  const auto state_of = [](std::size_t prev, std::size_t cur) {
    return static_cast<StateId>(prev * kNumTags + cur);
  };
  const auto o = text::tag_index(Tag::kO);
  space.starts_.push_back(state_of(o, text::tag_index(Tag::kB)));
  space.starts_.push_back(state_of(o, o));

  for (std::size_t a = 0; a < kNumTags; ++a) {
    for (std::size_t b = 0; b < kNumTags; ++b) {
      if (!bio_legal(text::tag_from_index(a), text::tag_from_index(b))) continue;
      for (std::size_t c = 0; c < kNumTags; ++c) {
        if (!bio_legal(text::tag_from_index(b), text::tag_from_index(c))) continue;
        space.transitions_.push_back({state_of(a, b), state_of(b, c)});
      }
    }
  }
  space.finalize();
  return space;
}

void StateSpace::finalize() {
  const std::size_t n = num_states();
  const std::size_t e = transitions_.size();
  slot_.assign(n * n, -1);
  in_offsets_.assign(n + 1, 0);
  out_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < e; ++i) {
    const auto& t = transitions_[i];
    slot_[t.from * n + t.to] = static_cast<std::int32_t>(i);
    ++in_offsets_[t.to + 1];
    ++out_offsets_[t.from + 1];
  }
  for (std::size_t s = 0; s < n; ++s) {
    in_offsets_[s + 1] += in_offsets_[s];
    out_offsets_[s + 1] += out_offsets_[s];
  }
  in_edges_.resize(e);
  out_edges_.resize(e);
  std::vector<std::uint32_t> in_fill(in_offsets_.begin(), in_offsets_.end() - 1);
  std::vector<std::uint32_t> out_fill(out_offsets_.begin(), out_offsets_.end() - 1);
  for (std::size_t i = 0; i < e; ++i) {
    const auto& t = transitions_[i];
    in_edges_[in_fill[t.to]++] = {t.from, static_cast<std::uint16_t>(i)};
    out_edges_[out_fill[t.from]++] = {t.to, static_cast<std::uint16_t>(i)};
  }
}

std::vector<StateId> StateSpace::encode(const std::vector<Tag>& tags) const {
  std::vector<StateId> states(tags.size());
  if (order_ == 1) {
    for (std::size_t i = 0; i < tags.size(); ++i)
      states[i] = static_cast<StateId>(text::tag_index(tags[i]));
    return states;
  }
  // Order 2: previous tag for position 0 is the virtual O.
  std::size_t prev = text::tag_index(Tag::kO);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const std::size_t cur = text::tag_index(tags[i]);
    states[i] = static_cast<StateId>(prev * kNumTags + cur);
    prev = cur;
  }
  return states;
}

}  // namespace graphner::crf
