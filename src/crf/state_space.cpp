#include "src/crf/state_space.hpp"

namespace graphner::crf {

using text::Tag;

StateSpace StateSpace::order1(const text::LabelSet& labels) {
  StateSpace space;
  space.order_ = 1;
  space.labels_ = labels;
  const std::size_t num_labels = labels.num_labels();
  space.state_tag_.resize(num_labels);
  for (std::size_t t = 0; t < num_labels; ++t)
    space.state_tag_[t] = static_cast<Tag>(t);
  for (StateId s = 0; s < num_labels; ++s) {
    // A sentence may start with any B or O but not inside a mention.
    if (labels.is_legal_start(space.state_tag_[s])) space.starts_.push_back(s);
  }
  for (StateId a = 0; a < num_labels; ++a)
    for (StateId b = 0; b < num_labels; ++b)
      if (!labels.is_illegal_transition(space.state_tag_[a], space.state_tag_[b]))
        space.transitions_.push_back({a, b});
  space.finalize();
  return space;
}

StateSpace StateSpace::order2(const text::LabelSet& labels) {
  StateSpace space;
  space.order_ = 2;
  space.labels_ = labels;
  const std::size_t num_labels = labels.num_labels();
  // State (prev, cur) = prev * L + cur; only BIO-legal pairs are reachable
  // but we materialize all L^2 for simple indexing.
  space.state_tag_.resize(num_labels * num_labels);
  for (std::size_t prev = 0; prev < num_labels; ++prev)
    for (std::size_t cur = 0; cur < num_labels; ++cur)
      space.state_tag_[prev * num_labels + cur] = static_cast<Tag>(cur);

  // Start states behave as (O, t): the virtual pre-sentence tag is O, so
  // the first real tag may be any B or O.
  const auto state_of = [num_labels](std::size_t prev, std::size_t cur) {
    return static_cast<StateId>(prev * num_labels + cur);
  };
  const std::size_t o = labels.outside_index();
  for (std::size_t t = 0; t < num_labels; ++t)
    if (labels.is_legal_start(static_cast<Tag>(t)))
      space.starts_.push_back(state_of(o, t));

  const auto legal = [&](std::size_t a, std::size_t b) {
    return !labels.is_illegal_transition(static_cast<Tag>(a),
                                         static_cast<Tag>(b));
  };
  for (std::size_t a = 0; a < num_labels; ++a) {
    for (std::size_t b = 0; b < num_labels; ++b) {
      if (!legal(a, b)) continue;
      for (std::size_t c = 0; c < num_labels; ++c) {
        if (!legal(b, c)) continue;
        space.transitions_.push_back({state_of(a, b), state_of(b, c)});
      }
    }
  }
  space.finalize();
  return space;
}

void StateSpace::finalize() {
  const std::size_t n = num_states();
  const std::size_t e = transitions_.size();
  slot_.assign(n * n, -1);
  in_offsets_.assign(n + 1, 0);
  out_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < e; ++i) {
    const auto& t = transitions_[i];
    slot_[t.from * n + t.to] = static_cast<std::int32_t>(i);
    ++in_offsets_[t.to + 1];
    ++out_offsets_[t.from + 1];
  }
  for (std::size_t s = 0; s < n; ++s) {
    in_offsets_[s + 1] += in_offsets_[s];
    out_offsets_[s + 1] += out_offsets_[s];
  }
  in_edges_.resize(e);
  out_edges_.resize(e);
  std::vector<std::uint32_t> in_fill(in_offsets_.begin(), in_offsets_.end() - 1);
  std::vector<std::uint32_t> out_fill(out_offsets_.begin(), out_offsets_.end() - 1);
  for (std::size_t i = 0; i < e; ++i) {
    const auto& t = transitions_[i];
    in_edges_[in_fill[t.to]++] = {t.from, static_cast<std::uint16_t>(i)};
    out_edges_[out_fill[t.from]++] = {t.to, static_cast<std::uint16_t>(i)};
  }
}

std::vector<StateId> StateSpace::encode(const std::vector<Tag>& tags) const {
  const std::size_t num_labels = labels_.num_labels();
  std::vector<StateId> states(tags.size());
  if (order_ == 1) {
    for (std::size_t i = 0; i < tags.size(); ++i)
      states[i] = static_cast<StateId>(text::tag_index(tags[i]));
    return states;
  }
  // Order 2: previous tag for position 0 is the virtual O.
  std::size_t prev = labels_.outside_index();
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const std::size_t cur = text::tag_index(tags[i]);
    states[i] = static_cast<StateId>(prev * num_labels + cur);
    prev = cur;
  }
  return states;
}

}  // namespace graphner::crf
