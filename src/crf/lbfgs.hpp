// Limited-memory BFGS minimizer with Armijo backtracking line search.
//
// Standard two-loop recursion (Nocedal & Wright, Alg. 7.4). Used to train
// the CRF by minimizing the L2-regularized negative conditional
// log-likelihood; generic over the objective so tests can exercise it on
// analytic functions.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace graphner::crf {

struct LbfgsOptions {
  std::size_t history = 7;        ///< stored (s, y) pairs
  std::size_t max_iterations = 100;
  double gradient_tolerance = 1e-4;  ///< stop when ||g||/max(1,||x||) below
  double initial_step = 1.0;
  double armijo_c1 = 1e-4;
  double backtrack_factor = 0.5;
  std::size_t max_line_search_steps = 30;
};

struct LbfgsResult {
  double objective = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Objective: fills `grad` (same size as x) and returns f(x).
using Objective = std::function<double(std::span<const double> x, std::span<double> grad)>;

/// Minimize `objective` starting from `x` (updated in place).
LbfgsResult lbfgs_minimize(std::vector<double>& x, const Objective& objective,
                           const LbfgsOptions& options = {});

}  // namespace graphner::crf
