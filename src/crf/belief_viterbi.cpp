#include "src/crf/belief_viterbi.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <vector>

namespace graphner::crf {

using text::Tag;

namespace {
constexpr double kEps = 1e-12;
}  // namespace

TagTransitionMatrix normalize_transition_counts(const TagTransitionMatrix& counts) {
  const std::size_t L = counts.n();
  TagTransitionMatrix out(L);
  for (std::size_t a = 0; a < L; ++a) {
    double row = 0.0;
    for (std::size_t b = 0; b < L; ++b) row += counts.at(a, b);
    for (std::size_t b = 0; b < L; ++b)
      out.at(a, b) =
          row > 0.0 ? counts.at(a, b) / row : 1.0 / static_cast<double>(L);
  }
  return out;
}

TagTransitionMatrix transition_ratio_matrix(const TagTransitionMatrix& counts) {
  const std::size_t L = counts.n();
  TagTransitionMatrix out(L);
  double total = 0.0;
  for (const double c : counts) total += c;
  if (total <= 0.0) {
    out.fill(1.0);
    return out;
  }
  std::vector<double> from_marginal(L, 0.0);
  std::vector<double> to_marginal(L, 0.0);
  for (std::size_t a = 0; a < L; ++a) {
    for (std::size_t b = 0; b < L; ++b) {
      from_marginal[a] += counts.at(a, b);
      to_marginal[b] += counts.at(a, b);
    }
  }
  for (std::size_t a = 0; a < L; ++a) {
    for (std::size_t b = 0; b < L; ++b) {
      const double denom = from_marginal[a] * to_marginal[b];
      out.at(a, b) = denom > 0.0 ? counts.at(a, b) * total / denom : 0.0;
    }
  }
  return out;
}

namespace {

/// Shared Viterbi core; `transition_at(i)` yields the matrix for the edge
/// between positions i-1 and i.
///
/// Max-product in the linear domain: scores are products of (floored)
/// beliefs and transition entries, renormalized by the row maximum at every
/// position so no logarithms are needed and products never overflow. A
/// uniform per-row rescale preserves the argmax and the backpointers.
/// Illegal configurations carry an exact score of 0; positive scores are
/// floored well above the denormal range so a long run of low-probability
/// (but legal) positions can never collapse to 0 and be mistaken for an
/// illegal path.
template <typename TransitionAt>
std::vector<Tag> belief_viterbi_impl(const std::vector<text::LabelDist>& beliefs,
                                     TransitionAt&& transition_at,
                                     const text::LabelSet& labels) {
  const std::size_t n = beliefs.size();
  const std::size_t L = labels.num_labels();
  std::vector<Tag> tags(n);
  if (n == 0) return tags;
  assert(beliefs[0].size() == L);

  constexpr double kScoreFloor = 1e-280;
  std::vector<text::LabelDist> score(n, text::LabelDist(L));
  std::vector<std::array<std::size_t, text::kMaxLabels>> back(n);

  for (std::size_t t = 0; t < L; ++t) {
    const bool legal_start = labels.is_legal_start(text::tag_from_index(t));
    score[0][t] = legal_start ? std::max(beliefs[0][t], kEps) : 0.0;
  }
  for (std::size_t i = 1; i < n; ++i) {
    const TagTransitionMatrix& transitions = transition_at(i);
    assert(transitions.n() == L);
    double row_max = 0.0;
    for (std::size_t t = 0; t < L; ++t) {
      double best = 0.0;
      std::size_t arg = 0;
      for (std::size_t p = 0; p < L; ++p) {
        if (labels.is_illegal_transition(text::tag_from_index(p),
                                         text::tag_from_index(t)))
          continue;
        const double cand = score[i - 1][p] * std::max(transitions.at(p, t), kEps);
        if (cand > best) {
          best = cand;
          arg = p;
        }
      }
      const double v = best * std::max(beliefs[i][t], kEps);
      score[i][t] = v;
      back[i][t] = arg;
      row_max = std::max(row_max, v);
    }
    if (row_max > 0.0) {
      const double inv = 1.0 / row_max;
      for (std::size_t t = 0; t < L; ++t) {
        double& v = score[i][t];
        v *= inv;
        if (v > 0.0 && v < kScoreFloor) v = kScoreFloor;
      }
    }
  }

  std::size_t cur = 0;
  double best = -1.0;
  for (std::size_t t = 0; t < L; ++t) {
    if (score[n - 1][t] > best) {
      best = score[n - 1][t];
      cur = t;
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    tags[i] = text::tag_from_index(cur);
    if (i > 0) cur = back[i][cur];
  }
  return tags;
}

}  // namespace

std::vector<Tag> belief_viterbi(const std::vector<text::LabelDist>& beliefs,
                                const TagTransitionMatrix& transitions,
                                const text::LabelSet& labels) {
  return belief_viterbi_impl(
      beliefs,
      [&](std::size_t) -> const TagTransitionMatrix& { return transitions; },
      labels);
}

std::vector<Tag> belief_viterbi(
    const std::vector<text::LabelDist>& beliefs,
    const std::vector<TagTransitionMatrix>& per_edge_transitions,
    const text::LabelSet& labels) {
  assert(per_edge_transitions.size() == beliefs.size());
  return belief_viterbi_impl(
      beliefs,
      [&](std::size_t i) -> const TagTransitionMatrix& {
        return per_edge_transitions[i];
      },
      labels);
}

}  // namespace graphner::crf
