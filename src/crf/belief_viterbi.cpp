#include "src/crf/belief_viterbi.hpp"

#include <algorithm>
#include <cassert>

namespace graphner::crf {

using text::kNumTags;
using text::Tag;

namespace {
constexpr double kEps = 1e-12;
}  // namespace

TagTransitionMatrix normalize_transition_counts(const TagTransitionMatrix& counts) {
  TagTransitionMatrix out{};
  for (std::size_t a = 0; a < kNumTags; ++a) {
    double row = 0.0;
    for (std::size_t b = 0; b < kNumTags; ++b) row += counts[a * kNumTags + b];
    for (std::size_t b = 0; b < kNumTags; ++b)
      out[a * kNumTags + b] =
          row > 0.0 ? counts[a * kNumTags + b] / row : 1.0 / kNumTags;
  }
  return out;
}

TagTransitionMatrix transition_ratio_matrix(const TagTransitionMatrix& counts) {
  TagTransitionMatrix out{};
  double total = 0.0;
  for (const double c : counts) total += c;
  if (total <= 0.0) {
    out.fill(1.0);
    return out;
  }
  std::array<double, kNumTags> from_marginal{};
  std::array<double, kNumTags> to_marginal{};
  for (std::size_t a = 0; a < kNumTags; ++a) {
    for (std::size_t b = 0; b < kNumTags; ++b) {
      from_marginal[a] += counts[a * kNumTags + b];
      to_marginal[b] += counts[a * kNumTags + b];
    }
  }
  for (std::size_t a = 0; a < kNumTags; ++a) {
    for (std::size_t b = 0; b < kNumTags; ++b) {
      const double denom = from_marginal[a] * to_marginal[b];
      out[a * kNumTags + b] =
          denom > 0.0 ? counts[a * kNumTags + b] * total / denom : 0.0;
    }
  }
  return out;
}

namespace {

/// Shared Viterbi core; `transition_at(i)` yields the matrix for the edge
/// between positions i-1 and i.
///
/// Max-product in the linear domain: scores are products of (floored)
/// beliefs and transition entries, renormalized by the row maximum at every
/// position so no logarithms are needed and products never overflow. A
/// uniform per-row rescale preserves the argmax and the backpointers.
/// Illegal configurations carry an exact score of 0; positive scores are
/// floored well above the denormal range so a long run of low-probability
/// (but legal) positions can never collapse to 0 and be mistaken for an
/// illegal path.
template <typename TransitionAt>
std::vector<Tag> belief_viterbi_impl(
    const std::vector<std::array<double, kNumTags>>& beliefs,
    TransitionAt&& transition_at) {
  const std::size_t n = beliefs.size();
  std::vector<Tag> tags(n);
  if (n == 0) return tags;

  constexpr double kScoreFloor = 1e-280;
  std::vector<std::array<double, kNumTags>> score(n);
  std::vector<std::array<std::size_t, kNumTags>> back(n);

  for (std::size_t t = 0; t < kNumTags; ++t) {
    const bool legal_start = text::tag_from_index(t) != Tag::kI;
    score[0][t] = legal_start ? std::max(beliefs[0][t], kEps) : 0.0;
  }
  for (std::size_t i = 1; i < n; ++i) {
    const TagTransitionMatrix& transitions = transition_at(i);
    double row_max = 0.0;
    for (std::size_t t = 0; t < kNumTags; ++t) {
      double best = 0.0;
      std::size_t arg = 0;
      for (std::size_t p = 0; p < kNumTags; ++p) {
        if (text::is_illegal_transition(text::tag_from_index(p),
                                        text::tag_from_index(t)))
          continue;
        const double cand =
            score[i - 1][p] * std::max(transitions[p * kNumTags + t], kEps);
        if (cand > best) {
          best = cand;
          arg = p;
        }
      }
      const double v = best * std::max(beliefs[i][t], kEps);
      score[i][t] = v;
      back[i][t] = arg;
      row_max = std::max(row_max, v);
    }
    if (row_max > 0.0) {
      const double inv = 1.0 / row_max;
      for (std::size_t t = 0; t < kNumTags; ++t) {
        double& v = score[i][t];
        v *= inv;
        if (v > 0.0 && v < kScoreFloor) v = kScoreFloor;
      }
    }
  }

  std::size_t cur = 0;
  double best = -1.0;
  for (std::size_t t = 0; t < kNumTags; ++t) {
    if (score[n - 1][t] > best) {
      best = score[n - 1][t];
      cur = t;
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    tags[i] = text::tag_from_index(cur);
    if (i > 0) cur = back[i][cur];
  }
  return tags;
}

}  // namespace

std::vector<Tag> belief_viterbi(
    const std::vector<std::array<double, kNumTags>>& beliefs,
    const TagTransitionMatrix& transitions) {
  return belief_viterbi_impl(beliefs,
                             [&](std::size_t) -> const TagTransitionMatrix& {
                               return transitions;
                             });
}

std::vector<Tag> belief_viterbi(
    const std::vector<std::array<double, kNumTags>>& beliefs,
    const std::vector<TagTransitionMatrix>& per_edge_transitions) {
  assert(per_edge_transitions.size() == beliefs.size());
  return belief_viterbi_impl(
      beliefs, [&](std::size_t i) -> const TagTransitionMatrix& {
        return per_edge_transitions[i];
      });
}

}  // namespace graphner::crf
