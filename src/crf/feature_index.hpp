// Feature-name interning for the CRF.
//
// Feature extractors emit string names ("W=tumor", "SHAPE=Aa", ...); the
// index maps them to dense ids. During training new names are interned;
// at test time unseen names are dropped (standard CRF practice).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace graphner::crf {

class FeatureIndex {
 public:
  using Id = std::uint32_t;

  /// Intern (training mode): returns a stable id, creating one if new.
  Id intern(std::string_view name);

  /// Lookup (test mode): id if known.
  [[nodiscard]] std::optional<Id> find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& name(Id id) const { return names_.at(id); }

  /// Freeze: find-only from now on (intern asserts in debug builds).
  void freeze() noexcept { frozen_ = true; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

 private:
  std::unordered_map<std::string, Id> index_;
  std::vector<std::string> names_;
  bool frozen_ = false;
};

}  // namespace graphner::crf
